//! `poisson-bicgstab-repro` — CLI driver for the reproduced solver.
//!
//! Runs the paper's test problem (Sec. IV) at any mesh size, rank count,
//! solver configuration and back-end, and optionally reports the modeled
//! cross-architecture times, a one-iteration trace (Fig. 8 style) and a
//! roofline table.
//!
//! ```text
//! cargo run --release -- --nodes 64 --ranks 2x2x2 --solver gnocomm-ci \
//!     --device mi250x --machines --trace --roofline
//! ```

use bench::{first_iteration_profile, run_once, Args, RunConfig};
use comm::ReduceOrder;
use krylov::SolverKind;
use perfmodel::{build_timeline, render_roofline, render_timeline, replay, roofline, MachineModel};

fn usage() -> ! {
    eprintln!(
        "poisson-bicgstab-repro: preconditioned Bi-CGSTAB Poisson solver

USAGE: poisson-bicgstab-repro [OPTIONS]
       poisson-bicgstab-repro serve-demo   (multi-tenant solve-service demo)
  --nodes N        mesh nodes per axis                       [48]
  --ranks AxBxC    process-grid decomposition                [1x1x1]
  --solver NAME    bicgs | g-bicgs | bj-bicgs | bj-ci | g-ci | gnocomm-ci
                                                             [gnocomm-ci]
  --device SPEC    serial | threads[:N] | mi250x | h100 | simgpu[:B]
                                                             [serial]
  --tol X          relative residual tolerance               [1e-10]
  --max-iters N    outer iteration cap                       [50000]
  --ci-iters N     Chebyshev sweeps per application          [24]
  --min-factor X   lambda_min rescaling (Bergamaschi)        [10]
  --no-overlap     synchronous halo exchanges (overlap is on by default)
  --no-overlap-reduce  blocking reductions instead of the split-phase
                   batched schedule (overlap is on by default)
  --no-fuse        unfused kernel schedule, 11 full-grid sweeps per
                   iteration (the fused 5-sweep schedule is the default)
  --arrival        arrival-order (nondeterministic) reductions
  --early-exit     enable the Alg. 1 mid-loop convergence check
  --true-res K     recompute the true residual every K iterations
  --restarts N     shadow-residual restarts on breakdown     [0]
  --history        print the residual history
  --machines       print modeled TTS on every machine model
  --trace          print a one-iteration timeline (MI250X model)
  --roofline       print the per-kernel roofline table (MI250X model)
  --help           this text"
    );
    std::process::exit(2)
}

/// `serve-demo`: exercise `crates/serve` end to end — warm-session
/// reuse, priorities, a multi-rank tenant and a quarantined poison
/// tenant — and print the service counters.
fn serve_demo() -> ! {
    use poisson::{paper_problem, unit_cube_dirichlet};
    use serve::{JobHandle, JobResult, Priority, ServiceConfig, SolveRequest, SolveService};

    // The poison tenant panics by design; keep its backtrace quiet.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let expected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("demo poison tenant"));
        if !expected {
            default_hook(info);
        }
    }));

    let svc = SolveService::start(ServiceConfig {
        workers: 2,
        queue_capacity: 16,
        session_capacity: 8,
        ..ServiceConfig::default()
    });
    println!("serve-demo: 2 workers, queue capacity 16, warm-session cache 8\n");

    let submit = |req: SolveRequest| -> JobHandle { svc.submit(req).expect("queue has room") };
    let report = |name: &str, handle: &JobHandle| match handle.wait() {
        JobResult::Done(out) => println!(
            "  {name:<28} done: {} in {} iters ({}, setup {:.1} ms, solve {:.1} ms)",
            if out.outcome.converged {
                "converged"
            } else {
                "stopped"
            },
            out.outcome.iterations,
            if out.metrics.warm {
                "warm session"
            } else {
                "cold build"
            },
            out.metrics.setup.as_secs_f64() * 1e3,
            out.metrics.solve.as_secs_f64() * 1e3,
        ),
        JobResult::Failed(e) => println!("  {name:<28} failed: {e}"),
        JobResult::Shed => println!("  {name:<28} shed before starting"),
        JobResult::Cancelled => println!("  {name:<28} cancelled"),
    };

    // Two tenants with different discretisations (both cold).
    let paper = paper_problem(21);
    let mut a = SolveRequest::new(paper.clone(), SolverKind::BiCgsGNoCommCi);
    a.tol = 1e-8;
    a.priority = Priority::High;
    let mut b = SolveRequest::new(unit_cube_dirichlet(17), SolverKind::BiCgs);
    b.tol = 1e-8;
    let (a, b) = (submit(a), submit(b));
    report("tenant A (paper, high)", &a);
    report("tenant B (unit cube)", &b);

    // Tenant A again: same discretisation and config, so the cached
    // session is reused and setup is skipped.
    let mut a2 = SolveRequest::new(paper, SolverKind::BiCgsGNoCommCi);
    a2.tol = 1e-8;
    let a2 = submit(a2);
    report("tenant A repeat (warm)", &a2);

    // A 4-rank tenant: the service spawns a ranks-as-threads world.
    let mut multi = SolveRequest::new(unit_cube_dirichlet(15), SolverKind::BiCgsGNoCommCi);
    multi.tol = 1e-8;
    multi.decomp = [2, 2, 1];
    let multi = submit(multi);
    report("tenant C (2x2x1 ranks)", &multi);

    // A poison tenant: its RHS closure panics mid-assembly. The panic
    // is caught, the half-built session quarantined, and the service
    // keeps serving.
    let mut bad = unit_cube_dirichlet(9);
    bad.rhs = std::sync::Arc::new(|_, _, _| panic!("demo poison tenant"));
    bad.exact = None;
    let poison = submit(SolveRequest::new(bad, SolverKind::BiCgs));
    report("poison tenant", &poison);

    let mut after = SolveRequest::new(unit_cube_dirichlet(9), SolverKind::BiCgs);
    after.tol = 1e-8;
    let after = submit(after);
    report("tenant D (after poison)", &after);

    let stats = svc.shutdown();
    println!(
        "\nservice stats: {} submitted, {} completed, {} failed \
         ({} panicked, {} sessions quarantined), {} warm hits / {} cold builds",
        stats.submitted,
        stats.completed,
        stats.failed,
        stats.panicked,
        stats.quarantined,
        stats.warm_hits,
        stats.cold_builds
    );
    std::process::exit(if stats.completed == 5 { 0 } else { 1 })
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("serve-demo") {
        serve_demo();
    }
    let args = Args::parse();
    if args.flag("help") {
        usage();
    }
    let solver: SolverKind = args
        .get_str("solver", "gnocomm-ci")
        .parse()
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            usage()
        });
    let mut cfg = RunConfig::small(solver);
    cfg.nodes = args.get("nodes", 48);
    cfg.decomp = args.try_decomp("ranks", [1, 1, 1]).unwrap_or_else(|e| {
        eprintln!("{e}");
        usage()
    });
    cfg.device = args.get_str("device", "serial");
    cfg.tol = args.get("tol", 1e-10);
    cfg.max_iters = args.get("max-iters", 50_000);
    cfg.opts.ci_iterations = args.get("ci-iters", 24);
    cfg.opts.eig_min_factor = args.get("min-factor", 10.0);
    cfg.opts.overlap_halo = !args.flag("no-overlap");
    cfg.opts.overlap_reduce = !args.flag("no-overlap-reduce");
    cfg.opts.fuse_kernels = !args.flag("no-fuse");
    cfg.order = if args.flag("arrival") {
        ReduceOrder::Arrival
    } else {
        ReduceOrder::RankOrder
    };
    cfg.params_extra.early_exit_check = args.flag("early-exit");
    cfg.params_extra.true_residual_every = args.get("true-res", 0);
    cfg.params_extra.max_restarts = args.get("restarts", 0);
    let need_events = args.flag("machines") || args.flag("trace") || args.flag("roofline");
    cfg.record_events = need_events;

    // Reject a bad spec here with a usage hint rather than panicking
    // inside a rank thread mid-run.
    if let Err(e) = accel::AnyDevice::from_spec(&cfg.device, accel::Recorder::disabled()) {
        eprintln!("{e}");
        usage();
    }

    let ranks = cfg.ranks();
    println!(
        "solving: {} mesh {}^3, ranks {:?} ({} total), device {}, tol {:.1e}",
        solver.label(),
        cfg.nodes,
        cfg.decomp,
        ranks,
        cfg.device,
        cfg.tol
    );

    let res = run_once(&cfg);
    let out = &res.outcome;
    println!(
        "\nresult: {} in {} outer iterations ({} prec sweeps, {:.1}/outer), residual {:.3e}",
        if out.converged { "converged" } else { "FAILED" },
        out.iterations,
        out.prec_iterations,
        out.prec_per_outer(),
        out.final_residual
    );
    if let Some(b) = out.breakdown {
        println!("breakdown: {b:?} after {} restarts", out.restarts);
    }
    println!(
        "accuracy: relative L2 error vs the manufactured solution {:.3e}",
        res.l2_error
    );
    println!(
        "this box: {:.3} s wall; rank 0 sent {} msgs / {} bytes, {} allreduces",
        res.wall_s, res.comm_stats.msgs_sent, res.comm_stats.bytes_sent, res.comm_stats.allreduces
    );
    if !out.true_residuals.is_empty() {
        println!("\ntrue-residual samples:");
        for (i, t) in &out.true_residuals {
            println!("  iter {i:>6}  |b - A x| = {t:.6e}");
        }
    }
    if args.flag("history") {
        println!("\nresidual history:");
        for (i, r) in out.residual_history.iter().enumerate() {
            println!("  iter {i:>6}  residual {r:.6e}");
        }
    }

    if args.flag("machines") {
        println!("\nmodeled time to solution (measured event stream replayed):");
        for m in [
            MachineModel::lumi_c_rank(),
            MachineModel::lumi_c_node(),
            MachineModel::mi250x(),
            MachineModel::h100_gpudirect(),
            MachineModel::h100_mn5(),
        ] {
            let c = replay(&res.events[0], &m, ranks);
            println!(
                "  {:<40} compute {:>9.4} s  comm {:>9.4} s  total {:>9.4} s",
                m.name,
                c.compute_s,
                c.comm_s,
                c.total_s()
            );
        }
    }
    if args.flag("trace") {
        let m = MachineModel::mi250x();
        let profile = first_iteration_profile(&res.events[0]);
        let spans = build_timeline(&profile, &m, ranks);
        println!("\none-iteration trace on the {} model:", m.name);
        println!("{}", render_timeline(&spans, 72));
    }
    if args.flag("roofline") {
        let m = MachineModel::mi250x();
        let pts = roofline(&res.events[0], &m);
        println!("\n{}", render_roofline(&pts, &m));
    }
    if !out.converged {
        std::process::exit(1);
    }
}
