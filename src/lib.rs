//! Umbrella crate for the reproduction of *"A Parallel and
//! Highly-Portable HPC Poisson Solver: Preconditioned Bi-CGSTAB with
//! alpaka"*.
//!
//! Re-exports every layer of the system; see the individual crates for
//! the full documentation:
//!
//! * [`accel`] — the alpaka-style performance-portability layer
//! * [`comm`] — the MPI-style in-process message-passing runtime
//! * [`blockgrid`] — domain decomposition, fields and halo exchange
//! * [`stencil`] — the matrix-free Poisson operator and spectral bounds
//! * [`krylov`] — preconditioned Bi-CGSTAB + the Table I preconditioners
//! * [`poisson`] — the paper's test problem and the high-level facade
//! * [`perfmodel`] — machine models, cost replay and tracing
//!
//! Start with [`poisson::PoissonSolver`] and the `examples/` directory.

pub use accel;
pub use blockgrid;
pub use comm;
pub use krylov;
pub use perfmodel;
pub use poisson;
pub use stencil;
