//! Convergence guard for the mixed-precision Chebyshev preconditioner.
//!
//! The f32 inner sweeps make the preconditioner a *different* (still
//! fixed) operator, so the outer Bi-CGSTAB iteration count may shift —
//! but only marginally: the polynomial is the same, the rounding is on
//! the order of 1e-7, and the outer recurrence stays f64. The guard
//! pins that claim across back-ends and rank counts: mixed precision
//! must converge to the same tolerance within ±2 outer iterations of
//! the all-f64 baseline, with the same solution accuracy.

use accel::{Device, GpuSimParams, Recorder, Serial, SimGpu, Threads};
use blockgrid::Decomp;
use comm::{run_ranks, ReduceOrder, SelfComm};
use krylov::{SolveParams, SolverKind, SolverOptions};
use poisson::{paper_problem, PoissonSolver};

/// Mixed must track f64 within this many outer iterations.
const ITER_SLACK: i64 = 2;

fn solve_params() -> SolveParams {
    SolveParams {
        tol: 1e-12,
        max_iters: 20_000,
        record_history: false,
        ..Default::default()
    }
}

fn solver_opts(mixed: bool) -> SolverOptions {
    SolverOptions {
        eig_min_factor: 10.0,
        mixed_precision: mixed,
        ..Default::default()
    }
}

/// Solve the paper problem single-rank; returns (converged, iterations,
/// relative L2 error vs the exact solution).
fn single_rank<D: Device>(dev: D, mixed: bool) -> (bool, usize, f64) {
    let mut solver: PoissonSolver<f64, _, _> = PoissonSolver::new(
        paper_problem(13),
        Decomp::single(),
        dev,
        SelfComm::default(),
    );
    let out = solver.solve(SolverKind::BiCgsGCi, &solver_opts(mixed), &solve_params());
    let (l2, _) = solver.error_vs_exact();
    (out.converged, out.iterations, l2)
}

/// Solve the paper problem on 8 ranks; returns per-rank (converged,
/// iterations, relative L2 error).
fn eight_rank<D, F>(make_dev: F, mixed: bool) -> Vec<(bool, usize, f64)>
where
    D: Device,
    F: Fn() -> D + Sync,
{
    let decomp = Decomp::new([2, 2, 2]);
    run_ranks::<f64, _, _>(8, ReduceOrder::RankOrder, move |comm| {
        let mut solver: PoissonSolver<f64, _, _> =
            PoissonSolver::new(paper_problem(13), decomp, make_dev(), comm);
        let out = solver.solve(SolverKind::BiCgsGCi, &solver_opts(mixed), &solve_params());
        let (l2, _) = solver.error_vs_exact();
        (out.converged, out.iterations, l2)
    })
}

fn assert_guard(label: &str, f64_run: &[(bool, usize, f64)], mixed_run: &[(bool, usize, f64)]) {
    for (rank, ((bc, bi, bl2), (mc, mi, ml2))) in f64_run.iter().zip(mixed_run).enumerate() {
        assert!(*bc, "{label} rank {rank}: f64 baseline did not converge");
        assert!(*mc, "{label} rank {rank}: mixed did not converge");
        let drift = (*mi as i64 - *bi as i64).abs();
        assert!(
            drift <= ITER_SLACK,
            "{label} rank {rank}: mixed took {mi} outer iterations vs f64's {bi} \
             (drift {drift} > {ITER_SLACK})"
        );
        assert!(*bl2 < 1e-3, "{label} rank {rank}: f64 L2 error {bl2}");
        assert!(*ml2 < 1e-3, "{label} rank {rank}: mixed L2 error {ml2}");
    }
}

#[test]
fn serial_single_rank_tracks_f64() {
    let base = single_rank(Serial::new(Recorder::disabled()), false);
    let mixed = single_rank(Serial::new(Recorder::disabled()), true);
    assert_guard("serial/1", &[base], &[mixed]);
}

#[test]
fn threads_single_rank_tracks_f64() {
    let base = single_rank(Threads::new(2, Recorder::disabled()), false);
    let mixed = single_rank(Threads::new(2, Recorder::disabled()), true);
    assert_guard("threads/1", &[base], &[mixed]);
}

#[test]
fn simgpu_single_rank_tracks_f64() {
    let base = single_rank(
        SimGpu::new(GpuSimParams::mi250x(), Recorder::disabled()),
        false,
    );
    let mixed = single_rank(
        SimGpu::new(GpuSimParams::mi250x(), Recorder::disabled()),
        true,
    );
    assert_guard("simgpu/1", &[base], &[mixed]);
}

#[test]
fn serial_eight_rank_tracks_f64() {
    let base = eight_rank(|| Serial::new(Recorder::disabled()), false);
    let mixed = eight_rank(|| Serial::new(Recorder::disabled()), true);
    assert_guard("serial/8", &base, &mixed);
}

#[test]
fn threads_eight_rank_tracks_f64() {
    let base = eight_rank(|| Threads::new(2, Recorder::disabled()), false);
    let mixed = eight_rank(|| Threads::new(2, Recorder::disabled()), true);
    assert_guard("threads/8", &base, &mixed);
}

#[test]
fn simgpu_eight_rank_tracks_f64() {
    let base = eight_rank(
        || SimGpu::new(GpuSimParams::mi250x(), Recorder::disabled()),
        false,
    );
    let mixed = eight_rank(
        || SimGpu::new(GpuSimParams::mi250x(), Recorder::disabled()),
        true,
    );
    assert_guard("simgpu/8", &base, &mixed);
}
