//! Continuous problem description and its discretisation.

use std::sync::Arc;

use blockgrid::{BcKind, GlobalGrid};

/// A scalar function of space shared across rank threads.
pub type SpaceFn = Arc<dyn Fn(f64, f64, f64) -> f64 + Send + Sync>;

/// A Poisson boundary-value problem `−Δφ = f` on a box, with per-face
/// Dirichlet (`φ = g`) or Neumann (`∂φ/∂axis = g`) conditions.
///
/// Neumann data is expressed as the *coordinate* derivative along the
/// face's axis (not the outward normal), which keeps the lifting formulas
/// sign-uniform; see [`crate::assemble`].
#[derive(Clone)]
pub struct PoissonProblem {
    /// Low corner of the box.
    pub lo: [f64; 3],
    /// High corner of the box.
    pub hi: [f64; 3],
    /// Grid nodes per axis *including both boundary nodes* (the paper's
    /// "256 × 256 × 256 mesh"); spacing is `(hi − lo) / (nodes − 1)`.
    pub nodes: [usize; 3],
    /// Boundary condition per `[axis][side]`.
    pub bc: [[BcKind; 2]; 3],
    /// Right-hand side `f`.
    pub rhs: SpaceFn,
    /// Dirichlet boundary values (sampled on Dirichlet faces).
    pub dirichlet: SpaceFn,
    /// Neumann boundary data `∂φ/∂axis` (sampled on Neumann faces).
    pub neumann_dx: [SpaceFn; 3],
    /// Known exact solution, when available (manufactured problems).
    pub exact: Option<SpaceFn>,
}

impl PoissonProblem {
    /// Grid spacing per axis.
    pub fn spacing(&self) -> [f64; 3] {
        std::array::from_fn(|a| {
            assert!(self.nodes[a] >= 3, "need at least 3 nodes per axis");
            (self.hi[a] - self.lo[a]) / (self.nodes[a] - 1) as f64
        })
    }

    /// Discretise to the global unknown grid.
    ///
    /// Dirichlet boundary nodes are eliminated (their values move to the
    /// RHS), Neumann boundary nodes remain unknowns — so each axis has
    /// `nodes`, `nodes − 1` or `nodes − 2` unknowns depending on its BCs,
    /// and the first unknown sits one node in from a Dirichlet face.
    pub fn discretize(&self) -> GlobalGrid {
        // a box with Neumann data on all six faces is singular (the
        // solution is only defined up to a constant and the RHS must
        // satisfy a compatibility condition) — reject it early instead of
        // letting the Krylov solver stagnate
        assert!(
            self.bc.iter().flatten().any(|&b| b == BcKind::Dirichlet),
            "pure-Neumann problem is singular: at least one face must be Dirichlet"
        );
        let h = self.spacing();
        let mut n = [0usize; 3];
        let mut origin = [0f64; 3];
        for a in 0..3 {
            let lo_excluded = usize::from(self.bc[a][0] == BcKind::Dirichlet);
            let hi_excluded = usize::from(self.bc[a][1] == BcKind::Dirichlet);
            n[a] = self.nodes[a] - lo_excluded - hi_excluded;
            origin[a] = self.lo[a] + h[a] * lo_excluded as f64;
        }
        GlobalGrid {
            n,
            h,
            origin,
            bc: self.bc,
        }
    }
}

/// The paper's test problem (Sec. IV):
///
/// `−Δφ = sin x + cos y + 3 sin z − 2yz + 2` on
/// `[3, 28.5] × [2.5, 28] × [10, 35.5]`, Dirichlet on the `x−`, `y+`,
/// `z+` faces and Neumann on `x+`, `y−`, `z−`, with `nodes = 256` per
/// axis giving the paper's `Δ = 0.1` mesh.
///
/// The manufactured exact solution is
/// `φ = sin x + cos y + 3 sin z + x² y z − x²` (check: `−Δφ` reproduces
/// the stated RHS), from which the boundary data is sampled.
pub fn paper_problem(nodes: usize) -> PoissonProblem {
    let exact = |x: f64, y: f64, z: f64| x.sin() + y.cos() + 3.0 * z.sin() + x * x * y * z - x * x;
    PoissonProblem {
        lo: [3.0, 2.5, 10.0],
        hi: [28.5, 28.0, 35.5],
        nodes: [nodes; 3],
        bc: [
            [BcKind::Dirichlet, BcKind::Neumann],
            [BcKind::Neumann, BcKind::Dirichlet],
            [BcKind::Neumann, BcKind::Dirichlet],
        ],
        rhs: Arc::new(|x, y, z| x.sin() + y.cos() + 3.0 * z.sin() - 2.0 * y * z + 2.0),
        dirichlet: Arc::new(exact),
        neumann_dx: [
            // ∂φ/∂x = cos x + 2xyz − 2x
            Arc::new(|x: f64, y: f64, z: f64| x.cos() + 2.0 * x * y * z - 2.0 * x),
            // ∂φ/∂y = −sin y + x²z
            Arc::new(|x: f64, y: f64, z: f64| -(y.sin()) + x * x * z),
            // ∂φ/∂z = 3cos z + x²y
            Arc::new(|x: f64, y: f64, z: f64| 3.0 * z.cos() + x * x * y),
        ],
        exact: Some(Arc::new(exact)),
    }
}

/// An all-Dirichlet manufactured problem on the unit cube
/// (`φ = sin(πx) sin(πy) sin(πz)`), handy for symmetric-operator tests.
pub fn unit_cube_dirichlet(nodes: usize) -> PoissonProblem {
    use std::f64::consts::PI;
    let exact = |x: f64, y: f64, z: f64| (PI * x).sin() * (PI * y).sin() * (PI * z).sin();
    PoissonProblem {
        lo: [0.0; 3],
        hi: [1.0; 3],
        nodes: [nodes; 3],
        bc: [[BcKind::Dirichlet; 2]; 3],
        rhs: Arc::new(move |x, y, z| 3.0 * PI * PI * exact(x, y, z)),
        dirichlet: Arc::new(exact),
        neumann_dx: [
            Arc::new(|_, _, _| 0.0),
            Arc::new(|_, _, _| 0.0),
            Arc::new(|_, _, _| 0.0),
        ],
        exact: Some(Arc::new(exact)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_problem_matches_section_iv() {
        let p = paper_problem(256);
        let h = p.spacing();
        for (a, ha) in h.iter().enumerate() {
            assert!((ha - 0.1).abs() < 1e-12, "axis {a}: {ha}");
        }
        assert_eq!(p.bc[0], [BcKind::Dirichlet, BcKind::Neumann]);
        assert_eq!(p.bc[1], [BcKind::Neumann, BcKind::Dirichlet]);
        assert_eq!(p.bc[2], [BcKind::Neumann, BcKind::Dirichlet]);
    }

    #[test]
    fn manufactured_solution_satisfies_pde() {
        // −Δφ == f, verified by central differences at interior points.
        let p = paper_problem(64);
        let exact = p.exact.clone().unwrap();
        let h = 1e-4;
        for &(x, y, z) in &[(5.0, 5.0, 15.0), (10.3, 20.7, 30.1), (27.0, 3.1, 11.9)] {
            let lap = (exact(x + h, y, z)
                + exact(x - h, y, z)
                + exact(x, y + h, z)
                + exact(x, y - h, z)
                + exact(x, y, z + h)
                + exact(x, y, z - h)
                - 6.0 * exact(x, y, z))
                / (h * h);
            let f = (p.rhs)(x, y, z);
            // FD of a ~1e4-magnitude field: allow cancellation noise
            let tol = 1e-4 * f.abs().max(1.0);
            assert!(
                (-lap - f).abs() < tol,
                "PDE violated at ({x},{y},{z}): {} vs {f}",
                -lap
            );
        }
    }

    #[test]
    fn neumann_data_matches_exact_gradient() {
        let p = paper_problem(64);
        let exact = p.exact.clone().unwrap();
        let h = 1e-6;
        let (x, y, z) = (12.0, 7.0, 22.0);
        let fd = [
            (exact(x + h, y, z) - exact(x - h, y, z)) / (2.0 * h),
            (exact(x, y + h, z) - exact(x, y - h, z)) / (2.0 * h),
            (exact(x, y, z + h) - exact(x, y, z - h)) / (2.0 * h),
        ];
        for (a, fda) in fd.iter().enumerate() {
            let g = (p.neumann_dx[a])(x, y, z);
            let tol = 1e-7 * g.abs().max(1.0);
            assert!((g - fda).abs() < tol, "axis {a}: {g} vs {fda}");
        }
    }

    #[test]
    #[should_panic(expected = "pure-Neumann problem is singular")]
    fn all_neumann_box_rejected() {
        let mut p = paper_problem(9);
        p.bc = [[BcKind::Neumann; 2]; 3];
        let _ = p.discretize();
    }

    #[test]
    fn discretization_counts_unknowns_per_bc() {
        let p = paper_problem(256);
        let g = p.discretize();
        // one Dirichlet face per axis removes one node
        assert_eq!(g.n, [255, 255, 255]);
        // x: Dirichlet at low => origin shifted one node in
        assert!((g.origin[0] - 3.1).abs() < 1e-12);
        // y: Neumann at low => origin at the boundary node
        assert!((g.origin[1] - 2.5).abs() < 1e-12);
        let d = unit_cube_dirichlet(17).discretize();
        assert_eq!(d.n, [15, 15, 15]);
    }
}
