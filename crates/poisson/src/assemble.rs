//! Right-hand-side assembly with boundary lifting.
//!
//! The matrix-free operator (crate `stencil`) realises the homogeneous
//! matrix rows; all inhomogeneous boundary data enters the right-hand
//! side once at setup:
//!
//! * **Dirichlet** neighbour `g_D` of an unknown one node inside the
//!   face: `b += g_D / h²` (the eliminated `−1/h²` coupling of Eq. 4).
//! * **Neumann** boundary unknown with data `g = ∂φ/∂axis` on the face:
//!   the second-order ghost elimination `φ_ghost = φ_mirror ± 2h·g`
//!   contributes `b −= 2g/h` on a low face and `b += 2g/h` on a high
//!   face (the `−2` row of Eq. 5 plus this lift).

use blockgrid::{BcKind, BlockGrid};

use crate::problem::PoissonProblem;

/// Physical coordinates of local unknown `(i, j, k)` (interior indices).
fn coords(grid: &BlockGrid, i: usize, j: usize, k: usize) -> (f64, f64, f64) {
    (
        grid.local_coord(0, i),
        grid.local_coord(1, j),
        grid.local_coord(2, k),
    )
}

/// Assemble this rank's interior right-hand side (x-fastest order),
/// sampling `f` at the unknown nodes and applying the boundary lifts.
pub fn local_rhs(problem: &PoissonProblem, grid: &BlockGrid) -> Vec<f64> {
    let n = grid.local_n;
    let h = grid.global.h;
    let gn = grid.global.n;
    let mut b = Vec::with_capacity(n[0] * n[1] * n[2]);
    for k in 0..n[2] {
        for j in 0..n[1] {
            for i in 0..n[0] {
                let (x, y, z) = coords(grid, i, j, k);
                let mut v = (problem.rhs)(x, y, z);
                let local = [i, j, k];
                for a in 0..3 {
                    let gidx = grid.offset[a] + local[a];
                    let ha = h[a];
                    // low face
                    if gidx == 0 {
                        match grid.global.bc[a][0] {
                            BcKind::Dirichlet => {
                                // boundary node one step below the unknown
                                let (bx, by, bz) = shifted(x, y, z, a, -ha);
                                v += (problem.dirichlet)(bx, by, bz) / (ha * ha);
                            }
                            BcKind::Neumann => {
                                v -= 2.0 * (problem.neumann_dx[a])(x, y, z) / ha;
                            }
                        }
                    }
                    // high face
                    if gidx == gn[a] - 1 {
                        match grid.global.bc[a][1] {
                            BcKind::Dirichlet => {
                                let (bx, by, bz) = shifted(x, y, z, a, ha);
                                v += (problem.dirichlet)(bx, by, bz) / (ha * ha);
                            }
                            BcKind::Neumann => {
                                v += 2.0 * (problem.neumann_dx[a])(x, y, z) / ha;
                            }
                        }
                    }
                }
                b.push(v);
            }
        }
    }
    b
}

fn shifted(x: f64, y: f64, z: f64, axis: usize, d: f64) -> (f64, f64, f64) {
    match axis {
        0 => (x + d, y, z),
        1 => (x, y + d, z),
        _ => (x, y, z + d),
    }
}

/// Sample the problem's exact solution at this rank's unknowns
/// (x-fastest order). Panics if the problem has no exact solution.
pub fn local_exact(problem: &PoissonProblem, grid: &BlockGrid) -> Vec<f64> {
    let exact = problem
        .exact
        .as_ref()
        .expect("problem has no exact solution");
    let n = grid.local_n;
    let mut out = Vec::with_capacity(n[0] * n[1] * n[2]);
    for k in 0..n[2] {
        for j in 0..n[1] {
            for i in 0..n[0] {
                let (x, y, z) = coords(grid, i, j, k);
                out.push(exact(x, y, z));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{paper_problem, unit_cube_dirichlet};
    use blockgrid::Decomp;

    #[test]
    fn interior_points_sample_f_only() {
        let p = unit_cube_dirichlet(9);
        let grid = BlockGrid::new(p.discretize(), Decomp::single(), 0);
        let b = local_rhs(&p, &grid);
        // centre unknown: index (3,3,3) of 7 per axis
        let c = 3 + 7 * (3 + 7 * 3);
        let (x, y, z) = coords(&grid, 3, 3, 3);
        assert_eq!(b[c], (p.rhs)(x, y, z));
    }

    #[test]
    fn dirichlet_lift_applied_on_faces() {
        let p = unit_cube_dirichlet(9);
        let grid = BlockGrid::new(p.discretize(), Decomp::single(), 0);
        let h = grid.global.h[0];
        let b = local_rhs(&p, &grid);
        // first unknown touches three low Dirichlet faces
        let (x, y, z) = coords(&grid, 0, 0, 0);
        let expect = (p.rhs)(x, y, z)
            + (p.dirichlet)(x - h, y, z) / (h * h)
            + (p.dirichlet)(x, y - h, z) / (h * h)
            + (p.dirichlet)(x, y, z - h) / (h * h);
        assert!((b[0] - expect).abs() < 1e-12);
    }

    #[test]
    fn neumann_lift_signs() {
        let p = paper_problem(9);
        let grid = BlockGrid::new(p.discretize(), Decomp::single(), 0);
        let n = grid.local_n;
        let h = grid.global.h;
        let b = local_rhs(&p, &grid);
        // unknown on the x+ Neumann face, well inside in y and z
        let (i, j, k) = (n[0] - 1, 2, 2);
        let (x, y, z) = coords(&grid, i, j, k);
        let idx = i + n[0] * (j + n[1] * k);
        let expect = (p.rhs)(x, y, z) + 2.0 * (p.neumann_dx[0])(x, y, z) / h[0];
        assert!((b[idx] - expect).abs() < 1e-12);
        // unknown on the y− Neumann face
        let (i, j, k) = (2, 0, 2);
        let (x, y, z) = coords(&grid, i, j, k);
        let idx = i + n[0] * (j + n[1] * k);
        let expect = (p.rhs)(x, y, z) - 2.0 * (p.neumann_dx[1])(x, y, z) / h[1];
        assert!((b[idx] - expect).abs() < 1e-12);
    }

    #[test]
    fn decomposed_assembly_tiles_the_single_rank_one() {
        let p = paper_problem(9);
        let global = p.discretize();
        let single = BlockGrid::new(global.clone(), Decomp::single(), 0);
        let reference = local_rhs(&p, &single);
        let decomp = Decomp::new([2, 2, 1]);
        let gn = global.n;
        for rank in 0..4 {
            let grid = BlockGrid::new(global.clone(), decomp, rank);
            let local = local_rhs(&p, &grid);
            let n = grid.local_n;
            let mut idx = 0;
            for k in 0..n[2] {
                for j in 0..n[1] {
                    for i in 0..n[0] {
                        let g = (grid.offset[0] + i)
                            + gn[0] * ((grid.offset[1] + j) + gn[1] * (grid.offset[2] + k));
                        assert_eq!(local[idx], reference[g], "rank {rank} ({i},{j},{k})");
                        idx += 1;
                    }
                }
            }
        }
    }

    #[test]
    fn exact_sampling_matches_function() {
        let p = paper_problem(9);
        let grid = BlockGrid::new(p.discretize(), Decomp::single(), 0);
        let e = local_exact(&p, &grid);
        let (x, y, z) = coords(&grid, 1, 2, 3);
        let n = grid.local_n;
        let exact = p.exact.as_ref().unwrap();
        assert_eq!(e[1 + n[0] * (2 + n[1] * 3)], exact(x, y, z));
    }
}
