//! # poisson — the paper's Poisson solver, end to end
//!
//! The user-facing crate of the reproduction: the continuous test problem
//! of Sec. IV (domain, mixed Dirichlet/Neumann boundary data, the
//! manufactured exact solution), its discretisation and right-hand-side
//! assembly with boundary lifting, and a per-rank [`PoissonSolver`]
//! facade that wires grid + device + communicator + Krylov solver
//! together.
//!
//! ## Quick start (single rank, serial back-end)
//!
//! ```
//! use accel::{Recorder, Serial};
//! use blockgrid::Decomp;
//! use comm::SelfComm;
//! use krylov::{SolveParams, SolverKind, SolverOptions};
//! use poisson::{paper_problem, PoissonSolver};
//!
//! let problem = paper_problem(17); // 17³-node version of the paper's mesh
//! let mut solver: PoissonSolver<f64, _, _> = PoissonSolver::new(
//!     problem,
//!     Decomp::single(),
//!     Serial::new(Recorder::disabled()),
//!     SelfComm::default(),
//! );
//! let outcome = solver.solve(
//!     SolverKind::BiCgsGNoCommCi,
//!     &SolverOptions { eig_min_factor: 10.0, ..Default::default() },
//!     &SolveParams::default(),
//! );
//! assert!(outcome.converged);
//! let (l2, _linf) = solver.error_vs_exact();
//! assert!(l2 < 1e-2);
//! ```
//!
//! Multi-rank runs wrap the same code in [`comm::run_ranks`]; see the
//! `examples/` directory of the repository.

#![warn(missing_docs)]

pub mod assemble;
mod facade;
mod problem;

pub use facade::{LaneSolve, PoissonSolver, SetupError};
pub use problem::{paper_problem, unit_cube_dirichlet, PoissonProblem, SpaceFn};
