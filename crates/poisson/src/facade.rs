//! High-level per-rank solver facade.

use accel::{Device, Scalar};
use blockgrid::{BlockGrid, Decomp, Field};
use comm::{Communicator, ReduceOp};
use krylov::{
    bicgstab_solve, RankCtx, Scope, SolveOutcome, SolveParams, SolverKind, SolverOptions, Workspace,
};

use crate::assemble::{local_exact, local_rhs};
use crate::problem::PoissonProblem;

/// One rank's fully wired Poisson solver: subdomain, operator, assembled
/// and normalised right-hand side, and reusable Krylov workspace.
///
/// Construction performs the paper's setup phase — assemble `b` on the
/// host, normalise it globally (all tolerances become relative), offload
/// to the device once. `solve` then runs any of the six Table I solver
/// configurations; the solution stays device-resident until
/// [`PoissonSolver::solution_local`] copies it back (the paper's single
/// end-of-run D2H transfer).
pub struct PoissonSolver<T: Scalar, D: Device, C: Communicator<T>> {
    ctx: RankCtx<T, D, C>,
    ws: Workspace<T>,
    b: Field<T>,
    b_norm: f64,
    x: Field<T>,
    problem: PoissonProblem,
}

impl<T: Scalar, D: Device, C: Communicator<T>> PoissonSolver<T, D, C> {
    /// Set up the solver for this rank's subdomain of `problem` under
    /// `decomp`. `comm.size()` must equal `decomp.ranks()`.
    pub fn new(problem: PoissonProblem, decomp: Decomp, dev: D, comm: C) -> Self {
        assert_eq!(
            comm.size(),
            decomp.ranks(),
            "decomposition must match the communicator size"
        );
        let grid = BlockGrid::new(problem.discretize(), decomp, comm.rank());
        let ctx: RankCtx<T, D, C> = RankCtx::new(dev, comm, grid);

        // Assemble and globally normalise the RHS (Sec. IV: "we always
        // normalize the right-hand side").
        let b_host = local_rhs(&problem, &ctx.grid);
        let local_sq: f64 = b_host.iter().map(|v| v * v).sum();
        let mut sums = [T::from_f64(local_sq)];
        ctx.comm.all_reduce(&mut sums, ReduceOp::Sum);
        let b_norm = sums[0].to_f64().max(0.0).sqrt();
        assert!(b_norm > 0.0, "zero right-hand side");
        let b_scaled: Vec<T> = b_host.iter().map(|&v| T::from_f64(v / b_norm)).collect();
        let b = Field::from_interior(&ctx.dev, &ctx.grid, &b_scaled);

        let ws = Workspace::new(&ctx.dev, &ctx.grid);
        let x = Field::zeros(&ctx.dev, &ctx.grid);
        Self {
            ctx,
            ws,
            b,
            b_norm,
            x,
            problem,
        }
    }

    /// The rank context (device, communicator, grid, operator).
    pub fn ctx(&self) -> &RankCtx<T, D, C> {
        &self.ctx
    }

    /// The subdomain.
    pub fn grid(&self) -> &BlockGrid {
        &self.ctx.grid
    }

    /// The continuous problem.
    pub fn problem(&self) -> &PoissonProblem {
        &self.problem
    }

    /// Global RHS norm used for the normalisation.
    pub fn rhs_norm(&self) -> f64 {
        self.b_norm
    }

    /// Run one solver configuration from a zero initial guess.
    ///
    /// `params.tol` is relative to the RHS (the stored `b` is normalised).
    pub fn solve(
        &mut self,
        kind: SolverKind,
        opts: &SolverOptions,
        params: &SolveParams,
    ) -> SolveOutcome {
        self.x.fill_zero();
        let mut prec = kind.build_preconditioner(&self.ctx, opts);
        bicgstab_solve(
            &self.ctx,
            Scope::Global,
            &self.b,
            &mut self.x,
            &mut *prec,
            &mut self.ws,
            params,
        )
    }

    /// Download this rank's interior solution, un-normalised back to the
    /// original RHS scale (one D2H transfer).
    pub fn solution_local(&self) -> Vec<f64> {
        self.x
            .interior_to_host(&self.ctx.grid)
            .into_iter()
            .map(|v| v.to_f64() * self.b_norm)
            .collect()
    }

    /// Global relative L2 error and absolute max error against the
    /// problem's exact solution (collective call — every rank must enter).
    pub fn error_vs_exact(&self) -> (f64, f64) {
        let exact = local_exact(&self.problem, &self.ctx.grid);
        let got = self.solution_local();
        let mut err_sq = 0.0;
        let mut ref_sq = 0.0;
        let mut linf: f64 = 0.0;
        for (g, e) in got.iter().zip(&exact) {
            let d = g - e;
            err_sq += d * d;
            ref_sq += e * e;
            linf = linf.max(d.abs());
        }
        let mut sums = [T::from_f64(err_sq), T::from_f64(ref_sq)];
        self.ctx.comm.all_reduce(&mut sums, ReduceOp::Sum);
        let mut maxes = [T::from_f64(linf)];
        self.ctx.comm.all_reduce(&mut maxes, ReduceOp::Max);
        let l2_rel = (sums[0].to_f64() / sums[1].to_f64().max(f64::MIN_POSITIVE)).sqrt();
        (l2_rel, maxes[0].to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{paper_problem, unit_cube_dirichlet};
    use accel::{Recorder, Serial};
    use comm::{run_ranks, ReduceOrder, SelfComm, ThreadComm};

    fn solve_single(nodes: usize) -> (f64, f64, SolveOutcome) {
        let p = paper_problem(nodes);
        let mut solver: PoissonSolver<f64, _, _> = PoissonSolver::new(
            p,
            Decomp::single(),
            Serial::new(Recorder::disabled()),
            SelfComm::default(),
        );
        let out = solver.solve(
            SolverKind::BiCgsGNoCommCi,
            &SolverOptions {
                eig_min_factor: 10.0,
                ..Default::default()
            },
            &SolveParams {
                tol: 1e-12,
                max_iters: 20_000,
                record_history: false,
                ..Default::default()
            },
        );
        let (l2, linf) = solver.error_vs_exact();
        (l2, linf, out)
    }

    #[test]
    fn converges_to_manufactured_solution() {
        let (l2, _linf, out) = solve_single(13);
        assert!(out.converged, "{out:?}");
        assert!(l2 < 1e-3, "relative L2 error {l2}");
    }

    #[test]
    fn second_order_convergence() {
        // halving h must cut the discretisation error ~4x
        let (l2_coarse, _, out1) = solve_single(9);
        let (l2_fine, _, out2) = solve_single(17);
        assert!(out1.converged && out2.converged);
        let rate = l2_coarse / l2_fine;
        assert!(
            (3.0..5.5).contains(&rate),
            "expected ~4x error reduction, got {rate} ({l2_coarse} -> {l2_fine})"
        );
    }

    #[test]
    fn unit_cube_dirichlet_solves() {
        let p = unit_cube_dirichlet(17);
        let mut solver: PoissonSolver<f64, _, _> = PoissonSolver::new(
            p,
            Decomp::single(),
            Serial::new(Recorder::disabled()),
            SelfComm::default(),
        );
        let out = solver.solve(
            SolverKind::BiCgs,
            &SolverOptions::default(),
            &SolveParams {
                tol: 1e-11,
                max_iters: 10_000,
                record_history: false,
                ..Default::default()
            },
        );
        assert!(out.converged);
        let (l2, _) = solver.error_vs_exact();
        assert!(l2 < 5e-3, "relative L2 error {l2}");
    }

    #[test]
    fn distributed_solution_matches_exact() {
        run_ranks::<f64, _, _>(8, ReduceOrder::RankOrder, |comm| {
            let p = paper_problem(13);
            let mut solver: PoissonSolver<f64, Serial, ThreadComm<f64>> = PoissonSolver::new(
                p,
                Decomp::new([2, 2, 2]),
                Serial::new(Recorder::disabled()),
                comm,
            );
            let out = solver.solve(
                SolverKind::BiCgsGNoCommCi,
                &SolverOptions {
                    eig_min_factor: 10.0,
                    ..Default::default()
                },
                &SolveParams {
                    tol: 1e-12,
                    max_iters: 20_000,
                    record_history: false,
                    ..Default::default()
                },
            );
            assert!(out.converged);
            let (l2, _) = solver.error_vs_exact();
            assert!(l2 < 1e-3, "relative L2 error {l2}");
        });
    }

    #[test]
    fn rhs_norm_restores_scale() {
        // the normalised internal RHS must reproduce an un-normalised
        // solution: solving the same problem twice with RHS scaled by c
        // gives identical `solution_local` output because the problem is
        // identical — here we just assert the norm is positive and the
        // solution is not normalised-scale.
        let p = paper_problem(9);
        let mut solver: PoissonSolver<f64, _, _> = PoissonSolver::new(
            p,
            Decomp::single(),
            Serial::new(Recorder::disabled()),
            SelfComm::default(),
        );
        assert!(solver.rhs_norm() > 1.0, "paper RHS has a large norm");
        let out = solver.solve(
            SolverKind::BiCgsGNoCommCi,
            &SolverOptions {
                eig_min_factor: 10.0,
                ..Default::default()
            },
            &SolveParams {
                tol: 1e-12,
                max_iters: 20_000,
                record_history: false,
                ..Default::default()
            },
        );
        assert!(out.converged);
        let sol = solver.solution_local();
        let exact = crate::assemble::local_exact(solver.problem(), solver.grid());
        // un-normalised magnitudes match the exact solution's scale
        let max_sol = sol.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let max_exact = exact.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!((max_sol / max_exact - 1.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "decomposition must match")]
    fn mismatched_decomposition_rejected() {
        let p = paper_problem(9);
        let _: PoissonSolver<f64, _, _> = PoissonSolver::new(
            p,
            Decomp::new([2, 1, 1]),
            Serial::new(Recorder::disabled()),
            SelfComm::default(),
        );
    }
}
