//! High-level per-rank solver facade.

use accel::{Device, Scalar};
use blockgrid::{BlockGrid, Decomp, Field};
use comm::{Communicator, ReduceOp};
use krylov::{
    bicgstab_solve, bicgstab_solve_batch, BatchWorkspace, CancelToken, RankCtx, Scope,
    SolveOutcome, SolveParams, SolverKind, SolverOptions, Workspace,
};

use crate::assemble::{local_exact, local_rhs};
use crate::problem::PoissonProblem;

/// Why solver setup (or an RHS swap) refused the input.
///
/// Every variant is decided *collectively*: either from data all ranks
/// share (the decomposition) or from a globally reduced quantity (the
/// RHS norm, a validity flag), so in a multi-rank world every rank
/// returns the same variant and no rank is left blocked in a collective.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SetupError {
    /// `comm.size() != decomp.ranks()` — the decomposition does not
    /// match the communicator.
    DecompMismatch {
        /// Communicator world size.
        comm: usize,
        /// Ranks the decomposition expects.
        decomp: usize,
    },
    /// The global RHS norm is not positive (all-zero or non-finite
    /// right-hand side) — the normalisation `b / ‖b‖` is undefined.
    ZeroRhs,
    /// A rank was handed a local RHS slice of the wrong length.
    RhsSizeMismatch {
        /// This rank's interior size.
        expected: usize,
        /// Length actually provided on this rank.
        got: usize,
    },
}

impl std::fmt::Display for SetupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DecompMismatch { comm, decomp } => write!(
                f,
                "decomposition must match the communicator size \
                 (communicator has {comm} ranks, decomposition wants {decomp})"
            ),
            Self::ZeroRhs => write!(
                f,
                "zero right-hand side (the global RHS norm must be positive and finite)"
            ),
            Self::RhsSizeMismatch { expected, got } => write!(
                f,
                "local RHS size mismatch (expected {expected} interior values, got {got})"
            ),
        }
    }
}

impl std::error::Error for SetupError {}

/// One rank's fully wired Poisson solver: subdomain, operator, assembled
/// and normalised right-hand side, and reusable Krylov workspace.
///
/// Construction performs the paper's setup phase — assemble `b` on the
/// host, normalise it globally (all tolerances become relative), offload
/// to the device once. `solve` then runs any of the six Table I solver
/// configurations; the solution stays device-resident until
/// [`PoissonSolver::solution_local`] copies it back (the paper's single
/// end-of-run D2H transfer).
pub struct PoissonSolver<T: Scalar, D: Device, C: Communicator<T>> {
    ctx: RankCtx<T, D, C>,
    ws: Workspace<T>,
    b: Field<T>,
    b_norm: f64,
    x: Field<T>,
    problem: PoissonProblem,
    /// Lane workspaces for [`PoissonSolver::solve_batch`], grown lazily
    /// to the widest batch seen and reused across batches (the warm
    /// path of a batching serving layer).
    batch_ws: BatchWorkspace<T>,
    /// Per-lane iterates for `solve_batch`, same growth policy.
    batch_xs: Vec<Field<T>>,
}

/// One lane's result from a batched facade solve
/// ([`PoissonSolver::solve_batch`]).
#[derive(Clone, Debug)]
pub struct LaneSolve {
    /// The lane's solver outcome (identical on every rank).
    pub outcome: SolveOutcome,
    /// This rank's interior solution, un-normalised back to the lane's
    /// original RHS scale (one D2H transfer per lane).
    pub solution_local: Vec<f64>,
    /// Global RHS norm used for this lane's normalisation.
    pub rhs_norm: f64,
}

impl<T: Scalar, D: Device, C: Communicator<T>> PoissonSolver<T, D, C> {
    /// Set up the solver for this rank's subdomain of `problem` under
    /// `decomp`. `comm.size()` must equal `decomp.ranks()`.
    ///
    /// Panics on invalid input; services should prefer
    /// [`PoissonSolver::try_new`].
    pub fn new(problem: PoissonProblem, decomp: Decomp, dev: D, comm: C) -> Self {
        Self::try_new(problem, decomp, dev, comm).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible setup: like [`PoissonSolver::new`] but refusing bad
    /// input with a [`SetupError`] instead of aborting the process.
    ///
    /// The decision is collective-safe: in a multi-rank world every rank
    /// returns the same `Err` variant (see [`SetupError`]).
    pub fn try_new(
        problem: PoissonProblem,
        decomp: Decomp,
        dev: D,
        comm: C,
    ) -> Result<Self, SetupError> {
        if comm.size() != decomp.ranks() {
            return Err(SetupError::DecompMismatch {
                comm: comm.size(),
                decomp: decomp.ranks(),
            });
        }
        let grid = BlockGrid::new(problem.discretize(), decomp, comm.rank());
        let ctx: RankCtx<T, D, C> = RankCtx::new(dev, comm, grid);

        // Assemble and globally normalise the RHS (Sec. IV: "we always
        // normalize the right-hand side").
        let b_host = local_rhs(&problem, &ctx.grid);
        let (b_scaled, b_norm) = Self::normalised(&ctx, &b_host)?;
        let b = Field::from_interior(&ctx.dev, &ctx.grid, &b_scaled);

        let ws = Workspace::new(&ctx.dev, &ctx.grid);
        let x = Field::zeros(&ctx.dev, &ctx.grid);
        let batch_ws = BatchWorkspace::new(&ctx.dev, &ctx.grid, 0);
        Ok(Self {
            ctx,
            ws,
            b,
            b_norm,
            x,
            problem,
            batch_ws,
            batch_xs: Vec::new(),
        })
    }

    /// Validate and globally normalise a local RHS slice.
    ///
    /// The per-rank size check rides inside the norm reduction as a
    /// validity flag, so a rank with a malformed slice never leaves its
    /// peers blocked in the collective: all ranks observe the flagged
    /// failure and return together.
    fn normalised(ctx: &RankCtx<T, D, C>, rhs_local: &[f64]) -> Result<(Vec<T>, f64), SetupError> {
        let expected: usize = ctx.grid.local_n.iter().product();
        let (local_sq, bad) = if rhs_local.len() == expected {
            (rhs_local.iter().map(|v| v * v).sum::<f64>(), 0.0)
        } else {
            (0.0, 1.0)
        };
        let mut sums = [T::from_f64(local_sq), T::from_f64(bad)];
        ctx.comm.all_reduce(&mut sums, ReduceOp::Sum);
        if sums[1].to_f64() != 0.0 {
            return Err(SetupError::RhsSizeMismatch {
                expected,
                got: rhs_local.len(),
            });
        }
        let b_norm = sums[0].to_f64().max(0.0).sqrt();
        if !(b_norm > 0.0 && b_norm.is_finite()) {
            return Err(SetupError::ZeroRhs);
        }
        let b_scaled: Vec<T> = rhs_local.iter().map(|&v| T::from_f64(v / b_norm)).collect();
        Ok((b_scaled, b_norm))
    }

    /// Validate and globally normalise a batch of local RHS slices with
    /// **one** reduction carrying every lane's squared norm and validity
    /// flag (the batched counterpart of
    /// [`normalised`](PoissonSolver::normalised); per-lane slots fold
    /// element-wise, so each lane's verdict and scale are bitwise those
    /// of a solo normalisation). Verdicts derive from reduced values, so
    /// every rank returns the same per-lane `Result`s.
    #[allow(clippy::type_complexity)]
    fn normalised_many(
        ctx: &RankCtx<T, D, C>,
        rhs_locals: &[&[f64]],
    ) -> Vec<Result<(Vec<T>, f64), SetupError>> {
        let expected: usize = ctx.grid.local_n.iter().product();
        let mut sums: Vec<T> = Vec::with_capacity(2 * rhs_locals.len());
        for rhs in rhs_locals {
            let (local_sq, bad) = if rhs.len() == expected {
                (rhs.iter().map(|v| v * v).sum::<f64>(), 0.0)
            } else {
                (0.0, 1.0)
            };
            sums.push(T::from_f64(local_sq));
            sums.push(T::from_f64(bad));
        }
        ctx.comm.all_reduce(&mut sums, ReduceOp::Sum);
        rhs_locals
            .iter()
            .enumerate()
            .map(|(l, rhs)| {
                if sums[2 * l + 1].to_f64() != 0.0 {
                    return Err(SetupError::RhsSizeMismatch {
                        expected,
                        got: rhs.len(),
                    });
                }
                let b_norm = sums[2 * l].to_f64().max(0.0).sqrt();
                if !(b_norm > 0.0 && b_norm.is_finite()) {
                    return Err(SetupError::ZeroRhs);
                }
                let b_scaled: Vec<T> = rhs.iter().map(|&v| T::from_f64(v / b_norm)).collect();
                Ok((b_scaled, b_norm))
            })
            .collect()
    }

    /// Solve one batch of right-hand sides concurrently over this rank's
    /// subdomain ([`krylov::bicgstab_solve_batch`]): every sweep, halo
    /// exchange and reduction is amortised across the batch, and each
    /// lane's iterates are bitwise those of a solo
    /// [`solve`](PoissonSolver::solve) against the same RHS.
    ///
    /// Lanes are validated and normalised collectively (one reduction);
    /// an invalid lane gets its [`SetupError`] while the remaining lanes
    /// ride the batch — the valid-lane set is identical on every rank.
    /// `cancels` is empty (no cancellation) or one optional token per
    /// input lane; `params.cancel` must be `None` (per-lane tokens
    /// replace it). Lane workspaces are allocated lazily and kept for
    /// the next batch.
    pub fn solve_batch(
        &mut self,
        rhs_locals: &[&[f64]],
        kind: SolverKind,
        opts: &SolverOptions,
        params: &SolveParams,
        cancels: &[Option<CancelToken>],
    ) -> Vec<Result<LaneSolve, SetupError>> {
        let nb = rhs_locals.len();
        assert!(
            cancels.is_empty() || cancels.len() == nb,
            "cancels must be empty or carry one optional token per lane"
        );
        if nb == 0 {
            return Vec::new();
        }
        let mut errs: Vec<Option<SetupError>> = Vec::with_capacity(nb);
        let mut b_fields: Vec<Field<T>> = Vec::new();
        let mut norms: Vec<f64> = Vec::new();
        for lane in Self::normalised_many(&self.ctx, rhs_locals) {
            match lane {
                Ok((scaled, b_norm)) => {
                    b_fields.push(Field::from_interior(&self.ctx.dev, &self.ctx.grid, &scaled));
                    norms.push(b_norm);
                    errs.push(None);
                }
                Err(e) => errs.push(Some(e)),
            }
        }

        let nv = b_fields.len();
        let outs = if nv > 0 {
            while self.batch_ws.lanes.len() < nv {
                self.batch_ws
                    .lanes
                    .push(Workspace::new(&self.ctx.dev, &self.ctx.grid));
            }
            while self.batch_xs.len() < nv {
                self.batch_xs
                    .push(Field::zeros(&self.ctx.dev, &self.ctx.grid));
            }
            for x in self.batch_xs.iter_mut().take(nv) {
                x.fill_zero();
            }
            let bs: Vec<&Field<T>> = b_fields.iter().collect();
            let mut xs: Vec<&mut Field<T>> = self.batch_xs.iter_mut().take(nv).collect();
            let mut boxes: Vec<_> = (0..nv)
                .map(|_| kind.build_preconditioner(&self.ctx, opts))
                .collect();
            let mut precs: Vec<_> = boxes.iter_mut().map(|p| &mut **p).collect();
            let lane_cancels: Vec<Option<CancelToken>> = if cancels.is_empty() {
                Vec::new()
            } else {
                (0..nb)
                    .filter(|&l| errs[l].is_none())
                    .map(|l| cancels[l].clone())
                    .collect()
            };
            bicgstab_solve_batch(
                &self.ctx,
                Scope::Global,
                &bs,
                &mut xs,
                &mut precs,
                &mut self.batch_ws,
                params,
                &lane_cancels,
            )
        } else {
            Vec::new()
        };

        let mut solved = outs.into_iter();
        let mut slot = 0usize;
        errs.into_iter()
            .map(|e| match e {
                Some(err) => Err(err),
                None => {
                    let outcome = solved.next().expect("one outcome per valid lane");
                    let rhs_norm = norms[slot];
                    let solution_local: Vec<f64> = self.batch_xs[slot]
                        .interior_to_host(&self.ctx.grid)
                        .into_iter()
                        .map(|v| v.to_f64() * rhs_norm)
                        .collect();
                    slot += 1;
                    Ok(LaneSolve {
                        outcome,
                        solution_local,
                        rhs_norm,
                    })
                }
            })
            .collect()
    }

    /// Swap in a fresh local right-hand side, keeping the grid, the
    /// operator, the Krylov [`Workspace`] and every device allocation of
    /// this solver: only the new RHS is re-normalised and offloaded (the
    /// warm path of a serving layer — the setup phase the paper
    /// amortises is skipped entirely).
    pub fn set_rhs(&mut self, rhs_local: &[f64]) -> Result<(), SetupError> {
        let (b_scaled, b_norm) = Self::normalised(&self.ctx, rhs_local)?;
        self.b = Field::from_interior(&self.ctx.dev, &self.ctx.grid, &b_scaled);
        self.b_norm = b_norm;
        Ok(())
    }

    /// [`set_rhs`](PoissonSolver::set_rhs) followed by
    /// [`solve`](PoissonSolver::solve): re-solve this rank's subdomain
    /// against a fresh RHS while reusing the constructed solver. The
    /// result is bitwise-identical to a freshly constructed solver fed
    /// the same inputs (the solve starts from a zero guess and every
    /// workspace value is overwritten before use).
    pub fn resolve_with_rhs(
        &mut self,
        rhs_local: &[f64],
        kind: SolverKind,
        opts: &SolverOptions,
        params: &SolveParams,
    ) -> Result<SolveOutcome, SetupError> {
        self.set_rhs(rhs_local)?;
        Ok(self.solve(kind, opts, params))
    }

    /// The rank context (device, communicator, grid, operator).
    pub fn ctx(&self) -> &RankCtx<T, D, C> {
        &self.ctx
    }

    /// The subdomain.
    pub fn grid(&self) -> &BlockGrid {
        &self.ctx.grid
    }

    /// The continuous problem.
    pub fn problem(&self) -> &PoissonProblem {
        &self.problem
    }

    /// Global RHS norm used for the normalisation.
    pub fn rhs_norm(&self) -> f64 {
        self.b_norm
    }

    /// Run one solver configuration from a zero initial guess.
    ///
    /// `params.tol` is relative to the RHS (the stored `b` is normalised).
    pub fn solve(
        &mut self,
        kind: SolverKind,
        opts: &SolverOptions,
        params: &SolveParams,
    ) -> SolveOutcome {
        self.x.fill_zero();
        let mut prec = kind.build_preconditioner(&self.ctx, opts);
        bicgstab_solve(
            &self.ctx,
            Scope::Global,
            &self.b,
            &mut self.x,
            &mut *prec,
            &mut self.ws,
            params,
        )
    }

    /// Download this rank's interior solution, un-normalised back to the
    /// original RHS scale (one D2H transfer).
    pub fn solution_local(&self) -> Vec<f64> {
        self.x
            .interior_to_host(&self.ctx.grid)
            .into_iter()
            .map(|v| v.to_f64() * self.b_norm)
            .collect()
    }

    /// Global relative L2 error and absolute max error against the
    /// problem's exact solution (collective call — every rank must enter).
    pub fn error_vs_exact(&self) -> (f64, f64) {
        let exact = local_exact(&self.problem, &self.ctx.grid);
        let got = self.solution_local();
        let mut err_sq = 0.0;
        let mut ref_sq = 0.0;
        let mut linf: f64 = 0.0;
        for (g, e) in got.iter().zip(&exact) {
            let d = g - e;
            err_sq += d * d;
            ref_sq += e * e;
            linf = linf.max(d.abs());
        }
        let mut sums = [T::from_f64(err_sq), T::from_f64(ref_sq)];
        self.ctx.comm.all_reduce(&mut sums, ReduceOp::Sum);
        let mut maxes = [T::from_f64(linf)];
        self.ctx.comm.all_reduce(&mut maxes, ReduceOp::Max);
        let l2_rel = (sums[0].to_f64() / sums[1].to_f64().max(f64::MIN_POSITIVE)).sqrt();
        (l2_rel, maxes[0].to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{paper_problem, unit_cube_dirichlet};
    use accel::{Recorder, Serial};
    use comm::{run_ranks, ReduceOrder, SelfComm, ThreadComm};

    fn solve_single(nodes: usize) -> (f64, f64, SolveOutcome) {
        let p = paper_problem(nodes);
        let mut solver: PoissonSolver<f64, _, _> = PoissonSolver::new(
            p,
            Decomp::single(),
            Serial::new(Recorder::disabled()),
            SelfComm::default(),
        );
        let out = solver.solve(
            SolverKind::BiCgsGNoCommCi,
            &SolverOptions {
                eig_min_factor: 10.0,
                ..Default::default()
            },
            &SolveParams {
                tol: 1e-12,
                max_iters: 20_000,
                record_history: false,
                ..Default::default()
            },
        );
        let (l2, linf) = solver.error_vs_exact();
        (l2, linf, out)
    }

    #[test]
    fn converges_to_manufactured_solution() {
        let (l2, _linf, out) = solve_single(13);
        assert!(out.converged, "{out:?}");
        assert!(l2 < 1e-3, "relative L2 error {l2}");
    }

    #[test]
    fn second_order_convergence() {
        // halving h must cut the discretisation error ~4x
        let (l2_coarse, _, out1) = solve_single(9);
        let (l2_fine, _, out2) = solve_single(17);
        assert!(out1.converged && out2.converged);
        let rate = l2_coarse / l2_fine;
        assert!(
            (3.0..5.5).contains(&rate),
            "expected ~4x error reduction, got {rate} ({l2_coarse} -> {l2_fine})"
        );
    }

    #[test]
    fn unit_cube_dirichlet_solves() {
        let p = unit_cube_dirichlet(17);
        let mut solver: PoissonSolver<f64, _, _> = PoissonSolver::new(
            p,
            Decomp::single(),
            Serial::new(Recorder::disabled()),
            SelfComm::default(),
        );
        let out = solver.solve(
            SolverKind::BiCgs,
            &SolverOptions::default(),
            &SolveParams {
                tol: 1e-11,
                max_iters: 10_000,
                record_history: false,
                ..Default::default()
            },
        );
        assert!(out.converged);
        let (l2, _) = solver.error_vs_exact();
        assert!(l2 < 5e-3, "relative L2 error {l2}");
    }

    #[test]
    fn distributed_solution_matches_exact() {
        run_ranks::<f64, _, _>(8, ReduceOrder::RankOrder, |comm| {
            let p = paper_problem(13);
            let mut solver: PoissonSolver<f64, Serial, ThreadComm<f64>> = PoissonSolver::new(
                p,
                Decomp::new([2, 2, 2]),
                Serial::new(Recorder::disabled()),
                comm,
            );
            let out = solver.solve(
                SolverKind::BiCgsGNoCommCi,
                &SolverOptions {
                    eig_min_factor: 10.0,
                    ..Default::default()
                },
                &SolveParams {
                    tol: 1e-12,
                    max_iters: 20_000,
                    record_history: false,
                    ..Default::default()
                },
            );
            assert!(out.converged);
            let (l2, _) = solver.error_vs_exact();
            assert!(l2 < 1e-3, "relative L2 error {l2}");
        });
    }

    #[test]
    fn rhs_norm_restores_scale() {
        // the normalised internal RHS must reproduce an un-normalised
        // solution: solving the same problem twice with RHS scaled by c
        // gives identical `solution_local` output because the problem is
        // identical — here we just assert the norm is positive and the
        // solution is not normalised-scale.
        let p = paper_problem(9);
        let mut solver: PoissonSolver<f64, _, _> = PoissonSolver::new(
            p,
            Decomp::single(),
            Serial::new(Recorder::disabled()),
            SelfComm::default(),
        );
        assert!(solver.rhs_norm() > 1.0, "paper RHS has a large norm");
        let out = solver.solve(
            SolverKind::BiCgsGNoCommCi,
            &SolverOptions {
                eig_min_factor: 10.0,
                ..Default::default()
            },
            &SolveParams {
                tol: 1e-12,
                max_iters: 20_000,
                record_history: false,
                ..Default::default()
            },
        );
        assert!(out.converged);
        let sol = solver.solution_local();
        let exact = crate::assemble::local_exact(solver.problem(), solver.grid());
        // un-normalised magnitudes match the exact solution's scale
        let max_sol = sol.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let max_exact = exact.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!((max_sol / max_exact - 1.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "decomposition must match")]
    fn mismatched_decomposition_rejected() {
        let p = paper_problem(9);
        let _: PoissonSolver<f64, _, _> = PoissonSolver::new(
            p,
            Decomp::new([2, 1, 1]),
            Serial::new(Recorder::disabled()),
            SelfComm::default(),
        );
    }

    #[test]
    fn try_new_reports_decomp_mismatch() {
        let p = paper_problem(9);
        let err = PoissonSolver::<f64, _, _>::try_new(
            p,
            Decomp::new([2, 1, 1]),
            Serial::new(Recorder::disabled()),
            SelfComm::default(),
        )
        .map(|_| ())
        .expect_err("one rank cannot satisfy a 2-rank decomposition");
        assert_eq!(err, SetupError::DecompMismatch { comm: 1, decomp: 2 });
    }

    #[test]
    fn try_new_reports_zero_rhs() {
        use crate::problem::PoissonProblem;
        use std::sync::Arc;
        // a genuinely zero RHS with zero boundary data: ‖b‖ = 0
        let p = PoissonProblem {
            lo: [0.0; 3],
            hi: [1.0; 3],
            nodes: [9; 3],
            bc: [[blockgrid::BcKind::Dirichlet; 2]; 3],
            rhs: Arc::new(|_, _, _| 0.0),
            dirichlet: Arc::new(|_, _, _| 0.0),
            neumann_dx: std::array::from_fn(|_| {
                Arc::new(|_: f64, _: f64, _: f64| 0.0) as crate::problem::SpaceFn
            }),
            exact: None,
        };
        let err = PoissonSolver::<f64, _, _>::try_new(
            p,
            Decomp::single(),
            Serial::new(Recorder::disabled()),
            SelfComm::default(),
        )
        .map(|_| ())
        .expect_err("a zero RHS must be refused");
        assert_eq!(err, SetupError::ZeroRhs);
    }

    #[test]
    fn set_rhs_rejects_wrong_length() {
        let p = paper_problem(9);
        let mut solver: PoissonSolver<f64, _, _> = PoissonSolver::new(
            p,
            Decomp::single(),
            Serial::new(Recorder::disabled()),
            SelfComm::default(),
        );
        let n: usize = solver.grid().local_n.iter().product();
        let err = solver.set_rhs(&vec![1.0; n + 1]).expect_err("wrong length");
        assert_eq!(
            err,
            SetupError::RhsSizeMismatch {
                expected: n,
                got: n + 1
            }
        );
        // the solver is still usable after the refusal
        let out = solver.solve(
            SolverKind::BiCgsGNoCommCi,
            &SolverOptions {
                eig_min_factor: 10.0,
                ..Default::default()
            },
            &SolveParams {
                tol: 1e-10,
                max_iters: 20_000,
                record_history: false,
                ..Default::default()
            },
        );
        assert!(out.converged);
    }

    /// The warm-path guarantee: a solver that already ran against one
    /// RHS and is re-aimed at another via `resolve_with_rhs` must
    /// reproduce a freshly constructed solver *bitwise* — same residual
    /// history, same solution bits.
    #[test]
    fn resolve_with_rhs_is_bitwise_identical_to_fresh_solver() {
        let kind = SolverKind::BiCgsGNoCommCi;
        let opts = SolverOptions {
            eig_min_factor: 10.0,
            ..Default::default()
        };
        let params = SolveParams {
            tol: 1e-12,
            max_iters: 20_000,
            record_history: true,
            ..Default::default()
        };

        // fresh solver, solved once against the paper RHS
        let p = paper_problem(11);
        let mut fresh: PoissonSolver<f64, _, _> = PoissonSolver::new(
            p.clone(),
            Decomp::single(),
            Serial::new(Recorder::disabled()),
            SelfComm::default(),
        );
        let fresh_out = fresh.solve(kind, &opts, &params);
        assert!(fresh_out.converged);

        // warm solver: first exhausted against a *different* RHS (the
        // paper RHS scaled — different normalisation, different iterates),
        // then re-aimed at the paper RHS via the swap path
        let mut warm: PoissonSolver<f64, _, _> = PoissonSolver::new(
            p.clone(),
            Decomp::single(),
            Serial::new(Recorder::disabled()),
            SelfComm::default(),
        );
        let rhs_paper = crate::assemble::local_rhs(&p, warm.grid());
        let rhs_other: Vec<f64> = rhs_paper.iter().map(|v| 3.5 * v + 1.0).collect();
        warm.set_rhs(&rhs_other).unwrap();
        let _ = warm.solve(kind, &opts, &params);
        let warm_out = warm
            .resolve_with_rhs(&rhs_paper, kind, &opts, &params)
            .unwrap();

        assert_eq!(fresh_out.iterations, warm_out.iterations);
        assert_eq!(
            fresh.rhs_norm().to_bits(),
            warm.rhs_norm().to_bits(),
            "re-normalisation must reproduce the fresh norm"
        );
        let hf: Vec<u64> = fresh_out
            .residual_history
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let hw: Vec<u64> = warm_out
            .residual_history
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(hf, hw, "residual histories diverge");
        let sf: Vec<u64> = fresh.solution_local().iter().map(|v| v.to_bits()).collect();
        let sw: Vec<u64> = warm.solution_local().iter().map(|v| v.to_bits()).collect();
        assert_eq!(sf, sw, "solutions diverge");
    }

    /// The facade-level batching guarantee: each lane of `solve_batch`
    /// reproduces a solo `resolve_with_rhs` against the same RHS
    /// bitwise — outcome, residual history, normalisation and the
    /// un-normalised solution — and the lane workspaces are reused by a
    /// following (wider or narrower) batch without perturbing it.
    #[test]
    fn solve_batch_lanes_match_solo_facade_bitwise() {
        let kind = SolverKind::BiCgsGNoCommCi;
        let opts = SolverOptions {
            eig_min_factor: 10.0,
            ..Default::default()
        };
        let params = SolveParams {
            tol: 1e-11,
            max_iters: 20_000,
            record_history: true,
            ..Default::default()
        };
        let p = paper_problem(9);
        let mut solver: PoissonSolver<f64, _, _> = PoissonSolver::new(
            p.clone(),
            Decomp::single(),
            Serial::new(Recorder::disabled()),
            SelfComm::default(),
        );
        let rhs_paper = crate::assemble::local_rhs(&p, solver.grid());
        let rhs_other: Vec<f64> = rhs_paper.iter().map(|v| 2.0 * v + 0.5).collect();
        let rhs_third: Vec<f64> = rhs_paper.iter().map(|v| -v + 1.5).collect();

        let mut solo = Vec::new();
        for rhs in [&rhs_paper, &rhs_other, &rhs_third] {
            let out = solver.resolve_with_rhs(rhs, kind, &opts, &params).unwrap();
            assert!(out.converged, "{out:?}");
            solo.push((out, solver.rhs_norm(), solver.solution_local()));
        }

        let lanes = solver.solve_batch(
            &[&rhs_paper, &rhs_other, &rhs_third],
            kind,
            &opts,
            &params,
            &[],
        );
        assert_eq!(lanes.len(), 3);
        for (l, (lane, (so, snorm, ssol))) in lanes.iter().zip(&solo).enumerate() {
            let lane = lane.as_ref().expect("valid lane");
            assert!(lane.outcome.converged, "lane {l}");
            assert_eq!(so.iterations, lane.outcome.iterations, "lane {l}");
            assert_eq!(snorm.to_bits(), lane.rhs_norm.to_bits(), "lane {l}: norm");
            let hs: Vec<u64> = so.residual_history.iter().map(|v| v.to_bits()).collect();
            let hb: Vec<u64> = lane
                .outcome
                .residual_history
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(hs, hb, "lane {l}: residual histories diverge");
            let ss: Vec<u64> = ssol.iter().map(|v| v.to_bits()).collect();
            let sb: Vec<u64> = lane.solution_local.iter().map(|v| v.to_bits()).collect();
            assert_eq!(ss, sb, "lane {l}: solutions diverge");
        }

        // A narrower follow-up batch reuses the (wider) lane cache and
        // still reproduces its solo solve bitwise.
        let again = solver.solve_batch(&[&rhs_other], kind, &opts, &params, &[]);
        let lane = again[0].as_ref().expect("valid lane");
        let (so, snorm, ssol) = &solo[1];
        assert_eq!(so.iterations, lane.outcome.iterations);
        assert_eq!(snorm.to_bits(), lane.rhs_norm.to_bits());
        let ss: Vec<u64> = ssol.iter().map(|v| v.to_bits()).collect();
        let sb: Vec<u64> = lane.solution_local.iter().map(|v| v.to_bits()).collect();
        assert_eq!(ss, sb, "cache reuse perturbed the lane");
    }

    /// Collective lane validation: a malformed lane gets its
    /// [`SetupError`] while the surviving lanes solve bitwise as solo —
    /// on every rank, with the verdicts riding one shared reduction.
    #[test]
    fn solve_batch_rejects_bad_lanes_without_poisoning_the_batch() {
        let kind = SolverKind::BiCgsGNoCommCi;
        let opts = SolverOptions {
            eig_min_factor: 10.0,
            ..Default::default()
        };
        let params = SolveParams {
            tol: 1e-10,
            max_iters: 20_000,
            record_history: false,
            ..Default::default()
        };
        let p = paper_problem(9);
        let mut solver: PoissonSolver<f64, _, _> = PoissonSolver::new(
            p.clone(),
            Decomp::single(),
            Serial::new(Recorder::disabled()),
            SelfComm::default(),
        );
        let rhs_paper = crate::assemble::local_rhs(&p, solver.grid());
        let n = rhs_paper.len();
        let solo = solver
            .resolve_with_rhs(&rhs_paper, kind, &opts, &params)
            .unwrap();
        let solo_sol = solver.solution_local();

        let zero = vec![0.0; n];
        let short = vec![1.0; n - 1];
        let lanes = solver.solve_batch(&[&zero, &rhs_paper, &short], kind, &opts, &params, &[]);
        assert_eq!(lanes[0].as_ref().unwrap_err(), &SetupError::ZeroRhs);
        assert_eq!(
            lanes[2].as_ref().unwrap_err(),
            &SetupError::RhsSizeMismatch {
                expected: n,
                got: n - 1
            }
        );
        let live = lanes[1].as_ref().expect("valid lane");
        assert!(live.outcome.converged);
        assert_eq!(live.outcome.iterations, solo.iterations);
        let ss: Vec<u64> = solo_sol.iter().map(|v| v.to_bits()).collect();
        let sb: Vec<u64> = live.solution_local.iter().map(|v| v.to_bits()).collect();
        assert_eq!(ss, sb, "bad neighbours perturbed the live lane");
    }

    /// Distributed facade batching: 8 ranks, two lanes, each lane
    /// bitwise its solo facade solve under rank-ordered reductions.
    #[test]
    fn distributed_solve_batch_matches_solo_facade() {
        let decomp = Decomp::new([2, 2, 2]);
        let kind = SolverKind::BiCgsGNoCommCi;
        let results = run_ranks::<f64, _, _>(8, ReduceOrder::RankOrder, move |comm| {
            let p = paper_problem(13);
            let opts = SolverOptions {
                eig_min_factor: 10.0,
                ..Default::default()
            };
            let params = SolveParams {
                tol: 1e-11,
                max_iters: 20_000,
                record_history: true,
                ..Default::default()
            };
            let mut solver: PoissonSolver<f64, Serial, ThreadComm<f64>> =
                PoissonSolver::new(p.clone(), decomp, Serial::new(Recorder::disabled()), comm);
            let rhs_paper = crate::assemble::local_rhs(&p, solver.grid());
            let rhs_other: Vec<f64> = rhs_paper.iter().map(|v| 1.5 * v - 0.25).collect();
            let mut solo = Vec::new();
            for rhs in [&rhs_paper, &rhs_other] {
                let out = solver.resolve_with_rhs(rhs, kind, &opts, &params).unwrap();
                solo.push((out, solver.solution_local()));
            }
            let lanes = solver.solve_batch(&[&rhs_paper, &rhs_other], kind, &opts, &params, &[]);
            (solo, lanes)
        });
        for (rank, (solo, lanes)) in results.iter().enumerate() {
            for (l, (lane, (so, ssol))) in lanes.iter().zip(solo).enumerate() {
                let lane = lane.as_ref().expect("valid lane");
                assert!(
                    so.converged && lane.outcome.converged,
                    "rank {rank} lane {l}"
                );
                assert_eq!(
                    so.iterations, lane.outcome.iterations,
                    "rank {rank} lane {l}"
                );
                let hs: Vec<u64> = so.residual_history.iter().map(|v| v.to_bits()).collect();
                let hb: Vec<u64> = lane
                    .outcome
                    .residual_history
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                assert_eq!(hs, hb, "rank {rank} lane {l}: histories diverge");
                let ss: Vec<u64> = ssol.iter().map(|v| v.to_bits()).collect();
                let sb: Vec<u64> = lane.solution_local.iter().map(|v| v.to_bits()).collect();
                assert_eq!(ss, sb, "rank {rank} lane {l}: solutions diverge");
            }
        }
    }

    /// The same warm-path guarantee distributed: 8 ranks, overlapped
    /// reductions, RHS swapped between two solves.
    #[test]
    fn distributed_resolve_with_rhs_matches_fresh_solver() {
        let decomp = Decomp::new([2, 2, 2]);
        let kind = SolverKind::BiCgsGNoCommCi;
        let results = run_ranks::<f64, _, _>(8, ReduceOrder::RankOrder, move |comm| {
            let p = paper_problem(13);
            let opts = SolverOptions {
                eig_min_factor: 10.0,
                ..Default::default()
            };
            let params = SolveParams {
                tol: 1e-12,
                max_iters: 20_000,
                record_history: true,
                ..Default::default()
            };
            let mut solver: PoissonSolver<f64, Serial, ThreadComm<f64>> =
                PoissonSolver::new(p.clone(), decomp, Serial::new(Recorder::disabled()), comm);
            let rhs_paper = crate::assemble::local_rhs(&p, solver.grid());
            let first = solver.solve(kind, &opts, &params);
            let again = solver
                .resolve_with_rhs(&rhs_paper, kind, &opts, &params)
                .unwrap();
            (first, again, solver.solution_local())
        });
        let sol0 = &results[0].2;
        for (rank, (first, again, _)) in results.iter().enumerate() {
            assert!(first.converged && again.converged, "rank {rank}");
            assert_eq!(first.iterations, again.iterations, "rank {rank}");
            let hf: Vec<u64> = first.residual_history.iter().map(|v| v.to_bits()).collect();
            let ha: Vec<u64> = again.residual_history.iter().map(|v| v.to_bits()).collect();
            assert_eq!(hf, ha, "rank {rank}: swap perturbed the iteration");
        }
        assert!(!sol0.is_empty());
    }
}
