//! Seeded-mutation guard: apply each fixture mutation to a scratch copy
//! of the *real* source file and assert spmdlint reports the expected
//! code at the expected line — so the analyzer cannot rot into a no-op
//! while the gate stays green.
//!
//! Line numbers are located dynamically (by searching for the mutated
//! statement), so the tests survive unrelated edits to the sources.

use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crates/spmdlint sits two levels below the repo root")
        .to_path_buf()
}

fn load(rel: &str) -> String {
    let path = repo_root().join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// 1-based line number of the first line containing `needle`.
fn line_of(text: &str, needle: &str) -> u32 {
    (text
        .lines()
        .position(|l| l.contains(needle))
        .unwrap_or_else(|| panic!("pattern {needle:?} not found — update the mutation test"))
        + 1) as u32
}

/// Blank the (1-based) line, preserving line numbering.
fn blank_line(text: &str, line: u32) -> String {
    text.lines()
        .enumerate()
        .map(|(i, l)| if i as u32 + 1 == line { "" } else { l })
        .collect::<Vec<_>>()
        .join("\n")
}

fn findings_with(rel: &str, text: &str, code: &str) -> Vec<(u32, String)> {
    spmdlint::analyze_source(rel, text)
        .into_iter()
        .filter(|f| f.code == code)
        .map(|f| (f.line, f.message))
        .collect()
}

#[test]
fn unmutated_sources_are_clean() {
    for rel in [
        "crates/krylov/src/bicgstab.rs",
        "crates/krylov/src/kernels.rs",
        "crates/krylov/src/mixed.rs",
        "crates/serve/src/service.rs",
        "crates/serve/src/scheduler.rs",
        "crates/comm/src/thread_comm.rs",
        "crates/blockgrid/src/halo.rs",
        "crates/stencil/src/laplacian.rs",
    ] {
        let findings = spmdlint::analyze_source(rel, &load(rel));
        assert!(
            findings.is_empty(),
            "{rel} must be finding-free before mutation: {findings:?}"
        );
    }
}

#[test]
fn dropped_reduce_finish_is_caught_spmd001() {
    let rel = "crates/krylov/src/bicgstab.rs";
    let text = load(rel);
    let finish = line_of(&text, "ctx.comm.reduce_finish(req, &mut red[..ng]);");
    let begin = line_of(&text, "let req = ctx.comm.iall_reduce_batch(&groups[..ng]");
    let mutant = blank_line(&text, finish);
    let found = findings_with(rel, &mutant, "SPMD001");
    assert!(
        found
            .iter()
            .any(|(l, m)| *l == begin && m.contains("reduce_finish")),
        "expected SPMD001 at the iall_reduce_batch begin line {begin}, got {found:?}"
    );
}

#[test]
fn dropped_halo_finish_is_caught_spmd001() {
    let rel = "crates/krylov/src/bicgstab.rs";
    let text = load(rel);
    let finish = line_of(
        &text,
        "ctx.halo.finish(&ctx.dev, &ctx.comm, pending, &mut ws.p_hat)",
    );
    let begin = line_of(
        &text,
        "let pending = ctx.halo.begin(&ctx.dev, &ctx.comm, &ws.p_hat)",
    );
    let mutant = blank_line(&text, finish);
    let found = findings_with(rel, &mutant, "SPMD001");
    assert!(
        found
            .iter()
            .any(|(l, m)| *l == begin && m.contains("PendingExchange")),
        "expected SPMD001 at the halo begin line {begin}, got {found:?}"
    );
}

#[test]
fn dropped_f32_halo_finish_is_caught_spmd001() {
    let rel = "crates/krylov/src/mixed.rs";
    let text = load(rel);
    let finish = line_of(
        &text,
        ".finish_f32(&ctx.dev, &ctx.comm, pending, &mut self.b32);",
    );
    let begin = line_of(
        &text,
        "let pending = ctx.halo.begin_f32(&ctx.dev, &ctx.comm, &self.b32);",
    );
    let mutant = blank_line(&text, finish);
    let found = findings_with(rel, &mutant, "SPMD001");
    assert!(
        found
            .iter()
            .any(|(l, m)| *l == begin && m.contains("PendingExchangeF32")),
        "expected SPMD001 at the begin_f32 line {begin}, got {found:?}"
    );
}

#[test]
fn dropped_dot_fold_is_caught_spmd001() {
    let rel = "crates/krylov/src/bicgstab.rs";
    let text = load(rel);
    let fold = line_of(
        &text,
        "let [s] = fold.fold(&ctx.dev, INFO_FOLD1, &ws.slots);",
    );
    let begin = line_of(&text, "let fold = ctx.lap.apply_shell_dot(");
    let mutant = blank_line(&text, fold);
    let found = findings_with(rel, &mutant, "SPMD001");
    assert!(
        found
            .iter()
            .any(|(l, m)| *l == begin && m.contains("PendingDotFold")),
        "expected SPMD001 at the apply_shell_dot line {begin}, got {found:?}"
    );
}

#[test]
fn rank_guarded_collective_is_caught_spmd002() {
    let rel = "crates/krylov/src/bicgstab.rs";
    let text = load(rel);
    // Mutation: make global_sum's reduction conditional on being rank 0.
    let guard = "if scope == Scope::Global {";
    let cond_line = line_of(&text, guard);
    let mutant = text.replacen(
        guard,
        "if scope == Scope::Global && ctx.comm.rank() == 0 {",
        1,
    );
    let found = findings_with(rel, &mutant, "SPMD002");
    assert!(
        found
            .iter()
            .any(|(_, m)| m.contains(&format!("line {cond_line}"))),
        "expected SPMD002 naming condition line {cond_line}, got {found:?}"
    );
}

#[test]
fn hot_path_allocation_is_caught_spmd003() {
    let rel = "crates/krylov/src/kernels.rs";
    let text = load(rel);
    // Mutation: allocate a scratch Vec at the top of axpy_inplace.
    let sig = line_of(&text, "pub fn axpy_inplace<T: Scalar, D: Device>(");
    let open = text
        .lines()
        .enumerate()
        .skip(sig as usize - 1)
        .find(|(_, l)| l.trim_end().ends_with('{'))
        .map(|(i, _)| i + 1)
        .expect("axpy_inplace opening brace");
    let inject = (open + 1) as u32;
    let mutant: Vec<&str> = text.lines().collect();
    let mut lines: Vec<String> = mutant.iter().map(|s| s.to_string()).collect();
    lines[open] = format!("    let scratch: Vec<T> = Vec::new(); {}", lines[open]);
    let mutant = lines.join("\n");
    let found = findings_with(rel, &mutant, "SPMD003");
    assert!(
        found
            .iter()
            .any(|(l, m)| *l == inject && m.contains("Vec::new")),
        "expected SPMD003 at injected line {inject}, got {found:?}"
    );
}

#[test]
fn fresh_unwrap_in_serve_is_caught_spmd004() {
    let rel = "crates/serve/src/service.rs";
    let text = load(rel);
    let anchor = line_of(&text, "fn worker_loop");
    let open = text
        .lines()
        .enumerate()
        .skip(anchor as usize - 1)
        .find(|(_, l)| l.trim_end().ends_with('{'))
        .map(|(i, _)| i + 1)
        .expect("worker_loop opening brace");
    let inject = (open + 1) as u32;
    let mut lines: Vec<String> = text.lines().map(|s| s.to_string()).collect();
    lines[open] = format!("    let _poke = None::<usize>.unwrap(); {}", lines[open]);
    let mutant = lines.join("\n");
    let found = findings_with(rel, &mutant, "SPMD004");
    assert!(
        found
            .iter()
            .any(|(l, m)| *l == inject && m.contains(".unwrap()")),
        "expected SPMD004 at injected line {inject}, got {found:?}"
    );
}

#[test]
fn stripped_must_use_is_caught_spmd006() {
    // Seeded mutation: a PendingDotFold declaration stripped of its
    // `#[must_use]` marker must produce a finding, and the marked form
    // must not — the lint reads the attribute, not just the type name.
    let dir = std::env::temp_dir().join(format!("spmdlint-mustuse-{}", std::process::id()));
    let file = dir.join("crates/stencil/src/laplacian.rs");
    std::fs::create_dir_all(file.parent().unwrap()).unwrap();

    std::fs::write(&file, "pub struct PendingDotFold<const NR: usize> {}\n").unwrap();
    let mut findings = Vec::new();
    spmdlint::legacy::audit_must_use(&dir, &mut findings);
    assert!(
        findings
            .iter()
            .any(|f| f.code == "SPMD006" && f.message.contains("PendingDotFold")),
        "unmarked mutant not caught: {findings:?}"
    );

    std::fs::write(
        &file,
        "#[must_use = \"fold the partials\"]\npub struct PendingDotFold<const NR: usize> {}\n",
    )
    .unwrap();
    let mut findings = Vec::new();
    spmdlint::legacy::audit_must_use(&dir, &mut findings);
    assert!(
        !findings
            .iter()
            .any(|f| f.message.contains("PendingDotFold")),
        "marked declaration flagged: {findings:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stripped_f32_must_use_is_caught_spmd006() {
    // Same mutation for the f32 halo handle: the registry entry must
    // bind to `PendingExchangeF32` specifically, not match it as a
    // substring hit on `PendingExchange`.
    let dir = std::env::temp_dir().join(format!("spmdlint-mustuse-f32-{}", std::process::id()));
    let file = dir.join("crates/blockgrid/src/halo.rs");
    std::fs::create_dir_all(file.parent().unwrap()).unwrap();

    std::fs::write(&file, "pub struct PendingExchangeF32 {}\n").unwrap();
    let mut findings = Vec::new();
    spmdlint::legacy::audit_must_use(&dir, &mut findings);
    assert!(
        findings
            .iter()
            .any(|f| f.code == "SPMD006" && f.message.contains("PendingExchangeF32")),
        "unmarked mutant not caught: {findings:?}"
    );

    std::fs::write(
        &file,
        "#[must_use = \"finish the exchange\"]\npub struct PendingExchangeF32 {}\n",
    )
    .unwrap();
    let mut findings = Vec::new();
    spmdlint::legacy::audit_must_use(&dir, &mut findings);
    assert!(
        !findings
            .iter()
            .any(|f| f.message.contains("PendingExchangeF32")),
        "marked declaration flagged: {findings:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
