//! Schema stability of the `--json` report: the hand-rolled writer must
//! round-trip through the vendored `serde_json` parser, field for field,
//! including pathological message content.

use spmdlint::{Finding, Report};

#[test]
fn report_round_trips_through_serde_json() {
    let nasty = "tricky \"quoted\"\nmessage\twith \\ escapes and control \u{1}";
    let report = Report {
        files_scanned: 3,
        findings: vec![
            Finding {
                code: "SPMD001",
                path: "crates/a/src/lib.rs".to_string(),
                line: 42,
                message: nasty.to_string(),
            },
            Finding {
                code: "SPMD004",
                path: "crates/serve/src/service.rs".to_string(),
                line: 7,
                message: "plain".to_string(),
            },
        ],
    };
    let text = spmdlint::to_json(&report);
    let v = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("writer output must be valid JSON: {e}\n{text}"));

    assert_eq!(
        v.get("schema").and_then(|s| s.as_str()),
        Some("spmdlint-findings-v1"),
        "schema tag is the compatibility contract"
    );
    assert_eq!(v.get("files_scanned").and_then(|n| n.as_u64()), Some(3));
    let findings = v
        .get("findings")
        .and_then(|f| f.as_array())
        .expect("findings array");
    assert_eq!(findings.len(), 2);

    let f0 = &findings[0];
    assert_eq!(f0.get("code").and_then(|c| c.as_str()), Some("SPMD001"));
    assert_eq!(
        f0.get("path").and_then(|p| p.as_str()),
        Some("crates/a/src/lib.rs")
    );
    assert_eq!(f0.get("line").and_then(|l| l.as_u64()), Some(42));
    assert_eq!(
        f0.get("message").and_then(|m| m.as_str()),
        Some(nasty),
        "escaping must be lossless through the round-trip"
    );
    assert_eq!(findings[1].get("line").and_then(|l| l.as_u64()), Some(7));
}

#[test]
fn empty_report_is_valid_json_with_empty_findings() {
    let report = Report {
        files_scanned: 0,
        findings: Vec::new(),
    };
    let v = serde_json::from_str(&spmdlint::to_json(&report)).unwrap();
    assert_eq!(
        v.get("findings").and_then(|f| f.as_array()).map(<[_]>::len),
        Some(0)
    );
}

#[test]
fn live_workspace_report_parses_and_matches_counts() {
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crates/spmdlint sits two levels below the repo root")
        .to_path_buf();
    let report = spmdlint::run_workspace(&root);
    let v = serde_json::from_str(&spmdlint::to_json(&report)).unwrap();
    assert_eq!(
        v.get("files_scanned").and_then(|n| n.as_u64()),
        Some(report.files_scanned as u64)
    );
    assert_eq!(
        v.get("findings").and_then(|f| f.as_array()).map(<[_]>::len),
        Some(report.findings.len())
    );
}
