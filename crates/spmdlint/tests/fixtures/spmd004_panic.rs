//! SPMD004 fixture: panic hygiene on the serve request path. The driver
//! analyzes this under a `crates/serve/src/` rel path.

pub fn request_path(x: Option<usize>, xs: &[usize]) -> usize {
    let a = x.unwrap(); // EXPECT: SPMD004
    let b = xs.first().expect("non-empty"); // EXPECT: SPMD004
    let c = xs[1]; // EXPECT: SPMD004
    if a + b + c > 3 {
        panic!("boom"); // EXPECT: SPMD004
    }
    a + b + c
}

pub fn typed_errors_are_clean(x: Option<usize>, xs: &[usize]) -> Result<usize, Error> {
    let a = x.ok_or(Error::Missing)?;
    let b = xs.first().copied().ok_or(Error::Empty)?;
    Ok(a + b)
}

pub fn annotated_is_clean(x: Option<usize>) -> usize {
    // LINT: panic-ok(fixture: invariant justified here)
    x.unwrap()
}
