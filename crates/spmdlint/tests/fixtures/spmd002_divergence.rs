//! SPMD002 fixture: collectives under rank-dependent control flow.

pub fn guarded_barrier(comm: &Comm) {
    let me = comm.rank();
    if me == 0 {
        comm.barrier(); // EXPECT: SPMD002
    }
}

pub fn taint_propagates_through_lets(comm: &Comm) {
    let me = comm.rank();
    let is_first = me == 0;
    while is_first {
        comm.all_reduce(&[1.0]); // EXPECT: SPMD002
    }
}

pub fn guarded_halo_exchange(ctx: &Ctx) {
    if ctx.comm.rank() > 0 {
        ctx.halo.exchange(&ctx.dev, &ctx.comm, &mut ctx.u); // EXPECT: SPMD002
    }
}

pub fn balanced_arms_are_clean(comm: &Comm) {
    if comm.rank() == 0 {
        comm.barrier();
    } else {
        comm.barrier();
    }
}

pub fn uniform_condition_is_clean(comm: &Comm, split: bool) {
    if split {
        comm.barrier();
        comm.all_reduce(&[1.0]);
    } else {
        comm.barrier();
        comm.all_reduce(&[2.0]);
    }
}

pub fn annotated_is_clean(comm: &Comm, cfg_rank: usize) {
    if cfg_rank == 0 {
        // LINT: collective-uniform(fixture: replicated config value)
        comm.barrier();
    }
}
