//! SPMD005 fixture: `unsafe` in a file outside the allowlist.

pub fn undocumented_peek(p: *const f64) -> f64 {
    unsafe { *p } // EXPECT: SPMD005
}

pub fn safe_code_is_clean(x: f64) -> f64 {
    x * 2.0
}
