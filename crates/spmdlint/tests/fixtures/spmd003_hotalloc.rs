//! SPMD003 fixture: allocation in a registered hot function. The driver
//! analyzes this under the rel path `crates/krylov/src/kernels.rs`, so
//! `axpy_inplace` and `dot` are on the hot registry and the free helper
//! below is not.

pub fn axpy_inplace(y: &mut [f64], a: f64, x: &[f64]) {
    let scratch: Vec<f64> = Vec::new(); // EXPECT: SPMD003
    let label = format!("axpy{}", y.len()); // EXPECT: SPMD003
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * *xi;
    }
    consume(scratch, label);
}

pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    let pairs = x.iter().zip(y).map(|(a, b)| a * b).collect(); // EXPECT: SPMD003
    sum(pairs)
}

pub fn unregistered_helper_may_allocate(n: usize) -> Vec<f64> {
    let mut out = Vec::new();
    out.resize(n, 0.0);
    out
}

pub fn scale(x: &mut [f64], a: f64) {
    // LINT: alloc-ok(fixture: one-off diagnostic path)
    let label = format!("scale by {a}");
    for xi in x.iter_mut() {
        *xi *= a;
    }
    consume_label(label);
}
