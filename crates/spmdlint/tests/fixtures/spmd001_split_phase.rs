//! SPMD001 fixture: split-phase begins that miss their finish on some
//! path. Analyzed under a non-test `src/` rel path by tests/fixtures.rs;
//! inline `EXPECT` markers name the exact line each finding anchors to.

pub fn dropped_on_early_return(comm: &Comm, flag: bool) -> f64 {
    let req = comm.iall_reduce(&[1.0]); // EXPECT: SPMD001
    if flag {
        return 0.0; // leaves `req` unfinished
    }
    let mut out = [0.0];
    comm.reduce_finish(req, &mut out);
    out[0]
}

pub fn finished_on_one_branch_only(ctx: &Ctx, split: bool) {
    let pending = ctx.halo.begin(&ctx.dev, &ctx.comm, &ctx.u); // EXPECT: SPMD001
    if split {
        ctx.halo.finish(&ctx.dev, &ctx.comm, pending, &mut ctx.u);
    }
    // fallthrough arm drops the exchange
}

pub fn dropped_entirely(lap: &Laplacian, dev: &Dev) {
    let fold = lap.apply_shell_dot(dev, INFO, &u, &mut w); // EXPECT: SPMD001
    other_work(dev);
}

pub fn properly_paired_is_clean(comm: &Comm, flag: bool) -> f64 {
    let req = comm.iall_reduce(&[1.0]);
    let mut out = [0.0];
    if flag {
        comm.reduce_finish(req, &mut out);
    } else {
        comm.reduce_finish(req, &mut out);
    }
    out[0]
}

pub fn annotated_is_clean(comm: &Comm) {
    // LINT: split-phase-ok(fixture: deliberately dropped request)
    let req = comm.iall_reduce(&[1.0]);
}
