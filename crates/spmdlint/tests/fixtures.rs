//! Fixture driver: every deliberately-broken file under
//! `tests/fixtures/` must produce *exactly* the findings marked inline
//! with `// EXPECT: <code>` — same stable code, same line, and nothing
//! else. The clean companion functions in each fixture double as
//! false-positive regression tests (balanced arms, typed errors,
//! annotation escapes).
//!
//! The rel path each fixture is analyzed under selects the per-path
//! registries (hot functions, serve request paths, unsafe allowlist);
//! `run_workspace` itself skips `tests/fixtures/`, so these files never
//! gate the real workspace.

use std::path::PathBuf;

fn fixture_text(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// `(line, code)` expectations parsed from `// EXPECT: <code>` markers.
fn expectations(text: &str) -> Vec<(u32, String)> {
    text.lines()
        .enumerate()
        .filter_map(|(i, l)| {
            l.split("EXPECT: ")
                .nth(1)
                .map(|code| ((i + 1) as u32, code.trim().to_string()))
        })
        .collect()
}

fn assert_exact(name: &str, rel: &str) {
    let text = fixture_text(name);
    let mut want = expectations(&text);
    assert!(
        !want.is_empty(),
        "fixture {name} has no EXPECT markers — not testing anything"
    );
    let mut got: Vec<(u32, String)> = spmdlint::analyze_source(rel, &text)
        .into_iter()
        .map(|f| (f.line, f.code.to_string()))
        .collect();
    want.sort();
    got.sort();
    assert_eq!(
        got, want,
        "fixture {name} (analyzed as {rel}): findings must match the EXPECT markers exactly"
    );
}

#[test]
fn spmd001_split_phase_fires_at_the_begin_line() {
    assert_exact("spmd001_split_phase.rs", "crates/krylov/src/fixture.rs");
}

#[test]
fn spmd002_divergence_fires_at_the_collective_line() {
    assert_exact("spmd002_divergence.rs", "crates/comm/src/fixture.rs");
}

#[test]
fn spmd003_hotalloc_fires_only_in_registered_functions() {
    // Analyzed as the real kernels.rs path so the fixture's
    // `axpy_inplace`/`dot`/`scale` land on the hot registry.
    assert_exact("spmd003_hotalloc.rs", "crates/krylov/src/kernels.rs");
}

#[test]
fn spmd004_panic_hygiene_fires_on_the_serve_path_only() {
    assert_exact("spmd004_panic.rs", "crates/serve/src/fixture.rs");
    // The same source outside crates/serve/src/ is not on a request
    // path and must be silent.
    let text = fixture_text("spmd004_panic.rs");
    let findings = spmdlint::analyze_source("crates/krylov/src/fixture.rs", &text);
    assert!(
        findings.is_empty(),
        "panic hygiene must be scoped to serve: {findings:?}"
    );
}

#[test]
fn spmd005_unsafe_outside_the_allowlist_fires() {
    assert_exact("spmd005_unsafe.rs", "crates/krylov/src/fixture.rs");
}
