//! SPMD001 — split-phase begin/finish pairing.
//!
//! Every split-phase begin (`iall_reduce`/`iall_reduce_batch` returning a
//! `ReduceRequest`, `iall_reduce_many` returning a `ReduceManyRequest`,
//! `halo.begin` returning a `PendingExchange`, `apply_shell_dot`
//! returning a `PendingDotFold`) must reach its finish (`reduce_finish`,
//! `reduce_finish_many`, `finish`, `fold`) on **every** control-flow path.
//! The walker interprets a function body statement-by-statement over the
//! token tree: `if`/`else` and `match` arms are merged with AND semantics
//! (finished only if finished on every arm), loops with OR, and `return`
//! / `?` are early-exit points that must not strand a live handle.
//!
//! Consumption is occurrence-based: once a handle is let-bound, any later
//! mention of the binding on a path counts as reaching the finish (the
//! finish call takes the handle by value, so mentioning it without
//! finishing does not compile). Handles that escape — tail expressions,
//! `return` values, results passed straight into another call, or stores
//! into existing places — are the caller's obligation and are not
//! tracked. Suppress a deliberate violation with
//! `// LINT: split-phase-ok(<reason>)` next to the begin site.

use crate::tree::{FnItem, Tree};
use crate::{Finding, SrcInfo};

/// One family of split-phase operations.
struct BeginClass {
    /// Method names that open the phase.
    begins: &'static [&'static str],
    /// Method name that closes it (for diagnostics).
    finish: &'static str,
    /// Handle type name (for diagnostics).
    handle: &'static str,
    /// When true, a begin only counts if the receiver chain mentions a
    /// halo-ish binding (`ctx.halo.begin(…)`), so unrelated `begin`
    /// methods (recorders, scope guards) are ignored.
    contextual_halo: bool,
}

const CLASSES: &[BeginClass] = &[
    BeginClass {
        begins: &["iall_reduce", "iall_reduce_batch"],
        finish: "reduce_finish",
        handle: "ReduceRequest",
        contextual_halo: false,
    },
    BeginClass {
        begins: &["iall_reduce_many"],
        finish: "reduce_finish_many",
        handle: "ReduceManyRequest",
        contextual_halo: false,
    },
    BeginClass {
        begins: &["begin"],
        finish: "finish",
        handle: "PendingExchange",
        contextual_halo: true,
    },
    BeginClass {
        begins: &["begin_f32"],
        finish: "finish_f32",
        handle: "PendingExchangeF32",
        contextual_halo: true,
    },
    BeginClass {
        begins: &["apply_shell_dot"],
        finish: "fold",
        handle: "PendingDotFold",
        contextual_halo: false,
    },
];

/// A live split-phase handle on the current path.
#[derive(Clone)]
struct Handle {
    var: String,
    class: usize,
    begin_line: u32,
    consumed: bool,
}

/// Run SPMD001 over every non-test function of a file.
pub fn check(src: &SrcInfo<'_>, fns: &[FnItem], findings: &mut Vec<Finding>) {
    for f in fns.iter().filter(|f| !f.is_test) {
        let mut walker = Walker { src, findings };
        let mut handles = Vec::new();
        walker.walk_block(&f.body, f.close_line, &mut handles);
    }
}

struct Walker<'a, 'b> {
    src: &'a SrcInfo<'a>,
    findings: &'b mut Vec<Finding>,
}

impl Walker<'_, '_> {
    fn emit(&mut self, line: u32, message: String) {
        self.findings.push(Finding {
            code: "SPMD001",
            path: self.src.rel.to_string(),
            line,
            message,
        });
    }

    /// Report every live unconsumed handle stranded by an early exit at
    /// `line`, then mark them reported so each handle yields one finding.
    fn early_exit(&mut self, handles: &mut [Handle], line: u32, what: &str) {
        for h in handles {
            if h.consumed {
                continue;
            }
            h.consumed = true;
            let c = &CLASSES[h.class];
            self.emit(
                h.begin_line,
                format!(
                    "{} `{}` begun here (line {}) is not {}ed on the {} path at line {}",
                    c.handle, h.var, h.begin_line, c.finish, what, line
                ),
            );
        }
    }

    /// Interpret one block (function body, branch arm, nested block).
    /// Handles created inside the block are checked against its closing
    /// line and removed; consumption of inherited handles is left in
    /// `handles` for the caller to merge.
    fn walk_block(&mut self, items: &[Tree], close_line: u32, handles: &mut Vec<Handle>) {
        let baseline = handles.len();
        let mut i = 0;
        // Per-statement state.
        let mut pending_let: Option<Option<String>> = None; // Some(var) / let _
        let mut last_begin: Option<(usize, u32)> = None; // (class, line)
        let mut assigned = false;
        let mut returning = false;

        while i < items.len() {
            let t = &items[i];
            match t {
                Tree::Leaf(tok) if tok.is_punct(b';') => {
                    if returning {
                        self.early_exit(handles, tok.line(), "return");
                    } else if let Some((class, bline)) = last_begin {
                        match &pending_let {
                            Some(Some(var)) => {
                                if !self.src.annotated(bline, "split-phase-ok") {
                                    handles.push(Handle {
                                        var: var.clone(),
                                        class,
                                        begin_line: bline,
                                        consumed: false,
                                    });
                                }
                            }
                            Some(None) => {
                                let c = &CLASSES[class];
                                if !self.src.annotated(bline, "split-phase-ok") {
                                    self.emit(
                                        bline,
                                        format!(
                                            "{} from `{}` is discarded via `let _` — \
                                             call `{}` instead",
                                            c.handle, c.begins[0], c.finish
                                        ),
                                    );
                                }
                            }
                            None if assigned => {} // stored into an existing place
                            None => {
                                let c = &CLASSES[class];
                                if !self.src.annotated(bline, "split-phase-ok") {
                                    self.emit(
                                        bline,
                                        format!(
                                            "{} returned by this call is dropped in statement \
                                             position — it must reach `{}`",
                                            c.handle, c.finish
                                        ),
                                    );
                                }
                            }
                        }
                    }
                    pending_let = None;
                    last_begin = None;
                    assigned = false;
                    returning = false;
                    i += 1;
                }
                Tree::Leaf(tok) if tok.is_punct(b',') => {
                    // Value handed to an enclosing call/aggregate: escape.
                    last_begin = None;
                    i += 1;
                }
                Tree::Leaf(tok) if tok.is_punct(b'?') => {
                    self.early_exit(handles, tok.line(), "`?` early-exit");
                    i += 1;
                }
                Tree::Leaf(tok) if tok.is_punct(b'=') => {
                    let next_eq =
                        matches!(items.get(i + 1), Some(n) if n.is_punct(b'=') || n.is_punct(b'>'));
                    let prev_op = i > 0
                        && matches!(&items[i - 1], Tree::Leaf(p) if p.ident().is_none()
                            && !p.is_punct(b';') && !p.is_punct(b',') && !p.is_punct(b'{'));
                    if !next_eq && !prev_op && pending_let.is_none() {
                        assigned = true;
                    }
                    i += 1;
                }
                Tree::Leaf(tok) if tok.is_ident("let") => {
                    i = self.handle_let(items, i, handles, &mut pending_let);
                }
                Tree::Leaf(tok) if tok.is_ident("return") => {
                    returning = true;
                    i += 1;
                }
                Tree::Leaf(tok) if tok.is_ident("if") => {
                    i = self.handle_branches(items, i + 1, handles, false);
                }
                Tree::Leaf(tok) if tok.is_ident("match") => {
                    i = self.handle_match(items, i + 1, handles);
                }
                Tree::Leaf(tok) if tok.is_ident("while") || tok.is_ident("for") => {
                    i = self.handle_loop(items, i + 1, handles, true);
                }
                Tree::Leaf(tok) if tok.is_ident("loop") => {
                    i = self.handle_loop(items, i + 1, handles, false);
                }
                Tree::Leaf(tok) if tok.is_ident("fn") || tok.is_ident("macro_rules") => {
                    // Nested item: a different scope — skip its body.
                    i = skip_item(items, i);
                }
                Tree::Leaf(tok) if tok.is_ident("else") => {
                    // `let … else { diverge }`: walk for findings; state
                    // after the statement is the non-diverging path.
                    if let Some(Tree::Group {
                        items: g,
                        close_line: cl,
                        ..
                    }) = items.get(i + 1)
                    {
                        let mut clone = handles.to_vec();
                        self.walk_block(g, *cl, &mut clone);
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                Tree::Leaf(tok) => {
                    if let Some(name) = tok.ident() {
                        if let Some(h) = handles.iter_mut().find(|h| h.var == name) {
                            h.consumed = true;
                        }
                        if !returning {
                            if let Some(class) = begin_class_at(items, i) {
                                last_begin = Some((class, tok.line()));
                            }
                        }
                    }
                    i += 1;
                }
                Tree::Group {
                    items: g,
                    close_line: cl,
                    ..
                } => {
                    // Call arguments, plain/unsafe blocks, aggregates:
                    // sequential semantics.
                    self.walk_block(g, *cl, handles);
                    i += 1;
                }
            }
        }

        if returning {
            self.early_exit(handles, close_line, "return");
        }
        // `last_begin` still set: tail expression — the block's value,
        // consumed by whoever evaluates the block. Escape, not a finding.
        for h in &handles[baseline..] {
            if !h.consumed {
                let c = &CLASSES[h.class];
                self.emit(
                    h.begin_line,
                    format!(
                        "{} `{}` begun here (line {}) never reaches `{}` on the fall-through \
                         path before its scope ends at line {}",
                        c.handle, h.var, h.begin_line, c.finish, close_line
                    ),
                );
            }
        }
        handles.truncate(baseline);
    }

    /// Parse a `let` statement's pattern: shadow-check + extract the
    /// bound variable, then resume the dispatcher just after the `=` (or
    /// at the `;` for `let x;`).
    fn handle_let(
        &mut self,
        items: &[Tree],
        at: usize,
        handles: &mut [Handle],
        pending_let: &mut Option<Option<String>>,
    ) -> usize {
        let mut var: Option<String> = None;
        let mut j = at + 1;
        while j < items.len() {
            match &items[j] {
                Tree::Leaf(t) if t.is_punct(b'=') => {
                    // `let p = …` — stop unless this is `==`.
                    if !matches!(items.get(j + 1), Some(n) if n.is_punct(b'=')) {
                        j += 1;
                        break;
                    }
                    j += 2;
                }
                Tree::Leaf(t) if t.is_punct(b';') => break,
                Tree::Leaf(t) if t.is_punct(b':') => {
                    // Type ascription: skip to `=`/`;` without treating
                    // type names as pattern bindings.
                    while j < items.len() && !items[j].is_punct(b'=') && !items[j].is_punct(b';') {
                        j += 1;
                    }
                }
                Tree::Leaf(t) => {
                    if let Some(name) = t.ident() {
                        if !matches!(name, "mut" | "ref" | "box") {
                            // Rebinding an unconsumed handle's name loses
                            // the old handle.
                            if let Some(h) =
                                handles.iter_mut().find(|h| h.var == name && !h.consumed)
                            {
                                h.consumed = true;
                                let c = &CLASSES[h.class];
                                let (bline, hvar) = (h.begin_line, h.var.clone());
                                if !self.src.annotated(bline, "split-phase-ok") {
                                    self.emit(
                                        bline,
                                        format!(
                                            "{} `{}` begun here (line {}) is shadowed by a new \
                                             `let {}` at line {} before `{}`",
                                            c.handle,
                                            hvar,
                                            bline,
                                            hvar,
                                            t.line(),
                                            c.finish
                                        ),
                                    );
                                }
                            }
                            if var.is_none() {
                                var = Some(name.to_string());
                            }
                        }
                    }
                    j += 1;
                }
                Tree::Group { .. } => j += 1, // tuple/struct pattern pieces
            }
        }
        *pending_let = Some(var);
        j
    }

    /// Walk an `if`/`else if`/`else` chain starting at the condition.
    /// Returns the index past the chain. `as_loop` reuses this for loop
    /// headers (single body, OR merge).
    fn handle_branches(
        &mut self,
        items: &[Tree],
        cond_start: usize,
        handles: &mut [Handle],
        _as_loop: bool,
    ) -> usize {
        let Some((body_idx, _)) = self.walk_header(items, cond_start, handles) else {
            return cond_start;
        };
        let mut branch_flags: Vec<Vec<bool>> = Vec::new();
        let mut k = body_idx;
        let mut has_else = false;
        while let Some(Tree::Group {
            items: g,
            close_line: cl,
            ..
        }) = items.get(k)
        {
            let mut clone = handles.to_vec();
            self.walk_block(g, *cl, &mut clone);
            branch_flags.push(clone.iter().map(|h| h.consumed).collect());
            if matches!(items.get(k + 1), Some(t) if t.is_ident("else")) {
                match items.get(k + 2) {
                    Some(Tree::Group { .. }) => {
                        has_else = true;
                        k += 2;
                        // final else: loop once more to walk it, then stop
                        let Some(Tree::Group {
                            items: g,
                            close_line: cl,
                            ..
                        }) = items.get(k)
                        else {
                            break;
                        };
                        let mut clone = handles.to_vec();
                        self.walk_block(g, *cl, &mut clone);
                        branch_flags.push(clone.iter().map(|h| h.consumed).collect());
                        k += 1;
                        break;
                    }
                    Some(t) if t.is_ident("if") => match self.walk_header(items, k + 3, handles) {
                        Some((next_body, _)) => k = next_body,
                        None => {
                            k += 3;
                            break;
                        }
                    },
                    _ => {
                        k += 1;
                        break;
                    }
                }
            } else {
                k += 1;
                break;
            }
        }
        if !has_else {
            branch_flags.push(handles.iter().map(|h| h.consumed).collect());
        }
        merge_all(handles, &branch_flags);
        k
    }

    /// Walk a `match` expression starting at the scrutinee.
    fn handle_match(
        &mut self,
        items: &[Tree],
        scrut_start: usize,
        handles: &mut [Handle],
    ) -> usize {
        let Some((body_idx, _)) = self.walk_header(items, scrut_start, handles) else {
            return scrut_start;
        };
        let Some(Tree::Group {
            items: g,
            close_line: group_close,
            ..
        }) = items.get(body_idx)
        else {
            return body_idx;
        };
        let mut branch_flags: Vec<Vec<bool>> = Vec::new();
        let mut p = 0;
        while p < g.len() {
            // Pattern (and optional guard) up to the top-level `=>`.
            let mut arrow = None;
            let mut q = p;
            while q + 1 < g.len() {
                if g[q].is_punct(b'=') && g[q + 1].is_punct(b'>') {
                    arrow = Some(q);
                    break;
                }
                q += 1;
            }
            let Some(arrow) = arrow else { break };
            let body = arrow + 2;
            let mut clone = handles.to_vec();
            let next = match g.get(body) {
                Some(Tree::Group {
                    delim: b'{',
                    items: arm,
                    close_line: cl,
                    ..
                }) => {
                    self.walk_block(arm, *cl, &mut clone);
                    let mut n = body + 1;
                    if matches!(g.get(n), Some(t) if t.is_punct(b',')) {
                        n += 1;
                    }
                    n
                }
                Some(_) => {
                    // Expression arm: up to the next top-level `,`.
                    let mut r = body;
                    while r < g.len() && !g[r].is_punct(b',') {
                        r += 1;
                    }
                    self.walk_block(&g[body..r], *group_close, &mut clone);
                    r + 1
                }
                None => break,
            };
            branch_flags.push(clone.iter().map(|h| h.consumed).collect());
            p = next;
        }
        if !branch_flags.is_empty() {
            merge_all(handles, &branch_flags);
        }
        body_idx + 1
    }

    /// Walk a loop (`while`/`for`: body may run zero times — but we still
    /// merge with OR, accepting the approximation; `loop`: runs at least
    /// once). Returns the index past the body.
    fn handle_loop(
        &mut self,
        items: &[Tree],
        header_start: usize,
        handles: &mut [Handle],
        has_header: bool,
    ) -> usize {
        let body_idx = if has_header {
            match self.walk_header(items, header_start, handles) {
                Some((idx, _)) => idx,
                None => return header_start,
            }
        } else {
            header_start
        };
        let Some(Tree::Group {
            items: g,
            close_line: cl,
            ..
        }) = items.get(body_idx)
        else {
            return body_idx;
        };
        let mut clone = handles.to_vec();
        self.walk_block(g, *cl, &mut clone);
        for (h, c) in handles.iter_mut().zip(&clone) {
            h.consumed |= c.consumed;
        }
        body_idx + 1
    }

    /// Consume occurrences in a condition/scrutinee/loop header: the
    /// tokens up to the first top-level `{` group that is not a pattern
    /// (i.e. not followed by `=`). Returns `(body_index, header_len)`.
    fn walk_header(
        &mut self,
        items: &[Tree],
        start: usize,
        handles: &mut [Handle],
    ) -> Option<(usize, usize)> {
        let mut k = start;
        while k < items.len() {
            if items[k].is_group(b'{') && !matches!(items.get(k + 1), Some(n) if n.is_punct(b'=')) {
                // Consume identifier occurrences in the header.
                let header = &items[start..k];
                consume_occurrences(header, handles);
                return Some((k, k - start));
            }
            if items[k].is_punct(b';') {
                return None; // malformed — bail out of this construct
            }
            k += 1;
        }
        None
    }
}

/// Mark every handle mentioned anywhere in `items` as consumed.
fn consume_occurrences(items: &[Tree], handles: &mut [Handle]) {
    for t in items {
        match t {
            Tree::Leaf(tok) => {
                if let Some(name) = tok.ident() {
                    if let Some(h) = handles.iter_mut().find(|h| h.var == name) {
                        h.consumed = true;
                    }
                }
            }
            Tree::Group { items, .. } => consume_occurrences(items, handles),
        }
    }
}

/// AND-merge branch consumption flags back into the inherited handles.
fn merge_all(handles: &mut [Handle], branch_flags: &[Vec<bool>]) {
    for (idx, h) in handles.iter_mut().enumerate() {
        h.consumed = branch_flags
            .iter()
            .all(|f| f.get(idx).copied().unwrap_or(true));
    }
}

/// Skip a nested `fn`/`macro_rules` item: advance past its body group.
fn skip_item(items: &[Tree], at: usize) -> usize {
    let mut j = at + 1;
    while j < items.len() {
        if items[j].is_punct(b';') {
            return j + 1;
        }
        if items[j].is_group(b'{') {
            return j + 1;
        }
        j += 1;
    }
    j
}

/// Classify `items[at]` as a split-phase begin call: the identifier must
/// be invoked (`.name(…)` / `::name(…)`) and, for contextual classes,
/// the receiver chain must mention a halo-ish binding.
fn begin_class_at(items: &[Tree], at: usize) -> Option<usize> {
    let name = items[at].ident()?;
    let class = CLASSES.iter().position(|c| c.begins.contains(&name))?;
    // Must be a call: previous sibling `.`/`:` and next a `(…)` group.
    let called = at > 0
        && (items[at - 1].is_punct(b'.') || items[at - 1].is_punct(b':'))
        && matches!(items.get(at + 1), Some(g) if g.is_group(b'('));
    if !called {
        return None;
    }
    if CLASSES[class].contextual_halo && !receiver_is_halo(items, at) {
        return None;
    }
    Some(class)
}

/// Walk the receiver chain left of `.begin(` looking for a halo-ish
/// name: `ctx.halo.begin(…)`, `self.exchange.begin(…)`.
fn receiver_is_halo(items: &[Tree], at: usize) -> bool {
    let mut j = at.wrapping_sub(1); // the `.`
    while j > 0 {
        j -= 1;
        match &items[j] {
            Tree::Leaf(t) => {
                if let Some(name) = t.ident() {
                    let lower = name.to_ascii_lowercase();
                    if lower.contains("halo") || lower.contains("exchange") {
                        return true;
                    }
                } else if !t.is_punct(b'.') {
                    return false;
                }
            }
            Tree::Group { delim: b'(', .. } | Tree::Group { delim: b'[', .. } => continue,
            Tree::Group { .. } => return false,
        }
    }
    false
}
