//! SPMD002 — collectives under rank-dependent control flow.
//!
//! Every rank must execute the same collective sequence, or the program
//! deadlocks (some ranks wait in a barrier the others never enter). The
//! pass taints rank-derived bindings — `rank`, `is_root`, anything let-
//! bound from a tainted initializer — and flags collective calls that
//! sit lexically inside an `if`/`match`/loop whose condition or
//! scrutinee mentions a tainted name.
//!
//! Two escapes keep the signal clean:
//!
//! - **Balanced arms**: when every arm of a rank-dependent `if`/`else`
//!   or `match` performs the *same* collective sequence (e.g. a barrier
//!   in both arms), all ranks still agree — no finding.
//! - **Annotation**: `// LINT: collective-uniform(<reason>)` on or just
//!   above the call line vouches that the condition is rank-uniform in
//!   practice (e.g. a config flag replicated on every rank).

use std::collections::HashSet;

use crate::tree::{FnItem, Tree};
use crate::{Finding, SrcInfo};

/// Names whose *call* is a collective: all ranks must reach it together.
const COLLECTIVES: &[&str] = &[
    "all_reduce",
    "iall_reduce",
    "iall_reduce_batch",
    "iall_reduce_many",
    "reduce_batch",
    "reduce_finish",
    "reduce_finish_many",
    "barrier",
];

/// Collectives that need a halo-ish receiver to count (`begin`, `finish`
/// and `exchange` are too generic otherwise).
const HALO_COLLECTIVES: &[&str] = &["begin", "finish", "exchange", "exchange_batch"];

/// Run SPMD002 over every function of a file (test code included — the
/// balanced-arms rule keeps legitimate rank-scripted tests quiet).
pub fn check(src: &SrcInfo<'_>, fns: &[FnItem], findings: &mut Vec<Finding>) {
    for f in fns {
        let tainted = tainted_names(&f.body);
        walk(src, &f.body, &tainted, None, findings);
    }
}

/// Seed + propagate the rank-taint set through `let` initializers.
fn tainted_names(body: &[Tree]) -> HashSet<String> {
    let mut tainted: HashSet<String> = HashSet::new();
    let mut lets: Vec<(Vec<String>, Vec<String>)> = Vec::new(); // (pattern, init idents)
    collect_lets(body, &mut lets);
    // Two passes are enough for the chains this codebase builds
    // (`let me = comm.rank(); let root = me == 0;`).
    for _ in 0..2 {
        for (pattern, init) in &lets {
            if init.iter().any(|n| is_rank_name(n) || tainted.contains(n)) {
                for p in pattern {
                    tainted.insert(p.clone());
                }
            }
        }
    }
    tainted
}

/// A name that denotes the calling rank's identity.
fn is_rank_name(name: &str) -> bool {
    name == "rank" || name == "is_root" || name == "myrank" || name.ends_with("_rank")
}

/// Collect `(pattern idents, initializer idents)` for every `let` in the
/// body, recursively.
fn collect_lets(items: &[Tree], out: &mut Vec<(Vec<String>, Vec<String>)>) {
    let mut i = 0;
    while i < items.len() {
        if items[i].is_ident("let") {
            let mut pattern = Vec::new();
            let mut j = i + 1;
            while j < items.len() && !items[j].is_punct(b'=') && !items[j].is_punct(b';') {
                collect_idents(&items[j..j + 1], &mut pattern);
                j += 1;
            }
            if j < items.len() && items[j].is_punct(b'=') {
                let mut init = Vec::new();
                let mut k = j + 1;
                while k < items.len() && !items[k].is_punct(b';') {
                    collect_idents(&items[k..k + 1], &mut init);
                    k += 1;
                }
                pattern.retain(|p| !matches!(p.as_str(), "mut" | "ref" | "box"));
                out.push((pattern, init));
                i = k;
                continue;
            }
            i = j;
        } else if let Tree::Group { items: g, .. } = &items[i] {
            collect_lets(g, out);
            i += 1;
        } else {
            i += 1;
        }
    }
}

fn collect_idents(items: &[Tree], out: &mut Vec<String>) {
    for t in items {
        match t {
            Tree::Leaf(tok) => {
                if let Some(n) = tok.ident() {
                    out.push(n.to_string());
                }
            }
            Tree::Group { items, .. } => collect_idents(items, out),
        }
    }
}

/// Recursive walk flagging collectives inside rank-divergent regions.
/// `diverged` carries the line of the enclosing rank-dependent condition.
fn walk(
    src: &SrcInfo<'_>,
    items: &[Tree],
    tainted: &HashSet<String>,
    diverged: Option<u32>,
    findings: &mut Vec<Finding>,
) {
    let mut i = 0;
    while i < items.len() {
        let t = &items[i];
        if t.is_ident("if") || t.is_ident("while") {
            let (header_end, body_idx) = header_span(items, i + 1);
            let header = &items[i + 1..header_end];
            let cond_tainted = mentions_tainted(header, tainted);
            let cond_line = t.line();
            let (arms, past, has_else) = branch_arms(items, body_idx);
            let inner = if cond_tainted && !t.is_ident("while") && arms_balanced(&arms, has_else) {
                diverged // balanced: all ranks agree, keep outer context
            } else if cond_tainted {
                Some(cond_line)
            } else {
                diverged
            };
            for (arm, _) in &arms {
                walk(src, arm, tainted, inner, findings);
            }
            i = past;
        } else if t.is_ident("for") {
            let (header_end, body_idx) = header_span(items, i + 1);
            let header = &items[i + 1..header_end];
            let inner = if mentions_tainted(header, tainted) {
                Some(t.line())
            } else {
                diverged
            };
            if let Some(Tree::Group { items: g, .. }) = items.get(body_idx) {
                walk(src, g, tainted, inner, findings);
                i = body_idx + 1;
            } else {
                i += 1;
            }
        } else if t.is_ident("match") {
            let (header_end, body_idx) = header_span(items, i + 1);
            let header = &items[i + 1..header_end];
            let cond_tainted = mentions_tainted(header, tainted);
            let cond_line = t.line();
            if let Some(Tree::Group { items: g, .. }) = items.get(body_idx) {
                let arms = match_arms(g);
                let seqs: Vec<Vec<String>> = arms
                    .iter()
                    .map(|a| {
                        let mut s = Vec::new();
                        collective_sequence(a, &mut s);
                        s
                    })
                    .collect();
                let balanced = !seqs.is_empty() && seqs.iter().all(|s| *s == seqs[0]);
                let inner = if cond_tainted && !balanced {
                    Some(cond_line)
                } else {
                    diverged
                };
                for a in &arms {
                    walk(src, a, tainted, inner, findings);
                }
                i = body_idx + 1;
            } else {
                i += 1;
            }
        } else if let Some(name) = collective_at(items, i) {
            if let Some(cond_line) = diverged {
                let line = t.line();
                if !src.annotated(line, "collective-uniform") {
                    findings.push(Finding {
                        code: "SPMD002",
                        path: src.rel.to_string(),
                        line,
                        message: format!(
                            "collective `{name}` executes under a rank-dependent condition \
                             (line {cond_line}); all ranks must reach it or none — \
                             restructure, balance the arms, or annotate \
                             `// LINT: collective-uniform(<reason>)`"
                        ),
                    });
                }
            }
            i += 1;
        } else if let Tree::Group { items: g, .. } = t {
            walk(src, g, tainted, diverged, findings);
            i += 1;
        } else {
            i += 1;
        }
    }
}

/// `(header_end, body_idx)`: tokens `[start..header_end)` are the
/// condition; `body_idx` indexes the first non-pattern `{` group.
fn header_span(items: &[Tree], start: usize) -> (usize, usize) {
    let mut k = start;
    while k < items.len() {
        if items[k].is_group(b'{') && !matches!(items.get(k + 1), Some(n) if n.is_punct(b'=')) {
            return (k, k);
        }
        if items[k].is_punct(b';') {
            break;
        }
        k += 1;
    }
    (k, k)
}

/// Collect the arm blocks of an `if`/`else if`/`else` chain starting at
/// the `then` block. Walks nested `else if` headers for their own taint
/// (they are re-examined by the caller's recursive walk of each arm).
/// Returns `(arms, index_past_chain, has_final_else)`.
fn branch_arms(items: &[Tree], body_idx: usize) -> (Vec<(&[Tree], u32)>, usize, bool) {
    let mut arms: Vec<(&[Tree], u32)> = Vec::new();
    let mut k = body_idx;
    let mut has_else = false;
    while let Some(Tree::Group {
        delim: b'{',
        items: g,
        open_line,
        ..
    }) = items.get(k)
    {
        arms.push((g, *open_line));
        if matches!(items.get(k + 1), Some(t) if t.is_ident("else")) {
            match items.get(k + 2) {
                Some(Tree::Group { .. }) => {
                    has_else = true;
                    k += 2;
                    // final else block: captured by the loop head above
                    if let Some(Tree::Group {
                        delim: b'{',
                        items: g,
                        open_line,
                        ..
                    }) = items.get(k)
                    {
                        arms.push((g, *open_line));
                    }
                    k += 1;
                    break;
                }
                Some(t) if t.is_ident("if") => {
                    let (_, next_body) = header_span(items, k + 3);
                    k = next_body;
                }
                _ => {
                    k += 1;
                    break;
                }
            }
        } else {
            k += 1;
            break;
        }
    }
    (arms, k.max(body_idx + 1), has_else)
}

/// Split a `match` body group into arm-body slices (brace arms yield the
/// group contents, expression arms the tokens up to the top-level `,`).
fn match_arms(g: &[Tree]) -> Vec<&[Tree]> {
    let mut arms = Vec::new();
    let mut p = 0;
    while p < g.len() {
        let mut arrow = None;
        let mut q = p;
        while q + 1 < g.len() {
            if g[q].is_punct(b'=') && g[q + 1].is_punct(b'>') {
                arrow = Some(q);
                break;
            }
            q += 1;
        }
        let Some(arrow) = arrow else { break };
        let body = arrow + 2;
        match g.get(body) {
            Some(Tree::Group {
                delim: b'{',
                items: arm,
                ..
            }) => {
                arms.push(arm.as_slice());
                p = body + 1;
                if matches!(g.get(p), Some(t) if t.is_punct(b',')) {
                    p += 1;
                }
            }
            Some(_) => {
                let mut r = body;
                while r < g.len() && !g[r].is_punct(b',') {
                    r += 1;
                }
                arms.push(&g[body..r]);
                p = r + 1;
            }
            None => break,
        }
    }
    arms
}

/// True when every arm (plus the implicit empty arm when there is no
/// `else`) performs the same collective sequence.
fn arms_balanced(arms: &[(&[Tree], u32)], has_else: bool) -> bool {
    let mut seqs: Vec<Vec<String>> = arms
        .iter()
        .map(|(a, _)| {
            let mut s = Vec::new();
            collective_sequence(a, &mut s);
            s
        })
        .collect();
    if !has_else {
        seqs.push(Vec::new());
    }
    !seqs.is_empty() && seqs.iter().all(|s| *s == seqs[0])
}

/// Ordered collective call names within `items`, recursively.
fn collective_sequence(items: &[Tree], out: &mut Vec<String>) {
    for (i, t) in items.iter().enumerate() {
        if let Some(name) = collective_at(items, i) {
            out.push(name.to_string());
        }
        if let Tree::Group { items: g, .. } = t {
            collective_sequence(g, out);
        }
    }
}

/// The collective name called at `items[at]`, if any.
fn collective_at(items: &[Tree], at: usize) -> Option<&str> {
    let name = items[at].ident()?;
    let called = at > 0
        && (items[at - 1].is_punct(b'.') || items[at - 1].is_punct(b':'))
        && matches!(items.get(at + 1), Some(g) if g.is_group(b'('));
    if !called {
        return None;
    }
    if COLLECTIVES.contains(&name) {
        return Some(name);
    }
    if HALO_COLLECTIVES.contains(&name) && receiver_is_halo(items, at) {
        return Some(name);
    }
    None
}

/// Same receiver heuristic as SPMD001: `ctx.halo.begin(…)`.
fn receiver_is_halo(items: &[Tree], at: usize) -> bool {
    let mut j = at.wrapping_sub(1);
    while j > 0 {
        j -= 1;
        match &items[j] {
            Tree::Leaf(t) => {
                if let Some(name) = t.ident() {
                    let lower = name.to_ascii_lowercase();
                    if lower.contains("halo") || lower.contains("exchange") {
                        return true;
                    }
                } else if !t.is_punct(b'.') {
                    return false;
                }
            }
            Tree::Group { delim: b'(', .. } | Tree::Group { delim: b'[', .. } => continue,
            Tree::Group { .. } => return false,
        }
    }
    false
}

fn mentions_tainted(items: &[Tree], tainted: &HashSet<String>) -> bool {
    items.iter().any(|t| match t {
        Tree::Leaf(tok) => tok
            .ident()
            .is_some_and(|n| is_rank_name(n) || tainted.contains(n)),
        Tree::Group { items, .. } => mentions_tainted(items, tainted),
    })
}
