//! Brace-balanced token trees and `fn`-item extraction.
//!
//! The passes are intraprocedural: they want each function body as a
//! nested structure where `( … )`, `[ … ]` and `{ … }` are single nodes,
//! so control-flow keywords (`if`, `match`, `loop`) can be paired with
//! their blocks without a real parser.

use crate::lexer::Tok;

/// One node of the token tree: a leaf token or a delimited group.
#[derive(Clone, Debug)]
pub enum Tree {
    /// A non-delimiter token.
    Leaf(Tok),
    /// A `(`/`[`/`{` group with its contents.
    Group {
        /// Opening delimiter byte: `(`, `[` or `{`.
        delim: u8,
        /// Line of the opening delimiter.
        open_line: u32,
        /// Line of the closing delimiter (end of file when unbalanced).
        close_line: u32,
        /// Child nodes.
        items: Vec<Tree>,
    },
}

impl Tree {
    /// The node's identifier name, when it is an identifier leaf.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tree::Leaf(t) => t.ident(),
            Tree::Group { .. } => None,
        }
    }

    /// True when this node is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// True when this node is the punctuation byte `ch`.
    pub fn is_punct(&self, ch: u8) -> bool {
        matches!(self, Tree::Leaf(t) if t.is_punct(ch))
    }

    /// True when this node is a group opened by `delim`.
    pub fn is_group(&self, delim: u8) -> bool {
        matches!(self, Tree::Group { delim: d, .. } if *d == delim)
    }

    /// The 1-based line where this node starts.
    pub fn line(&self) -> u32 {
        match self {
            Tree::Leaf(t) => t.line(),
            Tree::Group { open_line, .. } => *open_line,
        }
    }
}

fn closing(open: u8) -> u8 {
    match open {
        b'(' => b')',
        b'[' => b']',
        _ => b'}',
    }
}

/// Build a token tree from the flat token stream. Unbalanced input is
/// handled best-effort: stray closers are dropped, unclosed groups end
/// at end-of-file.
pub fn parse(toks: &[Tok]) -> Vec<Tree> {
    let mut i = 0;
    let (items, _) = parse_group(toks, &mut i, None);
    items
}

fn parse_group(toks: &[Tok], i: &mut usize, until: Option<u8>) -> (Vec<Tree>, u32) {
    let mut items = Vec::new();
    let mut last_line = toks.last().map_or(1, Tok::line);
    while *i < toks.len() {
        let t = &toks[*i];
        match t {
            Tok::Punct { ch, line } if matches!(ch, b'(' | b'[' | b'{') => {
                let (delim, open_line) = (*ch, *line);
                *i += 1;
                let (inner, close_line) = parse_group(toks, i, Some(closing(delim)));
                items.push(Tree::Group {
                    delim,
                    open_line,
                    close_line,
                    items: inner,
                });
            }
            Tok::Punct { ch, line } if matches!(ch, b')' | b']' | b'}') => {
                if Some(*ch) == until {
                    last_line = *line;
                    *i += 1;
                    return (items, last_line);
                }
                // Stray closer: drop it and keep going.
                *i += 1;
            }
            _ => {
                items.push(Tree::Leaf(t.clone()));
                *i += 1;
            }
        }
    }
    (items, last_line)
}

/// A function body ready for analysis.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// The body block's child nodes.
    pub body: Vec<Tree>,
    /// Line of the body's closing brace.
    pub close_line: u32,
    /// True when the function is test code: it carries a `#[test]`-like
    /// attribute, `#[cfg(test)]`, or sits inside a `#[cfg(test)] mod`.
    pub is_test: bool,
}

/// Extract every function (including nested ones and default trait
/// methods) from a parsed file.
pub fn collect_fns(items: &[Tree]) -> Vec<FnItem> {
    let mut out = Vec::new();
    collect_fns_in(items, false, &mut out);
    out
}

fn collect_fns_in(items: &[Tree], in_test: bool, out: &mut Vec<FnItem>) {
    let mut i = 0;
    while i < items.len() {
        if items[i].is_ident("fn") {
            if let Some((item, past)) = extract_fn(items, i, in_test) {
                collect_fns_in(&item.body, item.is_test, out);
                out.push(item);
                i = past;
                continue;
            }
            i += 1;
        } else if items[i].is_ident("mod") {
            // `mod name { … }` or `mod name;` — recurse into an inline
            // module, marking it as test code when `#[cfg(test)]`.
            let test = in_test || attrs_mark_test(items, i);
            let mut j = i + 1;
            let mut advanced = false;
            while j < items.len() {
                if items[j].is_punct(b';') {
                    break;
                }
                if let Tree::Group {
                    delim: b'{',
                    items: inner,
                    ..
                } = &items[j]
                {
                    collect_fns_in(inner, test, out);
                    i = j + 1;
                    advanced = true;
                    break;
                }
                j += 1;
            }
            if !advanced {
                i += 1;
            }
        } else if let Tree::Group { items: inner, .. } = &items[i] {
            // impl blocks, trait bodies, etc.
            collect_fns_in(inner, in_test, out);
            i += 1;
        } else {
            i += 1;
        }
    }
}

/// Parse a `fn` item starting at `items[at]` (the `fn` keyword). Returns
/// the item plus the index just past its body; `None` for bodyless trait
/// signatures.
fn extract_fn(items: &[Tree], at: usize, in_test: bool) -> Option<(FnItem, usize)> {
    let name = items.get(at + 1)?.ident()?.to_string();
    let line = items[at].line();
    let mut j = at + 2;
    while j < items.len() {
        if items[j].is_punct(b';') {
            return None; // trait method signature without a body
        }
        if let Tree::Group {
            delim: b'{',
            items: body,
            close_line,
            ..
        } = &items[j]
        {
            let is_test = in_test || attrs_mark_test(items, at);
            return Some((
                FnItem {
                    name,
                    line,
                    body: body.clone(),
                    close_line: *close_line,
                    is_test,
                },
                j + 1,
            ));
        }
        j += 1;
    }
    None
}

/// Scan the attributes and modifiers directly before `items[at]` for a
/// `test` marker: `#[test]`, `#[cfg(test)]`, `#[tokio::test]`, … all
/// contain the bare identifier `test`.
fn attrs_mark_test(items: &[Tree], at: usize) -> bool {
    const MODIFIERS: &[&str] = &["pub", "unsafe", "const", "async", "extern", "default"];
    let mut j = at;
    while j > 0 {
        j -= 1;
        match &items[j] {
            Tree::Leaf(t) => {
                if t.ident().is_some_and(|n| MODIFIERS.contains(&n)) {
                    continue;
                }
                return false;
            }
            Tree::Group { delim: b'(', .. } => continue, // pub(crate)
            Tree::Group {
                delim: b'[',
                items: attr,
                ..
            } => {
                // Only an attribute when preceded by `#`.
                if j == 0 || !items[j - 1].is_punct(b'#') {
                    return false;
                }
                if group_mentions(attr, "test") {
                    return true;
                }
                j -= 1; // skip the `#`
            }
            Tree::Group { .. } => return false,
        }
    }
    false
}

/// True when any (possibly nested) identifier in `items` equals `name`.
pub fn group_mentions(items: &[Tree], name: &str) -> bool {
    items.iter().any(|t| match t {
        Tree::Leaf(tok) => tok.is_ident(name),
        Tree::Group { items, .. } => group_mentions(items, name),
    })
}
