//! SPMD005–SPMD007 — the checks migrated from the original `xtask lint`
//! pass, now running on the shared lexer.
//!
//! - **SPMD005** unsafe allowlist: `unsafe` may appear only in the
//!   modules listed in [`UNSAFE_ALLOWLIST`], each occurrence documented
//!   by a nearby `// SAFETY:` comment (or `# Safety` doc section).
//! - **SPMD006** `#[must_use]` registry: split-phase handle types whose
//!   silent drop loses messages must carry the attribute.
//! - **SPMD007** missing-docs opt-in: every library crate root must
//!   `#![warn(missing_docs)]` (or deny).

use std::path::Path;

use crate::lexer::{has_word, strip_comments_and_strings};
use crate::Finding;

/// Modules allowed to contain `unsafe` code, relative to the repo root.
///
/// Everything else must stay safe Rust; adding a file here should come
/// with Miri coverage (see `.github/workflows/ci.yml`, job `miri`).
pub const UNSAFE_ALLOWLIST: &[&str] = &[
    // Disjoint row-slice handout: validated RowMap + SendPtr.
    "crates/accel/src/index.rs",
    // Scoped worker pool: lifetime-erased job pointers behind a latch.
    "crates/accel/src/pool.rs",
    // Threaded back-end: per-chunk partial slots + row slices.
    "crates/accel/src/device/threads.rs",
    // Test fixture: counting global allocator (passthrough to System).
    "crates/blockgrid/tests/halo_zero_alloc.rs",
    // Test fixture: counting global allocator (passthrough to System).
    "crates/krylov/tests/solve_zero_alloc.rs",
    // Test fixture: deliberately unsound kernel mutant the sanitizer
    // must catch.
    "crates/check/tests/mutations.rs",
];

/// `(file, type)` pairs that must be `#[must_use]`: dropping one of
/// these silently abandons an in-flight message or a borrowed ghost
/// region.
pub const MUST_USE_TYPES: &[(&str, &str)] = &[
    ("crates/comm/src/types.rs", "RecvRequest"),
    ("crates/comm/src/types.rs", "ReduceRequest"),
    // Dropping a chunked handle abandons both the in-flight head chunk
    // and the never-reduced tail scalars.
    ("crates/comm/src/types.rs", "ReduceManyRequest"),
    ("crates/blockgrid/src/halo.rs", "PendingExchange"),
    // The f32 twin carries half-width wire words; dropping it loses the
    // same in-flight messages.
    ("crates/blockgrid/src/halo.rs", "PendingExchangeF32"),
    // Dropping a job handle silently discards the tenant's result.
    ("crates/serve/src/job.rs", "JobHandle"),
    // Dropping the fold handle abandons the slot partials of a fused
    // split-phase dot — the scalar would silently never be produced.
    ("crates/stencil/src/laplacian.rs", "PendingDotFold"),
];

/// How many lines above an `unsafe` token a `SAFETY` comment may sit.
pub const SAFETY_WINDOW: usize = 10;

/// SPMD005: check the unsafe policy for one file.
pub fn audit_unsafe(rel: &str, text: &str, findings: &mut Vec<Finding>) {
    let code = strip_comments_and_strings(text);
    let allowlisted = UNSAFE_ALLOWLIST.contains(&rel);
    let original: Vec<&str> = text.lines().collect();
    for (i, line) in code.lines().enumerate() {
        if !has_word(line, "unsafe") {
            continue;
        }
        let lineno = (i + 1) as u32;
        if !allowlisted {
            findings.push(Finding {
                code: "SPMD005",
                path: rel.to_string(),
                line: lineno,
                message: "`unsafe` outside the allowlist (UNSAFE_ALLOWLIST in \
                          crates/spmdlint/src/legacy.rs)"
                    .to_string(),
            });
            continue;
        }
        let lo = i.saturating_sub(SAFETY_WINDOW);
        let documented = original[lo..=i.min(original.len() - 1)]
            .iter()
            .any(|l| l.contains("SAFETY") || l.contains("# Safety"));
        if !documented {
            findings.push(Finding {
                code: "SPMD005",
                path: rel.to_string(),
                line: lineno,
                message: format!(
                    "`unsafe` without a `// SAFETY:` comment within {SAFETY_WINDOW} lines"
                ),
            });
        }
    }
}

/// SPMD006: check that the listed split-phase handle types are
/// `#[must_use]`.
pub fn audit_must_use(root: &Path, findings: &mut Vec<Finding>) {
    for (rel, ty) in MUST_USE_TYPES {
        let path = root.join(rel);
        let Ok(text) = std::fs::read_to_string(&path) else {
            findings.push(Finding {
                code: "SPMD006",
                path: (*rel).to_string(),
                line: 1,
                message: format!("missing (expected to define {ty})"),
            });
            continue;
        };
        let lines: Vec<&str> = text.lines().collect();
        let decl = lines
            .iter()
            .position(|l| has_word(l, "struct") && has_word(l, ty));
        let Some(decl) = decl else {
            findings.push(Finding {
                code: "SPMD006",
                path: (*rel).to_string(),
                line: 1,
                message: format!("type {ty} not found"),
            });
            continue;
        };
        let lo = decl.saturating_sub(SAFETY_WINDOW);
        // Both `#[must_use]` and `#[must_use = "reason"]` count.
        let marked = lines[lo..=decl].iter().any(|l| l.contains("#[must_use"));
        if !marked {
            findings.push(Finding {
                code: "SPMD006",
                path: (*rel).to_string(),
                line: (decl + 1) as u32,
                message: format!("{ty} must be #[must_use] (dropping it loses in-flight messages)"),
            });
        }
    }
}

/// SPMD007: check that every library crate warns on missing docs.
pub fn audit_missing_docs(root: &Path, findings: &mut Vec<Finding>) {
    let crates_dir = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        findings.push(Finding {
            code: "SPMD007",
            path: "crates/".to_string(),
            line: 1,
            message: "missing".to_string(),
        });
        return;
    };
    let mut libs: Vec<_> = entries
        .flatten()
        .map(|e| e.path().join("src/lib.rs"))
        .filter(|p| p.is_file())
        .collect();
    libs.sort();
    for lib in libs {
        let rel = crate::rel_path(root, &lib);
        let Ok(text) = std::fs::read_to_string(&lib) else {
            findings.push(Finding {
                code: "SPMD007",
                path: rel,
                line: 1,
                message: "unreadable".to_string(),
            });
            continue;
        };
        let opted_in =
            text.contains("#![warn(missing_docs)]") || text.contains("#![deny(missing_docs)]");
        if !opted_in {
            findings.push(Finding {
                code: "SPMD007",
                path: rel,
                line: 1,
                message: "crate root must carry #![warn(missing_docs)]".to_string(),
            });
        }
    }
}
