//! SPMD003 — allocation in registered hot functions.
//!
//! The steady-state solve path is required to be allocation-free (the
//! runtime counting-allocator audits in `solve_zero_alloc.rs` /
//! `halo_zero_alloc.rs` enforce it dynamically). This pass turns the
//! same contract into a static gate: inside the registered hot functions
//! any allocating construct — `Vec::new`, `vec![…]`, `Box::new`,
//! `format!`, `String::from`, `.to_vec()`, `.to_owned()`,
//! `.to_string()`, `.collect()`, `.clone()` — is a finding unless the
//! line carries `// LINT: alloc-ok(<reason>)` (e.g. a cold-path fallback
//! or setup code executed once).

use crate::tree::{FnItem, Tree};
use crate::{Finding, SrcInfo};

/// `(path suffix, fn name)` pairs forming the hot registry: the
/// steady-state set audited by the zero-alloc runtime tests.
pub const HOT_FUNCTIONS: &[(&str, &str)] = &[
    // Bi-CGSTAB hot loop and its helpers.
    ("crates/krylov/src/bicgstab.rs", "bicgstab_solve"),
    ("crates/krylov/src/bicgstab.rs", "refresh_ghosts"),
    ("crates/krylov/src/bicgstab.rs", "refresh_and_apply"),
    ("crates/krylov/src/bicgstab.rs", "global_sum"),
    // Fused vector kernels.
    ("crates/krylov/src/kernels.rs", "axpy_inplace"),
    ("crates/krylov/src/kernels.rs", "axpy2_inplace"),
    ("crates/krylov/src/kernels.rs", "axpy2_chained_inplace"),
    ("crates/krylov/src/kernels.rs", "axpy3_inplace"),
    ("crates/krylov/src/kernels.rs", "axpy_dot"),
    ("crates/krylov/src/kernels.rs", "norm2_axpy"),
    ("crates/krylov/src/kernels.rs", "residual_p_update_fused"),
    ("crates/krylov/src/kernels.rs", "residual_update_fused"),
    ("crates/krylov/src/kernels.rs", "dot"),
    ("crates/krylov/src/kernels.rs", "dot2"),
    ("crates/krylov/src/kernels.rs", "diff_norm2"),
    ("crates/krylov/src/kernels.rs", "norm2_local"),
    ("crates/krylov/src/kernels.rs", "scale"),
    // Chebyshev preconditioner inner loop + stencil combine.
    ("crates/krylov/src/cheby.rs", "solve"),
    ("crates/krylov/src/cheby.rs", "refresh_ghosts"),
    ("crates/stencil/src/laplacian.rs", "apply"),
    ("crates/stencil/src/laplacian.rs", "apply_interior"),
    ("crates/stencil/src/laplacian.rs", "apply_shell"),
    ("crates/stencil/src/laplacian.rs", "apply_fused_dot"),
    ("crates/stencil/src/laplacian.rs", "apply_fused_dot2"),
    ("crates/stencil/src/laplacian.rs", "apply_fused_dot3"),
    ("crates/stencil/src/laplacian.rs", "apply_combine"),
    ("crates/stencil/src/laplacian.rs", "apply_combine_interior"),
    ("crates/stencil/src/laplacian.rs", "apply_combine_shell"),
    ("crates/stencil/src/laplacian.rs", "combine_on_map"),
    ("crates/stencil/src/laplacian.rs", "apply_interior_dot"),
    ("crates/stencil/src/laplacian.rs", "apply_shell_dot"),
    ("crates/stencil/src/laplacian.rs", "fold"),
    // Halo pack/unpack and the split-phase exchange path.
    ("crates/blockgrid/src/halo.rs", "pack_face"),
    ("crates/blockgrid/src/halo.rs", "unpack_face"),
    ("crates/blockgrid/src/halo.rs", "acquire"),
    ("crates/blockgrid/src/halo.rs", "recycle"),
    ("crates/blockgrid/src/halo.rs", "begin_impl"),
    ("crates/blockgrid/src/halo.rs", "begin"),
    ("crates/blockgrid/src/halo.rs", "finish"),
    ("crates/blockgrid/src/halo.rs", "exchange"),
    // ThreadComm collective engine.
    ("crates/comm/src/thread_comm.rs", "collective_begin"),
    ("crates/comm/src/thread_comm.rs", "collective_finish"),
    ("crates/comm/src/thread_comm.rs", "collective_exchange"),
    ("crates/comm/src/thread_comm.rs", "all_reduce"),
    ("crates/comm/src/thread_comm.rs", "barrier"),
    ("crates/comm/src/thread_comm.rs", "iall_reduce"),
    ("crates/comm/src/thread_comm.rs", "reduce_finish"),
    // Communicator trait defaults (SelfComm fallbacks).
    ("crates/comm/src/types.rs", "reduce_batch"),
    ("crates/comm/src/types.rs", "iall_reduce_batch"),
];

/// Method names whose call allocates an owning container.
const ALLOC_METHODS: &[&str] = &["to_vec", "to_owned", "to_string", "collect", "clone"];

/// Run SPMD003 over the registered hot functions of a file.
pub fn check(src: &SrcInfo<'_>, fns: &[FnItem], findings: &mut Vec<Finding>) {
    let hot: Vec<&str> = HOT_FUNCTIONS
        .iter()
        .filter(|(suffix, _)| src.rel.ends_with(suffix))
        .map(|(_, name)| *name)
        .collect();
    if hot.is_empty() {
        return;
    }
    for f in fns
        .iter()
        .filter(|f| !f.is_test && hot.contains(&f.name.as_str()))
    {
        scan(src, &f.name, &f.body, findings);
    }
}

fn scan(src: &SrcInfo<'_>, fn_name: &str, items: &[Tree], findings: &mut Vec<Finding>) {
    let mut i = 0;
    while i < items.len() {
        let t = &items[i];
        // Nested fn bodies are scanned under their own names only if
        // registered — skip them here.
        if t.is_ident("fn") {
            let mut j = i + 1;
            while j < items.len() && !items[j].is_punct(b';') && !items[j].is_group(b'{') {
                j += 1;
            }
            i = j + 1;
            continue;
        }
        if let Some(what) = alloc_at(items, i) {
            let line = t.line();
            if !src.annotated(line, "alloc-ok") {
                findings.push(Finding {
                    code: "SPMD003",
                    path: src.rel.to_string(),
                    line,
                    message: format!(
                        "`{what}` allocates inside hot function `{fn_name}` (zero-alloc \
                         steady-state registry); hoist it to setup, use a pooled buffer, \
                         or annotate `// LINT: alloc-ok(<reason>)`"
                    ),
                });
            }
        }
        if let Tree::Group { items: g, .. } = t {
            scan(src, fn_name, g, findings);
        }
        i += 1;
    }
}

/// Identify an allocating construct at `items[at]`, returning a display
/// name.
fn alloc_at(items: &[Tree], at: usize) -> Option<String> {
    let name = items[at].ident()?;
    let next = items.get(at + 1);
    let prev = at.checked_sub(1).map(|p| &items[p]);
    let prev2 = at.checked_sub(2).map(|p| &items[p]);

    // vec![…] / format!(…)
    if matches!(name, "vec" | "format") && matches!(next, Some(n) if n.is_punct(b'!')) {
        return Some(format!("{name}!"));
    }
    // Vec::new / Vec::with_capacity / Vec::from / Box::new / String::from /
    // String::new — match the *second* path segment with `::` before it.
    if matches!(name, "new" | "with_capacity" | "from")
        && matches!(prev, Some(p) if p.is_punct(b':'))
        && matches!(prev2, Some(p) if p.is_punct(b':'))
    {
        if let Some(owner) = at.checked_sub(3).and_then(|p| items[p].ident()) {
            if matches!(
                owner,
                "Vec" | "Box" | "String" | "VecDeque" | "HashMap" | "BTreeMap"
            ) {
                return Some(format!("{owner}::{name}"));
            }
        }
    }
    // .to_vec() / .collect() / .clone() …
    if ALLOC_METHODS.contains(&name)
        && matches!(prev, Some(p) if p.is_punct(b'.'))
        && matches!(next, Some(n) if n.is_group(b'('))
    {
        return Some(format!(".{name}()"));
    }
    None
}
