//! SPMD004 — panic hygiene on the serving request path.
//!
//! `crates/serve` hosts multi-tenant jobs: a panic on the request path
//! either kills a worker or converts into a quarantine — both are
//! availability incidents a typed error would have avoided. Non-test
//! code under `crates/serve/src` must not call `.unwrap()`/`.expect(…)`,
//! invoke `panic!`-family macros, or use bracket indexing (which panics
//! out-of-bounds). Provably-infallible sites carry
//! `// LINT: panic-ok(<reason>)` with the justification.

use crate::tree::{FnItem, Tree};
use crate::{Finding, SrcInfo};

/// Path fragment selecting the files this pass covers.
const SERVE_SRC: &str = "crates/serve/src/";

/// Identifier keywords that legitimately precede a `[` without forming
/// an index expression (`&mut [T]`, `if cond [..]` never parses, but be
/// conservative).
const NON_INDEX_PREV: &[&str] = &[
    "mut", "ref", "dyn", "as", "in", "if", "else", "match", "return", "let", "move", "box",
    "while", "loop", "for", "break", "continue", "unsafe", "where", "impl", "fn", "pub", "use",
    "mod", "struct", "enum", "trait", "type", "const", "static", "crate",
];

/// Run SPMD004 over non-test functions of serve source files.
pub fn check(src: &SrcInfo<'_>, fns: &[FnItem], findings: &mut Vec<Finding>) {
    if !src.rel.contains(SERVE_SRC) {
        return;
    }
    for f in fns.iter().filter(|f| !f.is_test) {
        scan(src, &f.body, findings);
    }
}

fn scan(src: &SrcInfo<'_>, items: &[Tree], findings: &mut Vec<Finding>) {
    for (i, t) in items.iter().enumerate() {
        if let Some((line, what)) = panic_site(items, i) {
            if !src.annotated(line, "panic-ok") {
                findings.push(Finding {
                    code: "SPMD004",
                    path: src.rel.to_string(),
                    line,
                    message: format!(
                        "`{what}` on the serve request path can panic a multi-tenant worker; \
                         return a typed error (`SubmitError`/`JobError`/`StartError`) or \
                         justify with `// LINT: panic-ok(<reason>)`"
                    ),
                });
            }
        }
        if let Tree::Group { items: g, .. } = t {
            scan(src, g, findings);
        }
    }
}

/// Identify a panic-capable construct at `items[at]`.
fn panic_site(items: &[Tree], at: usize) -> Option<(u32, String)> {
    let t = &items[at];
    if let Some(name) = t.ident() {
        let next = items.get(at + 1);
        let prev = at.checked_sub(1).map(|p| &items[p]);
        // .unwrap() / .expect(…)
        if matches!(name, "unwrap" | "expect")
            && matches!(prev, Some(p) if p.is_punct(b'.'))
            && matches!(next, Some(n) if n.is_group(b'('))
        {
            return Some((t.line(), format!(".{name}()")));
        }
        // panic! / unreachable! / todo! / unimplemented! / assert!-family
        if matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
            && matches!(next, Some(n) if n.is_punct(b'!'))
        {
            return Some((t.line(), format!("{name}!")));
        }
        return None;
    }
    // Bracket indexing: `expr[…]` — a `[` group directly after an
    // identifier (that is not a keyword) or a call/index result.
    if let Tree::Group {
        delim: b'[',
        open_line,
        ..
    } = t
    {
        match at.checked_sub(1).map(|p| &items[p]) {
            Some(Tree::Leaf(prev_tok)) => {
                if let Some(name) = prev_tok.ident() {
                    if !NON_INDEX_PREV.contains(&name) {
                        return Some((*open_line, format!("{name}[…]")));
                    }
                }
            }
            Some(Tree::Group {
                delim: b')' | b'(' | b'[',
                ..
            }) => {
                return Some((*open_line, "(…)[…]".to_string()));
            }
            _ => {}
        }
    }
    None
}
