//! Line-preserving lexical analysis shared by every pass.
//!
//! The foundation is [`strip_comments_and_strings`]: it replaces every
//! comment, string/char literal and raw(-byte) string with spaces while
//! keeping each `\n` exactly where it was, so anything computed on the
//! stripped text carries exact line numbers back to the original file.
//! [`tokenize`] then lexes the stripped text into identifier/punctuation
//! tokens, each stamped with its 1-based line.

/// One lexical token of the stripped source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (including numeric literals' leading runs —
    /// the passes never care about numbers, only that they group as one
    /// token).
    Ident {
        /// The identifier text.
        name: String,
        /// 1-based source line.
        line: u32,
    },
    /// A single punctuation byte (`.`, `?`, `;`, `#`, `=` …), including
    /// the group delimiters `( ) [ ] { }`.
    Punct {
        /// The punctuation byte.
        ch: u8,
        /// 1-based source line.
        line: u32,
    },
}

impl Tok {
    /// The token's 1-based source line.
    pub fn line(&self) -> u32 {
        match self {
            Tok::Ident { line, .. } | Tok::Punct { line, .. } => *line,
        }
    }

    /// The identifier name, when this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident { name, .. } => Some(name),
            Tok::Punct { .. } => None,
        }
    }

    /// True when this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// True when this token is the punctuation byte `ch`.
    pub fn is_punct(&self, ch: u8) -> bool {
        matches!(self, Tok::Punct { ch: c, .. } if *c == ch)
    }
}

/// Replace comments, string/char literals and raw strings with spaces,
/// preserving line structure so line numbers survive.
///
/// Handles the full literal zoo: nested block comments (`/* /* */ */`),
/// escaped quotes, raw strings `r#"…"#`, byte strings `b"…"`, raw byte
/// strings `br#"…"#`, byte chars `b'x'`, and `'a` lifetimes vs `'x'`
/// char literals (including multi-byte chars like `'é'`). Escaped
/// newlines inside string literals (`"… \⏎ …"`) keep their `\n` so the
/// output always has exactly as many lines as the input.
pub fn strip_comments_and_strings(src: &str) -> String {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
        Char,
    }
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut state = State::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match state {
            State::Code => {
                if c == b'/' && b.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if c == b'"' {
                    state = State::Str;
                    out.push(b' ');
                    i += 1;
                } else if let Some((prefix, hashes)) = raw_str_start(b, i) {
                    state = State::RawStr(hashes);
                    out.extend(std::iter::repeat_n(b' ', prefix + hashes + 1));
                    i += prefix + hashes + 1;
                } else if c == b'b' && b.get(i + 1) == Some(&b'"') && !ident_continues(b, i) {
                    // Byte string b"…": blank the prefix too so `b` never
                    // survives as a stray identifier.
                    state = State::Str;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if c == b'\'' && is_char_literal(b, i) {
                    state = State::Char;
                    out.push(b' ');
                    i += 1;
                } else if c == b'b'
                    && b.get(i + 1) == Some(&b'\'')
                    && !ident_continues(b, i)
                    && is_char_literal(b, i + 1)
                {
                    // Byte char b'x'.
                    state = State::Char;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                if c == b'\n' {
                    state = State::Code;
                    out.push(b'\n');
                } else {
                    out.push(b' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == b'*' && b.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    out.push(if c == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::Str => {
                if c == b'\\' && i + 1 < b.len() {
                    // Escaped pair — but an escaped newline (string
                    // continuation) must keep its `\n` or every later
                    // line number in the file would shift.
                    out.push(b' ');
                    out.push(if b[i + 1] == b'\n' { b'\n' } else { b' ' });
                    i += 2;
                } else {
                    if c == b'"' {
                        state = State::Code;
                    }
                    out.push(if c == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == b'"' && closes_raw_str(b, i, hashes) {
                    out.extend(std::iter::repeat_n(b' ', hashes + 1));
                    i += hashes + 1;
                    state = State::Code;
                } else {
                    out.push(if c == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::Char => {
                if c == b'\\' && i + 1 < b.len() {
                    out.push(b' ');
                    out.push(if b[i + 1] == b'\n' { b'\n' } else { b' ' });
                    i += 2;
                } else {
                    if c == b'\'' {
                        state = State::Code;
                    }
                    out.push(if c == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
        }
    }
    String::from_utf8(out).expect("only ASCII substitutions")
}

/// True when `b[i]` continues an identifier begun earlier (so a `b`/`r`
/// here is the tail of a name like `ptr`, not a literal prefix).
fn ident_continues(b: &[u8], i: usize) -> bool {
    i > 0 && is_ident_byte(b[i - 1])
}

/// `Some((prefix_len, hashes))` when `b[i..]` starts a raw string
/// `r#*"` or raw byte string `br#*"`.
fn raw_str_start(b: &[u8], i: usize) -> Option<(usize, usize)> {
    let (start, prefix) = if b[i] == b'r' {
        (i, 1)
    } else if b[i] == b'b' && b.get(i + 1) == Some(&b'r') {
        (i, 2)
    } else {
        return None;
    };
    // The prefix must not continue an identifier (e.g. `for`, `abr`).
    if ident_continues(b, start) {
        return None;
    }
    let mut j = start + prefix;
    let mut hashes = 0;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (b.get(j) == Some(&b'"')).then_some((prefix, hashes))
}

/// True when the `"` at `b[i]` is followed by `hashes` `#` characters.
fn closes_raw_str(b: &[u8], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|h| b.get(i + h) == Some(&b'#'))
}

/// Distinguish a char literal from a lifetime: `'x'` or `'\n'` vs
/// `'static`. A non-ASCII first byte (`'é'`) scans ahead for the closing
/// quote; an ASCII one must close immediately, so `'a, 'b` in a generic
/// list never false-positives.
fn is_char_literal(b: &[u8], i: usize) -> bool {
    debug_assert_eq!(b[i], b'\'');
    match b.get(i + 1) {
        Some(b'\\') => true,
        Some(&c) if c >= 0x80 => (2..=5).any(|k| b.get(i + k) == Some(&b'\'')),
        Some(_) => b.get(i + 2) == Some(&b'\''),
        None => false,
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// True when `word` appears in `line` as a standalone token.
pub fn has_word(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

/// Lex stripped source into identifier/punctuation tokens with 1-based
/// line numbers. Must be fed the output of
/// [`strip_comments_and_strings`]; literal bodies are gone by then, so
/// every remaining byte is code.
pub fn tokenize(stripped: &str) -> Vec<Tok> {
    let b = stripped.as_bytes();
    let mut toks = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
        } else if c.is_ascii_whitespace() {
            i += 1;
        } else if is_ident_byte(c) {
            let start = i;
            while i < b.len() && is_ident_byte(b[i]) {
                i += 1;
            }
            toks.push(Tok::Ident {
                name: stripped[start..i].to_string(),
                line,
            });
        } else if c.is_ascii() {
            toks.push(Tok::Punct { ch: c, line });
            i += 1;
        } else {
            // Non-ASCII code byte (only reachable in identifiers we do
            // not track); skip without disturbing line accounting.
            i += 1;
        }
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn lines_of(s: &str) -> usize {
        s.bytes().filter(|&b| b == b'\n').count()
    }

    /// Idents surviving the strip, for asserting what is code vs literal.
    fn surviving(src: &str) -> Vec<String> {
        tokenize(&strip_comments_and_strings(src))
            .into_iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn nested_block_comments_strip_fully() {
        let src = "a /* x /* y\n */ still_comment */ b";
        let names = surviving(src);
        assert_eq!(names, ["a", "b"], "nested comment content must vanish");
        assert_eq!(lines_of(&strip_comments_and_strings(src)), lines_of(src));
    }

    #[test]
    fn byte_strings_and_raw_byte_strings_strip_with_their_prefix() {
        let src = r##"let x = b"code_inside"; let y = br#"also " gone"#; z"##;
        let names = surviving(src);
        assert!(
            !names
                .iter()
                .any(|n| n.contains("code_inside") || n.contains("gone")),
            "literal bodies must vanish: {names:?}"
        );
        assert!(
            !names.contains(&"b".to_string()) && !names.contains(&"br".to_string()),
            "literal prefixes must not survive as identifiers: {names:?}"
        );
        assert_eq!(names, ["let", "x", "let", "y", "z"]);
    }

    #[test]
    fn raw_strings_ignore_escapes_and_inner_quotes() {
        let src = r###"r#"a " \" still"# after"###;
        assert_eq!(surviving(src), ["after"]);
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; let uni = 'é'; }";
        let names = surviving(src);
        assert!(
            names.contains(&"a".to_string()),
            "lifetime names are code: {names:?}"
        );
        assert!(
            !names.contains(&"x".to_string()) || names.iter().filter(|n| *n == "x").count() == 1,
            "char literal body must vanish (only the parameter x survives): {names:?}"
        );
        assert!(!names.contains(&"n".to_string()), "escape body must vanish");
    }

    #[test]
    fn static_lifetime_is_not_a_char_literal() {
        // 's' followed by more ident bytes: must lex as a lifetime, not
        // swallow "static>(..." as a char literal body.
        let src = "fn f<T: 'static>(t: T) { use_it(t); }";
        let names = surviving(src);
        assert!(names.contains(&"static".to_string()), "{names:?}");
        assert!(names.contains(&"use_it".to_string()), "{names:?}");
    }

    #[test]
    fn escaped_newline_in_string_keeps_the_line() {
        let src = "let s = \"one \\\ntwo\";\nafter";
        let stripped = strip_comments_and_strings(src);
        assert_eq!(lines_of(&stripped), lines_of(src));
        assert_eq!(surviving(src), ["let", "s", "after"]);
    }

    #[test]
    fn tokens_carry_their_source_line() {
        let src = "first\n\"str\n str\" second\n/* c\n c */ third";
        let toks = tokenize(&strip_comments_and_strings(src));
        let at = |name: &str| {
            toks.iter()
                .find(|t| t.is_ident(name))
                .unwrap_or_else(|| panic!("{name} not found"))
                .line()
        };
        assert_eq!(at("first"), 1);
        assert_eq!(at("second"), 3);
        assert_eq!(at("third"), 5);
    }

    /// Fragment alphabet deliberately full of delimiter-openers so random
    /// concatenations produce unterminated comments/strings/chars too —
    /// stripping must preserve the line count on ill-formed input as well.
    const FRAGMENTS: &[&str] = &[
        "fn f() {}\n",
        "/*",
        "*/",
        "// line comment",
        "\n",
        "\"",
        "\\\"",
        "\\\\",
        "r#\"",
        "\"#",
        "b\"bytes\"",
        "br#\"raw bytes\"#",
        "b'x'",
        "'c'",
        "'static",
        "<'a>",
        "ident_like",
        "let s = \"multi\nline\";",
        "é'",
        "\\\n",
    ];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        // The foundation of every pass: stripping literals/comments never
        // changes how many lines the file has, no matter how the literal
        // zoo is (mis)combined.
        #[test]
        fn stripping_preserves_line_count(
            picks in prop::collection::vec(0usize..FRAGMENTS.len(), 0..40),
        ) {
            let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
            let stripped = strip_comments_and_strings(&src);
            prop_assert_eq!(lines_of(&stripped), lines_of(&src));
            // And tokenization never reports a line beyond the input.
            let max_line = lines_of(&src) as u32 + 1;
            for t in tokenize(&stripped) {
                prop_assert!(t.line() >= 1 && t.line() <= max_line);
            }
        }
    }
}
