//! Control-flow-aware static analysis for the SPMD solver workspace.
//!
//! `spmdlint` lexes every workspace `.rs` file into a brace-balanced,
//! line-number-preserving token tree ([`lexer`], [`tree`]) and runs
//! intraprocedural passes per `fn` body:
//!
//! | code | pass | contract |
//! |------|------|----------|
//! | `SPMD001` | [`split_phase`] | every split-phase begin reaches its finish on every path |
//! | `SPMD002` | [`divergence`]  | no collective under a rank-dependent branch |
//! | `SPMD003` | [`hotalloc`]    | registered hot functions stay allocation-free |
//! | `SPMD004` | [`panic_hygiene`] | no panics/unwraps/indexing on the serve request path |
//! | `SPMD005` | [`legacy`] | `unsafe` allowlist + `// SAFETY:` comments |
//! | `SPMD006` | [`legacy`] | split-phase handle types are `#[must_use]` |
//! | `SPMD007` | [`legacy`] | library crates opt into `missing_docs` |
//!
//! The analyzer is dependency-free and control-flow-*approximate*: it
//! interprets token trees, not typed HIR. False positives are silenced
//! in place with `// LINT: <marker>(<reason>)` annotations
//! (`split-phase-ok`, `collective-uniform`, `alloc-ok`, `panic-ok`) that
//! double as reviewer-facing justification comments. `cargo xtask lint`
//! drives [`run_workspace`] and gates CI on zero findings.

#![warn(missing_docs)]

pub mod divergence;
pub mod hotalloc;
pub mod legacy;
pub mod lexer;
pub mod panic_hygiene;
pub mod split_phase;
pub mod tree;

use std::path::{Path, PathBuf};

/// One lint finding with a stable code and exact source anchor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Stable code, e.g. `SPMD001`.
    pub code: &'static str,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description with remediation hint.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}:{}: {}",
            self.code, self.path, self.line, self.message
        )
    }
}

/// Result of a workspace run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Number of `.rs` files analyzed.
    pub files_scanned: usize,
    /// All findings, sorted by path/line/code.
    pub findings: Vec<Finding>,
}

/// Per-file context shared by the passes: the repo-relative path plus
/// the *original* (unstripped) lines, used to honour `// LINT: …`
/// annotations that the lexer removes from the analyzed text.
pub struct SrcInfo<'a> {
    /// Repo-relative path.
    pub rel: &'a str,
    /// Original source lines.
    pub lines: Vec<&'a str>,
}

/// How many lines above a finding an annotation may sit (the line
/// itself plus two above, so a comment can precede a multi-line call).
const ANNOTATION_WINDOW: u32 = 2;

impl SrcInfo<'_> {
    /// True when `// LINT: <marker>(…)` appears on `line` or within the
    /// [`ANNOTATION_WINDOW`] lines above it.
    pub fn annotated(&self, line: u32, marker: &str) -> bool {
        let needle = format!("LINT: {marker}");
        let idx = (line as usize).saturating_sub(1); // 0-based index of `line`
        let lo = idx.saturating_sub(ANNOTATION_WINDOW as usize);
        let hi = (idx + 1).min(self.lines.len());
        lo < hi && self.lines[lo..hi].iter().any(|l| l.contains(&needle))
    }
}

/// Run SPMD001–SPMD005 on a single file's source text. `rel` selects
/// the per-path registries (hot functions, serve request paths, unsafe
/// allowlist), so tests can analyze fixture content under any path.
pub fn analyze_source(rel: &str, text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let stripped = lexer::strip_comments_and_strings(text);
    let toks = lexer::tokenize(&stripped);
    let forest = tree::parse(&toks);
    let is_integration_test = rel.contains("/tests/") || rel.contains("/benches/");
    let mut fns = tree::collect_fns(&forest);
    if is_integration_test {
        for f in &mut fns {
            f.is_test = true;
        }
    }
    let src = SrcInfo {
        rel,
        lines: text.lines().collect(),
    };
    split_phase::check(&src, &fns, &mut findings);
    divergence::check(&src, &fns, &mut findings);
    hotalloc::check(&src, &fns, &mut findings);
    panic_hygiene::check(&src, &fns, &mut findings);
    legacy::audit_unsafe(rel, text, &mut findings);
    findings
}

/// Run every pass over the workspace rooted at `root`.
pub fn run_workspace(root: &Path) -> Report {
    let mut files = Vec::new();
    for dir in ["crates", "src", "tests", "examples", "benches"] {
        collect_rust_files(&root.join(dir), &mut files);
    }
    files.sort();

    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let rel = rel_path(root, path);
        // Negative fixtures are deliberately-broken inputs for the
        // analyzer's own tests — never lint them as workspace code.
        if rel.contains("tests/fixtures/") {
            continue;
        }
        scanned += 1;
        match std::fs::read_to_string(path) {
            Ok(text) => findings.extend(analyze_source(&rel, &text)),
            Err(e) => findings.push(Finding {
                code: "SPMD000",
                path: rel,
                line: 1,
                message: format!("unreadable: {e}"),
            }),
        }
    }
    legacy::audit_must_use(root, &mut findings);
    legacy::audit_missing_docs(root, &mut findings);
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.code).cmp(&(b.path.as_str(), b.line, b.code)));
    Report {
        files_scanned: scanned,
        findings,
    }
}

/// Repo-relative display path with forward slashes.
pub fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Render a report as schema-stable JSON
/// (`{"schema":"spmdlint-findings-v1", "files_scanned":N, "findings":[…]}`).
///
/// Hand-rolled so the analyzer stays dependency-free; the vendored
/// `serde_json` shim parses it back in the round-trip test.
pub fn to_json(report: &Report) -> String {
    let mut out = String::with_capacity(256 + report.findings.len() * 128);
    out.push_str("{\"schema\":\"spmdlint-findings-v1\",\"files_scanned\":");
    out.push_str(&report.files_scanned.to_string());
    out.push_str(",\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"code\":");
        json_string(&mut out, f.code);
        out.push_str(",\"path\":");
        json_string(&mut out, &f.path);
        out.push_str(",\"line\":");
        out.push_str(&f.line.to_string());
        out.push_str(",\"message\":");
        json_string(&mut out, &f.message);
        out.push('}');
    }
    out.push_str("]}");
    out
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
