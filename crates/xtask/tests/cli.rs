//! End-to-end CLI contract of `cargo xtask lint`: exit codes, the
//! human OK line, and `--json` output that deserializes under the
//! `spmdlint-findings-v1` schema.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn xtask(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(args)
        .output()
        .expect("run the xtask binary")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn clean_workspace_exits_zero() {
    let out = xtask(&["lint"]);
    assert!(
        out.status.success(),
        "the committed workspace must lint clean:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("xtask lint: OK"));
}

#[test]
fn json_mode_emits_parseable_schema_v1() {
    let out = xtask(&["lint", "--json"]);
    assert!(out.status.success());
    let v = serde_json::from_str(stdout(&out).trim()).expect("valid JSON on stdout");
    assert_eq!(
        v.get("schema").and_then(|s| s.as_str()),
        Some("spmdlint-findings-v1")
    );
    assert_eq!(
        v.get("findings").and_then(|f| f.as_array()).map(<[_]>::len),
        Some(0),
        "a clean run reports an empty findings array, not a missing one"
    );
}

#[test]
fn findings_exit_nonzero_with_stable_code_and_exact_line() {
    // A scratch workspace with one seeded panic-hygiene violation.
    let root = scratch_root("xtask-cli-findings");
    let src = "pub fn f(x: Option<usize>) -> usize {\n    x.unwrap()\n}\n";
    write(&root.join("crates/serve/src/bad.rs"), src);

    let out = xtask(&[
        "lint",
        "--json",
        "--root",
        root.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "findings must exit 1 (distinct from usage errors)"
    );
    let v = serde_json::from_str(stdout(&out).trim()).expect("valid JSON even when failing");
    let findings = v
        .get("findings")
        .and_then(|f| f.as_array())
        .expect("findings array");
    assert!(
        findings.iter().any(|f| {
            f.get("code").and_then(|c| c.as_str()) == Some("SPMD004")
                && f.get("path").and_then(|p| p.as_str()) == Some("crates/serve/src/bad.rs")
                && f.get("line").and_then(|l| l.as_u64()) == Some(2)
        }),
        "expected SPMD004 at crates/serve/src/bad.rs:2, got {}",
        stdout(&out)
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn usage_errors_exit_two() {
    for args in [
        &["lint", "--bogus"] as &[&str],
        &["lint", "--root"],
        &["frobnicate"],
        &[],
    ] {
        let out = xtask(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
    }
}

fn scratch_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    root
}

fn write(path: &Path, content: &str) {
    std::fs::create_dir_all(path.parent().expect("scratch paths have parents"))
        .expect("create scratch dirs");
    std::fs::write(path, content).expect("write scratch file");
}
