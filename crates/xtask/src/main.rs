//! Repository automation — the static correctness pass.
//!
//! `cargo xtask lint` is a thin driver over the [`spmdlint`] analyzer:
//! it runs every pass (SPMD001–SPMD007: split-phase pairing, collective
//! divergence, hot-path allocation, serve panic hygiene, unsafe
//! allowlist, `#[must_use]` registry, missing-docs opt-in) across the
//! workspace and exits non-zero when anything is found, so CI can gate
//! on it.
//!
//! `cargo xtask lint --json` emits the machine-readable findings report
//! (`spmdlint-findings-v1`) on stdout instead of the human listing; the
//! exit code carries the pass/fail either way. `--root <path>` points
//! the analyzer at another workspace root (used by the CLI tests).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: cargo xtask lint [--json] [--root <path>]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let mut json = false;
            let mut root: Option<PathBuf> = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--json" => json = true,
                    "--root" => match it.next() {
                        Some(p) => root = Some(PathBuf::from(p)),
                        None => {
                            eprintln!("--root needs a path\n{USAGE}");
                            return ExitCode::from(2);
                        }
                    },
                    other => {
                        eprintln!("unknown lint flag `{other}`\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            lint(json, &root.unwrap_or_else(repo_root))
        }
        Some(other) => {
            eprintln!("unknown xtask command `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn lint(json: bool, root: &Path) -> ExitCode {
    let report = spmdlint::run_workspace(root);
    if json {
        println!("{}", spmdlint::to_json(&report));
    } else if report.findings.is_empty() {
        println!("xtask lint: OK ({} files scanned)", report.files_scanned);
    } else {
        eprintln!("xtask lint: {} finding(s)", report.findings.len());
        for f in &report.findings {
            eprintln!("  {f}");
        }
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The workspace root, two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask sits two levels below the repo root")
        .to_path_buf()
}
