//! Repository automation — the static correctness pass.
//!
//! `cargo xtask lint` enforces the repo's safety and API-hygiene policy
//! without any external tooling:
//!
//! 1. **Unsafe allowlist** — the token `unsafe` may appear (outside
//!    comments and string literals) only in the handful of modules listed
//!    in [`UNSAFE_ALLOWLIST`], and every occurrence there must carry a
//!    nearby `// SAFETY:` comment (or a `# Safety` doc section).
//!    Vendored shims (`shims/`) are exempt: they mirror external crates.
//! 2. **`#[must_use]` requests** — split-phase handle types whose silent
//!    drop loses messages ([`MUST_USE_TYPES`]) must be `#[must_use]`.
//! 3. **Documentation lint** — every library crate under `crates/` must
//!    opt into `#![warn(missing_docs)]` (or deny) at the crate root.
//!
//! Exit status is non-zero when any finding is reported, so CI can run
//! `cargo xtask lint` as a gate.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Modules allowed to contain `unsafe` code, relative to the repo root.
///
/// Everything else must stay safe Rust; adding a file here should come
/// with Miri coverage (see `.github/workflows/ci.yml`, job `miri`).
const UNSAFE_ALLOWLIST: &[&str] = &[
    // Disjoint row-slice handout: validated RowMap + SendPtr.
    "crates/accel/src/index.rs",
    // Scoped worker pool: lifetime-erased job pointers behind a latch.
    "crates/accel/src/pool.rs",
    // Threaded back-end: per-chunk partial slots + row slices.
    "crates/accel/src/device/threads.rs",
    // Test fixture: counting global allocator (passthrough to System).
    "crates/blockgrid/tests/halo_zero_alloc.rs",
    // Test fixture: counting global allocator (passthrough to System).
    "crates/krylov/tests/solve_zero_alloc.rs",
    // Test fixture: deliberately unsound kernel mutant the sanitizer
    // must catch.
    "crates/check/tests/mutations.rs",
];

/// `(file, type)` pairs that must be `#[must_use]`: dropping one of these
/// silently abandons an in-flight message or a borrowed ghost region.
const MUST_USE_TYPES: &[(&str, &str)] = &[
    ("crates/comm/src/types.rs", "RecvRequest"),
    ("crates/comm/src/types.rs", "ReduceRequest"),
    ("crates/blockgrid/src/halo.rs", "PendingExchange"),
    // Dropping a job handle silently discards the tenant's result.
    ("crates/serve/src/job.rs", "JobHandle"),
    // Dropping the fold handle abandons the slot partials of a fused
    // split-phase dot — the scalar would silently never be produced.
    ("crates/stencil/src/laplacian.rs", "PendingDotFold"),
];

/// How many lines above an `unsafe` token a `SAFETY` comment may sit.
const SAFETY_WINDOW: usize = 10;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("unknown xtask command `{other}`\nusage: cargo xtask lint");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::from(2)
        }
    }
}

fn lint() -> ExitCode {
    let root = repo_root();
    let mut findings = Vec::new();
    let mut scanned = 0usize;

    let mut files = Vec::new();
    collect_rust_files(&root.join("crates"), &mut files);
    collect_rust_files(&root.join("src"), &mut files);
    collect_rust_files(&root.join("tests"), &mut files);
    collect_rust_files(&root.join("examples"), &mut files);
    collect_rust_files(&root.join("benches"), &mut files);
    files.sort();

    for path in &files {
        scanned += 1;
        let rel = rel_path(&root, path);
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                findings.push(format!("{rel}: unreadable: {e}"));
                continue;
            }
        };
        audit_unsafe(&rel, &text, &mut findings);
    }

    audit_must_use(&root, &mut findings);
    audit_missing_docs(&root, &mut findings);

    if findings.is_empty() {
        println!("xtask lint: OK ({scanned} files scanned)");
        ExitCode::SUCCESS
    } else {
        let mut report = format!("xtask lint: {} finding(s)\n", findings.len());
        for f in &findings {
            let _ = writeln!(report, "  {f}");
        }
        eprint!("{report}");
        ExitCode::FAILURE
    }
}

/// The workspace root, two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask sits two levels below the repo root")
        .to_path_buf()
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Check the unsafe policy for one file.
fn audit_unsafe(rel: &str, text: &str, findings: &mut Vec<String>) {
    let code = strip_comments_and_strings(text);
    let allowlisted = UNSAFE_ALLOWLIST.contains(&rel);
    let original: Vec<&str> = text.lines().collect();
    for (i, line) in code.lines().enumerate() {
        if !has_word(line, "unsafe") {
            continue;
        }
        let lineno = i + 1;
        if !allowlisted {
            findings.push(format!(
                "{rel}:{lineno}: `unsafe` outside the allowlist \
                 (UNSAFE_ALLOWLIST in crates/xtask/src/main.rs)"
            ));
            continue;
        }
        let lo = i.saturating_sub(SAFETY_WINDOW);
        let documented = original[lo..=i.min(original.len() - 1)]
            .iter()
            .any(|l| l.contains("SAFETY") || l.contains("# Safety"));
        if !documented {
            findings.push(format!(
                "{rel}:{lineno}: `unsafe` without a `// SAFETY:` comment \
                 within {SAFETY_WINDOW} lines"
            ));
        }
    }
}

/// Check that the listed split-phase handle types are `#[must_use]`.
fn audit_must_use(root: &Path, findings: &mut Vec<String>) {
    for (rel, ty) in MUST_USE_TYPES {
        let path = root.join(rel);
        let Ok(text) = std::fs::read_to_string(&path) else {
            findings.push(format!("{rel}: missing (expected to define {ty})"));
            continue;
        };
        let lines: Vec<&str> = text.lines().collect();
        let decl = lines
            .iter()
            .position(|l| has_word(l, "struct") && has_word(l, ty));
        let Some(decl) = decl else {
            findings.push(format!("{rel}: type {ty} not found"));
            continue;
        };
        let lo = decl.saturating_sub(SAFETY_WINDOW);
        // Both `#[must_use]` and `#[must_use = "reason"]` count.
        let marked = lines[lo..=decl].iter().any(|l| l.contains("#[must_use"));
        if !marked {
            findings.push(format!(
                "{rel}:{}: {ty} must be #[must_use] (dropping it loses \
                 in-flight messages)",
                decl + 1
            ));
        }
    }
}

/// Check that every library crate warns on missing docs.
fn audit_missing_docs(root: &Path, findings: &mut Vec<String>) {
    let crates_dir = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        findings.push("crates/: missing".to_string());
        return;
    };
    for entry in entries.flatten() {
        let lib = entry.path().join("src/lib.rs");
        if !lib.is_file() {
            continue; // binary-only crate (e.g. xtask itself)
        }
        let rel = rel_path(root, &lib);
        let Ok(text) = std::fs::read_to_string(&lib) else {
            findings.push(format!("{rel}: unreadable"));
            continue;
        };
        let opted_in =
            text.contains("#![warn(missing_docs)]") || text.contains("#![deny(missing_docs)]");
        if !opted_in {
            findings.push(format!(
                "{rel}: crate root must carry #![warn(missing_docs)]"
            ));
        }
    }
}

/// True when `word` appears in `line` as a standalone token.
fn has_word(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Replace comments, string/char literals and raw strings with spaces,
/// preserving line structure so line numbers survive.
fn strip_comments_and_strings(src: &str) -> String {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
        Char,
    }
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut state = State::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match state {
            State::Code => {
                if c == b'/' && b.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if c == b'"' {
                    state = State::Str;
                    out.push(b' ');
                    i += 1;
                } else if c == b'r' && raw_str_hashes(b, i).is_some() {
                    let hashes = raw_str_hashes(b, i).expect("checked");
                    state = State::RawStr(hashes);
                    out.extend(std::iter::repeat_n(b' ', hashes + 2));
                    i += hashes + 2;
                } else if c == b'\'' && is_char_literal(b, i) {
                    state = State::Char;
                    out.push(b' ');
                    i += 1;
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                if c == b'\n' {
                    state = State::Code;
                    out.push(b'\n');
                } else {
                    out.push(b' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == b'*' && b.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    out.push(if c == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::Str => {
                if c == b'\\' && i + 1 < b.len() {
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    if c == b'"' {
                        state = State::Code;
                    }
                    out.push(if c == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == b'"' && closes_raw_str(b, i, hashes) {
                    out.extend(std::iter::repeat_n(b' ', hashes + 1));
                    i += hashes + 1;
                    state = State::Code;
                } else {
                    out.push(if c == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::Char => {
                if c == b'\\' && i + 1 < b.len() {
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    if c == b'\'' {
                        state = State::Code;
                    }
                    out.push(b' ');
                    i += 1;
                }
            }
        }
    }
    String::from_utf8(out).expect("only ASCII substitutions")
}

/// `Some(n)` when `b[i..]` starts a raw string `r#*"` with `n` hashes.
fn raw_str_hashes(b: &[u8], i: usize) -> Option<usize> {
    debug_assert_eq!(b[i], b'r');
    // `r` must not continue an identifier (e.g. `for`, `ptr`).
    if i > 0 && is_ident_byte(b[i - 1]) {
        return None;
    }
    let mut j = i + 1;
    let mut hashes = 0;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (b.get(j) == Some(&b'"')).then_some(hashes)
}

/// True when the `"` at `b[i]` is followed by `hashes` `#` characters.
fn closes_raw_str(b: &[u8], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|h| b.get(i + h) == Some(&b'#'))
}

/// Distinguish a char literal from a lifetime: `'x'` or `'\n'` vs `'a`.
fn is_char_literal(b: &[u8], i: usize) -> bool {
    debug_assert_eq!(b[i], b'\'');
    match b.get(i + 1) {
        Some(b'\\') => true,
        Some(_) => b.get(i + 2) == Some(&b'\''),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripping_removes_comments_and_strings() {
        let src = "let a = \"unsafe\"; // unsafe here\nunsafe { x() }\n";
        let code = strip_comments_and_strings(src);
        let lines: Vec<&str> = code.lines().collect();
        assert!(!has_word(lines[0], "unsafe"));
        assert!(has_word(lines[1], "unsafe"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } // unsafe\n";
        let code = strip_comments_and_strings(src);
        assert!(code.contains("fn f<'a>"));
        assert!(!has_word(&code, "unsafe"));
    }

    #[test]
    fn raw_strings_are_stripped() {
        let src = "let s = r#\"unsafe \"quoted\" text\"#; unsafe_name();\n";
        let code = strip_comments_and_strings(src);
        assert!(!has_word(&code, "unsafe"));
        assert!(code.contains("unsafe_name"));
    }

    #[test]
    fn word_boundaries_respected() {
        assert!(has_word("unsafe {", "unsafe"));
        assert!(!has_word("unsafe_fn()", "unsafe"));
        assert!(!has_word("not_unsafe", "unsafe"));
    }

    #[test]
    fn must_use_audit_catches_unmarked_fold_handle() {
        // Seeded mutation: a PendingDotFold declaration stripped of its
        // `#[must_use]` marker must produce a finding, and the marked
        // form must not — the lint really reads the attribute, not just
        // the type name.
        let dir = std::env::temp_dir().join(format!("xtask-mustuse-{}", std::process::id()));
        let file = dir.join("crates/stencil/src/laplacian.rs");
        std::fs::create_dir_all(file.parent().unwrap()).unwrap();

        std::fs::write(&file, "pub struct PendingDotFold<const NR: usize> {}\n").unwrap();
        let mut findings = Vec::new();
        audit_must_use(&dir, &mut findings);
        assert!(
            findings
                .iter()
                .any(|f| f.contains("PendingDotFold") && f.contains("must be #[must_use]")),
            "unmarked mutant not caught: {findings:?}"
        );

        std::fs::write(
            &file,
            "#[must_use = \"fold the partials\"]\npub struct PendingDotFold<const NR: usize> {}\n",
        )
        .unwrap();
        let mut findings = Vec::new();
        audit_must_use(&dir, &mut findings);
        assert!(
            !findings.iter().any(|f| f.contains("PendingDotFold")),
            "marked declaration flagged: {findings:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
