//! Performance-event recording.
//!
//! The paper characterises its solver with rocProf/Omnitrace traces (Fig. 8)
//! and per-stage timing breakdowns (Figs. 6-7). Since no GPU hardware is
//! available here, the solver instead emits a stream of *logical* events —
//! kernel launches with their traffic/flop footprints, host↔device
//! transfers, halo messages and reductions — which the `perfmodel` crate
//! replays through calibrated machine models to obtain modeled timelines
//! and times-to-solution.
//!
//! Recording is optional: a disabled [`Recorder`] is a no-op that costs one
//! branch per kernel launch.

use parking_lot::Mutex;
use std::sync::Arc;

/// Stage name bracketing a communication/compute overlap window: the
/// halo exchange is in flight from `Begin` to `End`, so events recorded
/// inside the window model work that hides the communication (replayed
/// as `max(comm, compute)` by the performance model).
pub const HALO_OVERLAP_STAGE: &str = "HaloOverlap";

/// Stage name bracketing a reduction/compute overlap window: a
/// split-phase `iall_reduce` is in flight from `Begin` to `End`, so
/// kernels recorded inside the window model compute that hides the
/// reduction latency (replayed as `max(allreduce, compute)` by the
/// performance model).
pub const REDUCE_OVERLAP_STAGE: &str = "ReduceOverlap";

/// Static cost metadata for one kernel, per element of the launch.
///
/// `bytes_per_elem` counts distinct reads + writes per interior element
/// (assuming perfect cache reuse of stencil neighbours, i.e. streaming
/// traffic), which is the standard roofline accounting for stencil codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelInfo {
    /// Kernel name as it appears in traces (e.g. `"KernelBiCGS1"`).
    pub name: &'static str,
    /// Streaming bytes moved per element.
    pub bytes_per_elem: u32,
    /// Floating-point operations per element.
    pub flops_per_elem: u32,
}

impl KernelInfo {
    /// Construct kernel metadata.
    pub const fn new(name: &'static str, bytes_per_elem: u32, flops_per_elem: u32) -> Self {
        Self {
            name,
            bytes_per_elem,
            flops_per_elem,
        }
    }

    /// Metadata for a kernel that fuses `a` and `b` into one sweep.
    ///
    /// Flops add (both bodies still execute per element); streaming bytes
    /// add *minus* `dedup_bytes`, the per-element traffic the fusion
    /// eliminates because an operand is re-read (or a value re-written)
    /// by both members but only streamed once in the fused sweep. This is
    /// the accounting rule the performance model costs fused kernels by.
    pub const fn fused(name: &'static str, a: KernelInfo, b: KernelInfo, dedup_bytes: u32) -> Self {
        Self {
            name,
            bytes_per_elem: a.bytes_per_elem + b.bytes_per_elem - dedup_bytes,
            flops_per_elem: a.flops_per_elem + b.flops_per_elem,
        }
    }

    /// Rescale element-wise metadata to *row*-wise metadata for kernels
    /// recorded through [`Device::launch_reduce`], whose element count is
    /// the row count `ny·nz`: a grid-field reduction streams `row_len`
    /// elements per row, so bytes and flops multiply by the row length
    /// and the recorded totals stay honest. Without this a dot's traffic
    /// would be under-booked by `nx` in the performance model.
    ///
    /// [`Device::launch_reduce`]: crate::Device::launch_reduce
    pub const fn per_row(self, row_len: usize) -> Self {
        Self {
            name: self.name,
            bytes_per_elem: self.bytes_per_elem * row_len as u32,
            flops_per_elem: self.flops_per_elem * row_len as u32,
        }
    }
}

/// One logical performance event.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A device kernel launch.
    Kernel {
        /// Kernel name.
        name: &'static str,
        /// Number of elements processed.
        elems: u64,
        /// Total streaming bytes.
        bytes: u64,
        /// Total floating point operations.
        flops: u64,
    },
    /// Host-to-device transfer.
    H2D {
        /// Bytes transferred.
        bytes: u64,
    },
    /// Device-to-host transfer.
    D2H {
        /// Bytes transferred.
        bytes: u64,
    },
    /// Point-to-point halo traffic posted by this rank in one exchange.
    Halo {
        /// Number of messages sent.
        msgs: u32,
        /// Total payload bytes sent.
        bytes: u64,
    },
    /// A global reduction this rank participated in.
    AllReduce {
        /// Number of scalars reduced.
        elems: u32,
        /// Payload bytes per stage (`elems × element width`): the
        /// per-precision width is carried with the event so the
        /// performance model never has to assume 8 B/scalar.
        bytes: u64,
    },
    /// Begin of a named stage (for trace rendering).
    Begin {
        /// Stage name (e.g. `"Preconditioner"`, `"MPI1"`).
        name: &'static str,
    },
    /// End of the innermost open stage with this name.
    End {
        /// Stage name.
        name: &'static str,
    },
}

#[derive(Default, Debug)]
struct Sink {
    events: Mutex<Vec<Event>>,
}

/// A cloneable handle onto an event stream.
///
/// Cloned handles share the same sink, so a device and a communicator owned
/// by the same rank append to one ordered per-rank stream.
#[derive(Clone, Default, Debug)]
pub struct Recorder {
    sink: Option<Arc<Sink>>,
}

impl Recorder {
    /// A recorder that drops all events.
    pub fn disabled() -> Self {
        Self { sink: None }
    }

    /// A recorder that appends events to a fresh shared stream.
    pub fn enabled() -> Self {
        Self {
            sink: Some(Arc::new(Sink::default())),
        }
    }

    /// `true` if events are being captured.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Append one event (no-op when disabled).
    #[inline]
    pub fn record(&self, ev: Event) {
        if let Some(sink) = &self.sink {
            sink.events.lock().push(ev);
        }
    }

    /// Record a kernel launch of `elems` elements described by `info`.
    #[inline]
    pub fn kernel(&self, info: KernelInfo, elems: usize) {
        if self.sink.is_some() {
            self.record(Event::Kernel {
                name: info.name,
                elems: elems as u64,
                bytes: elems as u64 * u64::from(info.bytes_per_elem),
                flops: elems as u64 * u64::from(info.flops_per_elem),
            });
        }
    }

    /// Record the begin of a named stage.
    #[inline]
    pub fn begin(&self, name: &'static str) {
        self.record(Event::Begin { name });
    }

    /// Record the end of a named stage.
    #[inline]
    pub fn end(&self, name: &'static str) {
        self.record(Event::End { name });
    }

    /// Run `f` inside a `Begin`/`End` pair.
    pub fn stage<R>(&self, name: &'static str, f: impl FnOnce() -> R) -> R {
        self.begin(name);
        let r = f();
        self.end(name);
        r
    }

    /// Snapshot and clear the recorded stream.
    pub fn drain(&self) -> Vec<Event> {
        match &self.sink {
            Some(sink) => std::mem::take(&mut *sink.events.lock()),
            None => Vec::new(),
        }
    }

    /// Snapshot the recorded stream without clearing it.
    pub fn snapshot(&self) -> Vec<Event> {
        match &self.sink {
            Some(sink) => sink.events.lock().clone(),
            None => Vec::new(),
        }
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.sink.as_ref().map_or(0, |s| s.events.lock().len())
    }

    /// `true` if no events are buffered (or recording is disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_drops_events() {
        let r = Recorder::disabled();
        r.record(Event::H2D { bytes: 10 });
        assert!(!r.is_enabled());
        assert!(r.is_empty());
        assert_eq!(r.drain(), vec![]);
    }

    #[test]
    fn enabled_recorder_captures_in_order() {
        let r = Recorder::enabled();
        r.begin("MPI1");
        r.record(Event::Halo {
            msgs: 6,
            bytes: 4096,
        });
        r.end("MPI1");
        let evs = r.drain();
        assert_eq!(
            evs,
            vec![
                Event::Begin { name: "MPI1" },
                Event::Halo {
                    msgs: 6,
                    bytes: 4096
                },
                Event::End { name: "MPI1" },
            ]
        );
        assert!(r.is_empty());
    }

    #[test]
    fn kernel_event_totals() {
        let r = Recorder::enabled();
        let info = KernelInfo::new("KernelBiCGS1", 24, 10);
        r.kernel(info, 1000);
        match &r.snapshot()[0] {
            Event::Kernel {
                name,
                elems,
                bytes,
                flops,
            } => {
                assert_eq!(*name, "KernelBiCGS1");
                assert_eq!(*elems, 1000);
                assert_eq!(*bytes, 24_000);
                assert_eq!(*flops, 10_000);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn clones_share_the_stream() {
        let r = Recorder::enabled();
        let r2 = r.clone();
        r.record(Event::H2D { bytes: 1 });
        r2.record(Event::D2H { bytes: 2 });
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn stage_wraps_closure() {
        let r = Recorder::enabled();
        let v = r.stage("Preconditioner", || 42);
        assert_eq!(v, 42);
        let evs = r.drain();
        assert_eq!(
            evs.first(),
            Some(&Event::Begin {
                name: "Preconditioner"
            })
        );
        assert_eq!(
            evs.last(),
            Some(&Event::End {
                name: "Preconditioner"
            })
        );
    }
}
