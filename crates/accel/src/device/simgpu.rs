//! Simulated-GPU back-end.
//!
//! No GPU hardware is available in this environment, so this back-end
//! reproduces the *algorithmically visible* properties of a GPU execution:
//!
//! * **Block-structured work division.** Rows are grouped into thread
//!   blocks of `block_rows` rows; a real launch would map these to CUDA/HIP
//!   blocks. Block geometry is part of the device identity — "MI250X" and
//!   "H100" presets use different shapes, as the tuned alpaka work
//!   divisions on those chips do.
//! * **Tree reductions.** Per-block partials are combined with a pairwise
//!   binary tree, the canonical GPU reduction order. This produces
//!   different floating-point rounding than the serial or chunked-CPU
//!   orders — the mechanism behind the paper's observation that CPU and
//!   GPU back-ends need different iteration counts.
//! * **Launch accounting.** Every launch is recorded with its element,
//!   byte and flop footprint so `perfmodel` can replay the stream against
//!   real MI250X/H100 bandwidth/latency figures.
//!
//! Execution itself is host-serial: on the single-core evaluation machine,
//! parallel emulation would add noise without changing any observable the
//! reproduction relies on.

use crate::events::{KernelInfo, Recorder};
use crate::index::RowMap;
use crate::scalar::{add_partials, Scalar};

use super::{Device, DeviceKind};

/// Block geometry and identity of a simulated GPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GpuSimParams {
    /// Device name used in reports ("mi250x", "h100", ...).
    pub name: &'static str,
    /// Rows folded sequentially inside one simulated thread block.
    pub block_rows: usize,
}

impl GpuSimParams {
    /// AMD MI250X GCD preset (LUMI-G node device).
    pub const fn mi250x() -> Self {
        Self {
            name: "mi250x",
            block_rows: 4,
        }
    }

    /// NVIDIA H100 preset (MareNostrum5 accelerated partition device).
    pub const fn h100() -> Self {
        Self {
            name: "h100",
            block_rows: 8,
        }
    }
}

/// Simulated GPU device.
#[derive(Clone)]
pub struct SimGpu {
    params: GpuSimParams,
    recorder: Recorder,
}

impl SimGpu {
    /// Create a simulated GPU with the given geometry.
    pub fn new(params: GpuSimParams, recorder: Recorder) -> Self {
        assert!(params.block_rows >= 1, "block_rows must be >= 1");
        Self { params, recorder }
    }

    /// The device's block geometry.
    pub fn params(&self) -> GpuSimParams {
        self.params
    }
}

/// Pairwise binary-tree combination of block partials (GPU reduction order).
fn tree_reduce<T: Scalar, const NR: usize>(mut partials: Vec<[T; NR]>) -> [T; NR] {
    if partials.is_empty() {
        return [T::ZERO; NR];
    }
    while partials.len() > 1 {
        let half = partials.len() / 2;
        for i in 0..half {
            partials[i] = add_partials(partials[2 * i], partials[2 * i + 1]);
        }
        if partials.len() % 2 == 1 {
            partials[half] = partials[partials.len() - 1];
            partials.truncate(half + 1);
        } else {
            partials.truncate(half);
        }
    }
    partials[0]
}

impl Device for SimGpu {
    fn name(&self) -> String {
        format!("simgpu-{}", self.params.name)
    }

    fn kind(&self) -> DeviceKind {
        DeviceKind::SimGpu {
            block_rows: self.params.block_rows,
        }
    }

    fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    fn launch_rows_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        map: RowMap,
        out: &mut [T],
        f: F,
    ) -> [T; NR]
    where
        F: Fn(usize, usize, &mut [T]) -> [T; NR] + Sync,
    {
        map.validate(out.len());
        self.recorder.kernel(info, map.elems());
        let rows = map.rows();
        let bs = self.params.block_rows;
        let blocks = rows.div_ceil(bs);
        let mut block_partials = Vec::with_capacity(blocks);
        for b in 0..blocks {
            let mut acc = [T::ZERO; NR];
            for r in b * bs..((b + 1) * bs).min(rows) {
                let (j, k) = map.row_jk(r);
                let off = map.row_offset(j, k);
                let row = &mut out[off..off + map.len];
                acc = add_partials(acc, f(j, k, row));
            }
            block_partials.push(acc);
        }
        tree_reduce(block_partials)
    }

    fn launch_rows2_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        map_a: RowMap,
        out_a: &mut [T],
        map_b: RowMap,
        out_b: &mut [T],
        f: F,
    ) -> [T; NR]
    where
        F: Fn(usize, usize, &mut [T], &mut [T]) -> [T; NR] + Sync,
    {
        map_a.validate(out_a.len());
        map_b.validate(out_b.len());
        assert_eq!(
            (map_a.ny, map_a.nz),
            (map_b.ny, map_b.nz),
            "two-map launch requires matching row sets"
        );
        self.recorder.kernel(info, map_a.elems());
        let rows = map_a.rows();
        let bs = self.params.block_rows;
        let blocks = rows.div_ceil(bs);
        let mut block_partials = Vec::with_capacity(blocks);
        for b in 0..blocks {
            let mut acc = [T::ZERO; NR];
            for r in b * bs..((b + 1) * bs).min(rows) {
                let (j, k) = map_a.row_jk(r);
                let off_a = map_a.row_offset(j, k);
                let off_b = map_b.row_offset(j, k);
                let row_a = &mut out_a[off_a..off_a + map_a.len];
                let row_b = &mut out_b[off_b..off_b + map_b.len];
                acc = add_partials(acc, f(j, k, row_a, row_b));
            }
            block_partials.push(acc);
        }
        tree_reduce(block_partials)
    }

    fn launch_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        ny: usize,
        nz: usize,
        f: F,
    ) -> [T; NR]
    where
        F: Fn(usize, usize) -> [T; NR] + Sync,
    {
        self.recorder.kernel(info, ny * nz);
        let rows = ny * nz;
        if rows == 0 {
            return [T::ZERO; NR];
        }
        let bs = self.params.block_rows;
        let blocks = rows.div_ceil(bs);
        let mut block_partials = Vec::with_capacity(blocks);
        for b in 0..blocks {
            let mut acc = [T::ZERO; NR];
            for r in b * bs..((b + 1) * bs).min(rows) {
                acc = add_partials(acc, f(r % ny, r / ny));
            }
            block_partials.push(acc);
        }
        tree_reduce(block_partials)
    }

    fn launch_lanes_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        map: RowMap,
        lanes: &mut [&mut [T]],
        accs: &mut [[T; NR]],
        f: F,
    ) where
        F: Fn(usize, usize, usize, &mut [T]) -> [T; NR] + Sync,
    {
        super::validate_lanes(&map, lanes, accs.len());
        if lanes.is_empty() {
            return;
        }
        // One recorded launch covering all lanes: the batched sweep pays
        // the (modelled) launch latency once, which is exactly the multi-RHS
        // amortization the perfmodel replay credits.
        self.recorder.kernel(info, map.elems() * lanes.len());
        let rows = map.rows();
        let bs = self.params.block_rows;
        let blocks = rows.div_ceil(bs);
        let nl = lanes.len();
        // Lane-major block partials: lane s owns [s*blocks, (s+1)*blocks).
        // Block geometry depends on rows only, so each lane's partials feed
        // the same pairwise tree a solo launch would build — bitwise equal
        // per lane.
        let mut block_partials: Vec<[T; NR]> = vec![[T::ZERO; NR]; blocks * nl];
        for b in 0..blocks {
            for r in b * bs..((b + 1) * bs).min(rows) {
                let (j, k) = map.row_jk(r);
                let off = map.row_offset(j, k);
                for (s, lane) in lanes.iter_mut().enumerate() {
                    let row = &mut lane[off..off + map.len];
                    let slot = &mut block_partials[s * blocks + b];
                    *slot = add_partials(*slot, f(s, j, k, row));
                }
            }
        }
        for (s, acc) in accs.iter_mut().enumerate() {
            *acc = tree_reduce(block_partials[s * blocks..(s + 1) * blocks].to_vec());
        }
    }

    fn launch_lanes2_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        map_a: RowMap,
        lanes_a: &mut [&mut [T]],
        map_b: RowMap,
        lanes_b: &mut [&mut [T]],
        accs: &mut [[T; NR]],
        f: F,
    ) where
        F: Fn(usize, usize, usize, &mut [T], &mut [T]) -> [T; NR] + Sync,
    {
        super::validate_lanes(&map_a, lanes_a, accs.len());
        super::validate_lanes(&map_b, lanes_b, accs.len());
        assert_eq!(lanes_a.len(), lanes_b.len(), "lane count mismatch");
        assert_eq!(
            (map_a.ny, map_a.nz),
            (map_b.ny, map_b.nz),
            "two-map launch requires matching row sets"
        );
        if lanes_a.is_empty() {
            return;
        }
        self.recorder.kernel(info, map_a.elems() * lanes_a.len());
        let rows = map_a.rows();
        let bs = self.params.block_rows;
        let blocks = rows.div_ceil(bs);
        let nl = lanes_a.len();
        let mut block_partials: Vec<[T; NR]> = vec![[T::ZERO; NR]; blocks * nl];
        for b in 0..blocks {
            for r in b * bs..((b + 1) * bs).min(rows) {
                let (j, k) = map_a.row_jk(r);
                let off_a = map_a.row_offset(j, k);
                let off_b = map_b.row_offset(j, k);
                for (s, (lane_a, lane_b)) in lanes_a.iter_mut().zip(lanes_b.iter_mut()).enumerate()
                {
                    let row_a = &mut lane_a[off_a..off_a + map_a.len];
                    let row_b = &mut lane_b[off_b..off_b + map_b.len];
                    let slot = &mut block_partials[s * blocks + b];
                    *slot = add_partials(*slot, f(s, j, k, row_a, row_b));
                }
            }
        }
        for (s, acc) in accs.iter_mut().enumerate() {
            *acc = tree_reduce(block_partials[s * blocks..(s + 1) * blocks].to_vec());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Serial;
    use crate::index::Extent3;

    const INFO: KernelInfo = KernelInfo::new("test", 8, 1);

    #[test]
    fn tree_reduce_exact_values() {
        let parts: Vec<[f64; 1]> = (1..=9).map(|i| [i as f64]).collect();
        assert_eq!(tree_reduce(parts), [45.0]);
        let empty: Vec<[f64; 1]> = vec![];
        assert_eq!(tree_reduce(empty), [0.0]);
        assert_eq!(tree_reduce(vec![[7.0f64]]), [7.0]);
    }

    #[test]
    fn elementwise_matches_serial() {
        let e = Extent3::new(4, 6, 5);
        let map = RowMap::halo_interior(e);
        let padded = 6 * 8 * 7;
        let mut a = vec![0.0f64; padded];
        let mut b = vec![0.0f64; padded];
        let kernel = |j: usize, k: usize, row: &mut [f64]| {
            for (i, v) in row.iter_mut().enumerate() {
                *v = (i * 31 + j * 7 + k) as f64;
            }
        };
        Serial::new(Recorder::disabled()).launch_rows(INFO, map, &mut a, kernel);
        SimGpu::new(GpuSimParams::mi250x(), Recorder::disabled())
            .launch_rows(INFO, map, &mut b, kernel);
        assert_eq!(a, b);
    }

    #[test]
    fn reduction_exact_on_integers() {
        let dev = SimGpu::new(GpuSimParams::h100(), Recorder::disabled());
        let [s] = dev.launch_reduce(INFO, 37, 11, |j, k| [(j + k) as f64]);
        let expect: f64 = (0..11)
            .flat_map(|k| (0..37).map(move |j| (j + k) as f64))
            .sum();
        assert_eq!(s, expect);
    }

    #[test]
    fn rounding_differs_from_serial_on_inexact_sums() {
        // A sum of many irrational-ish values: tree vs serial grouping
        // should (almost surely) give different last-bit results, which is
        // exactly the nondeterminism mechanism the paper reports.
        let n = 4096;
        let data: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7391).sin() / 3.0).collect();
        let serial = Serial::new(Recorder::disabled());
        let gpu = SimGpu::new(GpuSimParams::mi250x(), Recorder::disabled());
        let [a]: [f64; 1] = serial.launch_reduce(INFO, n, 1, |j, _| [data[j]]);
        let [b]: [f64; 1] = gpu.launch_reduce(INFO, n, 1, |j, _| [data[j]]);
        assert!((a - b).abs() < 1e-12, "same value mathematically");
        assert_ne!(a.to_bits(), b.to_bits(), "different rounding expected");
    }

    #[test]
    fn presets_have_distinct_geometry() {
        assert_ne!(
            GpuSimParams::mi250x().block_rows,
            GpuSimParams::h100().block_rows
        );
    }
}
