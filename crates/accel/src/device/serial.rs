//! Single-threaded reference back-end.

use crate::events::{KernelInfo, Recorder};
use crate::index::RowMap;
use crate::scalar::{add_partials, Scalar};

use super::{Device, DeviceKind};

/// Serial CPU device: rows execute in linear order and reduction partials
/// fold in that same order, making every launch bitwise-deterministic.
/// This is the reference semantics all other back-ends are tested against.
#[derive(Clone)]
pub struct Serial {
    recorder: Recorder,
}

impl Serial {
    /// Create a serial device reporting to `recorder`.
    pub fn new(recorder: Recorder) -> Self {
        Self { recorder }
    }
}

impl Device for Serial {
    fn name(&self) -> String {
        "cpu-serial".to_owned()
    }

    fn kind(&self) -> DeviceKind {
        DeviceKind::CpuSerial
    }

    fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    fn launch_rows_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        map: RowMap,
        out: &mut [T],
        f: F,
    ) -> [T; NR]
    where
        F: Fn(usize, usize, &mut [T]) -> [T; NR] + Sync,
    {
        map.validate(out.len());
        self.recorder.kernel(info, map.elems());
        let mut acc = [T::ZERO; NR];
        for k in 0..map.nz {
            for j in 0..map.ny {
                let off = map.row_offset(j, k);
                let row = &mut out[off..off + map.len];
                acc = add_partials(acc, f(j, k, row));
            }
        }
        acc
    }

    fn launch_rows2_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        map_a: RowMap,
        out_a: &mut [T],
        map_b: RowMap,
        out_b: &mut [T],
        f: F,
    ) -> [T; NR]
    where
        F: Fn(usize, usize, &mut [T], &mut [T]) -> [T; NR] + Sync,
    {
        map_a.validate(out_a.len());
        map_b.validate(out_b.len());
        assert_eq!(
            (map_a.ny, map_a.nz),
            (map_b.ny, map_b.nz),
            "two-map launch requires matching row sets"
        );
        self.recorder.kernel(info, map_a.elems());
        let mut acc = [T::ZERO; NR];
        for k in 0..map_a.nz {
            for j in 0..map_a.ny {
                let off_a = map_a.row_offset(j, k);
                let off_b = map_b.row_offset(j, k);
                let row_a = &mut out_a[off_a..off_a + map_a.len];
                let row_b = &mut out_b[off_b..off_b + map_b.len];
                acc = add_partials(acc, f(j, k, row_a, row_b));
            }
        }
        acc
    }

    fn launch_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        ny: usize,
        nz: usize,
        f: F,
    ) -> [T; NR]
    where
        F: Fn(usize, usize) -> [T; NR] + Sync,
    {
        self.recorder.kernel(info, ny * nz);
        let mut acc = [T::ZERO; NR];
        for k in 0..nz {
            for j in 0..ny {
                acc = add_partials(acc, f(j, k));
            }
        }
        acc
    }

    fn launch_lanes_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        map: RowMap,
        lanes: &mut [&mut [T]],
        accs: &mut [[T; NR]],
        f: F,
    ) where
        F: Fn(usize, usize, usize, &mut [T]) -> [T; NR] + Sync,
    {
        super::validate_lanes(&map, lanes, accs.len());
        if lanes.is_empty() {
            return;
        }
        // One launch for the whole lane sweep; each lane still folds its
        // own rows in (k, j) order, so per-lane results stay bitwise equal
        // to a solo launch_rows_reduce over that lane's field.
        self.recorder.kernel(info, map.elems() * lanes.len());
        accs.fill([T::ZERO; NR]);
        for k in 0..map.nz {
            for j in 0..map.ny {
                let off = map.row_offset(j, k);
                for (s, lane) in lanes.iter_mut().enumerate() {
                    let row = &mut lane[off..off + map.len];
                    accs[s] = add_partials(accs[s], f(s, j, k, row));
                }
            }
        }
    }

    fn launch_lanes2_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        map_a: RowMap,
        lanes_a: &mut [&mut [T]],
        map_b: RowMap,
        lanes_b: &mut [&mut [T]],
        accs: &mut [[T; NR]],
        f: F,
    ) where
        F: Fn(usize, usize, usize, &mut [T], &mut [T]) -> [T; NR] + Sync,
    {
        super::validate_lanes(&map_a, lanes_a, accs.len());
        super::validate_lanes(&map_b, lanes_b, accs.len());
        assert_eq!(lanes_a.len(), lanes_b.len(), "lane count mismatch");
        assert_eq!(
            (map_a.ny, map_a.nz),
            (map_b.ny, map_b.nz),
            "two-map launch requires matching row sets"
        );
        if lanes_a.is_empty() {
            return;
        }
        self.recorder.kernel(info, map_a.elems() * lanes_a.len());
        accs.fill([T::ZERO; NR]);
        for k in 0..map_a.nz {
            for j in 0..map_a.ny {
                let off_a = map_a.row_offset(j, k);
                let off_b = map_b.row_offset(j, k);
                for (s, (lane_a, lane_b)) in lanes_a.iter_mut().zip(lanes_b.iter_mut()).enumerate()
                {
                    let row_a = &mut lane_a[off_a..off_a + map_a.len];
                    let row_b = &mut lane_b[off_b..off_b + map_b.len];
                    accs[s] = add_partials(accs[s], f(s, j, k, row_a, row_b));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Extent3;

    const INFO: KernelInfo = KernelInfo::new("test", 8, 1);

    #[test]
    fn writes_only_interior() {
        let e = Extent3::new(2, 2, 2);
        let map = RowMap::halo_interior(e);
        let padded = 4 * 4 * 4;
        let mut out = vec![0.0f64; padded];
        let dev = Serial::new(Recorder::disabled());
        dev.launch_rows(INFO, map, &mut out, |_, _, row| {
            for v in row.iter_mut() {
                *v = 1.0;
            }
        });
        let written = out.iter().filter(|&&v| v == 1.0).count();
        assert_eq!(written, e.len());
        // halo corners untouched
        assert_eq!(out[0], 0.0);
        assert_eq!(out[padded - 1], 0.0);
    }

    #[test]
    fn fused_reduction_matches_manual_sum() {
        let map = RowMap::contiguous(100);
        let mut out = vec![0.0f64; 100];
        let input: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let dev = Serial::new(Recorder::disabled());
        let [dot] = dev.launch_rows_reduce(INFO, map, &mut out, |_, _, row| {
            let mut s = 0.0;
            for (o, &x) in row.iter_mut().zip(&input) {
                *o = 2.0 * x;
                s += x * x;
            }
            [s]
        });
        let expect: f64 = input.iter().map(|x| x * x).sum();
        assert_eq!(dot, expect);
        assert_eq!(out[3], 6.0);
    }

    #[test]
    fn pure_reduce_over_rows() {
        let dev = Serial::new(Recorder::disabled());
        let [s] = dev.launch_reduce(INFO, 4, 5, |j, k| [(j + k) as f64]);
        let expect: f64 = (0..5)
            .flat_map(|k| (0..4).map(move |j| (j + k) as f64))
            .sum();
        assert_eq!(s, expect);
    }

    #[test]
    fn records_launch_event() {
        let rec = Recorder::enabled();
        let dev = Serial::new(rec.clone());
        let mut out = vec![0.0f64; 10];
        dev.launch_rows(INFO, RowMap::contiguous(10), &mut out, |_, _, _| {});
        assert_eq!(rec.len(), 1);
    }
}
