//! Threaded CPU back-end (alpaka's OpenMP-blocks analogue).

use std::sync::Arc;

use crate::events::{KernelInfo, Recorder};
use crate::index::{chunk_range, row_slice_mut, RowMap, SendPtr};
use crate::pool::ThreadPool;
use crate::scalar::{add_partials, Scalar};

use super::{Device, DeviceKind};

/// Multi-threaded CPU device.
///
/// Rows are split into one contiguous chunk per worker; each worker folds
/// its rows in order and chunk partials are merged in chunk order. The
/// result is deterministic for a fixed worker count but uses a different
/// floating-point summation grouping than [`super::Serial`] — the same
/// effect an OpenMP `reduction(+:...)` clause has on the paper's LUMI-C
/// runs, and the reason their CPU back-end needs more iterations than the
/// GPU ones on the small problem.
#[derive(Clone)]
pub struct Threads {
    pool: Arc<ThreadPool>,
    recorder: Recorder,
}

impl Threads {
    /// Create a device with `threads >= 1` pool workers.
    pub fn new(threads: usize, recorder: Recorder) -> Self {
        Self {
            pool: Arc::new(ThreadPool::new(threads)),
            recorder,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.pool.size()
    }

    fn chunks_for(&self, rows: usize) -> usize {
        // One chunk per worker, but never more chunks than rows.
        self.pool.size().min(rows).max(1)
    }
}

impl Device for Threads {
    fn name(&self) -> String {
        format!("cpu-threads({})", self.pool.size())
    }

    fn kind(&self) -> DeviceKind {
        DeviceKind::CpuThreads {
            threads: self.pool.size(),
        }
    }

    fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    fn launch_rows_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        map: RowMap,
        out: &mut [T],
        f: F,
    ) -> [T; NR]
    where
        F: Fn(usize, usize, &mut [T]) -> [T; NR] + Sync,
    {
        map.validate(out.len());
        self.recorder.kernel(info, map.elems());
        let rows = map.rows();
        let chunks = self.chunks_for(rows);
        // Lock-free partial collection: each chunk writes only its own slot,
        // so no synchronization beyond the pool's completion latch is needed.
        let mut partials: Vec<[T; NR]> = vec![[T::ZERO; NR]; chunks];
        let partials_ptr = SendPtr(partials.as_mut_ptr());
        let ptr = SendPtr(out.as_mut_ptr());
        self.pool.run_chunks(chunks, &|c| {
            let mut acc = [T::ZERO; NR];
            for r in chunk_range(rows, chunks, c) {
                let (j, k) = map.row_jk(r);
                // SAFETY: `map` validated above; each row index `r` belongs
                // to exactly one chunk, so row slices never alias.
                let row = unsafe { row_slice_mut(ptr, &map, j, k) };
                acc = add_partials(acc, f(j, k, row));
            }
            // SAFETY: `c < chunks == partials.len()` and each chunk index is
            // dispatched exactly once, so the writes are disjoint; the Vec
            // outlives `run_chunks`, which joins all workers before returning.
            let slots = partials_ptr;
            unsafe { *slots.0.add(c) = acc };
        });
        // Merge chunk partials in chunk order (deterministic per thread count).
        partials.into_iter().fold([T::ZERO; NR], add_partials)
    }

    fn launch_rows2_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        map_a: RowMap,
        out_a: &mut [T],
        map_b: RowMap,
        out_b: &mut [T],
        f: F,
    ) -> [T; NR]
    where
        F: Fn(usize, usize, &mut [T], &mut [T]) -> [T; NR] + Sync,
    {
        map_a.validate(out_a.len());
        map_b.validate(out_b.len());
        assert_eq!(
            (map_a.ny, map_a.nz),
            (map_b.ny, map_b.nz),
            "two-map launch requires matching row sets"
        );
        self.recorder.kernel(info, map_a.elems());
        let rows = map_a.rows();
        let chunks = self.chunks_for(rows);
        // Same lock-free partial collection and chunk-order merge as
        // launch_rows_reduce, so fused two-buffer sweeps reduce with the
        // identical floating-point grouping as single-buffer ones.
        let mut partials: Vec<[T; NR]> = vec![[T::ZERO; NR]; chunks];
        let partials_ptr = SendPtr(partials.as_mut_ptr());
        let ptr_a = SendPtr(out_a.as_mut_ptr());
        let ptr_b = SendPtr(out_b.as_mut_ptr());
        self.pool.run_chunks(chunks, &|c| {
            let mut acc = [T::ZERO; NR];
            for r in chunk_range(rows, chunks, c) {
                let (j, k) = map_a.row_jk(r);
                // SAFETY: both maps validated above against their own
                // distinct buffers (`out_a`/`out_b` are exclusive borrows);
                // each row index `r` belongs to exactly one chunk, so the
                // row slices of either buffer never alias across workers.
                let row_a = unsafe { row_slice_mut(ptr_a, &map_a, j, k) };
                // SAFETY: as above for the second buffer.
                let row_b = unsafe { row_slice_mut(ptr_b, &map_b, j, k) };
                acc = add_partials(acc, f(j, k, row_a, row_b));
            }
            // SAFETY: `c < chunks == partials.len()` and each chunk index is
            // dispatched exactly once, so the writes are disjoint; the Vec
            // outlives `run_chunks`, which joins all workers before returning.
            let slots = partials_ptr;
            unsafe { *slots.0.add(c) = acc };
        });
        partials.into_iter().fold([T::ZERO; NR], add_partials)
    }

    fn launch_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        ny: usize,
        nz: usize,
        f: F,
    ) -> [T; NR]
    where
        F: Fn(usize, usize) -> [T; NR] + Sync,
    {
        self.recorder.kernel(info, ny * nz);
        let rows = ny * nz;
        if rows == 0 {
            return [T::ZERO; NR];
        }
        let chunks = self.chunks_for(rows);
        let mut partials: Vec<[T; NR]> = vec![[T::ZERO; NR]; chunks];
        let partials_ptr = SendPtr(partials.as_mut_ptr());
        self.pool.run_chunks(chunks, &|c| {
            let mut acc = [T::ZERO; NR];
            for r in chunk_range(rows, chunks, c) {
                let (j, k) = (r % ny, r / ny);
                acc = add_partials(acc, f(j, k));
            }
            // SAFETY: disjoint per-chunk slot writes (see launch_rows_reduce).
            let slots = partials_ptr;
            unsafe { *slots.0.add(c) = acc };
        });
        partials.into_iter().fold([T::ZERO; NR], add_partials)
    }

    fn launch_lanes_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        map: RowMap,
        lanes: &mut [&mut [T]],
        accs: &mut [[T; NR]],
        f: F,
    ) where
        F: Fn(usize, usize, usize, &mut [T]) -> [T; NR] + Sync,
    {
        super::validate_lanes(&map, lanes, accs.len());
        if lanes.is_empty() {
            return;
        }
        self.recorder.kernel(info, map.elems() * lanes.len());
        let rows = map.rows();
        // Chunk geometry depends on rows only, never on the lane count, so
        // each lane's partials are grouped exactly as a solo launch would
        // group them — the lane sweep stays bitwise equal per lane.
        let chunks = self.chunks_for(rows);
        let nl = lanes.len();
        // One partial slot per (chunk, lane); chunk c owns the contiguous
        // range [c * nl, (c + 1) * nl).
        let mut partials: Vec<[T; NR]> = vec![[T::ZERO; NR]; chunks * nl];
        let partials_ptr = SendPtr(partials.as_mut_ptr());
        let ptrs: Vec<SendPtr<T>> = lanes.iter_mut().map(|l| SendPtr(l.as_mut_ptr())).collect();
        self.pool.run_chunks(chunks, &|c| {
            for r in chunk_range(rows, chunks, c) {
                let (j, k) = map.row_jk(r);
                for (s, &ptr) in ptrs.iter().enumerate() {
                    // SAFETY: `map` validated against every lane slice; the
                    // lane slices are disjoint `&mut` borrows, and each row
                    // index `r` belongs to exactly one chunk, so no two
                    // workers ever touch the same (lane, row).
                    let row = unsafe { row_slice_mut(ptr, &map, j, k) };
                    let part = f(s, j, k, row);
                    // SAFETY: slot `c * nl + s` belongs to chunk `c` alone;
                    // the Vec outlives `run_chunks`, which joins all workers.
                    let slots = partials_ptr;
                    unsafe {
                        let slot = slots.0.add(c * nl + s);
                        *slot = add_partials(*slot, part);
                    }
                }
            }
        });
        // Per lane: merge chunk partials in chunk order, the solo grouping.
        for (s, acc) in accs.iter_mut().enumerate() {
            *acc = [T::ZERO; NR];
            for c in 0..chunks {
                *acc = add_partials(*acc, partials[c * nl + s]);
            }
        }
    }

    fn launch_lanes2_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        map_a: RowMap,
        lanes_a: &mut [&mut [T]],
        map_b: RowMap,
        lanes_b: &mut [&mut [T]],
        accs: &mut [[T; NR]],
        f: F,
    ) where
        F: Fn(usize, usize, usize, &mut [T], &mut [T]) -> [T; NR] + Sync,
    {
        super::validate_lanes(&map_a, lanes_a, accs.len());
        super::validate_lanes(&map_b, lanes_b, accs.len());
        assert_eq!(lanes_a.len(), lanes_b.len(), "lane count mismatch");
        assert_eq!(
            (map_a.ny, map_a.nz),
            (map_b.ny, map_b.nz),
            "two-map launch requires matching row sets"
        );
        if lanes_a.is_empty() {
            return;
        }
        self.recorder.kernel(info, map_a.elems() * lanes_a.len());
        let rows = map_a.rows();
        let chunks = self.chunks_for(rows);
        let nl = lanes_a.len();
        let mut partials: Vec<[T; NR]> = vec![[T::ZERO; NR]; chunks * nl];
        let partials_ptr = SendPtr(partials.as_mut_ptr());
        let ptrs_a: Vec<SendPtr<T>> = lanes_a
            .iter_mut()
            .map(|l| SendPtr(l.as_mut_ptr()))
            .collect();
        let ptrs_b: Vec<SendPtr<T>> = lanes_b
            .iter_mut()
            .map(|l| SendPtr(l.as_mut_ptr()))
            .collect();
        self.pool.run_chunks(chunks, &|c| {
            for r in chunk_range(rows, chunks, c) {
                let (j, k) = map_a.row_jk(r);
                for s in 0..nl {
                    // SAFETY: both maps validated against every lane slice
                    // of their buffer; lane slices are disjoint `&mut`
                    // borrows and each row belongs to exactly one chunk.
                    let row_a = unsafe { row_slice_mut(ptrs_a[s], &map_a, j, k) };
                    // SAFETY: as above for the second buffer.
                    let row_b = unsafe { row_slice_mut(ptrs_b[s], &map_b, j, k) };
                    let part = f(s, j, k, row_a, row_b);
                    // SAFETY: slot `c * nl + s` belongs to chunk `c` alone.
                    let slots = partials_ptr;
                    unsafe {
                        let slot = slots.0.add(c * nl + s);
                        *slot = add_partials(*slot, part);
                    }
                }
            }
        });
        for (s, acc) in accs.iter_mut().enumerate() {
            *acc = [T::ZERO; NR];
            for c in 0..chunks {
                *acc = add_partials(*acc, partials[c * nl + s]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Serial;
    use crate::index::Extent3;

    const INFO: KernelInfo = KernelInfo::new("test", 8, 1);

    #[test]
    fn matches_serial_elementwise() {
        let e = Extent3::new(5, 7, 3);
        let map = RowMap::halo_interior(e);
        let padded = 7 * 9 * 5;
        let mut a = vec![0.0f64; padded];
        let mut b = vec![0.0f64; padded];
        let kernel = |j: usize, k: usize, row: &mut [f64]| {
            for (i, v) in row.iter_mut().enumerate() {
                *v = (i + 10 * j + 100 * k) as f64;
            }
        };
        Serial::new(Recorder::disabled()).launch_rows(INFO, map, &mut a, kernel);
        Threads::new(4, Recorder::disabled()).launch_rows(INFO, map, &mut b, kernel);
        assert_eq!(a, b);
    }

    #[test]
    fn reduction_equals_serial_on_exact_values() {
        // Integer-valued floats sum exactly, so grouping cannot matter here.
        let map = RowMap::contiguous(1000);
        let mut out = vec![0.0f64; 1000];
        let dev = Threads::new(3, Recorder::disabled());
        let [s] = dev.launch_rows_reduce(INFO, map, &mut out, |_, _, row| {
            let mut acc = 0.0;
            for (i, v) in row.iter_mut().enumerate() {
                *v = i as f64;
                acc += i as f64;
            }
            [acc]
        });
        assert_eq!(s, (0..1000).sum::<usize>() as f64);
    }

    #[test]
    fn deterministic_across_repeats() {
        let dev = Threads::new(4, Recorder::disabled());
        let data: Vec<f64> = (0..997).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let reduce = || {
            let [s] = dev.launch_reduce(INFO, 997, 1, |j, _| [data[j] * data[j]]);
            s
        };
        let first = reduce();
        for _ in 0..10 {
            assert_eq!(reduce().to_bits(), first.to_bits());
        }
    }

    #[test]
    fn more_threads_than_rows() {
        let dev = Threads::new(16, Recorder::disabled());
        let mut out = vec![0.0f64; 3];
        let map = RowMap::contiguous(3);
        dev.launch_rows(INFO, map, &mut out, |_, _, row| {
            for v in row.iter_mut() {
                *v += 1.0;
            }
        });
        assert_eq!(out, vec![1.0; 3]);
    }

    #[test]
    fn two_map_launch_matches_serial() {
        use crate::device::{GpuSimParams, SimGpu};
        let e = Extent3::new(5, 4, 3);
        let map_a = RowMap::halo_interior(e);
        // Second buffer: one slot per row, same (ny, nz) row set.
        let map_b = RowMap {
            base: 0,
            len: 1,
            ny: map_a.ny,
            nz: map_a.nz,
            sy: 1,
            sz: map_a.ny,
        };
        let padded = 7 * 6 * 5;
        let kernel = |j: usize, k: usize, a: &mut [f64], b: &mut [f64]| {
            let mut s = 0.0;
            for (i, v) in a.iter_mut().enumerate() {
                *v = (i + 3 * j + 7 * k) as f64;
                s += *v;
            }
            b[0] = s;
            [s]
        };
        #[allow(clippy::type_complexity)]
        let run = |dev: &dyn Fn(&mut [f64], &mut [f64]) -> [f64; 1]| {
            let mut a = vec![0.0f64; padded];
            let mut b = vec![0.0f64; map_a.rows()];
            let s = dev(&mut a, &mut b);
            (a, b, s)
        };
        let (a0, b0, s0) = run(&|a, b| {
            Serial::new(Recorder::disabled()).launch_rows2_reduce(INFO, map_a, a, map_b, b, kernel)
        });
        let (a1, b1, s1) = run(&|a, b| {
            Threads::new(3, Recorder::disabled())
                .launch_rows2_reduce(INFO, map_a, a, map_b, b, kernel)
        });
        let (a2, b2, s2) = run(&|a, b| {
            SimGpu::new(GpuSimParams::mi250x(), Recorder::disabled())
                .launch_rows2_reduce(INFO, map_a, a, map_b, b, kernel)
        });
        assert_eq!(a0, a1);
        assert_eq!(a0, a2);
        assert_eq!(b0, b1);
        assert_eq!(b0, b2);
        // Integer-valued sums are exact under any grouping.
        assert_eq!(s0, s1);
        assert_eq!(s0, s2);
    }

    #[test]
    fn pure_reduce_matches_serial() {
        let th = Threads::new(4, Recorder::disabled());
        let se = Serial::new(Recorder::disabled());
        let f = |j: usize, k: usize| [(j * 3 + k) as f64, (j + k) as f64];
        let a: [f64; 2] = th.launch_reduce(INFO, 13, 9, f);
        let b: [f64; 2] = se.launch_reduce(INFO, 13, 9, f);
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::device::{GpuSimParams, Serial, SimGpu};
    use crate::index::Extent3;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn all_backends_agree_elementwise_on_random_shapes(
            nx in 1usize..12, ny in 1usize..12, nz in 1usize..12,
            threads in 1usize..6,
            block_rows in 1usize..9,
            seed in 0u64..u64::MAX,
        ) {
            let info = KernelInfo::new("prop", 8, 1);
            let e = Extent3::new(nx, ny, nz);
            let map = RowMap::halo_interior(e);
            let padded = (nx + 2) * (ny + 2) * (nz + 2);
            let kernel = move |j: usize, k: usize, row: &mut [f64]| {
                let mut acc = 0.0f64;
                for (i, v) in row.iter_mut().enumerate() {
                    let x = ((i as u64 ^ seed)
                        .wrapping_mul(0x9E3779B97F4A7C15)
                        .wrapping_add((j * 131 + k) as u64) >> 33) as f64;
                    *v = x / 1e6 + 0.25;
                    acc += *v;
                }
                [acc]
            };
            let mut a = vec![0.0f64; padded];
            let mut b = vec![0.0f64; padded];
            let mut c = vec![0.0f64; padded];
            let [sa]: [f64; 1] = Serial::new(Recorder::disabled())
                .launch_rows_reduce(info, map, &mut a, kernel);
            let [sb]: [f64; 1] = Threads::new(threads, Recorder::disabled())
                .launch_rows_reduce(info, map, &mut b, kernel);
            let [sc]: [f64; 1] = SimGpu::new(
                GpuSimParams { name: "prop", block_rows },
                Recorder::disabled(),
            ).launch_rows_reduce(info, map, &mut c, kernel);
            prop_assert_eq!(&a, &b, "threads elementwise");
            prop_assert_eq!(&a, &c, "simgpu elementwise");
            // reductions agree up to grouping-induced rounding
            let scale = sa.abs().max(1.0);
            prop_assert!((sa - sb).abs() < 1e-9 * scale);
            prop_assert!((sa - sc).abs() < 1e-9 * scale);
        }
    }
}
