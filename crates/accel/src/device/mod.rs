//! The device abstraction — alpaka's `Acc` in Rust.
//!
//! alpaka selects the accelerator at compile time (`using Acc =
//! alpaka::AccGpuHipRt<...>`) and every kernel is written once against the
//! accelerator concept. Here [`Device`] is the concept: a kernel is a
//! closure over row indices, launched with [`Device::launch_rows_reduce`],
//! and runs unchanged on every back-end. The back-ends are:
//!
//! * [`Serial`] — single-threaded reference back-end; reductions fold in
//!   row order (bitwise-deterministic).
//! * [`Threads`] — shared-memory CPU back-end (alpaka's OpenMP analogue);
//!   rows are chunked over a persistent worker pool and chunk partials are
//!   merged in chunk order (deterministic for a fixed thread count, but a
//!   *different* floating-point grouping than `Serial` — exactly the
//!   OpenMP-reduction effect the paper observes on LUMI-C).
//! * [`SimGpu`] — simulated GPU back-end: rows are grouped into thread
//!   blocks, block partials are combined with a pairwise tree as a real GPU
//!   reduction would, and launch/traffic events are recorded for the
//!   performance model. Different "GPUs" use different block shapes, which
//!   reproduces the paper's cross-architecture iteration-count variations.

mod serial;
mod simgpu;
mod threads;

pub use serial::Serial;
pub use simgpu::{GpuSimParams, SimGpu};
pub use threads::Threads;

use crate::events::{KernelInfo, Recorder};
use crate::index::RowMap;
use crate::scalar::Scalar;

/// Description of a split-phase halo exchange in flight, for sanitizer
/// hooks (see [`Device::on_exchange_begin`]).
///
/// While an exchange is pending, the ghost planes named by `faces` belong
/// to the exchange: `finish` will overwrite them with received data, so a
/// kernel writing them in the window races with the unpack. A correctness
/// wrapper (the `check` crate's `Checked<D>`) records these windows and
/// flags offending launches; the production back-ends ignore them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExchangeHazard {
    /// Address of the first element of the field's padded allocation.
    pub base: usize,
    /// Size of one element in bytes.
    pub elem_bytes: usize,
    /// Padded dims of the field (x fastest).
    pub padded: [usize; 3],
    /// Bit `axis * 2 + side` is set when that ghost plane is in flight
    /// (interface faces only; physical-boundary ghosts stay writable).
    pub faces: u8,
}

impl ExchangeHazard {
    /// `true` if the plane at (`axis`, `side`) is part of this hazard.
    pub const fn face_in_flight(&self, axis: usize, side: usize) -> bool {
        self.faces & (1 << (axis * 2 + side)) != 0
    }

    /// Total padded elements covered by the field.
    pub const fn len(&self) -> usize {
        self.padded[0] * self.padded[1] * self.padded[2]
    }

    /// `true` if the field has no elements.
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// If the padded linear index `lin` names a cell the in-flight
    /// exchange will overwrite at `finish`, return the `(axis, side)` of
    /// its ghost plane.
    ///
    /// The unpack kernels fill only the *interior cross-section* of each
    /// ghost plane (edges and corners of the padded box are never
    /// received), so a cell counts as hazardous only when its remaining
    /// two coordinates are strictly inside the padded extent.
    pub fn hit(&self, lin: usize) -> Option<(usize, usize)> {
        let [pnx, pny, pnz] = self.padded;
        let i = lin % pnx;
        let j = (lin / pnx) % pny;
        let k = lin / (pnx * pny);
        let coord = [i, j, k];
        let last = [pnx - 1, pny - 1, pnz - 1];
        for axis in 0..3 {
            for side in 0..2 {
                if !self.face_in_flight(axis, side) {
                    continue;
                }
                let plane = if side == 0 { 0 } else { last[axis] };
                if coord[axis] != plane {
                    continue;
                }
                let interior = (0..3)
                    .filter(|&a| a != axis)
                    .all(|a| coord[a] >= 1 && coord[a] < last[a]);
                if interior {
                    return Some((axis, side));
                }
            }
        }
        None
    }
}

/// Which back-end a device is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeviceKind {
    /// Single-threaded CPU.
    CpuSerial,
    /// Multi-threaded CPU with the given worker count.
    CpuThreads {
        /// Number of pool workers.
        threads: usize,
    },
    /// Simulated GPU with the given block shape.
    SimGpu {
        /// Rows folded per thread block before the tree reduction.
        block_rows: usize,
    },
}

/// A compute device that can launch kernels (alpaka's accelerator concept).
///
/// Kernels receive each output row `(j, k)` of the launch's [`RowMap`] as an
/// exclusive `&mut [T]` slice and may return `NR` partial sums which the
/// device reduces according to its back-end policy. All solver kernels —
/// the fused `KernelBiCGS1..6`, the Chebyshev kernels and the boundary
/// kernels — are expressed through these two entry points.
pub trait Device: Clone + Send + Sync + 'static {
    /// Human-readable device name for reports.
    fn name(&self) -> String;

    /// Back-end discriminator.
    fn kind(&self) -> DeviceKind;

    /// The event stream this device reports launches to.
    fn recorder(&self) -> &Recorder;

    /// Launch a kernel over the rows of `out` described by `map`, fusing an
    /// `NR`-way sum reduction (the paper's `KernelBiCGS1/3/5` fuse the
    /// stencil apply with local dot products exactly like this).
    fn launch_rows_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        map: RowMap,
        out: &mut [T],
        f: F,
    ) -> [T; NR]
    where
        F: Fn(usize, usize, &mut [T]) -> [T; NR] + Sync;

    /// Launch one fused kernel over *two* row maps at once, fusing an
    /// `NR`-way sum reduction.
    ///
    /// Both maps must agree on `ny`/`nz` (they describe the same logical
    /// row set, possibly with different row lengths and strides into
    /// different buffers). The kernel receives the `(j, k)` row of each
    /// buffer as an exclusive slice. This is the entry point for fused
    /// sweeps that update two fields in one pass (e.g. the fused
    /// `KernelBiCGS56` residual+direction update) and for split stencil
    /// sweeps that deposit per-row dot partials into a slot buffer.
    ///
    /// One launch is recorded, with `map_a.elems()` elements — `info` for
    /// a fused kernel must therefore account for *all* traffic of the
    /// fused sweep per `map_a` element (see [`KernelInfo::fused`]).
    fn launch_rows2_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        map_a: RowMap,
        out_a: &mut [T],
        map_b: RowMap,
        out_b: &mut [T],
        f: F,
    ) -> [T; NR]
    where
        F: Fn(usize, usize, &mut [T], &mut [T]) -> [T; NR] + Sync;

    /// Launch a two-map kernel with no reduction (element-wise update of
    /// two buffers in one sweep).
    fn launch_rows2<T: Scalar, F>(
        &self,
        info: KernelInfo,
        map_a: RowMap,
        out_a: &mut [T],
        map_b: RowMap,
        out_b: &mut [T],
        f: F,
    ) where
        F: Fn(usize, usize, &mut [T], &mut [T]) + Sync,
    {
        let _: [T; 0] = self.launch_rows2_reduce(info, map_a, out_a, map_b, out_b, |j, k, a, b| {
            f(j, k, a, b);
            []
        });
    }

    /// Launch a pure reduction kernel over `ny * nz` rows (no output field).
    fn launch_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        ny: usize,
        nz: usize,
        f: F,
    ) -> [T; NR]
    where
        F: Fn(usize, usize) -> [T; NR] + Sync;

    /// Launch a kernel with no reduction (element-wise update).
    fn launch_rows<T: Scalar, F>(&self, info: KernelInfo, map: RowMap, out: &mut [T], f: F)
    where
        F: Fn(usize, usize, &mut [T]) + Sync,
    {
        let _: [T; 0] = self.launch_rows_reduce(info, map, out, |j, k, row| {
            f(j, k, row);
            []
        });
    }

    /// Lane-batched launch: run the same kernel over every lane of a
    /// multi-RHS batch, amortizing launch overhead across lanes.
    ///
    /// `lanes[s]` is the backing slice of lane `s`'s field; all lanes share
    /// the row map `map`, which must validate against each slice. The
    /// caller passes only the *active* lanes — frozen lanes of a batched
    /// solve are simply omitted, and the kernel receives the slot index
    /// `s` so it can look up per-lane coefficients. Per-lane reduction
    /// results land in `accs[s]`.
    ///
    /// The contract that makes batching safe to adopt incrementally: every
    /// lane's result is **bitwise identical** to a solo
    /// [`Device::launch_rows_reduce`] over that lane's field alone. The
    /// default implementation guarantees this by construction (one solo
    /// launch per lane); back-ends override it with a single row-outer /
    /// lane-inner sweep that keeps one accumulator per lane through the
    /// back-end's exact solo merge structure, recording **one** kernel
    /// launch of `map.elems() * lanes.len()` elements — launch overhead is
    /// paid once per sweep instead of once per lane, which is the batched
    /// path's modelled GPU win.
    fn launch_lanes_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        map: RowMap,
        lanes: &mut [&mut [T]],
        accs: &mut [[T; NR]],
        f: F,
    ) where
        F: Fn(usize, usize, usize, &mut [T]) -> [T; NR] + Sync,
    {
        validate_lanes(&map, lanes, accs.len());
        for (s, lane) in lanes.iter_mut().enumerate() {
            accs[s] = self.launch_rows_reduce(info, map, lane, |j, k, row| f(s, j, k, row));
        }
    }

    /// Lane-batched two-buffer launch (see [`Device::launch_lanes_reduce`]
    /// and [`Device::launch_rows2_reduce`]): the kernel receives lane `s`'s
    /// `(j, k)` row of each buffer.
    #[allow(clippy::too_many_arguments)]
    fn launch_lanes2_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        map_a: RowMap,
        lanes_a: &mut [&mut [T]],
        map_b: RowMap,
        lanes_b: &mut [&mut [T]],
        accs: &mut [[T; NR]],
        f: F,
    ) where
        F: Fn(usize, usize, usize, &mut [T], &mut [T]) -> [T; NR] + Sync,
    {
        validate_lanes(&map_a, lanes_a, accs.len());
        validate_lanes(&map_b, lanes_b, accs.len());
        assert_eq!(lanes_a.len(), lanes_b.len(), "lane count mismatch");
        for (s, (lane_a, lane_b)) in lanes_a.iter_mut().zip(lanes_b.iter_mut()).enumerate() {
            accs[s] = self.launch_rows2_reduce(info, map_a, lane_a, map_b, lane_b, |j, k, a, b| {
                f(s, j, k, a, b)
            });
        }
    }

    /// Lane-batched launch with no reduction (element-wise update of every
    /// lane in one sweep).
    fn launch_lanes<T: Scalar, F>(
        &self,
        info: KernelInfo,
        map: RowMap,
        lanes: &mut [&mut [T]],
        f: F,
    ) where
        F: Fn(usize, usize, usize, &mut [T]) + Sync,
    {
        // [T; 0] slots are zero-sized, so this Vec never heap-allocates.
        let mut accs = vec![[T::ZERO; 0]; lanes.len()];
        self.launch_lanes_reduce(info, map, lanes, &mut accs, |s, j, k, row| {
            f(s, j, k, row);
            []
        });
    }

    /// Sanitizer hook: a split-phase halo exchange borrowed the ghost
    /// planes described by `hazard` (called by `HaloExchange::begin` after
    /// all sends and receives are posted). Production back-ends ignore it;
    /// the `check` crate's `Checked<D>` wrapper records the window.
    fn on_exchange_begin(&self, _hazard: ExchangeHazard) {}

    /// Sanitizer hook: the pending exchange for `hazard` is being
    /// completed (called by `HaloExchange::finish` before any ghost plane
    /// is unpacked). Default no-op.
    fn on_exchange_finish(&self, _hazard: ExchangeHazard) {}
}

/// Shared precondition check for the lane-batched launches: the row map
/// must validate against every lane's backing slice (the `&mut` lane
/// slices are necessarily disjoint allocations, which is what makes
/// concurrent per-lane row handout sound), and there must be one
/// accumulator slot per lane.
pub(crate) fn validate_lanes<T>(map: &RowMap, lanes: &[&mut [T]], accs_len: usize) {
    assert_eq!(
        accs_len,
        lanes.len(),
        "lane launch needs one accumulator slot per lane"
    );
    for lane in lanes {
        map.validate(lane.len());
    }
}

/// Runtime-selected device (one enum, zero dynamic dispatch in kernels).
///
/// The compile-time path (`fn solve<D: Device>`) mirrors alpaka's
/// `using Acc = ...`; `AnyDevice` is the convenience for CLI tools that
/// pick the back-end from a flag.
#[derive(Clone)]
pub enum AnyDevice {
    /// Serial CPU back-end.
    Serial(Serial),
    /// Threaded CPU back-end.
    Threads(Threads),
    /// Simulated GPU back-end.
    SimGpu(SimGpu),
}

impl AnyDevice {
    /// Parse a back-end spec: `serial`, `threads[:N]`, `mi250x`, `h100`,
    /// or `simgpu[:BLOCK_ROWS]`.
    pub fn from_spec(spec: &str, recorder: Recorder) -> Result<Self, String> {
        let (head, arg) = match spec.split_once(':') {
            Some((h, a)) => (h, Some(a)),
            None => (spec, None),
        };
        match head {
            "serial" => Ok(Self::Serial(Serial::new(recorder))),
            "threads" => {
                let n = match arg {
                    Some(a) => a.parse().map_err(|e| format!("bad thread count {a:?}: {e}"))?,
                    None => std::thread::available_parallelism().map_or(1, |p| p.get()),
                };
                Ok(Self::Threads(Threads::new(n, recorder)))
            }
            "mi250x" => Ok(Self::SimGpu(SimGpu::new(GpuSimParams::mi250x(), recorder))),
            "h100" => Ok(Self::SimGpu(SimGpu::new(GpuSimParams::h100(), recorder))),
            "simgpu" => {
                let block_rows = match arg {
                    Some(a) => a.parse().map_err(|e| format!("bad block_rows {a:?}: {e}"))?,
                    None => 4,
                };
                Ok(Self::SimGpu(SimGpu::new(
                    GpuSimParams { name: "simgpu", block_rows },
                    recorder,
                )))
            }
            other => Err(format!(
                "unknown device spec {other:?}; expected serial | threads[:N] | mi250x | h100 | simgpu[:B]"
            )),
        }
    }
}

impl Device for AnyDevice {
    fn name(&self) -> String {
        match self {
            Self::Serial(d) => d.name(),
            Self::Threads(d) => d.name(),
            Self::SimGpu(d) => d.name(),
        }
    }

    fn kind(&self) -> DeviceKind {
        match self {
            Self::Serial(d) => d.kind(),
            Self::Threads(d) => d.kind(),
            Self::SimGpu(d) => d.kind(),
        }
    }

    fn recorder(&self) -> &Recorder {
        match self {
            Self::Serial(d) => d.recorder(),
            Self::Threads(d) => d.recorder(),
            Self::SimGpu(d) => d.recorder(),
        }
    }

    fn launch_rows_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        map: RowMap,
        out: &mut [T],
        f: F,
    ) -> [T; NR]
    where
        F: Fn(usize, usize, &mut [T]) -> [T; NR] + Sync,
    {
        match self {
            Self::Serial(d) => d.launch_rows_reduce(info, map, out, f),
            Self::Threads(d) => d.launch_rows_reduce(info, map, out, f),
            Self::SimGpu(d) => d.launch_rows_reduce(info, map, out, f),
        }
    }

    fn launch_rows2_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        map_a: RowMap,
        out_a: &mut [T],
        map_b: RowMap,
        out_b: &mut [T],
        f: F,
    ) -> [T; NR]
    where
        F: Fn(usize, usize, &mut [T], &mut [T]) -> [T; NR] + Sync,
    {
        match self {
            Self::Serial(d) => d.launch_rows2_reduce(info, map_a, out_a, map_b, out_b, f),
            Self::Threads(d) => d.launch_rows2_reduce(info, map_a, out_a, map_b, out_b, f),
            Self::SimGpu(d) => d.launch_rows2_reduce(info, map_a, out_a, map_b, out_b, f),
        }
    }

    fn launch_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        ny: usize,
        nz: usize,
        f: F,
    ) -> [T; NR]
    where
        F: Fn(usize, usize) -> [T; NR] + Sync,
    {
        match self {
            Self::Serial(d) => d.launch_reduce(info, ny, nz, f),
            Self::Threads(d) => d.launch_reduce(info, ny, nz, f),
            Self::SimGpu(d) => d.launch_reduce(info, ny, nz, f),
        }
    }

    fn launch_lanes_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        map: RowMap,
        lanes: &mut [&mut [T]],
        accs: &mut [[T; NR]],
        f: F,
    ) where
        F: Fn(usize, usize, usize, &mut [T]) -> [T; NR] + Sync,
    {
        match self {
            Self::Serial(d) => d.launch_lanes_reduce(info, map, lanes, accs, f),
            Self::Threads(d) => d.launch_lanes_reduce(info, map, lanes, accs, f),
            Self::SimGpu(d) => d.launch_lanes_reduce(info, map, lanes, accs, f),
        }
    }

    fn launch_lanes2_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        map_a: RowMap,
        lanes_a: &mut [&mut [T]],
        map_b: RowMap,
        lanes_b: &mut [&mut [T]],
        accs: &mut [[T; NR]],
        f: F,
    ) where
        F: Fn(usize, usize, usize, &mut [T], &mut [T]) -> [T; NR] + Sync,
    {
        match self {
            Self::Serial(d) => {
                d.launch_lanes2_reduce(info, map_a, lanes_a, map_b, lanes_b, accs, f)
            }
            Self::Threads(d) => {
                d.launch_lanes2_reduce(info, map_a, lanes_a, map_b, lanes_b, accs, f)
            }
            Self::SimGpu(d) => {
                d.launch_lanes2_reduce(info, map_a, lanes_a, map_b, lanes_b, accs, f)
            }
        }
    }

    fn on_exchange_begin(&self, hazard: ExchangeHazard) {
        match self {
            Self::Serial(d) => d.on_exchange_begin(hazard),
            Self::Threads(d) => d.on_exchange_begin(hazard),
            Self::SimGpu(d) => d.on_exchange_begin(hazard),
        }
    }

    fn on_exchange_finish(&self, hazard: ExchangeHazard) {
        match self {
            Self::Serial(d) => d.on_exchange_finish(hazard),
            Self::Threads(d) => d.on_exchange_finish(hazard),
            Self::SimGpu(d) => d.on_exchange_finish(hazard),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing() {
        let r = Recorder::disabled;
        assert!(matches!(
            AnyDevice::from_spec("serial", r()),
            Ok(AnyDevice::Serial(_))
        ));
        assert!(matches!(
            AnyDevice::from_spec("threads:3", r()),
            Ok(AnyDevice::Threads(_))
        ));
        assert!(matches!(
            AnyDevice::from_spec("mi250x", r()),
            Ok(AnyDevice::SimGpu(_))
        ));
        assert!(matches!(
            AnyDevice::from_spec("h100", r()),
            Ok(AnyDevice::SimGpu(_))
        ));
        assert!(matches!(
            AnyDevice::from_spec("simgpu:8", r()),
            Ok(AnyDevice::SimGpu(_))
        ));
        assert!(AnyDevice::from_spec("cuda", r()).is_err());
        assert!(AnyDevice::from_spec("threads:x", r()).is_err());
    }

    #[test]
    fn exchange_hazard_hit_identifies_in_flight_planes() {
        // 4x3x3 padded field with the x-low and y-high planes in flight
        let h = ExchangeHazard {
            base: 0,
            elem_bytes: 8,
            padded: [4, 3, 3],
            faces: (1 << 0) | (1 << 3),
        };
        assert!(h.face_in_flight(0, 0));
        assert!(h.face_in_flight(1, 1));
        assert!(!h.face_in_flight(0, 1));
        assert_eq!(h.len(), 36);
        assert!(!h.is_empty());
        // (0, 1, 1) sits on the x-low plane
        assert_eq!(h.hit(16), Some((0, 0)));
        // (1, 2, 1) sits on the y-high plane
        assert_eq!(h.hit(21), Some((1, 1)));
        // (1, 1, 1) is interior
        assert_eq!(h.hit(17), None);
        // (3, 1, 1) is the x-high plane, which is NOT in flight
        assert_eq!(h.hit(19), None);
        // (0, 0, 1) is an edge cell of the x-low plane: the unpack never
        // writes plane edges, so it is not hazardous
        assert_eq!(h.hit(12), None);
    }

    #[test]
    fn any_device_forwards_kind() {
        let d = AnyDevice::from_spec("threads:2", Recorder::disabled()).unwrap();
        assert_eq!(d.kind(), DeviceKind::CpuThreads { threads: 2 });
        let d = AnyDevice::from_spec("mi250x", Recorder::disabled()).unwrap();
        assert!(matches!(d.kind(), DeviceKind::SimGpu { .. }));
    }

    /// Inexact per-cell values so any change in fold grouping shows up in
    /// the last bit of the reductions. `s` stands in for the lane identity.
    fn lane_kernel(s: usize, j: usize, k: usize, row: &mut [f64]) -> [f64; 1] {
        let mut acc = 0.0;
        for (i, v) in row.iter_mut().enumerate() {
            *v = 1.0 / ((s * 1000 + k * 100 + j * 10 + i) as f64 + 3.0);
            acc += *v * *v;
        }
        [acc]
    }

    #[test]
    fn lane_batched_launch_is_bitwise_solo_per_lane() {
        use crate::index::Extent3;
        let info = KernelInfo::new("lanes", 16, 2);
        let e = Extent3::new(5, 4, 3);
        let map = RowMap::halo_interior(e);
        let padded = (e.nx + 2) * (e.ny + 2) * (e.nz + 2);
        let nl = 3;
        for spec in ["serial", "threads:3", "mi250x"] {
            let dev = AnyDevice::from_spec(spec, Recorder::disabled()).unwrap();
            let mut fields: Vec<Vec<f64>> = vec![vec![0.5f64; padded]; nl];
            let mut lanes: Vec<&mut [f64]> = fields.iter_mut().map(|f| f.as_mut_slice()).collect();
            let mut accs = [[0.0f64; 1]; 3];
            dev.launch_lanes_reduce(info, map, &mut lanes, &mut accs, lane_kernel);
            for s in 0..nl {
                let mut solo = vec![0.5f64; padded];
                let r = dev.launch_rows_reduce(info, map, &mut solo, |j, k, row| {
                    lane_kernel(s, j, k, row)
                });
                assert_eq!(
                    accs[s][0].to_bits(),
                    r[0].to_bits(),
                    "{spec}: lane {s} reduction not bitwise solo"
                );
                assert!(
                    fields[s]
                        .iter()
                        .zip(&solo)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "{spec}: lane {s} field not bitwise solo"
                );
            }
        }
    }

    #[test]
    fn lane_batched_two_map_launch_is_bitwise_solo_per_lane() {
        use crate::index::Extent3;
        let info = KernelInfo::new("lanes2", 24, 3);
        let e = Extent3::new(4, 3, 3);
        let map_a = RowMap::halo_interior(e);
        let padded = (e.nx + 2) * (e.ny + 2) * (e.nz + 2);
        // Second buffer: one slot per row, unpadded.
        let map_b = RowMap {
            base: 0,
            len: 1,
            ny: map_a.ny,
            nz: map_a.nz,
            sy: 1,
            sz: map_a.ny,
        };
        let rows = map_a.rows();
        let nl = 3;
        let kernel = |s: usize, j: usize, k: usize, a: &mut [f64], b: &mut [f64]| {
            let mut acc = 0.0;
            for (i, v) in a.iter_mut().enumerate() {
                *v = 1.0 / ((s * 700 + k * 50 + j * 7 + i) as f64 + 2.0);
                acc += *v;
            }
            b[0] = acc;
            [acc]
        };
        for spec in ["serial", "threads:2", "h100"] {
            let dev = AnyDevice::from_spec(spec, Recorder::disabled()).unwrap();
            let mut fa: Vec<Vec<f64>> = vec![vec![0.0f64; padded]; nl];
            let mut fb: Vec<Vec<f64>> = vec![vec![0.0f64; rows]; nl];
            let mut la: Vec<&mut [f64]> = fa.iter_mut().map(|f| f.as_mut_slice()).collect();
            let mut lb: Vec<&mut [f64]> = fb.iter_mut().map(|f| f.as_mut_slice()).collect();
            let mut accs = [[0.0f64; 1]; 3];
            dev.launch_lanes2_reduce(info, map_a, &mut la, map_b, &mut lb, &mut accs, kernel);
            for s in 0..nl {
                let mut sa = vec![0.0f64; padded];
                let mut sb = vec![0.0f64; rows];
                let r =
                    dev.launch_rows2_reduce(info, map_a, &mut sa, map_b, &mut sb, |j, k, a, b| {
                        kernel(s, j, k, a, b)
                    });
                assert_eq!(accs[s][0].to_bits(), r[0].to_bits(), "{spec}: lane {s}");
                assert!(fa[s]
                    .iter()
                    .zip(&sa)
                    .all(|(x, y)| x.to_bits() == y.to_bits()));
                assert!(fb[s]
                    .iter()
                    .zip(&sb)
                    .all(|(x, y)| x.to_bits() == y.to_bits()));
            }
        }
    }

    #[test]
    fn lane_batched_launch_records_one_kernel_event() {
        use crate::events::Event;
        use crate::index::Extent3;
        let info = KernelInfo::new("lanes", 8, 1);
        let e = Extent3::new(3, 3, 2);
        let map = RowMap::halo_interior(e);
        let padded = (e.nx + 2) * (e.ny + 2) * (e.nz + 2);
        let rec = Recorder::enabled();
        let dev = AnyDevice::from_spec("mi250x", rec.clone()).unwrap();
        let mut fields: Vec<Vec<f64>> = vec![vec![0.0f64; padded]; 4];
        let mut lanes: Vec<&mut [f64]> = fields.iter_mut().map(|f| f.as_mut_slice()).collect();
        let mut accs = [[0.0f64; 1]; 4];
        dev.launch_lanes_reduce(info, map, &mut lanes, &mut accs, lane_kernel);
        let events = rec.drain();
        assert_eq!(events.len(), 1, "batched sweep must record one launch");
        match events[0] {
            Event::Kernel { elems, .. } => {
                assert_eq!(elems, (map.elems() * 4) as u64);
            }
            ref other => panic!("expected a kernel event, got {other:?}"),
        }
    }

    #[test]
    fn empty_lane_set_is_a_no_op() {
        let info = KernelInfo::new("lanes", 8, 1);
        let map = RowMap::contiguous(8);
        let rec = Recorder::enabled();
        let dev = AnyDevice::from_spec("serial", rec.clone()).unwrap();
        let mut lanes: Vec<&mut [f64]> = Vec::new();
        let mut accs: [[f64; 1]; 0] = [];
        dev.launch_lanes_reduce(info, map, &mut lanes, &mut accs, lane_kernel);
        assert_eq!(rec.len(), 0);
    }
}
