//! The device abstraction — alpaka's `Acc` in Rust.
//!
//! alpaka selects the accelerator at compile time (`using Acc =
//! alpaka::AccGpuHipRt<...>`) and every kernel is written once against the
//! accelerator concept. Here [`Device`] is the concept: a kernel is a
//! closure over row indices, launched with [`Device::launch_rows_reduce`],
//! and runs unchanged on every back-end. The back-ends are:
//!
//! * [`Serial`] — single-threaded reference back-end; reductions fold in
//!   row order (bitwise-deterministic).
//! * [`Threads`] — shared-memory CPU back-end (alpaka's OpenMP analogue);
//!   rows are chunked over a persistent worker pool and chunk partials are
//!   merged in chunk order (deterministic for a fixed thread count, but a
//!   *different* floating-point grouping than `Serial` — exactly the
//!   OpenMP-reduction effect the paper observes on LUMI-C).
//! * [`SimGpu`] — simulated GPU back-end: rows are grouped into thread
//!   blocks, block partials are combined with a pairwise tree as a real GPU
//!   reduction would, and launch/traffic events are recorded for the
//!   performance model. Different "GPUs" use different block shapes, which
//!   reproduces the paper's cross-architecture iteration-count variations.

mod serial;
mod simgpu;
mod threads;

pub use serial::Serial;
pub use simgpu::{GpuSimParams, SimGpu};
pub use threads::Threads;

use crate::events::{KernelInfo, Recorder};
use crate::index::RowMap;
use crate::scalar::Scalar;

/// Description of a split-phase halo exchange in flight, for sanitizer
/// hooks (see [`Device::on_exchange_begin`]).
///
/// While an exchange is pending, the ghost planes named by `faces` belong
/// to the exchange: `finish` will overwrite them with received data, so a
/// kernel writing them in the window races with the unpack. A correctness
/// wrapper (the `check` crate's `Checked<D>`) records these windows and
/// flags offending launches; the production back-ends ignore them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExchangeHazard {
    /// Address of the first element of the field's padded allocation.
    pub base: usize,
    /// Size of one element in bytes.
    pub elem_bytes: usize,
    /// Padded dims of the field (x fastest).
    pub padded: [usize; 3],
    /// Bit `axis * 2 + side` is set when that ghost plane is in flight
    /// (interface faces only; physical-boundary ghosts stay writable).
    pub faces: u8,
}

impl ExchangeHazard {
    /// `true` if the plane at (`axis`, `side`) is part of this hazard.
    pub const fn face_in_flight(&self, axis: usize, side: usize) -> bool {
        self.faces & (1 << (axis * 2 + side)) != 0
    }

    /// Total padded elements covered by the field.
    pub const fn len(&self) -> usize {
        self.padded[0] * self.padded[1] * self.padded[2]
    }

    /// `true` if the field has no elements.
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// If the padded linear index `lin` names a cell the in-flight
    /// exchange will overwrite at `finish`, return the `(axis, side)` of
    /// its ghost plane.
    ///
    /// The unpack kernels fill only the *interior cross-section* of each
    /// ghost plane (edges and corners of the padded box are never
    /// received), so a cell counts as hazardous only when its remaining
    /// two coordinates are strictly inside the padded extent.
    pub fn hit(&self, lin: usize) -> Option<(usize, usize)> {
        let [pnx, pny, pnz] = self.padded;
        let i = lin % pnx;
        let j = (lin / pnx) % pny;
        let k = lin / (pnx * pny);
        let coord = [i, j, k];
        let last = [pnx - 1, pny - 1, pnz - 1];
        for axis in 0..3 {
            for side in 0..2 {
                if !self.face_in_flight(axis, side) {
                    continue;
                }
                let plane = if side == 0 { 0 } else { last[axis] };
                if coord[axis] != plane {
                    continue;
                }
                let interior = (0..3)
                    .filter(|&a| a != axis)
                    .all(|a| coord[a] >= 1 && coord[a] < last[a]);
                if interior {
                    return Some((axis, side));
                }
            }
        }
        None
    }
}

/// Which back-end a device is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeviceKind {
    /// Single-threaded CPU.
    CpuSerial,
    /// Multi-threaded CPU with the given worker count.
    CpuThreads {
        /// Number of pool workers.
        threads: usize,
    },
    /// Simulated GPU with the given block shape.
    SimGpu {
        /// Rows folded per thread block before the tree reduction.
        block_rows: usize,
    },
}

/// A compute device that can launch kernels (alpaka's accelerator concept).
///
/// Kernels receive each output row `(j, k)` of the launch's [`RowMap`] as an
/// exclusive `&mut [T]` slice and may return `NR` partial sums which the
/// device reduces according to its back-end policy. All solver kernels —
/// the fused `KernelBiCGS1..6`, the Chebyshev kernels and the boundary
/// kernels — are expressed through these two entry points.
pub trait Device: Clone + Send + Sync + 'static {
    /// Human-readable device name for reports.
    fn name(&self) -> String;

    /// Back-end discriminator.
    fn kind(&self) -> DeviceKind;

    /// The event stream this device reports launches to.
    fn recorder(&self) -> &Recorder;

    /// Launch a kernel over the rows of `out` described by `map`, fusing an
    /// `NR`-way sum reduction (the paper's `KernelBiCGS1/3/5` fuse the
    /// stencil apply with local dot products exactly like this).
    fn launch_rows_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        map: RowMap,
        out: &mut [T],
        f: F,
    ) -> [T; NR]
    where
        F: Fn(usize, usize, &mut [T]) -> [T; NR] + Sync;

    /// Launch one fused kernel over *two* row maps at once, fusing an
    /// `NR`-way sum reduction.
    ///
    /// Both maps must agree on `ny`/`nz` (they describe the same logical
    /// row set, possibly with different row lengths and strides into
    /// different buffers). The kernel receives the `(j, k)` row of each
    /// buffer as an exclusive slice. This is the entry point for fused
    /// sweeps that update two fields in one pass (e.g. the fused
    /// `KernelBiCGS56` residual+direction update) and for split stencil
    /// sweeps that deposit per-row dot partials into a slot buffer.
    ///
    /// One launch is recorded, with `map_a.elems()` elements — `info` for
    /// a fused kernel must therefore account for *all* traffic of the
    /// fused sweep per `map_a` element (see [`KernelInfo::fused`]).
    fn launch_rows2_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        map_a: RowMap,
        out_a: &mut [T],
        map_b: RowMap,
        out_b: &mut [T],
        f: F,
    ) -> [T; NR]
    where
        F: Fn(usize, usize, &mut [T], &mut [T]) -> [T; NR] + Sync;

    /// Launch a two-map kernel with no reduction (element-wise update of
    /// two buffers in one sweep).
    fn launch_rows2<T: Scalar, F>(
        &self,
        info: KernelInfo,
        map_a: RowMap,
        out_a: &mut [T],
        map_b: RowMap,
        out_b: &mut [T],
        f: F,
    ) where
        F: Fn(usize, usize, &mut [T], &mut [T]) + Sync,
    {
        let _: [T; 0] = self.launch_rows2_reduce(info, map_a, out_a, map_b, out_b, |j, k, a, b| {
            f(j, k, a, b);
            []
        });
    }

    /// Launch a pure reduction kernel over `ny * nz` rows (no output field).
    fn launch_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        ny: usize,
        nz: usize,
        f: F,
    ) -> [T; NR]
    where
        F: Fn(usize, usize) -> [T; NR] + Sync;

    /// Launch a kernel with no reduction (element-wise update).
    fn launch_rows<T: Scalar, F>(&self, info: KernelInfo, map: RowMap, out: &mut [T], f: F)
    where
        F: Fn(usize, usize, &mut [T]) + Sync,
    {
        let _: [T; 0] = self.launch_rows_reduce(info, map, out, |j, k, row| {
            f(j, k, row);
            []
        });
    }

    /// Sanitizer hook: a split-phase halo exchange borrowed the ghost
    /// planes described by `hazard` (called by `HaloExchange::begin` after
    /// all sends and receives are posted). Production back-ends ignore it;
    /// the `check` crate's `Checked<D>` wrapper records the window.
    fn on_exchange_begin(&self, _hazard: ExchangeHazard) {}

    /// Sanitizer hook: the pending exchange for `hazard` is being
    /// completed (called by `HaloExchange::finish` before any ghost plane
    /// is unpacked). Default no-op.
    fn on_exchange_finish(&self, _hazard: ExchangeHazard) {}
}

/// Runtime-selected device (one enum, zero dynamic dispatch in kernels).
///
/// The compile-time path (`fn solve<D: Device>`) mirrors alpaka's
/// `using Acc = ...`; `AnyDevice` is the convenience for CLI tools that
/// pick the back-end from a flag.
#[derive(Clone)]
pub enum AnyDevice {
    /// Serial CPU back-end.
    Serial(Serial),
    /// Threaded CPU back-end.
    Threads(Threads),
    /// Simulated GPU back-end.
    SimGpu(SimGpu),
}

impl AnyDevice {
    /// Parse a back-end spec: `serial`, `threads[:N]`, `mi250x`, `h100`,
    /// or `simgpu[:BLOCK_ROWS]`.
    pub fn from_spec(spec: &str, recorder: Recorder) -> Result<Self, String> {
        let (head, arg) = match spec.split_once(':') {
            Some((h, a)) => (h, Some(a)),
            None => (spec, None),
        };
        match head {
            "serial" => Ok(Self::Serial(Serial::new(recorder))),
            "threads" => {
                let n = match arg {
                    Some(a) => a.parse().map_err(|e| format!("bad thread count {a:?}: {e}"))?,
                    None => std::thread::available_parallelism().map_or(1, |p| p.get()),
                };
                Ok(Self::Threads(Threads::new(n, recorder)))
            }
            "mi250x" => Ok(Self::SimGpu(SimGpu::new(GpuSimParams::mi250x(), recorder))),
            "h100" => Ok(Self::SimGpu(SimGpu::new(GpuSimParams::h100(), recorder))),
            "simgpu" => {
                let block_rows = match arg {
                    Some(a) => a.parse().map_err(|e| format!("bad block_rows {a:?}: {e}"))?,
                    None => 4,
                };
                Ok(Self::SimGpu(SimGpu::new(
                    GpuSimParams { name: "simgpu", block_rows },
                    recorder,
                )))
            }
            other => Err(format!(
                "unknown device spec {other:?}; expected serial | threads[:N] | mi250x | h100 | simgpu[:B]"
            )),
        }
    }
}

impl Device for AnyDevice {
    fn name(&self) -> String {
        match self {
            Self::Serial(d) => d.name(),
            Self::Threads(d) => d.name(),
            Self::SimGpu(d) => d.name(),
        }
    }

    fn kind(&self) -> DeviceKind {
        match self {
            Self::Serial(d) => d.kind(),
            Self::Threads(d) => d.kind(),
            Self::SimGpu(d) => d.kind(),
        }
    }

    fn recorder(&self) -> &Recorder {
        match self {
            Self::Serial(d) => d.recorder(),
            Self::Threads(d) => d.recorder(),
            Self::SimGpu(d) => d.recorder(),
        }
    }

    fn launch_rows_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        map: RowMap,
        out: &mut [T],
        f: F,
    ) -> [T; NR]
    where
        F: Fn(usize, usize, &mut [T]) -> [T; NR] + Sync,
    {
        match self {
            Self::Serial(d) => d.launch_rows_reduce(info, map, out, f),
            Self::Threads(d) => d.launch_rows_reduce(info, map, out, f),
            Self::SimGpu(d) => d.launch_rows_reduce(info, map, out, f),
        }
    }

    fn launch_rows2_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        map_a: RowMap,
        out_a: &mut [T],
        map_b: RowMap,
        out_b: &mut [T],
        f: F,
    ) -> [T; NR]
    where
        F: Fn(usize, usize, &mut [T], &mut [T]) -> [T; NR] + Sync,
    {
        match self {
            Self::Serial(d) => d.launch_rows2_reduce(info, map_a, out_a, map_b, out_b, f),
            Self::Threads(d) => d.launch_rows2_reduce(info, map_a, out_a, map_b, out_b, f),
            Self::SimGpu(d) => d.launch_rows2_reduce(info, map_a, out_a, map_b, out_b, f),
        }
    }

    fn launch_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        ny: usize,
        nz: usize,
        f: F,
    ) -> [T; NR]
    where
        F: Fn(usize, usize) -> [T; NR] + Sync,
    {
        match self {
            Self::Serial(d) => d.launch_reduce(info, ny, nz, f),
            Self::Threads(d) => d.launch_reduce(info, ny, nz, f),
            Self::SimGpu(d) => d.launch_reduce(info, ny, nz, f),
        }
    }

    fn on_exchange_begin(&self, hazard: ExchangeHazard) {
        match self {
            Self::Serial(d) => d.on_exchange_begin(hazard),
            Self::Threads(d) => d.on_exchange_begin(hazard),
            Self::SimGpu(d) => d.on_exchange_begin(hazard),
        }
    }

    fn on_exchange_finish(&self, hazard: ExchangeHazard) {
        match self {
            Self::Serial(d) => d.on_exchange_finish(hazard),
            Self::Threads(d) => d.on_exchange_finish(hazard),
            Self::SimGpu(d) => d.on_exchange_finish(hazard),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing() {
        let r = Recorder::disabled;
        assert!(matches!(
            AnyDevice::from_spec("serial", r()),
            Ok(AnyDevice::Serial(_))
        ));
        assert!(matches!(
            AnyDevice::from_spec("threads:3", r()),
            Ok(AnyDevice::Threads(_))
        ));
        assert!(matches!(
            AnyDevice::from_spec("mi250x", r()),
            Ok(AnyDevice::SimGpu(_))
        ));
        assert!(matches!(
            AnyDevice::from_spec("h100", r()),
            Ok(AnyDevice::SimGpu(_))
        ));
        assert!(matches!(
            AnyDevice::from_spec("simgpu:8", r()),
            Ok(AnyDevice::SimGpu(_))
        ));
        assert!(AnyDevice::from_spec("cuda", r()).is_err());
        assert!(AnyDevice::from_spec("threads:x", r()).is_err());
    }

    #[test]
    fn exchange_hazard_hit_identifies_in_flight_planes() {
        // 4x3x3 padded field with the x-low and y-high planes in flight
        let h = ExchangeHazard {
            base: 0,
            elem_bytes: 8,
            padded: [4, 3, 3],
            faces: (1 << 0) | (1 << 3),
        };
        assert!(h.face_in_flight(0, 0));
        assert!(h.face_in_flight(1, 1));
        assert!(!h.face_in_flight(0, 1));
        assert_eq!(h.len(), 36);
        assert!(!h.is_empty());
        // (0, 1, 1) sits on the x-low plane
        assert_eq!(h.hit(16), Some((0, 0)));
        // (1, 2, 1) sits on the y-high plane
        assert_eq!(h.hit(21), Some((1, 1)));
        // (1, 1, 1) is interior
        assert_eq!(h.hit(17), None);
        // (3, 1, 1) is the x-high plane, which is NOT in flight
        assert_eq!(h.hit(19), None);
        // (0, 0, 1) is an edge cell of the x-low plane: the unpack never
        // writes plane edges, so it is not hazardous
        assert_eq!(h.hit(12), None);
    }

    #[test]
    fn any_device_forwards_kind() {
        let d = AnyDevice::from_spec("threads:2", Recorder::disabled()).unwrap();
        assert_eq!(d.kind(), DeviceKind::CpuThreads { threads: 2 });
        let d = AnyDevice::from_spec("mi250x", Recorder::disabled()).unwrap();
        assert!(matches!(d.kind(), DeviceKind::SimGpu { .. }));
    }
}
