//! Device memory buffers.
//!
//! The paper's solver offloads all vectors to the accelerator once at
//! start-up and copies the solution back once at the end (Sec. III-C);
//! everything in between stays resident in device memory. [`DeviceBuffer`]
//! models that contract: construction from host data records an H2D
//! transfer, `copy_to_host` records a D2H transfer, and the perfmodel
//! charges PCIe/Infinity-Fabric costs for each. In-place kernel access via
//! slices is free, as device-resident access is on real hardware.

use crate::device::Device;
use crate::events::{Event, Recorder};
use crate::scalar::Scalar;

/// A typed allocation in (simulated) device memory.
#[derive(Clone, Debug)]
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    recorder: Recorder,
}

impl<T: Scalar> DeviceBuffer<T> {
    /// Allocate a zero-initialised buffer of `n` elements on `dev`.
    ///
    /// Zero-fill happens device-side (like `hipMemset`), so no transfer is
    /// recorded.
    pub fn zeros<D: Device>(dev: &D, n: usize) -> Self {
        Self {
            data: vec![T::ZERO; n],
            recorder: dev.recorder().clone(),
        }
    }

    /// Upload `host` to the device (records an H2D transfer).
    pub fn from_host<D: Device>(dev: &D, host: &[T]) -> Self {
        let recorder = dev.recorder().clone();
        recorder.record(Event::H2D {
            bytes: (host.len() * T::BYTES) as u64,
        });
        Self {
            data: host.to_vec(),
            recorder,
        }
    }

    /// Download the buffer contents (records a D2H transfer).
    pub fn copy_to_host(&self) -> Vec<T> {
        self.recorder.record(Event::D2H {
            bytes: (self.data.len() * T::BYTES) as u64,
        });
        self.data.clone()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Device-side read access (no transfer).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Device-side write access (no transfer).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Overwrite the buffer from host memory (records an H2D transfer).
    pub fn upload(&mut self, host: &[T]) {
        assert_eq!(host.len(), self.data.len(), "upload size mismatch");
        self.recorder.record(Event::H2D {
            bytes: (host.len() * T::BYTES) as u64,
        });
        self.data.copy_from_slice(host);
    }

    /// Device-to-device copy from `src` (no host transfer recorded).
    pub fn copy_from_device(&mut self, src: &Self) {
        assert_eq!(src.len(), self.len(), "device copy size mismatch");
        self.data.copy_from_slice(&src.data);
    }

    /// Swap contents with another buffer (pointer swap on real hardware;
    /// used by the Chebyshev iteration's `z`/`y`/`w` rotation).
    pub fn swap(&mut self, other: &mut Self) {
        std::mem::swap(&mut self.data, &mut other.data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Serial;

    #[test]
    fn zeros_records_no_transfer() {
        let rec = Recorder::enabled();
        let dev = Serial::new(rec.clone());
        let b = DeviceBuffer::<f64>::zeros(&dev, 16);
        assert_eq!(b.len(), 16);
        assert!(b.as_slice().iter().all(|&v| v == 0.0));
        assert!(rec.is_empty());
    }

    #[test]
    fn upload_download_roundtrip_and_events() {
        let rec = Recorder::enabled();
        let dev = Serial::new(rec.clone());
        let host = vec![1.0f64, 2.0, 3.0];
        let b = DeviceBuffer::from_host(&dev, &host);
        assert_eq!(b.copy_to_host(), host);
        let evs = rec.drain();
        assert_eq!(
            evs,
            vec![Event::H2D { bytes: 24 }, Event::D2H { bytes: 24 }]
        );
    }

    #[test]
    fn swap_is_pointerlike() {
        let dev = Serial::new(Recorder::disabled());
        let mut a = DeviceBuffer::from_host(&dev, &[1.0f64]);
        let mut b = DeviceBuffer::from_host(&dev, &[2.0f64]);
        a.swap(&mut b);
        assert_eq!(a.as_slice(), &[2.0]);
        assert_eq!(b.as_slice(), &[1.0]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn upload_size_mismatch_panics() {
        let dev = Serial::new(Recorder::disabled());
        let mut b = DeviceBuffer::<f64>::zeros(&dev, 2);
        b.upload(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn f32_traffic_accounting() {
        let rec = Recorder::enabled();
        let dev = Serial::new(rec.clone());
        let _ = DeviceBuffer::from_host(&dev, &[0.5f32; 10]);
        assert_eq!(rec.drain(), vec![Event::H2D { bytes: 40 }]);
    }
}
