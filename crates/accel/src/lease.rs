//! Device hand-out by lease: a fixed pool of back-end instances from
//! which callers borrow one device at a time.
//!
//! A serving layer runs many concurrent jobs against a small set of
//! accelerator queues; handing the device out by RAII lease bounds the
//! concurrency per device the same way an alpaka queue pool bounds
//! in-flight kernels. Dropping the lease returns the device — including
//! on unwind, so a panicking job can never leak its slot.

use std::sync::{Arc, Condvar, Mutex};

use crate::device::Device;

struct PoolShared<D> {
    /// Free slots as `(slot index, device)`; taken in LIFO order.
    free: Mutex<Vec<(usize, D)>>,
    cv: Condvar,
    total: usize,
}

/// A fixed set of device instances handed out one lease at a time.
///
/// Cloning the pool shares the same slots. The pool never constructs
/// devices itself — callers decide the back-end mix (e.g. one
/// `threads:4` queue plus two `serial` queues) and the pool only
/// arbitrates access.
pub struct DevicePool<D: Device> {
    shared: Arc<PoolShared<D>>,
}

impl<D: Device> Clone for DevicePool<D> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<D: Device> DevicePool<D> {
    /// A pool over the given device instances (one slot each).
    pub fn new(devices: Vec<D>) -> Self {
        assert!(
            !devices.is_empty(),
            "a device pool needs at least one device"
        );
        let total = devices.len();
        Self {
            shared: Arc::new(PoolShared {
                free: Mutex::new(devices.into_iter().enumerate().collect()),
                cv: Condvar::new(),
                total,
            }),
        }
    }

    /// Total number of slots (free or leased).
    pub fn len(&self) -> usize {
        self.shared.total
    }

    /// Always `false`: pools are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Currently free slots.
    pub fn available(&self) -> usize {
        self.shared.free.lock().unwrap().len()
    }

    /// Borrow a device, blocking until a slot frees up.
    pub fn acquire(&self) -> DeviceLease<D> {
        let mut free = self.shared.free.lock().unwrap();
        loop {
            if let Some((slot, dev)) = free.pop() {
                return DeviceLease {
                    slot,
                    dev: Some(dev),
                    shared: Arc::clone(&self.shared),
                };
            }
            free = self.shared.cv.wait(free).unwrap();
        }
    }

    /// Borrow a device if a slot is free right now.
    pub fn try_acquire(&self) -> Option<DeviceLease<D>> {
        let (slot, dev) = self.shared.free.lock().unwrap().pop()?;
        Some(DeviceLease {
            slot,
            dev: Some(dev),
            shared: Arc::clone(&self.shared),
        })
    }
}

/// RAII borrow of one pooled device; dereferences to the device and
/// returns the slot on drop (unwind included).
pub struct DeviceLease<D: Device> {
    slot: usize,
    dev: Option<D>,
    shared: Arc<PoolShared<D>>,
}

impl<D: Device> DeviceLease<D> {
    /// The pool slot this lease occupies (stable for the lease lifetime).
    pub fn slot(&self) -> usize {
        self.slot
    }
}

impl<D: Device> std::ops::Deref for DeviceLease<D> {
    type Target = D;
    fn deref(&self) -> &D {
        self.dev.as_ref().expect("device present until drop")
    }
}

impl<D: Device> Drop for DeviceLease<D> {
    fn drop(&mut self) {
        if let Some(dev) = self.dev.take() {
            self.shared.free.lock().unwrap().push((self.slot, dev));
            self.shared.cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Serial;
    use crate::events::Recorder;

    fn pool(n: usize) -> DevicePool<Serial> {
        DevicePool::new((0..n).map(|_| Serial::new(Recorder::disabled())).collect())
    }

    #[test]
    fn leases_exhaust_and_return_slots() {
        let p = pool(2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.available(), 2);
        let a = p.try_acquire().expect("slot free");
        let b = p.try_acquire().expect("slot free");
        assert_ne!(a.slot(), b.slot());
        assert!(p.try_acquire().is_none(), "pool exhausted");
        drop(a);
        assert_eq!(p.available(), 1);
        let c = p.try_acquire().expect("slot returned");
        drop((b, c));
        assert_eq!(p.available(), 2);
    }

    #[test]
    fn acquire_blocks_until_a_lease_drops() {
        let p = pool(1);
        let lease = p.acquire();
        let p2 = p.clone();
        let waiter = std::thread::spawn(move || {
            let l = p2.acquire();
            l.slot()
        });
        // the waiter cannot finish while we hold the only slot; give it
        // time to reach the condvar, then release
        #[allow(clippy::disallowed_methods)]
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!waiter.is_finished());
        drop(lease);
        assert_eq!(waiter.join().unwrap(), 0);
    }

    #[test]
    fn lease_returns_on_unwind() {
        let p = pool(1);
        let p2 = p.clone();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _lease = p2.acquire();
            panic!("job died");
        }));
        assert_eq!(p.available(), 1, "slot must come back on unwind");
    }
}
