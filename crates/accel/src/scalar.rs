//! Floating-point scalar abstraction.
//!
//! The paper's C++ implementation templates every kernel on `T_data` so the
//! same solver runs in single or double precision. [`Scalar`] plays that
//! role here: all kernels, fields and solvers are generic over it, and the
//! crate provides implementations for [`f32`] and [`f64`].

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real scalar type usable in device kernels.
///
/// The bounds are the minimal set needed by the Bi-CGSTAB and Chebyshev
/// kernels: ring/field arithmetic, comparison, and conversion to/from `f64`
/// for host-side coefficient computation (the paper computes `alpha`,
/// `beta`, `omega` and `rho` on the CPU in full precision).
pub trait Scalar:
    Copy
    + Send
    + Sync
    + PartialOrd
    + PartialEq
    + Debug
    + Display
    + Default
    + Sum
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon of the representation.
    const EPSILON: Self;
    /// Number of bytes of one element (used for traffic accounting).
    const BYTES: usize;

    /// Lossy conversion from `f64` (rounds to nearest for `f32`).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Conversion from a `usize` grid count.
    fn from_usize(v: usize) -> Self {
        Self::from_f64(v as f64)
    }
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Fused multiply-add `self * a + b` (maps to the hardware FMA).
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Maximum of two values (NaN-propagating like `f64::max` is not
    /// required; ties resolve to either argument).
    fn max(self, other: Self) -> Self;
    /// Minimum of two values.
    fn min(self, other: Self) -> Self;
    /// `true` if the value is finite (not NaN or infinite).
    fn is_finite(self) -> bool;
}

macro_rules! impl_scalar {
    ($t:ty) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const EPSILON: Self = <$t>::EPSILON;
            const BYTES: usize = std::mem::size_of::<$t>();

            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
        }
    };
}

impl_scalar!(f32);
impl_scalar!(f64);

/// Element-wise addition of fixed-size reduction partials.
///
/// Back-ends combine per-row / per-block partial sums with this helper so
/// every reduction policy shares one combination primitive.
#[inline(always)]
pub fn add_partials<T: Scalar, const NR: usize>(a: [T; NR], b: [T; NR]) -> [T; NR] {
    let mut out = a;
    for (o, x) in out.iter_mut().zip(b) {
        *o += x;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_roundtrip() {
        assert_eq!(f64::ZERO, 0.0);
        assert_eq!(f64::ONE, 1.0);
        assert_eq!(f32::BYTES, 4);
        assert_eq!(f64::BYTES, 8);
    }

    #[test]
    fn conversions() {
        assert_eq!(f32::from_f64(1.5), 1.5f32);
        assert_eq!(2.5f64.to_f64(), 2.5);
        assert_eq!(f64::from_usize(7), 7.0);
    }

    #[test]
    fn arithmetic_helpers() {
        assert_eq!((-3.0f64).abs(), 3.0);
        assert_eq!(4.0f64.sqrt(), 2.0);
        assert_eq!(2.0f64.mul_add(3.0, 1.0), 7.0);
        assert_eq!(Scalar::max(1.0f64, 2.0), 2.0);
        assert_eq!(Scalar::min(1.0f64, 2.0), 1.0);
        assert!(1.0f64.is_finite());
        assert!(!(f64::NAN).is_finite());
    }

    #[test]
    fn add_partials_elementwise() {
        let a = [1.0f64, 2.0];
        let b = [10.0f64, 20.0];
        assert_eq!(add_partials(a, b), [11.0, 22.0]);
    }

    #[test]
    fn add_partials_empty() {
        let a: [f64; 0] = [];
        assert_eq!(add_partials(a, []), []);
    }
}
