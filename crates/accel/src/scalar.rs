//! Floating-point scalar abstraction.
//!
//! The paper's C++ implementation templates every kernel on `T_data` so the
//! same solver runs in single or double precision. [`Scalar`] plays that
//! role here: all kernels, fields and solvers are generic over it, and the
//! crate provides implementations for [`f32`] and [`f64`].

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real scalar type usable in device kernels.
///
/// The bounds are the minimal set needed by the Bi-CGSTAB and Chebyshev
/// kernels: ring/field arithmetic, comparison, and conversion to/from `f64`
/// for host-side coefficient computation (the paper computes `alpha`,
/// `beta`, `omega` and `rho` on the CPU in full precision).
pub trait Scalar:
    Copy
    + Send
    + Sync
    + PartialOrd
    + PartialEq
    + Debug
    + Display
    + Default
    + Sum
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon of the representation.
    const EPSILON: Self;
    /// Number of bytes of one element (used for traffic accounting).
    const BYTES: usize;

    /// Lossy conversion from `f64` (rounds to nearest for `f32`).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Conversion from a `usize` grid count.
    fn from_usize(v: usize) -> Self {
        Self::from_f64(v as f64)
    }
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Fused multiply-add `self * a + b` (maps to the hardware FMA).
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Maximum of two values (NaN-propagating like `f64::max` is not
    /// required; ties resolve to either argument).
    fn max(self, other: Self) -> Self;
    /// Minimum of two values.
    fn min(self, other: Self) -> Self;
    /// `true` if the value is finite (not NaN or infinite).
    fn is_finite(self) -> bool;

    /// How many `f32` wire lanes one element of this type carries when
    /// used as a transport word for single-precision payloads (`f64`
    /// carries two bit patterns per word, `f32` one). The mixed-precision
    /// halo path ships `f32` faces through the communicator's native
    /// `Vec<Self>` channels by bit-packing, so the wire bytes genuinely
    /// halve instead of being silently re-widened.
    const F32_LANES: usize;

    /// Bit-pack `src` into `dst` wire words, [`Self::F32_LANES`] lanes
    /// per word (`dst.len() == src.len().div_ceil(F32_LANES)`). A `dst`
    /// word's unused tail lane is zero. The packed words are opaque bit
    /// carriers — they must only be moved, never used arithmetically.
    fn pack_f32_words(src: &[f32], dst: &mut [Self]);

    /// Inverse of [`Scalar::pack_f32_words`]: unpack `src.len().div_ceil(F32_LANES)`
    /// wire words from `src` back into the `f32` lanes of `dst`.
    fn unpack_f32_words(src: &[Self], dst: &mut [f32]);
}

macro_rules! impl_scalar {
    ($t:ty, $lanes:expr, $pack:path, $unpack:path) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const EPSILON: Self = <$t>::EPSILON;
            const BYTES: usize = std::mem::size_of::<$t>();

            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }

            const F32_LANES: usize = $lanes;

            #[inline]
            fn pack_f32_words(src: &[f32], dst: &mut [Self]) {
                $pack(src, dst)
            }
            #[inline]
            fn unpack_f32_words(src: &[Self], dst: &mut [f32]) {
                $unpack(src, dst)
            }
        }
    };
}

/// `f32` transport is the identity: one lane per word.
#[inline]
fn pack_f32_identity(src: &[f32], dst: &mut [f32]) {
    assert_eq!(dst.len(), src.len(), "f32 wire-word count mismatch");
    dst.copy_from_slice(src);
}

#[inline]
fn unpack_f32_identity(src: &[f32], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "f32 wire-word count mismatch");
    dst.copy_from_slice(src);
}

/// `f64` transport carries two `f32` bit patterns per word: lane 0 in the
/// low 32 bits, lane 1 in the high 32 bits (an odd tail leaves the high
/// lane zero). Round-trips are bit-exact because the words travel through
/// `Vec<f64>` channels untouched — they are never computed on.
#[inline]
fn pack_f32_into_f64(src: &[f32], dst: &mut [f64]) {
    assert_eq!(
        dst.len(),
        src.len().div_ceil(2),
        "f64 wire-word count mismatch"
    );
    for (w, pair) in dst.iter_mut().zip(src.chunks(2)) {
        let lo = pair[0].to_bits() as u64;
        let hi = pair.get(1).map_or(0, |v| v.to_bits()) as u64;
        *w = f64::from_bits(lo | (hi << 32));
    }
}

#[inline]
fn unpack_f32_from_f64(src: &[f64], dst: &mut [f32]) {
    assert_eq!(
        src.len(),
        dst.len().div_ceil(2),
        "f64 wire-word count mismatch"
    );
    for (w, pair) in src.iter().zip(dst.chunks_mut(2)) {
        let bits = w.to_bits();
        pair[0] = f32::from_bits(bits as u32);
        if let Some(hi) = pair.get_mut(1) {
            *hi = f32::from_bits((bits >> 32) as u32);
        }
    }
}

impl_scalar!(f32, 1, pack_f32_identity, unpack_f32_identity);
impl_scalar!(f64, 2, pack_f32_into_f64, unpack_f32_from_f64);

/// Element-wise addition of fixed-size reduction partials.
///
/// Back-ends combine per-row / per-block partial sums with this helper so
/// every reduction policy shares one combination primitive.
#[inline(always)]
pub fn add_partials<T: Scalar, const NR: usize>(a: [T; NR], b: [T; NR]) -> [T; NR] {
    let mut out = a;
    for (o, x) in out.iter_mut().zip(b) {
        *o += x;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_roundtrip() {
        assert_eq!(f64::ZERO, 0.0);
        assert_eq!(f64::ONE, 1.0);
        assert_eq!(f32::BYTES, 4);
        assert_eq!(f64::BYTES, 8);
    }

    #[test]
    fn conversions() {
        assert_eq!(f32::from_f64(1.5), 1.5f32);
        assert_eq!(2.5f64.to_f64(), 2.5);
        assert_eq!(f64::from_usize(7), 7.0);
    }

    #[test]
    fn arithmetic_helpers() {
        assert_eq!((-3.0f64).abs(), 3.0);
        assert_eq!(4.0f64.sqrt(), 2.0);
        assert_eq!(2.0f64.mul_add(3.0, 1.0), 7.0);
        assert_eq!(Scalar::max(1.0f64, 2.0), 2.0);
        assert_eq!(Scalar::min(1.0f64, 2.0), 1.0);
        assert!(1.0f64.is_finite());
        assert!(!(f64::NAN).is_finite());
    }

    #[test]
    fn add_partials_elementwise() {
        let a = [1.0f64, 2.0];
        let b = [10.0f64, 20.0];
        assert_eq!(add_partials(a, b), [11.0, 22.0]);
    }

    #[test]
    fn f32_wire_words_roundtrip_through_f64() {
        // Odd length exercises the zero high tail lane; NaN payload bits
        // and signed zero exercise bit preservation (not value equality).
        let src = [1.5f32, -0.0, f32::from_bits(0x7fc0_dead), 3.25e-38, -7.0];
        let mut words = [0.0f64; 3];
        f64::pack_f32_words(&src, &mut words);
        let mut back = [0.0f32; 5];
        f64::unpack_f32_words(&words, &mut back);
        for (a, b) in src.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // The tail word's high lane is zero.
        assert_eq!((words[2].to_bits() >> 32) as u32, 0);
    }

    #[test]
    fn f32_wire_words_are_identity_on_f32() {
        assert_eq!(f32::F32_LANES, 1);
        assert_eq!(f64::F32_LANES, 2);
        let src = [1.0f32, 2.0, 3.0];
        let mut words = [0.0f32; 3];
        f32::pack_f32_words(&src, &mut words);
        assert_eq!(words, src);
        let mut back = [0.0f32; 3];
        f32::unpack_f32_words(&words, &mut back);
        assert_eq!(back, src);
    }

    #[test]
    fn add_partials_empty() {
        let a: [f64; 0] = [];
        assert_eq!(add_partials(a, []), []);
    }
}
