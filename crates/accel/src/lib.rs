//! # accel — a performance-portability layer in the spirit of alpaka
//!
//! The paper implements its Poisson solver against
//! [alpaka](https://github.com/alpaka-group/alpaka), a header-only C++
//! abstraction over CUDA, HIP, SYCL and OpenMP: kernels are written once
//! and the accelerator is chosen with a single type alias. This crate is
//! that abstraction rebuilt in safe, idiomatic Rust for the reproduction:
//!
//! * [`Device`] is the accelerator concept. Solver kernels are closures
//!   over rows of a 3-D index space and run unchanged on every back-end.
//! * [`Serial`], [`Threads`] and [`SimGpu`] are the back-ends (reference
//!   CPU, shared-memory CPU, simulated GPU). [`AnyDevice`] selects one at
//!   runtime from a CLI spec.
//! * [`DeviceBuffer`] models device-resident memory with explicit
//!   host↔device transfer accounting.
//! * [`Recorder`] captures the logical performance-event stream (kernel
//!   launches, transfers, halo messages, reductions) that the `perfmodel`
//!   crate replays through calibrated machine models.
//!
//! The crucial reproduction detail is *floating-point reduction order*:
//! each back-end folds partial sums differently (row order / chunk order /
//! block tree), which is the mechanism behind the paper's observed
//! iteration-count differences between CPU and GPU back-ends and the
//! run-to-run variance in Table II.
//!
//! ## Example
//!
//! ```
//! use accel::{Device, KernelInfo, Recorder, RowMap, Serial, Threads};
//!
//! // One kernel source...
//! fn axpy<D: Device>(dev: &D, a: f64, x: &[f64], y: &mut [f64]) -> f64 {
//!     let info = KernelInfo::new("axpy", 24, 2);
//!     let [norm2] = dev.launch_rows_reduce(info, RowMap::contiguous(y.len()), y, |_, _, row| {
//!         let mut s = 0.0;
//!         for (yi, &xi) in row.iter_mut().zip(x) {
//!             *yi += a * xi;
//!             s += *yi * *yi;
//!         }
//!         [s]
//!     });
//!     norm2
//! }
//!
//! // ...many back-ends.
//! let x = vec![1.0; 8];
//! let mut y1 = vec![2.0; 8];
//! let mut y2 = vec![2.0; 8];
//! let n1 = axpy(&Serial::new(Recorder::disabled()), 3.0, &x, &mut y1);
//! let n2 = axpy(&Threads::new(2, Recorder::disabled()), 3.0, &x, &mut y2);
//! assert_eq!(y1, y2);
//! assert_eq!(n1, 8.0 * 25.0);
//! assert_eq!(n2, 8.0 * 25.0);
//! ```

#![warn(missing_docs)]

mod buffer;
mod device;
mod events;
mod fold;
mod index;
mod lease;
mod pool;
mod scalar;

pub use buffer::DeviceBuffer;
pub use device::{
    AnyDevice, Device, DeviceKind, ExchangeHazard, GpuSimParams, Serial, SimGpu, Threads,
};
pub use events::{Event, KernelInfo, Recorder, HALO_OVERLAP_STAGE, REDUCE_OVERLAP_STAGE};
pub use fold::{fold_row_edge_last, row_has_deep_middle};
pub use index::{chunk_range, Extent3, RowMap, ShellMaps};
pub use lease::{DeviceLease, DevicePool};
pub use pool::ThreadPool;
pub use scalar::{add_partials, Scalar};
