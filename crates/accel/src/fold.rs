//! Canonical row-fold order for fused dot-producing kernels.
//!
//! The fused-kernel path splits one logical sweep into a *deep interior*
//! launch (overlapped with the halo exchange) plus six *shell* launches.
//! When such a split sweep also produces a dot contribution, each piece
//! folds only its own cells, and the per-row partials are composed in
//! piece order: `(Σ middle) + edge_first + edge_last`. For the monolithic
//! (non-split) variant of the same kernel to stay bitwise identical, it
//! must fold each row in that *same* grouping rather than plain `i`
//! order. [`fold_row_edge_last`] is that shared canonical fold, and
//! [`row_has_deep_middle`] is the predicate deciding which rows have a
//! middle (it mirrors `RowMap::halo_deep_interior`'s existence
//! condition): rows without one keep the plain left-to-right fold.
//!
//! Both orders start their accumulator at `+0.0`; an IEEE-754 sum seeded
//! from `+0.0` never produces `-0.0` unless a term is `-0.0` *and* the
//! partial sum is exactly zero, in which case every grouping agrees, so
//! regrouping is sign-safe as well as value-safe.

use crate::scalar::Scalar;

/// `true` when interior row `(j, k)` of an `nx × ny × nz` interior has a
/// deep-interior middle under the split-sweep decomposition.
///
/// Mirrors `RowMap::halo_deep_interior`: a deep interior exists only when
/// every dimension is at least 3, and covers rows `1..=ny-2` ×
/// `1..=nz-2`. Rows outside that range are handled entirely by shell
/// pieces and fold in plain order.
#[inline(always)]
pub fn row_has_deep_middle(nx: usize, ny: usize, nz: usize, j: usize, k: usize) -> bool {
    nx >= 3 && ny >= 3 && nz >= 3 && j >= 1 && j + 1 < ny && k >= 1 && k + 1 < nz
}

/// Fold `term(0..len)` in the canonical split-sweep order.
///
/// With `has_middle` (and `len >= 3`) the grouping is
/// `((term(1) + ... + term(len-2)) + term(0)) + term(len-1)` — the order
/// in which the deep-interior piece, the x-low shell and the x-high
/// shell deposit into a shared per-row slot. Otherwise the row folds
/// plain left-to-right.
#[inline(always)]
pub fn fold_row_edge_last<T: Scalar>(len: usize, has_middle: bool, term: impl Fn(usize) -> T) -> T {
    if has_middle && len >= 3 {
        let mut acc = T::ZERO;
        for i in 1..len - 1 {
            acc += term(i);
        }
        (acc + term(0)) + term(len - 1)
    } else {
        let mut acc = T::ZERO;
        for i in 0..len {
            acc += term(i);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deep_middle_predicate_matches_deep_interior() {
        // Any dim < 3: no deep interior, no middles at all.
        assert!(!row_has_deep_middle(2, 5, 5, 2, 2));
        assert!(!row_has_deep_middle(5, 2, 5, 0, 2));
        assert!(!row_has_deep_middle(5, 5, 1, 2, 0));
        // 3x3x3: exactly the single centre row has a middle.
        assert!(row_has_deep_middle(3, 3, 3, 1, 1));
        assert!(!row_has_deep_middle(3, 3, 3, 0, 1));
        assert!(!row_has_deep_middle(3, 3, 3, 2, 1));
        assert!(!row_has_deep_middle(3, 3, 3, 1, 0));
        assert!(!row_has_deep_middle(3, 3, 3, 1, 2));
        // 5x4x6: rows j in 1..=2, k in 1..=4.
        assert!(row_has_deep_middle(5, 4, 6, 1, 4));
        assert!(!row_has_deep_middle(5, 4, 6, 3, 4));
        assert!(!row_has_deep_middle(5, 4, 6, 1, 5));
    }

    #[test]
    fn edge_last_grouping_is_exact_on_integers() {
        let data = [3.0f64, 1.0, 4.0, 1.0, 5.0];
        let plain = fold_row_edge_last(5, false, |i| data[i]);
        let split = fold_row_edge_last(5, true, |i| data[i]);
        assert_eq!(plain, 14.0);
        assert_eq!(split, 14.0);
    }

    #[test]
    fn edge_last_matches_piece_composition_bitwise() {
        // The fold must equal: deep piece (plain fold of 1..len-1),
        // then + edge(0), then + edge(len-1) — in that exact order.
        let data: Vec<f64> = (0..7).map(|i| ((i as f64) * 0.7391).sin() / 3.0).collect();
        let len = data.len();
        let mut mid = 0.0f64;
        for &v in &data[1..len - 1] {
            mid += v;
        }
        let composed = (mid + data[0]) + data[len - 1];
        let folded = fold_row_edge_last(len, true, |i| data[i]);
        assert_eq!(folded.to_bits(), composed.to_bits());
    }

    #[test]
    fn short_rows_fold_plain() {
        let data = [1.5f64, 2.5];
        let a = fold_row_edge_last(2, true, |i| data[i]);
        let b = fold_row_edge_last(2, false, |i| data[i]);
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
