//! A persistent worker pool for the threaded CPU back-end.
//!
//! alpaka's OpenMP back-end keeps a warm thread team across kernel launches;
//! spawning OS threads per launch would dominate the cost of the small fused
//! kernels in the Bi-CGSTAB loop. This pool keeps `n` workers alive for the
//! lifetime of the device and executes *scoped* jobs: `run_chunks` blocks
//! until every chunk has finished, which is what makes lending borrowed
//! closures to the workers sound.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A chunk-execution request: call the shared closure on chunk `index`.
struct Job {
    /// Type-erased `&(dyn Fn(usize) + Sync)` with its lifetime erased.
    ///
    /// Validity: `run_chunks` keeps the referent alive and does not return
    /// until `latch` reports all chunks complete, so the pointer never
    /// outlives the closure.
    func: *const (dyn Fn(usize) + Sync),
    index: usize,
    latch: Arc<Latch>,
}

// SAFETY: `func` points to a `Sync` closure, so sharing the reference across
// threads is sound; the lifetime guarantee is documented on the field.
unsafe impl Send for Job {}

/// Count-down latch: workers decrement, the submitter parks until zero.
struct Latch {
    remaining: AtomicUsize,
    signal: (parking_lot::Mutex<bool>, parking_lot::Condvar),
}

impl Latch {
    fn new(count: usize) -> Self {
        Self {
            remaining: AtomicUsize::new(count),
            signal: (parking_lot::Mutex::new(false), parking_lot::Condvar::new()),
        }
    }

    fn count_down(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let (lock, cvar) = &self.signal;
            *lock.lock() = true;
            cvar.notify_all();
        }
    }

    fn wait(&self) {
        let (lock, cvar) = &self.signal;
        let mut done = lock.lock();
        while !*done {
            cvar.wait(&mut done);
        }
    }
}

/// Fixed-size persistent worker pool.
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
}

impl ThreadPool {
    /// Spawn a pool of `size >= 1` workers.
    pub fn new(size: usize) -> Self {
        assert!(size >= 1, "thread pool needs at least one worker");
        let (tx, rx) = unbounded::<Job>();
        let workers = (0..size)
            .map(|w| {
                let rx: Receiver<Job> = rx.clone();
                std::thread::Builder::new()
                    .name(format!("accel-worker-{w}"))
                    .spawn(move || {
                        // Channel disconnect (pool drop) terminates the loop.
                        while let Ok(job) = rx.recv() {
                            // SAFETY: see `Job::func` — referent outlives the job.
                            let f = unsafe { &*job.func };
                            f(job.index);
                            job.latch.count_down();
                        }
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self {
            tx: Some(tx),
            workers,
            size,
        }
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Execute `f(0), f(1), .., f(chunks - 1)` on the workers and block
    /// until all calls have returned. The calling thread also executes
    /// chunks, so a pool is never idle-blocked on itself.
    pub fn run_chunks(&self, chunks: usize, f: &(dyn Fn(usize) + Sync)) {
        if chunks == 0 {
            return;
        }
        if chunks == 1 {
            f(0);
            return;
        }
        let latch = Arc::new(Latch::new(chunks - 1));
        // Erase the closure lifetime; soundness argument on `Job::func`.
        // SAFETY: same fat-pointer layout; the referent outlives every job
        // because this function blocks on `latch.wait()` before returning.
        let func: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(f)
        };
        let tx = self.tx.as_ref().expect("pool already shut down");
        for index in 1..chunks {
            tx.send(Job {
                func,
                index,
                latch: Arc::clone(&latch),
            })
            .expect("pool workers disappeared");
        }
        // Run chunk 0 inline on the submitting thread.
        f(0);
        latch.wait();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Disconnect the channel so workers exit their recv loop.
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_every_chunk_exactly_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        pool.run_chunks(64, &|c| {
            hits[c].fetch_add(1, Ordering::Relaxed);
        });
        for (c, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "chunk {c}");
        }
    }

    #[test]
    fn zero_and_one_chunk_fast_paths() {
        let pool = ThreadPool::new(2);
        pool.run_chunks(0, &|_| panic!("must not run"));
        let ran = AtomicU64::new(0);
        pool.run_chunks(1, &|c| {
            assert_eq!(c, 0);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn reusable_across_many_launches() {
        let pool = ThreadPool::new(3);
        let total = AtomicU64::new(0);
        for _ in 0..100 {
            pool.run_chunks(7, &|c| {
                total.fetch_add(c as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 100 * (0..7).sum::<u64>());
    }

    #[test]
    fn borrowed_data_is_visible_and_mutations_survive() {
        let pool = ThreadPool::new(4);
        let input = vec![1u64; 1000];
        let partial: Vec<AtomicU64> = (0..8).map(|_| AtomicU64::new(0)).collect();
        pool.run_chunks(8, &|c| {
            let r = crate::index::chunk_range(input.len(), 8, c);
            let s: u64 = input[r].iter().sum();
            partial[c].store(s, Ordering::Relaxed);
        });
        let sum: u64 = partial.iter().map(|p| p.load(Ordering::Relaxed)).sum();
        assert_eq!(sum, 1000);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(2);
        drop(pool); // must not hang or panic
    }
}
