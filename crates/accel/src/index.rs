//! Index spaces and work division.
//!
//! alpaka expresses a kernel's index domain as an `alpaka::Vec` extent and a
//! work division (`WorkDivMembers`). Our kernels iterate a 3-D interior
//! region of a halo-padded array; the natural safe unit of parallelism in
//! Rust is a *row* (the unit-stride x-line of a (j, k) pencil), so the work
//! division here is over rows. A [`RowMap`] describes where each row of the
//! output lives inside the backing slice and is validated to guarantee rows
//! are disjoint and in bounds, which is what lets the back-ends hand each
//! worker an exclusive `&mut [T]` without data races.

/// 3-D extent (x is the contiguous/fastest dimension).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Extent3 {
    /// Number of elements in x (row length).
    pub nx: usize,
    /// Number of rows in y.
    pub ny: usize,
    /// Number of planes in z.
    pub nz: usize,
}

impl Extent3 {
    /// Create an extent.
    pub const fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Self { nx, ny, nz }
    }

    /// Total number of elements.
    pub const fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// `true` if the extent contains no elements.
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Maps the rows of a 3-D region onto a backing slice.
///
/// Row `(j, k)` with `j < ny`, `k < nz` occupies the half-open range
/// `[base + j*sy + k*sz, base + j*sy + k*sz + len)`.
///
/// For a halo-padded field of padded dims `(pnx, pny, pnz)` whose interior
/// is `(nx, ny, nz)` with halo width 1, the interior rows are
/// `RowMap { base: 1 + pnx + pnx*pny, len: nx, ny, nz, sy: pnx, sz: pnx*pny }`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RowMap {
    /// Offset of row `(0, 0)` in the backing slice.
    pub base: usize,
    /// Row length (elements per row).
    pub len: usize,
    /// Number of rows in y.
    pub ny: usize,
    /// Number of rows (planes) in z.
    pub nz: usize,
    /// Stride between consecutive y rows.
    pub sy: usize,
    /// Stride between consecutive z planes.
    pub sz: usize,
}

impl RowMap {
    /// Row map for a plain contiguous slice of `n` elements (a single row).
    pub const fn contiguous(n: usize) -> Self {
        Self {
            base: 0,
            len: n,
            ny: 1,
            nz: 1,
            sy: n,
            sz: n,
        }
    }

    /// Row map for the interior of a halo-padded field.
    ///
    /// `interior` is the interior extent; the padded field has one halo
    /// layer on every side, so padded dims are `interior + 2` per axis.
    pub const fn halo_interior(interior: Extent3) -> Self {
        let pnx = interior.nx + 2;
        let pny = interior.ny + 2;
        Self {
            base: 1 + pnx + pnx * pny,
            len: interior.nx,
            ny: interior.ny,
            nz: interior.nz,
            sy: pnx,
            sz: pnx * pny,
        }
    }

    /// Row map for the *deep interior* of a halo-padded field: interior
    /// cells at distance >= 1 from every subdomain face, i.e. cells whose
    /// 7-point stencil reads no ghost value. `None` when any interior
    /// dimension is < 3 (every interior cell then touches a face).
    ///
    /// Splitting the interior into deep + [`RowMap::halo_shell`] lets a
    /// stencil overlap the deep-interior compute with halo communication:
    /// the deep part is safe to evaluate before ghost values arrive.
    pub const fn halo_deep_interior(interior: Extent3) -> Option<Self> {
        if interior.nx < 3 || interior.ny < 3 || interior.nz < 3 {
            return None;
        }
        let pnx = interior.nx + 2;
        let pny = interior.ny + 2;
        // padded coordinate (2, 2, 2): one cell in from every face
        Some(Self {
            base: 2 + 2 * pnx + 2 * pnx * pny,
            len: interior.nx - 2,
            ny: interior.ny - 2,
            nz: interior.nz - 2,
            sy: pnx,
            sz: pnx * pny,
        })
    }

    /// Row maps for the *shell*: the interior cells NOT in
    /// [`RowMap::halo_deep_interior`] (those whose stencil reads at least
    /// one ghost value). Together the deep interior and the shell tile the
    /// interior exactly, each cell covered once.
    ///
    /// When the deep interior is empty the shell is the whole interior
    /// (a single map). Otherwise up to six maps: two full xy-planes
    /// (z faces), two x-strips per remaining plane (y faces) and two
    /// single-cell columns per remaining row (x faces).
    pub fn halo_shell(interior: Extent3) -> ShellMaps {
        if Self::halo_deep_interior(interior).is_none() {
            return ShellMaps::one(Self::halo_interior(interior));
        }
        let (nx, ny, nz) = (interior.nx, interior.ny, interior.nz);
        let pnx = nx + 2;
        let pny = ny + 2;
        let (sy, sz) = (pnx, pnx * pny);
        // padded-coordinate index of cell (i, j, k)
        let idx = |i: usize, j: usize, k: usize| i + j * sy + k * sz;
        ShellMaps::six([
            // z-low / z-high planes: full interior cross-section
            Self {
                base: idx(1, 1, 1),
                len: nx,
                ny,
                nz: 1,
                sy,
                sz,
            },
            Self {
                base: idx(1, 1, nz),
                len: nx,
                ny,
                nz: 1,
                sy,
                sz,
            },
            // y-low / y-high strips on the middle z planes
            Self {
                base: idx(1, 1, 2),
                len: nx,
                ny: 1,
                nz: nz - 2,
                sy,
                sz,
            },
            Self {
                base: idx(1, ny, 2),
                len: nx,
                ny: 1,
                nz: nz - 2,
                sy,
                sz,
            },
            // x-low / x-high single-cell columns on the middle rows
            Self {
                base: idx(1, 2, 2),
                len: 1,
                ny: ny - 2,
                nz: nz - 2,
                sy,
                sz,
            },
            Self {
                base: idx(nx, 2, 2),
                len: 1,
                ny: ny - 2,
                nz: nz - 2,
                sy,
                sz,
            },
        ])
    }

    /// Total number of mapped elements.
    pub const fn elems(&self) -> usize {
        self.len * self.ny * self.nz
    }

    /// Total number of rows.
    pub const fn rows(&self) -> usize {
        self.ny * self.nz
    }

    /// Offset of row `(j, k)` in the backing slice.
    #[inline(always)]
    pub const fn row_offset(&self, j: usize, k: usize) -> usize {
        self.base + j * self.sy + k * self.sz
    }

    /// Check the *disjointness invariant*: with `sy >= len` and
    /// `sz >= ny * sy`, distinct `(j, k)` rows can never overlap, and the
    /// last row must end within `out_len`. Panics with a descriptive
    /// message if violated; back-ends call this before any unsafe row
    /// splitting.
    pub fn validate(&self, out_len: usize) {
        assert!(
            self.len > 0 && self.ny > 0 && self.nz > 0,
            "RowMap with empty extent: {self:?}"
        );
        assert!(
            self.sy >= self.len,
            "RowMap rows overlap in y: sy={} < len={}",
            self.sy,
            self.len
        );
        assert!(
            self.sz >= self.ny * self.sy,
            "RowMap planes overlap in z: sz={} < ny*sy={}",
            self.sz,
            self.ny * self.sy
        );
        let last_end = self.row_offset(self.ny - 1, self.nz - 1) + self.len;
        assert!(
            last_end <= out_len,
            "RowMap out of bounds: last row ends at {last_end} but slice has {out_len} elements"
        );
    }

    /// Decompose a linear row index `r in 0..rows()` into `(j, k)`.
    #[inline(always)]
    pub const fn row_jk(&self, r: usize) -> (usize, usize) {
        (r % self.ny, r / self.ny)
    }
}

/// The row maps of a [`RowMap::halo_shell`] decomposition, stored inline.
///
/// The shell is at most six pieces, so the container is a fixed array
/// plus a count — `halo_shell` is called once per shell sweep inside the
/// solver hot loop, and returning a `Vec` here would break the
/// steady-state zero-allocation guarantee the solve audits enforce.
/// Dereferences to a slice; iterating by value yields `RowMap`s.
#[derive(Clone, Copy, Debug)]
pub struct ShellMaps {
    maps: [RowMap; 6],
    n: usize,
}

impl ShellMaps {
    const fn one(map: RowMap) -> Self {
        Self {
            maps: [map; 6],
            n: 1,
        }
    }

    const fn six(maps: [RowMap; 6]) -> Self {
        Self { maps, n: 6 }
    }
}

impl std::ops::Deref for ShellMaps {
    type Target = [RowMap];

    fn deref(&self) -> &[RowMap] {
        &self.maps[..self.n]
    }
}

impl IntoIterator for ShellMaps {
    type Item = RowMap;
    type IntoIter = std::iter::Take<std::array::IntoIter<RowMap, 6>>;

    fn into_iter(self) -> Self::IntoIter {
        self.maps.into_iter().take(self.n)
    }
}

/// A raw pointer that may be sent to worker threads.
///
/// Used by the back-ends to hand out *disjoint* mutable row slices of one
/// output buffer. Safety is established by [`RowMap::validate`]: distinct
/// rows never alias, so concurrent `&mut` row slices are sound.
#[derive(Clone, Copy)]
pub(crate) struct SendPtr<T>(pub *mut T);

// SAFETY: the pointer is only dereferenced through `row_slice_mut`, which
// produces non-overlapping ranges for distinct rows (validated RowMap), and
// the owning `&mut [T]` outlives every launch (back-ends join all workers
// before returning).
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Produce the exclusive row slice for row `(j, k)`.
///
/// # Safety
/// - `map` must have been validated against the length of the allocation
///   `ptr` points to ([`RowMap::validate`]).
/// - No two live slices for the same `(j, k)` may exist at once; callers
///   ensure each row is processed by exactly one worker per launch.
#[inline(always)]
pub(crate) unsafe fn row_slice_mut<'a, T>(
    ptr: SendPtr<T>,
    map: &RowMap,
    j: usize,
    k: usize,
) -> &'a mut [T] {
    debug_assert!(j < map.ny && k < map.nz);
    std::slice::from_raw_parts_mut(ptr.0.add(map.row_offset(j, k)), map.len)
}

/// Split `n` items into `parts` nearly-equal contiguous ranges.
///
/// Returns the half-open range for `part`; ranges for successive parts
/// tile `0..n` exactly. The first `n % parts` parts get one extra item.
#[inline]
pub fn chunk_range(n: usize, parts: usize, part: usize) -> std::ops::Range<usize> {
    debug_assert!(part < parts);
    let base = n / parts;
    let rem = n % parts;
    let start = part * base + part.min(rem);
    let len = base + usize::from(part < rem);
    start..start + len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extent_len() {
        let e = Extent3::new(4, 5, 6);
        assert_eq!(e.len(), 120);
        assert!(!e.is_empty());
        assert!(Extent3::new(0, 5, 6).is_empty());
    }

    #[test]
    fn contiguous_map() {
        let m = RowMap::contiguous(10);
        m.validate(10);
        assert_eq!(m.elems(), 10);
        assert_eq!(m.rows(), 1);
        assert_eq!(m.row_offset(0, 0), 0);
    }

    #[test]
    fn halo_interior_map() {
        let e = Extent3::new(3, 4, 5);
        let m = RowMap::halo_interior(e);
        // padded dims 5 x 6 x 7
        m.validate(5 * 6 * 7);
        assert_eq!(m.elems(), 60);
        assert_eq!(m.row_offset(0, 0), 1 + 5 + 30);
        // first interior element of second plane
        assert_eq!(m.row_offset(0, 1), 1 + 5 + 60);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn validate_rejects_short_slice() {
        let m = RowMap::halo_interior(Extent3::new(3, 4, 5));
        m.validate(10);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn validate_rejects_overlapping_rows() {
        let m = RowMap {
            base: 0,
            len: 5,
            ny: 2,
            nz: 1,
            sy: 3,
            sz: 100,
        };
        m.validate(1000);
    }

    #[test]
    fn row_jk_roundtrip() {
        let m = RowMap::halo_interior(Extent3::new(2, 3, 4));
        for r in 0..m.rows() {
            let (j, k) = m.row_jk(r);
            assert_eq!(k * m.ny + j, r);
        }
    }

    #[test]
    fn deep_interior_empty_for_thin_extents() {
        assert!(RowMap::halo_deep_interior(Extent3::new(2, 8, 8)).is_none());
        assert!(RowMap::halo_deep_interior(Extent3::new(8, 8, 2)).is_none());
        let shell = RowMap::halo_shell(Extent3::new(2, 8, 8));
        assert_eq!(shell.len(), 1);
        assert_eq!(shell[0], RowMap::halo_interior(Extent3::new(2, 8, 8)));
    }

    #[test]
    fn deep_plus_shell_tile_interior() {
        let e = Extent3::new(4, 5, 6);
        let padded = (e.nx + 2) * (e.ny + 2) * (e.nz + 2);
        let mut hits = vec![0u8; padded];
        let mut cover = |m: &RowMap| {
            m.validate(padded);
            for r in 0..m.rows() {
                let (j, k) = m.row_jk(r);
                let off = m.row_offset(j, k);
                for i in 0..m.len {
                    hits[off + i] += 1;
                }
            }
        };
        cover(&RowMap::halo_deep_interior(e).unwrap());
        for m in RowMap::halo_shell(e) {
            cover(&m);
        }
        let interior = RowMap::halo_interior(e);
        let mut expect = vec![0u8; padded];
        for r in 0..interior.rows() {
            let (j, k) = interior.row_jk(r);
            let off = interior.row_offset(j, k);
            for i in 0..interior.len {
                expect[off + i] = 1;
            }
        }
        assert_eq!(
            hits, expect,
            "deep + shell must cover each interior cell exactly once"
        );
    }

    #[test]
    fn chunk_ranges_tile_exactly() {
        for n in [0usize, 1, 7, 64, 100] {
            for parts in [1usize, 2, 3, 7, 16] {
                let mut covered = 0;
                for p in 0..parts {
                    let r = chunk_range(n, parts, p);
                    assert_eq!(r.start, covered, "n={n} parts={parts} p={p}");
                    covered = r.end;
                }
                assert_eq!(covered, n);
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn halo_interior_rowmaps_always_validate(
            nx in 1usize..32, ny in 1usize..32, nz in 1usize..32,
        ) {
            let e = Extent3::new(nx, ny, nz);
            let m = RowMap::halo_interior(e);
            let padded = (nx + 2) * (ny + 2) * (nz + 2);
            m.validate(padded);
            prop_assert_eq!(m.elems(), e.len());
        }

        #[test]
        fn rows_never_overlap(
            nx in 1usize..16, ny in 1usize..16, nz in 1usize..16,
        ) {
            let m = RowMap::halo_interior(Extent3::new(nx, ny, nz));
            // mark every mapped element; each must be touched exactly once
            let padded = (nx + 2) * (ny + 2) * (nz + 2);
            let mut hits = vec![0u8; padded];
            for r in 0..m.rows() {
                let (j, k) = m.row_jk(r);
                let off = m.row_offset(j, k);
                for i in 0..m.len {
                    hits[off + i] += 1;
                }
            }
            prop_assert!(hits.iter().all(|&h| h <= 1), "overlapping rows");
            prop_assert_eq!(hits.iter().map(|&h| h as usize).sum::<usize>(), m.elems());
        }

        #[test]
        fn chunks_are_balanced(n in 0usize..10_000, parts in 1usize..64) {
            let sizes: Vec<usize> = (0..parts).map(|p| chunk_range(n, parts, p).len()).collect();
            let min = *sizes.iter().min().unwrap();
            let max = *sizes.iter().max().unwrap();
            prop_assert!(max - min <= 1, "chunks must differ by at most one element");
            prop_assert_eq!(sizes.iter().sum::<usize>(), n);
        }

        #[test]
        fn deep_shell_partition_any_extent(
            nx in 1usize..12, ny in 1usize..12, nz in 1usize..12,
        ) {
            let e = Extent3::new(nx, ny, nz);
            let padded = (nx + 2) * (ny + 2) * (nz + 2);
            let mut hits = vec![0u8; padded];
            let mut cover = |m: &RowMap| {
                m.validate(padded);
                for r in 0..m.rows() {
                    let (j, k) = m.row_jk(r);
                    let off = m.row_offset(j, k);
                    for i in 0..m.len {
                        hits[off + i] += 1;
                    }
                }
            };
            if let Some(deep) = RowMap::halo_deep_interior(e) {
                cover(&deep);
            }
            for m in RowMap::halo_shell(e) {
                cover(&m);
            }
            let interior = RowMap::halo_interior(e);
            let mut covered = 0usize;
            for r in 0..interior.rows() {
                let (j, k) = interior.row_jk(r);
                let off = interior.row_offset(j, k);
                for i in 0..interior.len {
                    prop_assert_eq!(hits[off + i], 1, "interior cell covered != once");
                    covered += 1;
                }
            }
            prop_assert_eq!(covered, e.len());
            prop_assert_eq!(
                hits.iter().map(|&h| h as usize).sum::<usize>(),
                e.len(),
                "shell/deep touched halo cells"
            );
        }

        #[test]
        fn row_jk_is_a_bijection(ny in 1usize..40, nz in 1usize..40) {
            let m = RowMap { base: 0, len: 1, ny, nz, sy: 1, sz: ny };
            let mut seen = vec![false; ny * nz];
            for r in 0..m.rows() {
                let (j, k) = m.row_jk(r);
                prop_assert!(j < ny && k < nz);
                let slot = k * ny + j;
                prop_assert!(!seen[slot], "duplicate (j,k)");
                seen[slot] = true;
            }
            prop_assert!(seen.into_iter().all(|s| s));
        }
    }
}
