//! Steady-state allocation audit of the halo-exchange path.
//!
//! The split-phase exchange recycles its face buffers through a per-axis
//! pool and the in-process communicator reuses its per-(peer, tag) message
//! queues, so after a short warm-up no exchange — synchronous or
//! split-phase — may touch the heap. A counting global allocator with a
//! per-thread counter verifies exactly that: each rank thread counts only
//! its own allocations, so no cross-rank synchronisation is needed.
//!
//! This file holds a single test on purpose: a `#[global_allocator]`
//! is binary-wide, and a lone test keeps other harness threads from
//! muddying the audit.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use accel::{Recorder, Serial};
use blockgrid::{BlockGrid, Decomp, Field, GlobalGrid, HaloExchange};
use comm::{run_ranks, Communicator, ReduceOp, ReduceOrder};

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// System allocator that bumps the calling thread's counter on every
/// allocation or reallocation (frees are not counted — returning memory
/// is fine; taking it is what the steady state forbids).
struct CountingAlloc;

// SAFETY: pure passthrough to `System`; the only extra work is a TLS
// counter bump, which never allocates and never panics (`try_with`).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // try_with: TLS may be gone during thread teardown; never panic
        // inside the allocator.
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        // SAFETY: `ptr`/`layout` come from this allocator (same `System`).
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` come from this allocator (same `System`).
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn my_allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

#[test]
fn halo_exchange_is_allocation_free_after_warmup() {
    let decomp = Decomp::new([2, 2, 2]);
    let global = GlobalGrid::dirichlet([8, 8, 8], [0.1; 3], [0.0; 3]);
    let counts = run_ranks::<f64, _, _>(8, ReduceOrder::RankOrder, move |comm| {
        let dev = Serial::new(Recorder::disabled());
        let grid = BlockGrid::new(global.clone(), decomp, comm.rank());
        let interior: Vec<f64> = (0..grid.local_n.iter().product())
            .map(|i| i as f64 * 0.25 + 1.0)
            .collect();
        let mut field = Field::from_interior(&dev, &grid, &interior);
        let interior32: Vec<f32> = interior.iter().map(|&v| v as f32).collect();
        let mut field32 = Field::from_interior(&dev, &grid, &interior32);
        let halo = HaloExchange::new(&grid);

        // Warm-up: populate the buffer pool and the communicator's
        // message queues on both flavours of the exchange, in both
        // precisions (the f32 path has its own pool and tag band).
        for _ in 0..3 {
            halo.exchange(&dev, &comm, &mut field);
            let pending = halo.begin(&dev, &comm, &field);
            halo.finish(&dev, &comm, pending, &mut field);
            halo.exchange_f32(&dev, &comm, &mut field32);
            let pending = halo.begin_f32(&dev, &comm, &field32);
            halo.finish_f32(&dev, &comm, pending, &mut field32);
        }
        // Make sure every rank is warm before anyone starts counting
        // (a cold neighbour would still only bump its *own* counter,
        // but the barrier keeps the steady-state claim honest).
        comm.all_reduce(&mut [0.0f64], ReduceOp::Sum);

        let before = my_allocs();
        for _ in 0..5 {
            halo.exchange(&dev, &comm, &mut field);
            let pending = halo.begin(&dev, &comm, &field);
            halo.finish(&dev, &comm, pending, &mut field);
            halo.exchange_f32(&dev, &comm, &mut field32);
            let pending = halo.begin_f32(&dev, &comm, &field32);
            halo.finish_f32(&dev, &comm, pending, &mut field32);
        }
        my_allocs() - before
    });
    for (rank, &n) in counts.iter().enumerate() {
        assert_eq!(
            n, 0,
            "rank {rank}: {n} heap allocations in the steady-state halo path"
        );
    }
}
