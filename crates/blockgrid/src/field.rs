//! Halo-padded device fields.

use accel::{Device, DeviceBuffer, Scalar};

use crate::grid::BlockGrid;

/// A device-resident scalar field on one subdomain, padded with one halo
/// layer per side.
///
/// The interior spans padded coordinates `1..=local_n` per axis; index `0`
/// and `local_n + 1` are ghost layers filled by the halo exchange (at
/// interfaces) or by the boundary-condition kernel (at physical faces).
/// All solver vectors (`x`, `r`, `p`, `p̂`, `t`, …) are `Field`s.
#[derive(Clone, Debug)]
pub struct Field<T> {
    buf: DeviceBuffer<T>,
    padded: [usize; 3],
}

impl<T: Scalar> Field<T> {
    /// Zero-filled field (interior and halo).
    pub fn zeros<D: Device>(dev: &D, grid: &BlockGrid) -> Self {
        Self {
            buf: DeviceBuffer::zeros(dev, grid.padded_len()),
            padded: grid.padded(),
        }
    }

    /// Field with the given interior values (x-fastest order over
    /// `local_n`) and zeroed halos; records one H2D upload.
    pub fn from_interior<D: Device>(dev: &D, grid: &BlockGrid, interior: &[T]) -> Self {
        let n = grid.local_n;
        assert_eq!(interior.len(), n[0] * n[1] * n[2], "interior size mismatch");
        let mut host = vec![T::ZERO; grid.padded_len()];
        let mut src = 0;
        for k in 0..n[2] {
            for j in 0..n[1] {
                let dst = grid.idx(1, j + 1, k + 1);
                host[dst..dst + n[0]].copy_from_slice(&interior[src..src + n[0]]);
                src += n[0];
            }
        }
        Self {
            buf: DeviceBuffer::from_host(dev, &host),
            padded: grid.padded(),
        }
    }

    /// Padded dims of the field.
    pub fn padded(&self) -> [usize; 3] {
        self.padded
    }

    /// Linear index of padded coordinates `(i, j, k)`.
    #[inline(always)]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.padded[0] && j < self.padded[1] && k < self.padded[2]);
        i + self.padded[0] * (j + self.padded[1] * k)
    }

    /// Device-side read view of the padded data.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        self.buf.as_slice()
    }

    /// Device-side write view of the padded data.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        self.buf.as_mut_slice()
    }

    /// Download the interior values to the host in x-fastest order
    /// (records one D2H transfer — the paper's single end-of-solve copy).
    pub fn interior_to_host(&self, grid: &BlockGrid) -> Vec<T> {
        let n = grid.local_n;
        let host = self.buf.copy_to_host();
        let mut out = Vec::with_capacity(n[0] * n[1] * n[2]);
        for k in 0..n[2] {
            for j in 0..n[1] {
                let src = self.idx(1, j + 1, k + 1);
                out.extend_from_slice(&host[src..src + n[0]]);
            }
        }
        out
    }

    /// Device-to-device copy of the full padded array from `src`.
    pub fn copy_from(&mut self, src: &Self) {
        assert_eq!(self.padded, src.padded, "field shape mismatch");
        self.buf.copy_from_device(&src.buf);
    }

    /// Swap storage with `other` (pointer swap, used by the Chebyshev
    /// `z`/`y`/`w` rotation).
    pub fn swap(&mut self, other: &mut Self) {
        assert_eq!(self.padded, other.padded, "field shape mismatch");
        self.buf.swap(&mut other.buf);
    }

    /// Zero the full padded array (device-side).
    pub fn fill_zero(&mut self) {
        self.buf.as_mut_slice().fill(T::ZERO);
    }

    /// Zero all six ghost layers, leaving the interior untouched.
    ///
    /// This is the restriction operator of the non-overlapping Block
    /// Jacobi preconditioner (Eq. 13): dropping inter-subdomain couplings
    /// is exactly "ghost = 0" for a matrix-free stencil.
    pub fn zero_halo(&mut self) {
        let [px, py, pz] = self.padded;
        let data = self.buf.as_mut_slice();
        let idx = |i: usize, j: usize, k: usize| i + px * (j + py * k);
        for k in 0..pz {
            for j in 0..py {
                data[idx(0, j, k)] = T::ZERO;
                data[idx(px - 1, j, k)] = T::ZERO;
            }
        }
        for k in 0..pz {
            for i in 0..px {
                data[idx(i, 0, k)] = T::ZERO;
                data[idx(i, py - 1, k)] = T::ZERO;
            }
        }
        for j in 0..py {
            for i in 0..px {
                data[idx(i, j, 0)] = T::ZERO;
                data[idx(i, j, pz - 1)] = T::ZERO;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{Decomp, GlobalGrid};
    use accel::{Recorder, Serial};

    fn bg(n: usize) -> BlockGrid {
        BlockGrid::new(
            GlobalGrid::dirichlet([n, n, n], [0.1; 3], [0.0; 3]),
            Decomp::single(),
            0,
        )
    }

    #[test]
    fn interior_roundtrip() {
        let dev = Serial::new(Recorder::disabled());
        let grid = bg(3);
        let interior: Vec<f64> = (0..27).map(|i| i as f64).collect();
        let f = Field::from_interior(&dev, &grid, &interior);
        assert_eq!(f.interior_to_host(&grid), interior);
    }

    #[test]
    fn from_interior_zeroes_halo() {
        let dev = Serial::new(Recorder::disabled());
        let grid = bg(2);
        let f = Field::from_interior(&dev, &grid, &[1.0f64; 8]);
        let s = f.as_slice();
        // corner ghost must be zero, interior 1
        assert_eq!(s[f.idx(0, 0, 0)], 0.0);
        assert_eq!(s[f.idx(1, 1, 1)], 1.0);
        assert_eq!(s[f.idx(2, 2, 2)], 1.0);
        assert_eq!(s[f.idx(3, 3, 3)], 0.0);
    }

    #[test]
    fn zero_halo_preserves_interior() {
        let dev = Serial::new(Recorder::disabled());
        let grid = bg(2);
        let mut f = Field::from_interior(&dev, &grid, &[2.0f64; 8]);
        // scribble on the halo
        let idx = f.idx(0, 1, 1);
        f.as_mut_slice()[idx] = 9.0;
        f.zero_halo();
        assert_eq!(f.as_slice()[idx], 0.0);
        assert_eq!(f.interior_to_host(&grid), vec![2.0; 8]);
    }

    #[test]
    fn swap_and_copy() {
        let dev = Serial::new(Recorder::disabled());
        let grid = bg(2);
        let mut a = Field::from_interior(&dev, &grid, &[1.0f64; 8]);
        let mut b = Field::from_interior(&dev, &grid, &[2.0f64; 8]);
        a.swap(&mut b);
        assert_eq!(a.interior_to_host(&grid), vec![2.0; 8]);
        b.copy_from(&a);
        assert_eq!(b.interior_to_host(&grid), vec![2.0; 8]);
    }

    #[test]
    #[should_panic(expected = "interior size mismatch")]
    fn wrong_interior_size_panics() {
        let dev = Serial::new(Recorder::disabled());
        let grid = bg(2);
        let _ = Field::from_interior(&dev, &grid, &[0.0f64; 7]);
    }
}
