//! Boundary-condition kinds.

/// Physical boundary condition on one face of the global domain.
///
/// Determines the 1-D operator structure along each axis (Eq. 4 vs Eq. 5
/// of the paper): a Dirichlet side truncates the operator (boundary values
/// are eliminated into the right-hand side), a Neumann side keeps the
/// boundary node as an unknown with a mirrored ghost (`-2` off-diagonal).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BcKind {
    /// Value prescribed on the boundary; boundary nodes are not unknowns.
    Dirichlet,
    /// Normal derivative prescribed (second-order ghost elimination);
    /// boundary nodes are unknowns.
    Neumann,
}

/// What one face of a *subdomain* borders on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LocalBoundary {
    /// Internal interface: the neighbouring subdomain with this rank.
    Interface {
        /// Rank owning the neighbouring subdomain.
        neighbor: usize,
    },
    /// Face of the global domain with this physical condition.
    Physical(BcKind),
}

impl LocalBoundary {
    /// `true` if this face has a neighbouring subdomain.
    pub fn is_interface(&self) -> bool {
        matches!(self, Self::Interface { .. })
    }

    /// The neighbour rank, if any.
    pub fn neighbor(&self) -> Option<usize> {
        match self {
            Self::Interface { neighbor } => Some(*neighbor),
            Self::Physical(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_boundary_accessors() {
        let iface = LocalBoundary::Interface { neighbor: 3 };
        assert!(iface.is_interface());
        assert_eq!(iface.neighbor(), Some(3));
        let phys = LocalBoundary::Physical(BcKind::Neumann);
        assert!(!phys.is_interface());
        assert_eq!(phys.neighbor(), None);
    }
}
