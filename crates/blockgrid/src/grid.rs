//! Global grid, process decomposition, and per-rank subdomain view.

use accel::{chunk_range, Extent3, RowMap};

use crate::bc::{BcKind, LocalBoundary};

/// The global grid of *unknowns* with spacing and boundary conditions.
///
/// `n[a]` counts the unknowns along axis `a`: Dirichlet boundary nodes are
/// excluded (their values are folded into the right-hand side, Eq. 4),
/// Neumann boundary nodes are included (Eq. 5). `coord` maps an unknown
/// index to its physical coordinate; `origin` is the coordinate of unknown
/// `(0, 0, 0)`.
#[derive(Clone, Debug, PartialEq)]
pub struct GlobalGrid {
    /// Unknowns per axis.
    pub n: [usize; 3],
    /// Grid spacing per axis.
    pub h: [f64; 3],
    /// Physical coordinate of the first unknown along each axis.
    pub origin: [f64; 3],
    /// Boundary condition per `[axis][side]` with side 0 = low, 1 = high.
    pub bc: [[BcKind; 2]; 3],
}

impl GlobalGrid {
    /// Uniform grid with Dirichlet conditions on all faces.
    pub fn dirichlet(n: [usize; 3], h: [f64; 3], origin: [f64; 3]) -> Self {
        Self {
            n,
            h,
            origin,
            bc: [[BcKind::Dirichlet; 2]; 3],
        }
    }

    /// Total number of unknowns.
    pub fn unknowns(&self) -> usize {
        self.n[0] * self.n[1] * self.n[2]
    }

    /// Physical coordinate of unknown `i` along `axis`.
    pub fn coord(&self, axis: usize, i: usize) -> f64 {
        self.origin[axis] + self.h[axis] * i as f64
    }
}

/// The process grid: `ns[a]` subdomains along axis `a`.
///
/// Ranks are laid out x-fastest: `rank = cx + ns_x * (cy + ns_y * cz)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decomp {
    /// Subdomain counts per axis.
    pub ns: [usize; 3],
}

impl Decomp {
    /// Create a decomposition; every axis must have at least one block.
    pub fn new(ns: [usize; 3]) -> Self {
        assert!(
            ns.iter().all(|&s| s >= 1),
            "decomposition needs >= 1 block per axis"
        );
        Self { ns }
    }

    /// Single-subdomain decomposition.
    pub fn single() -> Self {
        Self::new([1, 1, 1])
    }

    /// Total number of ranks.
    pub fn ranks(&self) -> usize {
        self.ns[0] * self.ns[1] * self.ns[2]
    }

    /// Cartesian coordinates of `rank` in the process grid.
    pub fn coords(&self, rank: usize) -> [usize; 3] {
        assert!(rank < self.ranks(), "rank {rank} outside decomposition");
        [
            rank % self.ns[0],
            (rank / self.ns[0]) % self.ns[1],
            rank / (self.ns[0] * self.ns[1]),
        ]
    }

    /// Rank at the given process-grid coordinates.
    pub fn rank_of(&self, c: [usize; 3]) -> usize {
        debug_assert!(c[0] < self.ns[0] && c[1] < self.ns[1] && c[2] < self.ns[2]);
        c[0] + self.ns[0] * (c[1] + self.ns[1] * c[2])
    }

    /// Neighbour rank of `coords` along `axis` on `side` (0 = low, 1 = high),
    /// or `None` at the edge of the process grid (non-periodic).
    pub fn neighbor(&self, coords: [usize; 3], axis: usize, side: usize) -> Option<usize> {
        let mut c = coords;
        if side == 0 {
            if c[axis] == 0 {
                return None;
            }
            c[axis] -= 1;
        } else {
            if c[axis] + 1 == self.ns[axis] {
                return None;
            }
            c[axis] += 1;
        }
        Some(self.rank_of(c))
    }
}

/// One rank's view of the decomposed grid — the paper's `blockGrid`.
#[derive(Clone, Debug)]
pub struct BlockGrid {
    /// The global problem.
    pub global: GlobalGrid,
    /// The process grid.
    pub decomp: Decomp,
    /// This rank.
    pub rank: usize,
    /// This rank's coordinates in the process grid.
    pub coords: [usize; 3],
    /// Local unknowns per axis (without halo).
    pub local_n: [usize; 3],
    /// Global index of the first local unknown along each axis.
    pub offset: [usize; 3],
}

impl BlockGrid {
    /// Build the subdomain view for `rank`.
    ///
    /// Unknowns along each axis are split into `ns` nearly-equal
    /// contiguous blocks (equal when divisible — the paper's setting).
    pub fn new(global: GlobalGrid, decomp: Decomp, rank: usize) -> Self {
        let coords = decomp.coords(rank);
        let mut local_n = [0; 3];
        let mut offset = [0; 3];
        for a in 0..3 {
            let r = chunk_range(global.n[a], decomp.ns[a], coords[a]);
            assert!(
                !r.is_empty(),
                "axis {a}: more subdomains ({}) than unknowns ({})",
                decomp.ns[a],
                global.n[a]
            );
            offset[a] = r.start;
            local_n[a] = r.len();
        }
        Self {
            global,
            decomp,
            rank,
            coords,
            local_n,
            offset,
        }
    }

    /// Local interior extent.
    pub fn interior(&self) -> Extent3 {
        Extent3::new(self.local_n[0], self.local_n[1], self.local_n[2])
    }

    /// Padded (halo-included) dims: `local_n + 2` per axis.
    pub fn padded(&self) -> [usize; 3] {
        [
            self.local_n[0] + 2,
            self.local_n[1] + 2,
            self.local_n[2] + 2,
        ]
    }

    /// Total padded elements.
    pub fn padded_len(&self) -> usize {
        let p = self.padded();
        p[0] * p[1] * p[2]
    }

    /// Row map over the interior of a padded local field.
    pub fn interior_map(&self) -> RowMap {
        RowMap::halo_interior(self.interior())
    }

    /// Linear index into a padded field; `i, j, k` are padded coordinates
    /// (interior spans `1..=local_n`, halos at `0` and `local_n + 1`).
    #[inline(always)]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        let p = self.padded();
        debug_assert!(i < p[0] && j < p[1] && k < p[2]);
        i + p[0] * (j + p[1] * k)
    }

    /// What the subdomain face on `axis`/`side` borders on.
    pub fn boundary(&self, axis: usize, side: usize) -> LocalBoundary {
        match self.decomp.neighbor(self.coords, axis, side) {
            Some(neighbor) => LocalBoundary::Interface { neighbor },
            None => LocalBoundary::Physical(self.global.bc[axis][side]),
        }
    }

    /// Physical coordinate of local unknown `i` (interior index `0..local_n`)
    /// along `axis`.
    pub fn local_coord(&self, axis: usize, i: usize) -> f64 {
        self.global.coord(axis, self.offset[axis] + i)
    }

    /// `true` if this rank touches the physical boundary on `axis`/`side`.
    pub fn at_physical_boundary(&self, axis: usize, side: usize) -> bool {
        !self.boundary(axis, side).is_interface()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_8() -> GlobalGrid {
        GlobalGrid::dirichlet([8, 8, 8], [0.1; 3], [0.0; 3])
    }

    #[test]
    fn decomp_rank_coord_roundtrip() {
        let d = Decomp::new([2, 3, 4]);
        assert_eq!(d.ranks(), 24);
        for rank in 0..24 {
            assert_eq!(d.rank_of(d.coords(rank)), rank);
        }
    }

    #[test]
    fn decomp_neighbors() {
        let d = Decomp::new([2, 2, 1]);
        // rank 0 at (0,0,0)
        assert_eq!(d.neighbor([0, 0, 0], 0, 0), None);
        assert_eq!(d.neighbor([0, 0, 0], 0, 1), Some(1));
        assert_eq!(d.neighbor([0, 0, 0], 1, 1), Some(2));
        assert_eq!(d.neighbor([1, 1, 0], 0, 0), Some(2));
        assert_eq!(d.neighbor([1, 1, 0], 2, 1), None);
    }

    #[test]
    fn blockgrid_even_split() {
        let g = grid_8();
        let bg = BlockGrid::new(g, Decomp::new([2, 2, 2]), 7);
        assert_eq!(bg.coords, [1, 1, 1]);
        assert_eq!(bg.local_n, [4, 4, 4]);
        assert_eq!(bg.offset, [4, 4, 4]);
        assert_eq!(bg.padded(), [6, 6, 6]);
        assert_eq!(bg.padded_len(), 216);
    }

    #[test]
    fn blockgrid_uneven_split_tiles_domain() {
        let g = GlobalGrid::dirichlet([10, 7, 5], [0.1; 3], [0.0; 3]);
        let d = Decomp::new([3, 2, 1]);
        let mut counts = [0usize; 3];
        for rank in 0..d.ranks() {
            let bg = BlockGrid::new(g.clone(), d, rank);
            if bg.coords[1] == 0 && bg.coords[2] == 0 {
                counts[0] += bg.local_n[0];
            }
        }
        assert_eq!(counts[0], 10);
    }

    #[test]
    fn boundary_classification() {
        let mut g = grid_8();
        g.bc[0] = [BcKind::Dirichlet, BcKind::Neumann];
        let d = Decomp::new([2, 1, 1]);
        let left = BlockGrid::new(g.clone(), d, 0);
        let right = BlockGrid::new(g, d, 1);
        assert_eq!(
            left.boundary(0, 0),
            LocalBoundary::Physical(BcKind::Dirichlet)
        );
        assert_eq!(
            left.boundary(0, 1),
            LocalBoundary::Interface { neighbor: 1 }
        );
        assert_eq!(
            right.boundary(0, 0),
            LocalBoundary::Interface { neighbor: 0 }
        );
        assert_eq!(
            right.boundary(0, 1),
            LocalBoundary::Physical(BcKind::Neumann)
        );
        assert!(left.at_physical_boundary(1, 0));
    }

    #[test]
    fn coordinates_account_for_offset() {
        let g = GlobalGrid::dirichlet([8, 8, 8], [0.5; 3], [1.0; 3]);
        let bg = BlockGrid::new(g, Decomp::new([2, 1, 1]), 1);
        assert_eq!(bg.local_coord(0, 0), 1.0 + 0.5 * 4.0);
    }

    #[test]
    #[should_panic(expected = "more subdomains")]
    fn too_many_subdomains_panics() {
        let g = GlobalGrid::dirichlet([2, 2, 2], [0.1; 3], [0.0; 3]);
        let _ = BlockGrid::new(g, Decomp::new([4, 1, 1]), 3);
    }

    #[test]
    fn idx_is_x_fastest() {
        let bg = BlockGrid::new(grid_8(), Decomp::single(), 0);
        assert_eq!(bg.idx(0, 0, 0), 0);
        assert_eq!(bg.idx(1, 0, 0), 1);
        assert_eq!(bg.idx(0, 1, 0), 10);
        assert_eq!(bg.idx(0, 0, 1), 100);
    }
}
