//! Halo (ghost-point) exchange between neighbouring subdomains.

use std::sync::Mutex;

use accel::{Device, Event, ExchangeHazard, KernelInfo, RowMap, Scalar, HALO_OVERLAP_STAGE};
use comm::{Communicator, RecvRequest, Tag};

use crate::field::Field;
use crate::grid::BlockGrid;

/// Face pack: one read + one write per face element, no flops.
pub const INFO_HALO_PACK: KernelInfo = KernelInfo::new("KernelHaloPack", 16, 0);
/// Ghost unpack: one read + one write per face element, no flops.
pub const INFO_HALO_UNPACK: KernelInfo = KernelInfo::new("KernelHaloUnpack", 16, 0);
/// Single-precision face pack: half the streamed bytes per face element.
pub const INFO_HALO_PACK_F32: KernelInfo = KernelInfo::new("KernelHaloPackF32", 8, 0);
/// Single-precision ghost unpack: half the streamed bytes per element.
pub const INFO_HALO_UNPACK_F32: KernelInfo = KernelInfo::new("KernelHaloUnpackF32", 8, 0);

/// Face-plane halo exchange for one subdomain (Fig. 1 of the paper).
///
/// Each of the up-to-six interface faces is packed into one contiguous
/// message (the analogue of the paper's per-face `MPI_Datatype`), all
/// sends are posted first, then all ghost planes are received and
/// unpacked — the buffered-`Isend`/`Irecv`/`Waitall` pattern, which is
/// deadlock-free by construction.
///
/// Two modes are offered:
///
/// * [`HaloExchange::exchange`] — the classic synchronous exchange.
/// * [`HaloExchange::begin`] / [`HaloExchange::finish`] — a split-phase
///   exchange that lets the caller overlap interior compute with the
///   in-flight messages (the paper's Sec. V communication-hiding
///   discussion). `begin` packs and posts everything; the caller then
///   runs kernels that do not read ghost values (e.g. the
///   deep-interior stencil via [`accel::RowMap::halo_deep_interior`]);
///   `finish` completes the receives and fills the ghost layers.
///
/// Pack and unpack run as device kernels through the [`Device`] launch
/// path, so they parallelize on the threaded back-end and are accounted
/// as `KernelHaloPack` / `KernelHaloUnpack` launches by the recorder.
/// Message payloads are recycled through a per-axis buffer pool:
/// neighbouring ranks along an axis share face dimensions, so every
/// received buffer is reusable for the next send and the steady-state
/// exchange performs no heap allocation.
#[derive(Debug)]
pub struct HaloExchange<T: Scalar> {
    grid: BlockGrid,
    /// Per-axis free lists of face-sized message buffers.
    pool: Mutex<[Vec<Vec<T>>; 3]>,
    /// Per-axis free lists of single-precision staging planes for the
    /// mixed-precision exchange (`f32` faces bit-packed into `T` wire
    /// words before they enter the communicator's native channels).
    pool_f32: Mutex<[Vec<Vec<f32>>; 3]>,
}

impl<T: Scalar> Clone for HaloExchange<T> {
    fn clone(&self) -> Self {
        // The pool is a warm-up cache, not state: clones start cold.
        Self::new(&self.grid)
    }
}

/// Token for a split-phase exchange in flight: the posted receives plus
/// the traffic bookkeeping `finish` will record.
#[must_use = "a begun halo exchange must be completed with finish()"]
#[derive(Debug)]
pub struct PendingExchange {
    recvs: [[Option<RecvRequest>; 2]; 3],
    msgs: u32,
    bytes: u64,
    overlap: bool,
}

/// Token for a split-phase single-precision exchange in flight (the
/// mixed-precision analogue of [`PendingExchange`], completed with
/// [`HaloExchange::finish_f32`]).
#[must_use = "a begun f32 halo exchange must be completed with finish_f32()"]
#[derive(Debug)]
pub struct PendingExchangeF32 {
    recvs: [[Option<RecvRequest>; 2]; 3],
    msgs: u32,
    bytes: u64,
    overlap: bool,
}

/// Message tag for a face moving from side `1 - side` toward `side` along
/// `axis`. Sender of its own `side` face uses `face_tag(axis, side)`; the
/// receiver filling its `side` ghost expects `face_tag(axis, 1 - side)`.
fn face_tag(axis: usize, side: usize) -> Tag {
    (axis * 2 + side) as Tag
}

/// Tag of a single-precision face message: its own band of six tags
/// (`6..12`), disjoint from the full-precision solo band (`0..6`), so a
/// channel+tag pair still always carries one fixed message size even
/// when `f64` and `f32` exchanges interleave on the same channel — the
/// `f32` wire payload is roughly half the `f64` one.
fn face_tag_f32(axis: usize, side: usize) -> Tag {
    6 + face_tag(axis, side)
}

/// Tag of a batched face message carrying `lanes` packed planes. Each
/// lane count gets its own band of six face tags, disjoint from the
/// solo `f64` band (`0..6`) and the solo `f32` band (`6..12`): a
/// channel+tag pair therefore always carries one fixed message size,
/// which communication checkers (and real MPI matching) can rely on even
/// as the active-lane set of a batched solve shrinks between exchanges.
fn batch_face_tag(axis: usize, side: usize, lanes: usize) -> Tag {
    (lanes as Tag + 1) * 6 + face_tag(axis, side)
}

impl<T: Scalar> HaloExchange<T> {
    /// Build the exchange plan for `grid`'s subdomain.
    pub fn new(grid: &BlockGrid) -> Self {
        Self {
            grid: grid.clone(),
            pool: Mutex::new([Vec::new(), Vec::new(), Vec::new()]),
            pool_f32: Mutex::new([Vec::new(), Vec::new(), Vec::new()]),
        }
    }

    /// Number of interface faces this rank exchanges.
    pub fn interface_faces(&self) -> usize {
        (0..3)
            .flat_map(|a| (0..2).map(move |s| (a, s)))
            .filter(|&(a, s)| self.grid.boundary(a, s).is_interface())
            .count()
    }

    /// Elements in the face plane orthogonal to `axis`.
    fn face_len(&self, axis: usize) -> usize {
        let n = self.grid.local_n;
        match axis {
            0 => n[1] * n[2],
            1 => n[0] * n[2],
            _ => n[0] * n[1],
        }
    }

    /// Number of `T` wire words one `f32` face plane of `axis` packs to.
    fn wire_len(&self, axis: usize) -> usize {
        self.face_len(axis).div_ceil(T::F32_LANES)
    }

    /// Take a face buffer for `axis` from the pool (or allocate one).
    fn acquire(&self, axis: usize) -> Vec<T> {
        self.acquire_len(axis, self.face_len(axis))
    }

    /// Take a buffer holding `lanes` consecutive face planes for `axis`
    /// from the pool (or allocate one). Solo and batched exchanges share
    /// the pool: `resize` adjusts a recycled buffer to either payload.
    fn acquire_lanes(&self, axis: usize, lanes: usize) -> Vec<T> {
        self.acquire_len(axis, self.face_len(axis) * lanes)
    }

    /// Take a buffer of exactly `len` elements from the `axis` free list
    /// (solo faces, batched multi-lane faces and `f32` wire words all
    /// share the list — `resize` adjusts a recycled buffer in place).
    fn acquire_len(&self, axis: usize, len: usize) -> Vec<T> {
        let mut buf = self.pool.lock().unwrap_or_else(|p| p.into_inner())[axis]
            .pop()
            .unwrap_or_default();
        buf.resize(len, T::ZERO);
        buf
    }

    /// Return a face buffer to the `axis` free list for reuse.
    fn recycle(&self, axis: usize, buf: Vec<T>) {
        self.pool.lock().unwrap_or_else(|p| p.into_inner())[axis].push(buf);
    }

    /// Take a single-precision staging plane for `axis` from the `f32`
    /// pool (or allocate one).
    fn acquire_f32(&self, axis: usize) -> Vec<f32> {
        let len = self.face_len(axis);
        let mut buf = self.pool_f32.lock().unwrap_or_else(|p| p.into_inner())[axis]
            .pop()
            .unwrap_or_default();
        buf.resize(len, 0.0);
        buf
    }

    /// Return a staging plane to the `axis` `f32` free list for reuse.
    fn recycle_f32(&self, axis: usize, buf: Vec<f32>) {
        self.pool_f32.lock().unwrap_or_else(|p| p.into_inner())[axis].push(buf);
    }

    /// Pack the interior plane adjacent to (`axis`, `side`) into `buf`
    /// as a device kernel over the buffer's rows. Generic over the face
    /// element type so the full- and mixed-precision exchanges share one
    /// kernel body (`info` carries the per-precision traffic accounting).
    fn pack_face<S: Scalar, D: Device>(
        &self,
        dev: &D,
        info: KernelInfo,
        field: &Field<S>,
        axis: usize,
        side: usize,
        buf: &mut [S],
    ) {
        let n = self.grid.local_n;
        let [pnx, pny, _] = self.grid.padded();
        let fixed = if side == 0 { 1 } else { n[axis] };
        let idx = move |i: usize, j: usize, k: usize| i + pnx * (j + pny * k);
        let us = field.as_slice();
        debug_assert_eq!(buf.len(), self.face_len(axis));
        // Buffer rows are its natural contiguous runs: j-runs for the x
        // faces, i-runs for the y and z faces.
        match axis {
            0 => {
                let map = RowMap {
                    base: 0,
                    len: n[1],
                    ny: n[2],
                    nz: 1,
                    sy: n[1],
                    sz: n[1] * n[2],
                };
                dev.launch_rows(info, map, buf, |kk, _, row| {
                    for (jj, v) in row.iter_mut().enumerate() {
                        *v = us[idx(fixed, jj + 1, kk + 1)];
                    }
                });
            }
            1 => {
                let map = RowMap {
                    base: 0,
                    len: n[0],
                    ny: n[2],
                    nz: 1,
                    sy: n[0],
                    sz: n[0] * n[2],
                };
                dev.launch_rows(info, map, buf, |kk, _, row| {
                    for (ii, v) in row.iter_mut().enumerate() {
                        *v = us[idx(ii + 1, fixed, kk + 1)];
                    }
                });
            }
            _ => {
                let map = RowMap {
                    base: 0,
                    len: n[0],
                    ny: n[1],
                    nz: 1,
                    sy: n[0],
                    sz: n[0] * n[1],
                };
                dev.launch_rows(info, map, buf, |jj, _, row| {
                    for (ii, v) in row.iter_mut().enumerate() {
                        *v = us[idx(ii + 1, jj + 1, fixed)];
                    }
                });
            }
        }
    }

    /// Unpack a received plane into the ghost layer at (`axis`, `side`)
    /// as a device kernel over the ghost layer's rows (generic over the
    /// face element type, like [`HaloExchange::pack_face`]).
    fn unpack_face<S: Scalar, D: Device>(
        &self,
        dev: &D,
        info: KernelInfo,
        field: &mut Field<S>,
        axis: usize,
        side: usize,
        plane: &[S],
    ) {
        let n = self.grid.local_n;
        let [pnx, pny, _] = self.grid.padded();
        assert_eq!(plane.len(), self.face_len(axis), "halo plane size mismatch");
        let ghost = if side == 0 { 0 } else { n[axis] + 1 };
        let idx = move |i: usize, j: usize, k: usize| i + pnx * (j + pny * k);
        let (sy, sz) = (pnx, pnx * pny);
        match axis {
            0 => {
                // x ghost plane: single-cell rows with field strides
                let map = RowMap {
                    base: idx(ghost, 1, 1),
                    len: 1,
                    ny: n[1],
                    nz: n[2],
                    sy,
                    sz,
                };
                dev.launch_rows(info, map, field.as_mut_slice(), |j, k, row| {
                    row[0] = plane[k * n[1] + j];
                });
            }
            1 => {
                let map = RowMap {
                    base: idx(1, ghost, 1),
                    len: n[0],
                    ny: 1,
                    nz: n[2],
                    sy,
                    sz,
                };
                dev.launch_rows(info, map, field.as_mut_slice(), |_, k, row| {
                    for (ii, v) in row.iter_mut().enumerate() {
                        *v = plane[k * n[0] + ii];
                    }
                });
            }
            _ => {
                let map = RowMap {
                    base: idx(1, 1, ghost),
                    len: n[0],
                    ny: n[1],
                    nz: 1,
                    sy,
                    sz,
                };
                dev.launch_rows(info, map, field.as_mut_slice(), |j, _, row| {
                    for (ii, v) in row.iter_mut().enumerate() {
                        *v = plane[j * n[0] + ii];
                    }
                });
            }
        }
    }

    /// The sanitizer-hook description of `field`'s in-flight ghost planes:
    /// every interface face, identified by the buffer's base address.
    fn hazard<S: Scalar>(&self, field: &Field<S>) -> ExchangeHazard {
        let mut faces = 0u8;
        for axis in 0..3 {
            for side in 0..2 {
                if self.grid.boundary(axis, side).is_interface() {
                    faces |= 1 << (axis * 2 + side);
                }
            }
        }
        ExchangeHazard {
            base: field.as_slice().as_ptr() as usize,
            elem_bytes: S::BYTES,
            padded: field.padded(),
            faces,
        }
    }

    fn begin_impl<D: Device, C: Communicator<T>>(
        &self,
        dev: &D,
        comm: &C,
        field: &Field<T>,
        overlap: bool,
    ) -> PendingExchange {
        // Post all receives first (`MPI_Irecv`), as the paper's
        // implementation does...
        let mut recvs: [[Option<RecvRequest>; 2]; 3] = [[None; 2]; 3];
        for (axis, slots) in recvs.iter_mut().enumerate() {
            for (side, slot) in slots.iter_mut().enumerate() {
                if let Some(neighbor) = self.grid.boundary(axis, side).neighbor() {
                    *slot = Some(comm.irecv(neighbor, face_tag(axis, 1 - side)));
                }
            }
        }
        // ...then all sends (`MPI_Isend`, buffered).
        let mut msgs = 0u32;
        let mut bytes = 0u64;
        for axis in 0..3 {
            for side in 0..2 {
                if let Some(neighbor) = self.grid.boundary(axis, side).neighbor() {
                    let mut face = self.acquire(axis);
                    self.pack_face(dev, INFO_HALO_PACK, field, axis, side, &mut face);
                    bytes += (face.len() * T::BYTES) as u64;
                    msgs += 1;
                    comm.send(neighbor, face_tag(axis, side), face);
                }
            }
        }
        if overlap {
            // Open the overlap window: the halo traffic is in flight from
            // here until `finish`, so kernels recorded inside the window
            // are modeled as hiding it (perfmodel's overlap-aware replay).
            comm.recorder().record(Event::Begin {
                name: HALO_OVERLAP_STAGE,
            });
            comm.recorder().record(Event::Halo { msgs, bytes });
        }
        // From here until `finish`, the interface ghost planes belong to
        // the exchange; tell any sanitizing device wrapper.
        dev.on_exchange_begin(self.hazard(field));
        PendingExchange {
            recvs,
            msgs,
            bytes,
            overlap,
        }
    }

    /// Start a split-phase exchange: pack every interface face of `field`
    /// and post all sends and receives, returning without waiting.
    ///
    /// The caller may now run any kernel that does not read `field`'s
    /// ghost values, then must call [`HaloExchange::finish`] to complete
    /// the exchange before the ghosts are consumed.
    pub fn begin<D: Device, C: Communicator<T>>(
        &self,
        dev: &D,
        comm: &C,
        field: &Field<T>,
    ) -> PendingExchange {
        self.begin_impl(dev, comm, field, true)
    }

    /// Complete a split-phase exchange: wait for every posted receive
    /// (`MPI_Waitall`) and unpack the ghost planes into `field`.
    ///
    /// Received buffers are recycled into the pool, so the next `begin`
    /// allocates nothing.
    pub fn finish<D: Device, C: Communicator<T>>(
        &self,
        dev: &D,
        comm: &C,
        pending: PendingExchange,
        field: &mut Field<T>,
    ) {
        // The exchange is being completed: the ghost planes return to the
        // caller before any unpack kernel writes them.
        dev.on_exchange_finish(self.hazard(field));
        for (axis, slots) in pending.recvs.iter().enumerate() {
            for (side, slot) in slots.iter().enumerate() {
                if let Some(req) = slot {
                    let plane = comm.wait(*req);
                    self.unpack_face(dev, INFO_HALO_UNPACK, field, axis, side, &plane);
                    self.recycle(axis, plane);
                }
            }
        }
        if pending.overlap {
            comm.recorder().record(Event::End {
                name: HALO_OVERLAP_STAGE,
            });
        } else {
            comm.recorder().record(Event::Halo {
                msgs: pending.msgs,
                bytes: pending.bytes,
            });
        }
    }

    /// Exchange all interface ghost layers of `field` with the neighbours
    /// (synchronous: begin + finish back to back).
    ///
    /// Physical-boundary ghosts are left untouched (the boundary-condition
    /// kernel owns them). One [`Event::Halo`] with the total message count
    /// and bytes is recorded on the communicator's recorder.
    pub fn exchange<D: Device, C: Communicator<T>>(&self, dev: &D, comm: &C, field: &mut Field<T>) {
        let pending = self.begin_impl(dev, comm, field, false);
        self.finish(dev, comm, pending, field);
    }

    fn begin_f32_impl<D: Device, C: Communicator<T>>(
        &self,
        dev: &D,
        comm: &C,
        field: &Field<f32>,
        overlap: bool,
    ) -> PendingExchangeF32 {
        // Post all receives first, on the f32 tag band so the half-size
        // payloads never share a (channel, tag) with full-precision faces.
        let mut recvs: [[Option<RecvRequest>; 2]; 3] = [[None; 2]; 3];
        for (axis, slots) in recvs.iter_mut().enumerate() {
            for (side, slot) in slots.iter_mut().enumerate() {
                if let Some(neighbor) = self.grid.boundary(axis, side).neighbor() {
                    *slot = Some(comm.irecv(neighbor, face_tag_f32(axis, 1 - side)));
                }
            }
        }
        // ...then all sends: device-pack the f32 face plane, bit-pack it
        // into `T` wire words (two lanes per f64 word) and ship those
        // through the communicator's native channels — the wire bytes
        // are the word bytes, i.e. genuinely about half the f64 face.
        let mut msgs = 0u32;
        let mut bytes = 0u64;
        for axis in 0..3 {
            for side in 0..2 {
                if let Some(neighbor) = self.grid.boundary(axis, side).neighbor() {
                    let mut staging = self.acquire_f32(axis);
                    self.pack_face(dev, INFO_HALO_PACK_F32, field, axis, side, &mut staging);
                    let mut words = self.acquire_len(axis, self.wire_len(axis));
                    T::pack_f32_words(&staging, &mut words);
                    self.recycle_f32(axis, staging);
                    bytes += (words.len() * T::BYTES) as u64;
                    msgs += 1;
                    comm.send(neighbor, face_tag_f32(axis, side), words);
                }
            }
        }
        if overlap {
            comm.recorder().record(Event::Begin {
                name: HALO_OVERLAP_STAGE,
            });
            comm.recorder().record(Event::Halo { msgs, bytes });
        }
        dev.on_exchange_begin(self.hazard(field));
        PendingExchangeF32 {
            recvs,
            msgs,
            bytes,
            overlap,
        }
    }

    /// Start a split-phase single-precision exchange of `field`'s
    /// interface ghosts (the mixed-precision preconditioner path).
    ///
    /// Identical contract to [`HaloExchange::begin`], but each face
    /// travels as `f32` bit patterns packed into `T` wire words, so the
    /// message payload is roughly half the full-precision one. Must be
    /// completed with [`HaloExchange::finish_f32`].
    pub fn begin_f32<D: Device, C: Communicator<T>>(
        &self,
        dev: &D,
        comm: &C,
        field: &Field<f32>,
    ) -> PendingExchangeF32 {
        self.begin_f32_impl(dev, comm, field, true)
    }

    /// Complete a split-phase single-precision exchange: wait for every
    /// posted receive, unpack the wire words back into `f32` ghost
    /// planes bit-exactly, and recycle all buffers into the pools.
    pub fn finish_f32<D: Device, C: Communicator<T>>(
        &self,
        dev: &D,
        comm: &C,
        pending: PendingExchangeF32,
        field: &mut Field<f32>,
    ) {
        dev.on_exchange_finish(self.hazard(field));
        for (axis, slots) in pending.recvs.iter().enumerate() {
            for (side, slot) in slots.iter().enumerate() {
                if let Some(req) = slot {
                    let words = comm.wait(*req);
                    assert_eq!(words.len(), self.wire_len(axis), "f32 wire length mismatch");
                    let mut staging = self.acquire_f32(axis);
                    T::unpack_f32_words(&words, &mut staging);
                    self.recycle(axis, words);
                    self.unpack_face(dev, INFO_HALO_UNPACK_F32, field, axis, side, &staging);
                    self.recycle_f32(axis, staging);
                }
            }
        }
        if pending.overlap {
            comm.recorder().record(Event::End {
                name: HALO_OVERLAP_STAGE,
            });
        } else {
            comm.recorder().record(Event::Halo {
                msgs: pending.msgs,
                bytes: pending.bytes,
            });
        }
    }

    /// Synchronous single-precision exchange (begin + finish back to
    /// back) — the mixed-precision analogue of [`HaloExchange::exchange`].
    pub fn exchange_f32<D: Device, C: Communicator<T>>(
        &self,
        dev: &D,
        comm: &C,
        field: &mut Field<f32>,
    ) {
        let pending = self.begin_f32_impl(dev, comm, field, false);
        self.finish_f32(dev, comm, pending, field);
    }

    /// Exchange the interface ghost layers of **every** field in `fields`
    /// with one message per face: lane `b`'s face plane occupies the range
    /// `[b * face_len, (b + 1) * face_len)` of the payload.
    ///
    /// This is the batched-solve analogue of [`HaloExchange::exchange`]:
    /// a B-lane solve pays the per-message latency once per face instead
    /// of once per face per lane. Pack and unpack are pure copies, so each
    /// lane's ghost values are bitwise identical to what a solo exchange
    /// of that lane's field would produce. All ranks must call this with
    /// the same number of fields (the active-lane set of a batched solve
    /// is decided from reduced values, so it is rank-uniform by
    /// construction). Synchronous: one [`Event::Halo`] with the total
    /// traffic is recorded, no overlap window.
    pub fn exchange_batch<D: Device, C: Communicator<T>>(
        &self,
        dev: &D,
        comm: &C,
        fields: &mut [&mut Field<T>],
    ) {
        let nl = fields.len();
        if nl == 0 {
            return;
        }
        // Post all receives first (`MPI_Irecv`), then all packed sends,
        // exactly like the solo exchange.
        let mut recvs: [[Option<RecvRequest>; 2]; 3] = [[None; 2]; 3];
        for (axis, slots) in recvs.iter_mut().enumerate() {
            for (side, slot) in slots.iter_mut().enumerate() {
                if let Some(neighbor) = self.grid.boundary(axis, side).neighbor() {
                    *slot = Some(comm.irecv(neighbor, batch_face_tag(axis, 1 - side, nl)));
                }
            }
        }
        let mut msgs = 0u32;
        let mut bytes = 0u64;
        for axis in 0..3 {
            let flen = self.face_len(axis);
            for side in 0..2 {
                if let Some(neighbor) = self.grid.boundary(axis, side).neighbor() {
                    let mut face = self.acquire_lanes(axis, nl);
                    for (b, field) in fields.iter().enumerate() {
                        self.pack_face(
                            dev,
                            INFO_HALO_PACK,
                            field,
                            axis,
                            side,
                            &mut face[b * flen..(b + 1) * flen],
                        );
                    }
                    bytes += (face.len() * T::BYTES) as u64;
                    msgs += 1;
                    comm.send(neighbor, batch_face_tag(axis, side, nl), face);
                }
            }
        }
        // The exchange owns every lane's interface ghosts from here until
        // the unpack below; mirror the solo begin/finish hook pairing for
        // sanitizing device wrappers (the window is empty — this exchange
        // is synchronous).
        for field in fields.iter() {
            dev.on_exchange_begin(self.hazard(field));
        }
        for field in fields.iter() {
            dev.on_exchange_finish(self.hazard(field));
        }
        for (axis, slots) in recvs.iter().enumerate() {
            let flen = self.face_len(axis);
            for (side, slot) in slots.iter().enumerate() {
                if let Some(req) = slot {
                    let plane = comm.wait(*req);
                    assert_eq!(plane.len(), nl * flen, "batched halo plane size mismatch");
                    for (b, field) in fields.iter_mut().enumerate() {
                        self.unpack_face(
                            dev,
                            INFO_HALO_UNPACK,
                            field,
                            axis,
                            side,
                            &plane[b * flen..(b + 1) * flen],
                        );
                    }
                    self.recycle(axis, plane);
                }
            }
        }
        comm.recorder().record(Event::Halo { msgs, bytes });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{Decomp, GlobalGrid};
    use accel::{Recorder, Serial};
    use comm::{run_ranks, ReduceOrder};

    /// Encode a global unknown index as a float so we can verify ghost
    /// provenance exactly.
    fn encode(g: [usize; 3]) -> f64 {
        (g[0] + 1000 * g[1] + 1_000_000 * g[2]) as f64
    }

    fn make_field(dev: &Serial, grid: &BlockGrid) -> Field<f64> {
        let n = grid.local_n;
        let mut interior = Vec::with_capacity(n[0] * n[1] * n[2]);
        for k in 0..n[2] {
            for j in 0..n[1] {
                for i in 0..n[0] {
                    interior.push(encode([
                        grid.offset[0] + i,
                        grid.offset[1] + j,
                        grid.offset[2] + k,
                    ]));
                }
            }
        }
        Field::from_interior(dev, grid, &interior)
    }

    fn check_ghosts(grid: &BlockGrid, field: &Field<f64>) {
        let n = grid.local_n;
        let g = grid.global.n;
        let data = field.as_slice();
        // For every interior-adjacent ghost on an interface, the ghost must
        // hold the encoding of the corresponding global neighbour cell.
        for axis in 0..3 {
            for side in 0..2 {
                if !grid.boundary(axis, side).is_interface() {
                    continue;
                }
                // global coordinate just outside the subdomain
                let ghost_axis_global = if side == 0 {
                    grid.offset[axis]
                        .checked_sub(1)
                        .expect("interface at global edge")
                } else {
                    grid.offset[axis] + n[axis]
                };
                assert!(ghost_axis_global < g[axis]);
                // probe a representative set of face points
                let (pa, pb) = match axis {
                    0 => (n[1], n[2]),
                    1 => (n[0], n[2]),
                    _ => (n[0], n[1]),
                };
                for b in 1..=pb {
                    for a in 1..=pa {
                        let (i, j, k, gc) = match axis {
                            0 => {
                                let i = if side == 0 { 0 } else { n[0] + 1 };
                                (
                                    i,
                                    a,
                                    b,
                                    [
                                        ghost_axis_global,
                                        grid.offset[1] + a - 1,
                                        grid.offset[2] + b - 1,
                                    ],
                                )
                            }
                            1 => {
                                let j = if side == 0 { 0 } else { n[1] + 1 };
                                (
                                    a,
                                    j,
                                    b,
                                    [
                                        grid.offset[0] + a - 1,
                                        ghost_axis_global,
                                        grid.offset[2] + b - 1,
                                    ],
                                )
                            }
                            _ => {
                                let k = if side == 0 { 0 } else { n[2] + 1 };
                                (
                                    a,
                                    b,
                                    k,
                                    [
                                        grid.offset[0] + a - 1,
                                        grid.offset[1] + b - 1,
                                        ghost_axis_global,
                                    ],
                                )
                            }
                        };
                        assert_eq!(
                            data[field.idx(i, j, k)],
                            encode(gc),
                            "axis {axis} side {side} point ({i},{j},{k})"
                        );
                    }
                }
            }
        }
    }

    fn exchange_world(global_n: [usize; 3], ns: [usize; 3]) {
        let decomp = Decomp::new(ns);
        run_ranks::<f64, _, _>(decomp.ranks(), ReduceOrder::RankOrder, |comm| {
            let dev = Serial::new(Recorder::disabled());
            let global = GlobalGrid::dirichlet(global_n, [0.1; 3], [0.0; 3]);
            let grid = BlockGrid::new(global, decomp, comm.rank());
            let mut field = make_field(&dev, &grid);
            let halo = HaloExchange::new(&grid);
            halo.exchange(&dev, &comm, &mut field);
            check_ghosts(&grid, &field);
        });
    }

    fn split_exchange_world(global_n: [usize; 3], ns: [usize; 3]) {
        let decomp = Decomp::new(ns);
        run_ranks::<f64, _, _>(decomp.ranks(), ReduceOrder::RankOrder, |comm| {
            let dev = Serial::new(Recorder::disabled());
            let global = GlobalGrid::dirichlet(global_n, [0.1; 3], [0.0; 3]);
            let grid = BlockGrid::new(global, decomp, comm.rank());
            let mut field = make_field(&dev, &grid);
            let halo = HaloExchange::new(&grid);
            let pending = halo.begin(&dev, &comm, &field);
            halo.finish(&dev, &comm, pending, &mut field);
            check_ghosts(&grid, &field);
        });
    }

    #[test]
    fn two_ranks_along_x() {
        exchange_world([8, 4, 4], [2, 1, 1]);
    }

    #[test]
    fn eight_ranks_full_3d() {
        exchange_world([8, 8, 8], [2, 2, 2]);
    }

    #[test]
    fn uneven_decomposition() {
        exchange_world([7, 5, 6], [3, 2, 2]);
    }

    #[test]
    fn pencil_decomposition() {
        exchange_world([4, 4, 12], [1, 1, 4]);
    }

    #[test]
    fn split_phase_two_ranks() {
        split_exchange_world([8, 4, 4], [2, 1, 1]);
    }

    #[test]
    fn split_phase_eight_ranks() {
        split_exchange_world([8, 8, 8], [2, 2, 2]);
    }

    #[test]
    fn split_phase_uneven() {
        split_exchange_world([7, 5, 6], [3, 2, 2]);
    }

    #[test]
    fn repeated_exchanges_stay_consistent() {
        let decomp = Decomp::new([2, 1, 1]);
        run_ranks::<f64, _, _>(2, ReduceOrder::RankOrder, |comm| {
            let dev = Serial::new(Recorder::disabled());
            let global = GlobalGrid::dirichlet([6, 3, 3], [0.1; 3], [0.0; 3]);
            let grid = BlockGrid::new(global, decomp, comm.rank());
            let mut field = make_field(&dev, &grid);
            let halo = HaloExchange::new(&grid);
            for _ in 0..5 {
                halo.exchange(&dev, &comm, &mut field);
                check_ghosts(&grid, &field);
            }
        });
    }

    #[test]
    fn records_halo_event_with_traffic() {
        let decomp = Decomp::new([2, 1, 1]);
        let recorders: Vec<Recorder> = (0..2).map(|_| Recorder::enabled()).collect();
        let handles = recorders.clone();
        comm::run_ranks_recorded::<f64, _, _>(2, ReduceOrder::RankOrder, recorders, |comm| {
            let dev = Serial::new(Recorder::disabled());
            let global = GlobalGrid::dirichlet([4, 3, 3], [0.1; 3], [0.0; 3]);
            let grid = BlockGrid::new(global, decomp, comm.rank());
            let mut field = make_field(&dev, &grid);
            HaloExchange::new(&grid).exchange(&dev, &comm, &mut field);
        });
        for rec in &handles {
            let evs = rec.snapshot();
            assert!(
                evs.iter().any(|e| matches!(
                    e,
                    Event::Halo { msgs: 1, bytes } if *bytes == (3 * 3 * 8) as u64
                )),
                "missing halo event: {evs:?}"
            );
        }
    }

    #[test]
    fn split_phase_records_overlap_window() {
        let decomp = Decomp::new([2, 1, 1]);
        let recorders: Vec<Recorder> = (0..2).map(|_| Recorder::enabled()).collect();
        let handles = recorders.clone();
        comm::run_ranks_recorded::<f64, _, _>(2, ReduceOrder::RankOrder, recorders, |comm| {
            let dev = Serial::new(Recorder::disabled());
            let global = GlobalGrid::dirichlet([4, 3, 3], [0.1; 3], [0.0; 3]);
            let grid = BlockGrid::new(global, decomp, comm.rank());
            let mut field = make_field(&dev, &grid);
            let halo = HaloExchange::new(&grid);
            let pending = halo.begin(&dev, &comm, &field);
            halo.finish(&dev, &comm, pending, &mut field);
        });
        for rec in &handles {
            let evs = rec.snapshot();
            let begin = evs
                .iter()
                .position(|e| matches!(e, Event::Begin { name } if *name == HALO_OVERLAP_STAGE))
                .expect("missing overlap Begin");
            let halo = evs
                .iter()
                .position(|e| matches!(e, Event::Halo { msgs: 1, .. }))
                .expect("missing halo event");
            let end = evs
                .iter()
                .position(|e| matches!(e, Event::End { name } if *name == HALO_OVERLAP_STAGE))
                .expect("missing overlap End");
            assert!(begin < halo && halo < end, "window out of order: {evs:?}");
        }
    }

    #[test]
    fn pack_unpack_run_as_device_kernels() {
        let decomp = Decomp::new([2, 1, 1]);
        run_ranks::<f64, _, _>(2, ReduceOrder::RankOrder, |comm| {
            let rec = Recorder::enabled();
            let dev = Serial::new(rec.clone());
            let global = GlobalGrid::dirichlet([4, 3, 3], [0.1; 3], [0.0; 3]);
            let grid = BlockGrid::new(global, decomp, comm.rank());
            let mut field = make_field(&dev, &grid);
            rec.drain(); // discard the H2D upload
            HaloExchange::new(&grid).exchange(&dev, &comm, &mut field);
            let evs = rec.drain();
            assert!(
                evs.iter().any(|e| matches!(
                    e,
                    Event::Kernel {
                        name: "KernelHaloPack",
                        elems: 9,
                        ..
                    }
                )),
                "missing pack kernel: {evs:?}"
            );
            assert!(
                evs.iter().any(|e| matches!(
                    e,
                    Event::Kernel {
                        name: "KernelHaloUnpack",
                        elems: 9,
                        ..
                    }
                )),
                "missing unpack kernel: {evs:?}"
            );
        });
    }

    #[test]
    fn buffers_recycle_through_the_pool() {
        let decomp = Decomp::new([2, 1, 1]);
        run_ranks::<f64, _, _>(2, ReduceOrder::RankOrder, |comm| {
            let dev = Serial::new(Recorder::disabled());
            let global = GlobalGrid::dirichlet([6, 3, 3], [0.1; 3], [0.0; 3]);
            let grid = BlockGrid::new(global, decomp, comm.rank());
            let mut field = make_field(&dev, &grid);
            let halo = HaloExchange::new(&grid);
            for _ in 0..4 {
                halo.exchange(&dev, &comm, &mut field);
            }
            // one interface face along x: steady state keeps exactly one
            // recycled buffer in the axis-0 free list
            let pool = halo.pool.lock().unwrap();
            assert_eq!(
                pool[0].len(),
                1,
                "axis-0 pool should hold one recycled buffer"
            );
            assert!(pool[1].is_empty() && pool[2].is_empty());
        });
    }

    fn make_lane_field(dev: &Serial, grid: &BlockGrid, lane: usize) -> Field<f64> {
        let n = grid.local_n;
        let mut interior = Vec::with_capacity(n[0] * n[1] * n[2]);
        for k in 0..n[2] {
            for j in 0..n[1] {
                for i in 0..n[0] {
                    interior.push(
                        encode([grid.offset[0] + i, grid.offset[1] + j, grid.offset[2] + k])
                            + (lane as f64) * 1e9,
                    );
                }
            }
        }
        Field::from_interior(dev, grid, &interior)
    }

    #[test]
    fn batched_exchange_matches_solo_per_lane() {
        let decomp = Decomp::new([2, 2, 2]);
        run_ranks::<f64, _, _>(8, ReduceOrder::RankOrder, |comm| {
            let dev = Serial::new(Recorder::disabled());
            let global = GlobalGrid::dirichlet([8, 8, 8], [0.1; 3], [0.0; 3]);
            let grid = BlockGrid::new(global, decomp, comm.rank());
            let halo = HaloExchange::new(&grid);
            let lanes = 3;
            let mut batched: Vec<Field<f64>> = (0..lanes)
                .map(|b| make_lane_field(&dev, &grid, b))
                .collect();
            let mut refs: Vec<&mut Field<f64>> = batched.iter_mut().collect();
            halo.exchange_batch(&dev, &comm, &mut refs);
            for (b, lane) in batched.iter().enumerate() {
                let mut solo = make_lane_field(&dev, &grid, b);
                // LINT: collective-uniform(`batched` holds the same 3
                // lanes on every rank, so all ranks loop in lock-step)
                halo.exchange(&dev, &comm, &mut solo);
                assert_eq!(
                    lane.as_slice(),
                    solo.as_slice(),
                    "lane {b} ghosts differ from a solo exchange"
                );
            }
        });
    }

    #[test]
    fn batched_exchange_sends_one_message_per_face() {
        let decomp = Decomp::new([2, 1, 1]);
        let recorders: Vec<Recorder> = (0..2).map(|_| Recorder::enabled()).collect();
        let handles = recorders.clone();
        comm::run_ranks_recorded::<f64, _, _>(2, ReduceOrder::RankOrder, recorders, |comm| {
            let dev = Serial::new(Recorder::disabled());
            let global = GlobalGrid::dirichlet([4, 3, 3], [0.1; 3], [0.0; 3]);
            let grid = BlockGrid::new(global, decomp, comm.rank());
            let mut fields: Vec<Field<f64>> =
                (0..4).map(|b| make_lane_field(&dev, &grid, b)).collect();
            let mut refs: Vec<&mut Field<f64>> = fields.iter_mut().collect();
            HaloExchange::new(&grid).exchange_batch(&dev, &comm, &mut refs);
        });
        for rec in &handles {
            let evs = rec.snapshot();
            // One interface face along x; the single message carries all
            // four lanes' planes.
            assert!(
                evs.iter().any(|e| matches!(
                    e,
                    Event::Halo { msgs: 1, bytes } if *bytes == (4 * 3 * 3 * 8) as u64
                )),
                "missing batched halo event: {evs:?}"
            );
        }
    }

    #[test]
    fn batched_exchange_of_one_lane_equals_solo() {
        let decomp = Decomp::new([3, 2, 2]);
        run_ranks::<f64, _, _>(12, ReduceOrder::RankOrder, |comm| {
            let dev = Serial::new(Recorder::disabled());
            let global = GlobalGrid::dirichlet([7, 5, 6], [0.1; 3], [0.0; 3]);
            let grid = BlockGrid::new(global, decomp, comm.rank());
            let halo = HaloExchange::new(&grid);
            let mut batched = make_lane_field(&dev, &grid, 0);
            let mut refs: Vec<&mut Field<f64>> = vec![&mut batched];
            halo.exchange_batch(&dev, &comm, &mut refs);
            let mut solo = make_lane_field(&dev, &grid, 0);
            halo.exchange(&dev, &comm, &mut solo);
            assert_eq!(batched.as_slice(), solo.as_slice());
            check_ghosts(&grid, &batched);
        });
    }

    fn make_field_f32(dev: &Serial, grid: &BlockGrid) -> Field<f32> {
        let n = grid.local_n;
        let mut interior = Vec::with_capacity(n[0] * n[1] * n[2]);
        for k in 0..n[2] {
            for j in 0..n[1] {
                for i in 0..n[0] {
                    // The encoded values stay below 2^24, so they are
                    // exactly representable in f32 and ghost provenance
                    // can be checked with exact equality.
                    interior.push(encode([
                        grid.offset[0] + i,
                        grid.offset[1] + j,
                        grid.offset[2] + k,
                    ]) as f32);
                }
            }
        }
        Field::from_interior(dev, grid, &interior)
    }

    fn check_ghosts_f32(grid: &BlockGrid, field: &Field<f32>) {
        // Reuse the f64 checker by widening: the payload is bit-exact.
        let dev = Serial::new(Recorder::disabled());
        let mut wide = Field::<f64>::zeros(&dev, grid);
        for (w, v) in wide.as_mut_slice().iter_mut().zip(field.as_slice()) {
            *w = f64::from(*v);
        }
        check_ghosts(grid, &wide);
    }

    fn f32_exchange_world(global_n: [usize; 3], ns: [usize; 3]) {
        let decomp = Decomp::new(ns);
        run_ranks::<f64, _, _>(decomp.ranks(), ReduceOrder::RankOrder, |comm| {
            let dev = Serial::new(Recorder::disabled());
            let global = GlobalGrid::dirichlet(global_n, [0.1; 3], [0.0; 3]);
            let grid = BlockGrid::new(global, decomp, comm.rank());
            let mut field = make_field_f32(&dev, &grid);
            let halo = HaloExchange::<f64>::new(&grid);
            halo.exchange_f32(&dev, &comm, &mut field);
            check_ghosts_f32(&grid, &field);
        });
    }

    #[test]
    fn f32_exchange_two_ranks() {
        f32_exchange_world([8, 4, 4], [2, 1, 1]);
    }

    #[test]
    fn f32_exchange_eight_ranks() {
        f32_exchange_world([8, 8, 8], [2, 2, 2]);
    }

    #[test]
    fn f32_exchange_uneven_odd_faces() {
        // Odd face element counts exercise the zero tail lane of the
        // two-lanes-per-word packing.
        f32_exchange_world([7, 5, 6], [3, 2, 2]);
    }

    #[test]
    fn f32_split_phase_eight_ranks() {
        let decomp = Decomp::new([2, 2, 2]);
        run_ranks::<f64, _, _>(8, ReduceOrder::RankOrder, |comm| {
            let dev = Serial::new(Recorder::disabled());
            let global = GlobalGrid::dirichlet([8, 8, 8], [0.1; 3], [0.0; 3]);
            let grid = BlockGrid::new(global, decomp, comm.rank());
            let mut field = make_field_f32(&dev, &grid);
            let halo = HaloExchange::<f64>::new(&grid);
            let pending = halo.begin_f32(&dev, &comm, &field);
            halo.finish_f32(&dev, &comm, pending, &mut field);
            check_ghosts_f32(&grid, &field);
        });
    }

    #[test]
    fn f32_exchange_halves_wire_bytes() {
        let decomp = Decomp::new([2, 1, 1]);
        let recorders: Vec<Recorder> = (0..2).map(|_| Recorder::enabled()).collect();
        let handles = recorders.clone();
        comm::run_ranks_recorded::<f64, _, _>(2, ReduceOrder::RankOrder, recorders, |comm| {
            let dev = Serial::new(Recorder::disabled());
            let global = GlobalGrid::dirichlet([4, 3, 3], [0.1; 3], [0.0; 3]);
            let grid = BlockGrid::new(global, decomp, comm.rank());
            let halo = HaloExchange::<f64>::new(&grid);
            let mut wide = make_field(&dev, &grid);
            halo.exchange(&dev, &comm, &mut wide);
            let mut field = make_field_f32(&dev, &grid);
            halo.exchange_f32(&dev, &comm, &mut field);
        });
        for rec in &handles {
            let evs = rec.snapshot();
            // 9-element face: 72 B in f64, ceil(9/2) = 5 wire words =
            // 40 B in f32 — the payload genuinely (almost) halves.
            assert!(
                evs.iter().any(|e| matches!(
                    e,
                    Event::Halo { msgs: 1, bytes } if *bytes == (3 * 3 * 8) as u64
                )),
                "missing f64 halo event: {evs:?}"
            );
            assert!(
                evs.iter().any(|e| matches!(
                    e,
                    Event::Halo { msgs: 1, bytes } if *bytes == (5 * 8) as u64
                )),
                "missing halved f32 halo event: {evs:?}"
            );
        }
    }

    #[test]
    fn f32_split_phase_records_overlap_window() {
        let decomp = Decomp::new([2, 1, 1]);
        let recorders: Vec<Recorder> = (0..2).map(|_| Recorder::enabled()).collect();
        let handles = recorders.clone();
        comm::run_ranks_recorded::<f64, _, _>(2, ReduceOrder::RankOrder, recorders, |comm| {
            let dev = Serial::new(Recorder::disabled());
            let global = GlobalGrid::dirichlet([4, 3, 3], [0.1; 3], [0.0; 3]);
            let grid = BlockGrid::new(global, decomp, comm.rank());
            let field = make_field_f32(&dev, &grid);
            let halo = HaloExchange::<f64>::new(&grid);
            let pending = halo.begin_f32(&dev, &comm, &field);
            let mut field = field;
            halo.finish_f32(&dev, &comm, pending, &mut field);
        });
        for rec in &handles {
            let evs = rec.snapshot();
            let begin = evs
                .iter()
                .position(|e| matches!(e, Event::Begin { name } if *name == HALO_OVERLAP_STAGE))
                .expect("missing overlap Begin");
            let halo = evs
                .iter()
                .position(|e| matches!(e, Event::Halo { msgs: 1, .. }))
                .expect("missing halo event");
            let end = evs
                .iter()
                .position(|e| matches!(e, Event::End { name } if *name == HALO_OVERLAP_STAGE))
                .expect("missing overlap End");
            assert!(begin < halo && halo < end, "window out of order: {evs:?}");
        }
    }

    #[test]
    fn f32_and_f64_exchanges_interleave_on_disjoint_tags() {
        // Both precisions in flight on the same channels at once: the
        // per-precision tag bands keep the half-size f32 messages from
        // ever matching a full-precision receive.
        let decomp = Decomp::new([2, 2, 1]);
        run_ranks::<f64, _, _>(4, ReduceOrder::RankOrder, |comm| {
            let dev = Serial::new(Recorder::disabled());
            let global = GlobalGrid::dirichlet([8, 8, 4], [0.1; 3], [0.0; 3]);
            let grid = BlockGrid::new(global, decomp, comm.rank());
            let mut wide = make_field(&dev, &grid);
            let mut narrow = make_field_f32(&dev, &grid);
            let halo = HaloExchange::<f64>::new(&grid);
            let pending_wide = halo.begin(&dev, &comm, &wide);
            let pending_narrow = halo.begin_f32(&dev, &comm, &narrow);
            halo.finish_f32(&dev, &comm, pending_narrow, &mut narrow);
            halo.finish(&dev, &comm, pending_wide, &mut wide);
            check_ghosts(&grid, &wide);
            check_ghosts_f32(&grid, &narrow);
        });
    }

    #[test]
    fn f32_buffers_recycle_through_both_pools() {
        let decomp = Decomp::new([2, 1, 1]);
        run_ranks::<f64, _, _>(2, ReduceOrder::RankOrder, |comm| {
            let dev = Serial::new(Recorder::disabled());
            let global = GlobalGrid::dirichlet([6, 3, 3], [0.1; 3], [0.0; 3]);
            let grid = BlockGrid::new(global, decomp, comm.rank());
            let mut field = make_field_f32(&dev, &grid);
            let halo = HaloExchange::<f64>::new(&grid);
            for _ in 0..4 {
                halo.exchange_f32(&dev, &comm, &mut field);
            }
            // One interface face along x: the wire words recycle through
            // the shared word pool and the staging plane through the f32
            // pool, one buffer each in steady state.
            let pool = halo.pool.lock().unwrap();
            let pool_f32 = halo.pool_f32.lock().unwrap();
            assert_eq!(pool[0].len(), 1, "axis-0 word pool should hold one buffer");
            assert_eq!(
                pool_f32[0].len(),
                1,
                "axis-0 staging pool should hold one buffer"
            );
        });
    }

    #[test]
    fn single_rank_exchange_is_a_noop() {
        let dev = Serial::new(Recorder::disabled());
        let global = GlobalGrid::dirichlet([4, 4, 4], [0.1; 3], [0.0; 3]);
        let grid = BlockGrid::new(global, Decomp::single(), 0);
        let mut field = make_field(&dev, &grid);
        let before = field.as_slice().to_vec();
        let comm = comm::SelfComm::<f64>::default();
        HaloExchange::new(&grid).exchange(&dev, &comm, &mut field);
        assert_eq!(field.as_slice(), &before[..]);
    }
}
