//! Halo (ghost-point) exchange between neighbouring subdomains.

use accel::{Event, Scalar};
use comm::{Communicator, Tag};

use crate::field::Field;
use crate::grid::BlockGrid;

/// Face-plane halo exchange for one subdomain (Fig. 1 of the paper).
///
/// Each of the up-to-six interface faces is packed into one contiguous
/// message (the analogue of the paper's per-face `MPI_Datatype`), all
/// sends are posted first, then all ghost planes are received and
/// unpacked — the buffered-`Isend`/`Irecv`/`Waitall` pattern, which is
/// deadlock-free by construction.
#[derive(Clone, Debug)]
pub struct HaloExchange {
    grid: BlockGrid,
}

/// Message tag for a face moving from side `1 - side` toward `side` along
/// `axis`. Sender of its own `side` face uses `face_tag(axis, side)`; the
/// receiver filling its `side` ghost expects `face_tag(axis, 1 - side)`.
fn face_tag(axis: usize, side: usize) -> Tag {
    (axis * 2 + side) as Tag
}

impl HaloExchange {
    /// Build the exchange plan for `grid`'s subdomain.
    pub fn new(grid: &BlockGrid) -> Self {
        Self { grid: grid.clone() }
    }

    /// Number of interface faces this rank exchanges.
    pub fn interface_faces(&self) -> usize {
        (0..3)
            .flat_map(|a| (0..2).map(move |s| (a, s)))
            .filter(|&(a, s)| self.grid.boundary(a, s).is_interface())
            .count()
    }

    /// Elements in the face plane orthogonal to `axis`.
    fn face_len(&self, axis: usize) -> usize {
        let n = self.grid.local_n;
        match axis {
            0 => n[1] * n[2],
            1 => n[0] * n[2],
            _ => n[0] * n[1],
        }
    }

    /// Pack the interior plane adjacent to (`axis`, `side`).
    fn pack<T: Scalar>(&self, field: &Field<T>, axis: usize, side: usize) -> Vec<T> {
        let n = self.grid.local_n;
        let fixed = if side == 0 { 1 } else { n[axis] };
        let data = field.as_slice();
        let mut out = Vec::with_capacity(self.face_len(axis));
        match axis {
            0 => {
                for k in 1..=n[2] {
                    for j in 1..=n[1] {
                        out.push(data[field.idx(fixed, j, k)]);
                    }
                }
            }
            1 => {
                for k in 1..=n[2] {
                    for i in 1..=n[0] {
                        out.push(data[field.idx(i, fixed, k)]);
                    }
                }
            }
            _ => {
                for j in 1..=n[1] {
                    for i in 1..=n[0] {
                        out.push(data[field.idx(i, j, fixed)]);
                    }
                }
            }
        }
        out
    }

    /// Unpack a received plane into the ghost layer at (`axis`, `side`).
    fn unpack<T: Scalar>(&self, field: &mut Field<T>, axis: usize, side: usize, plane: &[T]) {
        let n = self.grid.local_n;
        assert_eq!(plane.len(), self.face_len(axis), "halo plane size mismatch");
        let ghost = if side == 0 { 0 } else { n[axis] + 1 };
        let mut it = plane.iter();
        match axis {
            0 => {
                for k in 1..=n[2] {
                    for j in 1..=n[1] {
                        let at = field.idx(ghost, j, k);
                        field.as_mut_slice()[at] = *it.next().expect("plane exhausted");
                    }
                }
            }
            1 => {
                for k in 1..=n[2] {
                    for i in 1..=n[0] {
                        let at = field.idx(i, ghost, k);
                        field.as_mut_slice()[at] = *it.next().expect("plane exhausted");
                    }
                }
            }
            _ => {
                for j in 1..=n[1] {
                    for i in 1..=n[0] {
                        let at = field.idx(i, j, ghost);
                        field.as_mut_slice()[at] = *it.next().expect("plane exhausted");
                    }
                }
            }
        }
    }

    /// Exchange all interface ghost layers of `field` with the neighbours.
    ///
    /// Physical-boundary ghosts are left untouched (the boundary-condition
    /// kernel owns them). One [`Event::Halo`] with the total message count
    /// and bytes is recorded on the communicator's recorder.
    pub fn exchange<T: Scalar, C: Communicator<T>>(&self, comm: &C, field: &mut Field<T>) {
        let mut msgs = 0u32;
        let mut bytes = 0u64;
        // Post all receives first (`MPI_Irecv`), as the paper's
        // implementation does...
        let mut pending = Vec::with_capacity(6);
        for axis in 0..3 {
            for side in 0..2 {
                if let Some(neighbor) = self.grid.boundary(axis, side).neighbor() {
                    pending.push((axis, side, comm.irecv(neighbor, face_tag(axis, 1 - side))));
                }
            }
        }
        // ...then all sends (`MPI_Isend`, buffered)...
        for axis in 0..3 {
            for side in 0..2 {
                if let Some(neighbor) = self.grid.boundary(axis, side).neighbor() {
                    let face = self.pack(field, axis, side);
                    bytes += (face.len() * T::BYTES) as u64;
                    msgs += 1;
                    comm.send(neighbor, face_tag(axis, side), face);
                }
            }
        }
        // ...then complete and unpack every ghost plane (`MPI_Waitall`).
        for (axis, side, req) in pending {
            let plane = comm.wait(req);
            self.unpack(field, axis, side, &plane);
        }
        comm.recorder().record(Event::Halo { msgs, bytes });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{Decomp, GlobalGrid};
    use accel::{Recorder, Serial};
    use comm::{run_ranks, ReduceOrder};

    /// Encode a global unknown index as a float so we can verify ghost
    /// provenance exactly.
    fn encode(g: [usize; 3]) -> f64 {
        (g[0] + 1000 * g[1] + 1_000_000 * g[2]) as f64
    }

    fn make_field(dev: &Serial, grid: &BlockGrid) -> Field<f64> {
        let n = grid.local_n;
        let mut interior = Vec::with_capacity(n[0] * n[1] * n[2]);
        for k in 0..n[2] {
            for j in 0..n[1] {
                for i in 0..n[0] {
                    interior.push(encode([
                        grid.offset[0] + i,
                        grid.offset[1] + j,
                        grid.offset[2] + k,
                    ]));
                }
            }
        }
        Field::from_interior(dev, grid, &interior)
    }

    fn check_ghosts(grid: &BlockGrid, field: &Field<f64>) {
        let n = grid.local_n;
        let g = grid.global.n;
        let data = field.as_slice();
        // For every interior-adjacent ghost on an interface, the ghost must
        // hold the encoding of the corresponding global neighbour cell.
        for axis in 0..3 {
            for side in 0..2 {
                if !grid.boundary(axis, side).is_interface() {
                    continue;
                }
                // global coordinate just outside the subdomain
                let ghost_axis_global = if side == 0 {
                    grid.offset[axis].checked_sub(1).expect("interface at global edge")
                } else {
                    grid.offset[axis] + n[axis]
                };
                assert!(ghost_axis_global < g[axis]);
                // probe a representative set of face points
                let (pa, pb) = match axis {
                    0 => (n[1], n[2]),
                    1 => (n[0], n[2]),
                    _ => (n[0], n[1]),
                };
                for b in 1..=pb {
                    for a in 1..=pa {
                        let (i, j, k, gc) = match axis {
                            0 => {
                                let i = if side == 0 { 0 } else { n[0] + 1 };
                                (i, a, b, [
                                    ghost_axis_global,
                                    grid.offset[1] + a - 1,
                                    grid.offset[2] + b - 1,
                                ])
                            }
                            1 => {
                                let j = if side == 0 { 0 } else { n[1] + 1 };
                                (a, j, b, [
                                    grid.offset[0] + a - 1,
                                    ghost_axis_global,
                                    grid.offset[2] + b - 1,
                                ])
                            }
                            _ => {
                                let k = if side == 0 { 0 } else { n[2] + 1 };
                                (a, b, k, [
                                    grid.offset[0] + a - 1,
                                    grid.offset[1] + b - 1,
                                    ghost_axis_global,
                                ])
                            }
                        };
                        assert_eq!(
                            data[field.idx(i, j, k)],
                            encode(gc),
                            "axis {axis} side {side} point ({i},{j},{k})"
                        );
                    }
                }
            }
        }
    }

    fn exchange_world(global_n: [usize; 3], ns: [usize; 3]) {
        let decomp = Decomp::new(ns);
        run_ranks::<f64, _, _>(decomp.ranks(), ReduceOrder::RankOrder, |comm| {
            let dev = Serial::new(Recorder::disabled());
            let global = GlobalGrid::dirichlet(global_n, [0.1; 3], [0.0; 3]);
            let grid = BlockGrid::new(global, decomp, comm.rank());
            let mut field = make_field(&dev, &grid);
            let halo = HaloExchange::new(&grid);
            halo.exchange(&comm, &mut field);
            check_ghosts(&grid, &field);
        });
    }

    #[test]
    fn two_ranks_along_x() {
        exchange_world([8, 4, 4], [2, 1, 1]);
    }

    #[test]
    fn eight_ranks_full_3d() {
        exchange_world([8, 8, 8], [2, 2, 2]);
    }

    #[test]
    fn uneven_decomposition() {
        exchange_world([7, 5, 6], [3, 2, 2]);
    }

    #[test]
    fn pencil_decomposition() {
        exchange_world([4, 4, 12], [1, 1, 4]);
    }

    #[test]
    fn repeated_exchanges_stay_consistent() {
        let decomp = Decomp::new([2, 1, 1]);
        run_ranks::<f64, _, _>(2, ReduceOrder::RankOrder, |comm| {
            let dev = Serial::new(Recorder::disabled());
            let global = GlobalGrid::dirichlet([6, 3, 3], [0.1; 3], [0.0; 3]);
            let grid = BlockGrid::new(global, decomp, comm.rank());
            let mut field = make_field(&dev, &grid);
            let halo = HaloExchange::new(&grid);
            for _ in 0..5 {
                halo.exchange(&comm, &mut field);
                check_ghosts(&grid, &field);
            }
        });
    }

    #[test]
    fn records_halo_event_with_traffic() {
        let decomp = Decomp::new([2, 1, 1]);
        let recorders: Vec<Recorder> = (0..2).map(|_| Recorder::enabled()).collect();
        let handles = recorders.clone();
        comm::run_ranks_recorded::<f64, _, _>(2, ReduceOrder::RankOrder, recorders, |comm| {
            let dev = Serial::new(Recorder::disabled());
            let global = GlobalGrid::dirichlet([4, 3, 3], [0.1; 3], [0.0; 3]);
            let grid = BlockGrid::new(global, decomp, comm.rank());
            let mut field = make_field(&dev, &grid);
            HaloExchange::new(&grid).exchange(&comm, &mut field);
        });
        for rec in &handles {
            let evs = rec.snapshot();
            assert!(
                evs.iter().any(|e| matches!(
                    e,
                    Event::Halo { msgs: 1, bytes } if *bytes == (3 * 3 * 8) as u64
                )),
                "missing halo event: {evs:?}"
            );
        }
    }

    #[test]
    fn single_rank_exchange_is_a_noop() {
        let dev = Serial::new(Recorder::disabled());
        let global = GlobalGrid::dirichlet([4, 4, 4], [0.1; 3], [0.0; 3]);
        let grid = BlockGrid::new(global, Decomp::single(), 0);
        let mut field = make_field(&dev, &grid);
        let before = field.as_slice().to_vec();
        let comm = comm::SelfComm::<f64>::default();
        HaloExchange::new(&grid).exchange(&comm, &mut field);
        assert_eq!(field.as_slice(), &before[..]);
    }
}
