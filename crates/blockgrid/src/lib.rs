//! # blockgrid — Cartesian domain decomposition (the paper's `blockGrid`)
//!
//! The paper's solver is organised around a workhorse `blockGrid` class
//! that "stores all the information about the global domain and the local
//! subdomain, such as the number of grid points and the subdomain location
//! in the grid" (Sec. III-C). This crate is that machinery:
//!
//! * [`GlobalGrid`] — the global unknown grid, spacing, and per-face
//!   boundary conditions (Dirichlet / Neumann per axis and side).
//! * [`Decomp`] — the `Ns_x × Ns_y × Ns_z` process grid with
//!   `Ns_x·Ns_y·Ns_z = N_MPI` (user-chosen, as in the paper).
//! * [`BlockGrid`] — one rank's subdomain: local extents, global offsets,
//!   neighbour ranks, and the classification of each local face as an
//!   interface or a physical boundary.
//! * [`Field`] — a halo-padded device-resident scalar field
//!   (`N_local + 2·N_halo` per axis, halo width 1 for the second-order
//!   stencil).
//! * [`HaloExchange`] — face pack/send/recv/unpack over a
//!   [`comm::Communicator`], the analogue of the paper's per-face
//!   `MPI_Datatype` + `Isend`/`Irecv`/`Waitall` stage.

#![warn(missing_docs)]

mod bc;
mod field;
mod grid;
mod halo;

pub use bc::{BcKind, LocalBoundary};
pub use field::Field;
pub use grid::{BlockGrid, Decomp, GlobalGrid};
pub use halo::HaloExchange;
