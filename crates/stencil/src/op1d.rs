//! One-dimensional discrete Laplacian operators (Eqs. 4–5 of the paper).
//!
//! The 3-D Poisson matrix is the Kronecker sum of per-axis 1-D operators
//! (Eq. 6). Each axis operator is the tridiagonal matrix **D** (Dirichlet
//! on both ends) or **N** (Neumann on one or both ends, with a `-2`
//! off-diagonal in the boundary row from the second-order ghost
//! elimination). This module gives those operators an explicit, testable
//! form; the matrix-free stencil in [`crate::laplacian`] must agree with
//! it row for row.

use blockgrid::{BcKind, LocalBoundary};

/// What one end of a 1-D axis operator looks like.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EndKind {
    /// Coupling truncated: physical Dirichlet boundary *or* a subdomain
    /// interface in the Block-Jacobi restriction (Eq. 13) — both drop the
    /// off-diagonal term beyond the end.
    DirichletLike,
    /// Physical Neumann boundary: boundary node is an unknown and its row
    /// couples with `-2` toward the interior (mirrored ghost).
    Neumann,
}

impl EndKind {
    /// Classify a subdomain face for the *local* (restricted) operator.
    pub fn from_local_boundary(lb: LocalBoundary) -> Self {
        match lb {
            LocalBoundary::Interface { .. } => Self::DirichletLike,
            LocalBoundary::Physical(BcKind::Dirichlet) => Self::DirichletLike,
            LocalBoundary::Physical(BcKind::Neumann) => Self::Neumann,
        }
    }

    /// Classify a physical boundary condition for the *global* operator.
    pub fn from_bc(bc: BcKind) -> Self {
        match bc {
            BcKind::Dirichlet => Self::DirichletLike,
            BcKind::Neumann => Self::Neumann,
        }
    }
}

/// A 1-D axis operator: `n` unknowns with the given end treatments.
///
/// Row `i` is `(-sub, 2, -sup)` with `sub = sup = 1` in the interior;
/// a Neumann low end makes row 0 `(2, -2)` (the paper's `alpha = 2`), a
/// Neumann high end makes row `n-1` `(-2, 2)` (`beta = 2`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Op1d {
    /// Number of unknowns along the axis.
    pub n: usize,
    /// Treatment of the low end.
    pub lo: EndKind,
    /// Treatment of the high end.
    pub hi: EndKind,
}

impl Op1d {
    /// Create an axis operator (`n >= 1`).
    pub fn new(n: usize, lo: EndKind, hi: EndKind) -> Self {
        assert!(n >= 1, "1-D operator needs at least one unknown");
        Self { n, lo, hi }
    }

    /// Pure Dirichlet operator **D** (Eq. 4).
    pub fn dirichlet(n: usize) -> Self {
        Self::new(n, EndKind::DirichletLike, EndKind::DirichletLike)
    }

    /// Sub-diagonal magnitude of row `i` (`a[i][i-1] = -subdiag(i)`);
    /// zero for row 0.
    pub fn subdiag(&self, i: usize) -> f64 {
        if i == 0 {
            0.0
        } else if i == self.n - 1 && self.hi == EndKind::Neumann {
            2.0
        } else {
            1.0
        }
    }

    /// Super-diagonal magnitude of row `i` (`a[i][i+1] = -superdiag(i)`);
    /// zero for the last row.
    pub fn superdiag(&self, i: usize) -> f64 {
        if i + 1 == self.n {
            0.0
        } else if i == 0 && self.lo == EndKind::Neumann {
            2.0
        } else {
            1.0
        }
    }

    /// Diagonal entry (always 2 for the second-order Laplacian).
    pub fn diag(&self, _i: usize) -> f64 {
        2.0
    }

    /// Dense `n × n` matrix (row-major) for testing.
    pub fn to_dense(&self) -> Vec<f64> {
        let n = self.n;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = self.diag(i);
            if i > 0 {
                a[i * n + i - 1] = -self.subdiag(i);
            }
            if i + 1 < n {
                a[i * n + i + 1] = -self.superdiag(i);
            }
        }
        a
    }

    /// `true` if the matrix is symmetric (no Neumann end, or `n == 1`).
    pub fn is_symmetric(&self) -> bool {
        self.n == 1 || (self.lo != EndKind::Neumann && self.hi != EndKind::Neumann)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirichlet_matrix_matches_eq4() {
        let op = Op1d::dirichlet(4);
        let a = op.to_dense();
        let expect = [
            2.0, -1.0, 0.0, 0.0, //
            -1.0, 2.0, -1.0, 0.0, //
            0.0, -1.0, 2.0, -1.0, //
            0.0, 0.0, -1.0, 2.0,
        ];
        assert_eq!(a, expect);
        assert!(op.is_symmetric());
    }

    #[test]
    fn neumann_low_matches_eq5_alpha2() {
        let op = Op1d::new(3, EndKind::Neumann, EndKind::DirichletLike);
        let a = op.to_dense();
        let expect = [
            2.0, -2.0, 0.0, //
            -1.0, 2.0, -1.0, //
            0.0, -1.0, 2.0,
        ];
        assert_eq!(a, expect);
        assert!(!op.is_symmetric());
    }

    #[test]
    fn neumann_high_matches_eq5_beta2() {
        let op = Op1d::new(3, EndKind::DirichletLike, EndKind::Neumann);
        let a = op.to_dense();
        let expect = [
            2.0, -1.0, 0.0, //
            -1.0, 2.0, -1.0, //
            0.0, -2.0, 2.0,
        ];
        assert_eq!(a, expect);
    }

    #[test]
    fn end_kind_classification() {
        assert_eq!(
            EndKind::from_local_boundary(LocalBoundary::Interface { neighbor: 1 }),
            EndKind::DirichletLike
        );
        assert_eq!(
            EndKind::from_local_boundary(LocalBoundary::Physical(BcKind::Neumann)),
            EndKind::Neumann
        );
        assert_eq!(EndKind::from_bc(BcKind::Dirichlet), EndKind::DirichletLike);
    }

    #[test]
    fn single_unknown_operator() {
        let op = Op1d::new(1, EndKind::DirichletLike, EndKind::Neumann);
        assert_eq!(op.to_dense(), vec![2.0]);
        assert!(op.is_symmetric());
    }
}
