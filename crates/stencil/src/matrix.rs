//! Dense reference operators for verification.
//!
//! The production solver is matrix-free; this module assembles the very
//! same operators as explicit dense matrices on small grids so tests can
//! check the stencil row-for-row, obtain reference solutions via LU, and
//! validate spectral bounds via power iteration. Nothing here is used on
//! the hot path.

use crate::op1d::Op1d;

/// A dense row-major square matrix.
#[derive(Clone, Debug)]
pub struct DenseMatrix {
    n: usize,
    a: Vec<f64>,
}

impl DenseMatrix {
    /// Wrap an existing row-major `n × n` buffer.
    pub fn from_row_major(n: usize, a: Vec<f64>) -> Self {
        assert_eq!(a.len(), n * n, "buffer is not n x n");
        Self { n, a }
    }

    /// Zero matrix of size `n`.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            a: vec![0.0; n * n],
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry accessor.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.a[r * self.n + c]
    }

    /// Mutable entry accessor.
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.a[r * self.n + c]
    }

    /// `y = A x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![0.0; self.n];
        for (r, yr) in y.iter_mut().enumerate() {
            let row = &self.a[r * self.n..(r + 1) * self.n];
            *yr = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Solve `A x = b` by LU with partial pivoting (destructive copy).
    ///
    /// Panics on a numerically singular pivot.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        let mut lu = self.a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for col in 0..n {
            // pivot
            let (piv, pmag) = (col..n)
                .map(|r| (r, lu[r * n + col].abs()))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty column");
            assert!(pmag > 1e-300, "singular matrix at column {col}");
            if piv != col {
                for c in 0..n {
                    lu.swap(col * n + c, piv * n + c);
                }
                perm.swap(col, piv);
            }
            let d = lu[col * n + col];
            for r in col + 1..n {
                let f = lu[r * n + col] / d;
                lu[r * n + col] = f;
                for c in col + 1..n {
                    lu[r * n + c] -= f * lu[col * n + c];
                }
            }
        }
        // forward substitution on permuted b
        let mut y: Vec<f64> = perm.iter().map(|&p| b[p]).collect();
        for r in 1..n {
            for c in 0..r {
                y[r] -= lu[r * n + c] * y[c];
            }
        }
        // back substitution
        let mut x = y;
        for r in (0..n).rev() {
            for c in r + 1..n {
                let xc = x[c];
                x[r] -= lu[r * n + c] * xc;
            }
            x[r] /= lu[r * n + r];
        }
        x
    }
}

/// Assemble the dense 3-D Poisson operator (Eq. 6) from per-axis 1-D
/// operators and spacings. Unknowns are ordered x-fastest.
pub fn assemble_poisson(ops: &[Op1d; 3], h: [f64; 3]) -> DenseMatrix {
    let (nx, ny, nz) = (ops[0].n, ops[1].n, ops[2].n);
    let n = nx * ny * nz;
    let mut m = DenseMatrix::zeros(n);
    let inv_h2 = [
        1.0 / (h[0] * h[0]),
        1.0 / (h[1] * h[1]),
        1.0 / (h[2] * h[2]),
    ];
    let stride = [1usize, nx, nx * ny];
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                let g = i + nx * (j + ny * k);
                let ax = [i, j, k];
                for a in 0..3 {
                    *m.get_mut(g, g) += ops[a].diag(ax[a]) * inv_h2[a];
                    if ax[a] > 0 {
                        *m.get_mut(g, g - stride[a]) -= ops[a].subdiag(ax[a]) * inv_h2[a];
                    }
                    if ax[a] + 1 < ops[a].n {
                        *m.get_mut(g, g + stride[a]) -= ops[a].superdiag(ax[a]) * inv_h2[a];
                    }
                }
            }
        }
    }
    m
}

/// Estimate the extreme eigenvalues of a matrix with positive real
/// spectrum by power iteration: the largest on `A` directly, the smallest
/// on the shifted matrix `sigma I - A`.
pub fn power_iteration_extremes(m: &DenseMatrix, max_iters: usize, tol: f64) -> (f64, f64) {
    let max = power_dominant(m, None, max_iters, tol);
    let sigma = max * 1.000001 + 1e-9;
    let shifted_dominant = power_dominant(m, Some(sigma), max_iters, tol);
    (sigma - shifted_dominant, max)
}

/// Dominant eigenvalue of `A` (or of `sigma I - A` when shifted) by power
/// iteration with a deterministic start vector.
fn power_dominant(m: &DenseMatrix, shift: Option<f64>, max_iters: usize, tol: f64) -> f64 {
    let n = m.n();
    // Deterministic but well-scrambled start vector: a per-element LCG so no
    // low-dimensional structure (an arithmetic progression can be exactly
    // orthogonal to the dominant left eigenvector of small N-matrices).
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut v: Vec<f64> = (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            0.5 + (state >> 33) as f64 / (1u64 << 32) as f64
        })
        .collect();
    let mut lambda = 0.0;
    for _ in 0..max_iters {
        let mut w = m.matvec(&v);
        if let Some(s) = shift {
            for (wi, vi) in w.iter_mut().zip(&v) {
                *wi = s * vi - *wi;
            }
        }
        let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(norm > 0.0, "power iteration collapsed");
        for wi in w.iter_mut() {
            *wi /= norm;
        }
        // Rayleigh quotient (shifted operator)
        let mut aw = m.matvec(&w);
        if let Some(s) = shift {
            for (x, wi) in aw.iter_mut().zip(&w) {
                *x = s * wi - *x;
            }
        }
        let rq: f64 = aw.iter().zip(&w).map(|(a, b)| a * b).sum();
        if (rq - lambda).abs() <= tol * rq.abs().max(1.0) {
            return rq;
        }
        lambda = rq;
        v = w;
    }
    lambda
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op1d::EndKind;

    #[test]
    fn lu_solves_small_system() {
        let m = DenseMatrix::from_row_major(3, vec![4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0]);
        let x_true = vec![1.0, -2.0, 3.0];
        let b = m.matvec(&x_true);
        let x = m.solve(&b);
        for (a, b) in x.iter().zip(&x_true) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn lu_handles_pivoting() {
        // leading zero forces a row swap
        let m = DenseMatrix::from_row_major(2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = m.solve(&[5.0, 7.0]);
        assert_eq!(x, vec![7.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn lu_rejects_singular() {
        let m = DenseMatrix::from_row_major(2, vec![1.0, 2.0, 2.0, 4.0]);
        let _ = m.solve(&[1.0, 1.0]);
    }

    #[test]
    fn assemble_1d_matches_op() {
        let op = Op1d::new(4, EndKind::Neumann, EndKind::DirichletLike);
        let ops = [op, Op1d::dirichlet(1), Op1d::dirichlet(1)];
        // With single-point y/z axes, A = Ox/hx^2 + (2/hy^2 + 2/hz^2) I.
        let m = assemble_poisson(&ops, [1.0, 1.0, 1.0]);
        let d = op.to_dense();
        for r in 0..4 {
            for c in 0..4 {
                let expect = d[r * 4 + c] + if r == c { 4.0 } else { 0.0 };
                assert!((m.get(r, c) - expect).abs() < 1e-15, "({r},{c})");
            }
        }
    }

    #[test]
    fn assemble_3d_row_sums() {
        // For an all-Dirichlet operator every interior row sums to zero;
        // rows touching a boundary keep the +1/h^2 per removed neighbour.
        let ops = [Op1d::dirichlet(3), Op1d::dirichlet(3), Op1d::dirichlet(3)];
        let m = assemble_poisson(&ops, [1.0; 3]);
        // centre unknown (1,1,1) has all six neighbours
        let g = 1 + 3 * (1 + 3);
        let row_sum: f64 = (0..27).map(|c| m.get(g, c)).sum();
        assert!((row_sum - 0.0).abs() < 1e-14);
        // corner (0,0,0) lost three neighbours
        let row_sum: f64 = (0..27).map(|c| m.get(0, c)).sum();
        assert!((row_sum - 3.0).abs() < 1e-14);
    }

    #[test]
    fn power_iteration_on_diagonal_matrix() {
        let m = DenseMatrix::from_row_major(3, vec![1.0, 0.0, 0.0, 0.0, 5.0, 0.0, 0.0, 0.0, 3.0]);
        let (lo, hi) = power_iteration_extremes(&m, 10_000, 1e-13);
        assert!((hi - 5.0).abs() < 1e-6);
        assert!((lo - 1.0).abs() < 1e-6);
    }
}
