//! Matrix-free application of the discrete Poisson operator.
//!
//! The solver never stores the matrix: `A x` is a 7-point stencil sweep
//! over the subdomain interior (Sec. III-B), fused where the algorithm
//! allows with the local scalar products (`KernelBiCGS1/3` in Alg. 3).
//! Before any sweep the ghost layers must be current:
//!
//! 1. interface ghosts — [`blockgrid::HaloExchange`] (the `MPI*` stages);
//! 2. physical ghosts — [`apply_physical_bcs`] (the paper's
//!    `KernelNeumannBCs`): Neumann faces mirror the first interior plane
//!    across the boundary node (realising the `-2` row of Eq. 5), and
//!    Dirichlet faces are pinned to zero (the boundary values live in the
//!    right-hand side).

use accel::{
    fold_row_edge_last, row_has_deep_middle, Device, Extent3, KernelInfo, Recorder, RowMap, Scalar,
};
use blockgrid::{BcKind, BlockGrid, Field, LocalBoundary};

use crate::op1d::{EndKind, Op1d};

/// Cost metadata for the plain stencil sweep: streams u and w once
/// (2 × 8 B) and does ~10 flops per element.
pub const INFO_APPLY: KernelInfo = KernelInfo::new("KernelApplyA", 32, 10);
/// The `KernelNeumannBCs` ghost update (plane traffic folded into a
/// nominal per-element cost; it touches O(N²) of an O(N³) field).
pub const INFO_NEUMANN_BCS: KernelInfo = KernelInfo::new("KernelNeumannBCs", 16, 0);

/// The matrix-free 7-point Laplacian on one subdomain.
#[derive(Clone, Debug)]
pub struct Laplacian {
    grid: BlockGrid,
}

impl Laplacian {
    /// Build the operator for a subdomain.
    ///
    /// Requires at least two local unknowns along any axis whose faces
    /// include a physical Neumann boundary (the mirrored ghost of a
    /// 1-cell-thick subdomain would alias the opposite ghost layer).
    pub fn new(grid: &BlockGrid) -> Self {
        for a in 0..3 {
            let neumann = (0..2).any(|s| {
                matches!(
                    grid.boundary(a, s),
                    LocalBoundary::Physical(BcKind::Neumann)
                )
            });
            assert!(
                !(neumann && grid.local_n[a] < 2),
                "axis {a}: Neumann face needs at least 2 local unknowns, got {}",
                grid.local_n[a]
            );
        }
        Self { grid: grid.clone() }
    }

    /// The subdomain this operator acts on.
    pub fn grid(&self) -> &BlockGrid {
        &self.grid
    }

    /// Per-axis 1-D operators of the *global* matrix (Eq. 6).
    pub fn global_ops(&self) -> [Op1d; 3] {
        std::array::from_fn(|a| {
            Op1d::new(
                self.grid.global.n[a],
                EndKind::from_bc(self.grid.global.bc[a][0]),
                EndKind::from_bc(self.grid.global.bc[a][1]),
            )
        })
    }

    /// Per-axis 1-D operators of the *local* restricted matrix
    /// `R_s A R_sᵀ` (interfaces truncate to Dirichlet-like ends, Eq. 13).
    pub fn local_ops(&self) -> [Op1d; 3] {
        std::array::from_fn(|a| {
            Op1d::new(
                self.grid.local_n[a],
                EndKind::from_local_boundary(self.grid.boundary(a, 0)),
                EndKind::from_local_boundary(self.grid.boundary(a, 1)),
            )
        })
    }

    #[inline(always)]
    fn coeffs<T: Scalar>(&self) -> ([T; 3], usize, usize) {
        let h = self.grid.global.h;
        let c: [T; 3] = std::array::from_fn(|a| T::from_f64(1.0 / (h[a] * h[a])));
        let p = self.grid.padded();
        (c, p[0], p[0] * p[1])
    }

    /// `w = A u` over the interior. `u`'s ghosts must be current.
    pub fn apply<T: Scalar, D: Device>(
        &self,
        dev: &D,
        info: KernelInfo,
        u: &Field<T>,
        w: &mut Field<T>,
    ) {
        self.apply_on_map(dev, info, self.grid.interior_map(), u, w);
    }

    /// Local interior extent as an [`Extent3`].
    #[inline(always)]
    fn local_extent(&self) -> Extent3 {
        let n = self.grid.local_n;
        Extent3::new(n[0], n[1], n[2])
    }

    /// Stencil sweep restricted to one sub-map of the interior.
    fn apply_on_map<T: Scalar, D: Device>(
        &self,
        dev: &D,
        info: KernelInfo,
        map: RowMap,
        u: &Field<T>,
        w: &mut Field<T>,
    ) {
        let ([cx, cy, cz], sy, sz) = self.coeffs::<T>();
        let us = u.as_slice();
        let base0 = map.base;
        let two = T::from_f64(2.0);
        dev.launch_rows(info, map, w.as_mut_slice(), |j, k, row| {
            let b = base0 + j * sy + k * sz;
            for (i, out) in row.iter_mut().enumerate() {
                let c = b + i;
                let uc = us[c];
                *out = cx * (two * uc - us[c - 1] - us[c + 1])
                    + cy * (two * uc - us[c - sy] - us[c + sy])
                    + cz * (two * uc - us[c - sz] - us[c + sz]);
            }
        });
    }

    /// `w = A u` over the *deep interior* only — the cells whose stencil
    /// reads no ghost layer. Safe to run while a split-phase halo exchange
    /// (`HaloExchange::begin`) is still in flight; pair with
    /// [`Laplacian::apply_shell`] after `finish` to complete the sweep.
    ///
    /// No-op when any local extent is below 3 (the whole interior is then
    /// ghost-adjacent and `apply_shell` covers it).
    pub fn apply_interior<T: Scalar, D: Device>(
        &self,
        dev: &D,
        info: KernelInfo,
        u: &Field<T>,
        w: &mut Field<T>,
    ) {
        if let Some(map) = RowMap::halo_deep_interior(self.local_extent()) {
            self.apply_on_map(dev, info, map, u, w);
        }
    }

    /// `w = A u` over the *ghost-adjacent shell* of the interior — the
    /// complement of [`Laplacian::apply_interior`]. Requires all ghost
    /// layers (halo + physical) to be current. Together the two cover each
    /// interior cell exactly once with arithmetic identical to
    /// [`Laplacian::apply`], so the split sweep is bitwise-equal to the
    /// monolithic one.
    pub fn apply_shell<T: Scalar, D: Device>(
        &self,
        dev: &D,
        info: KernelInfo,
        u: &Field<T>,
        w: &mut Field<T>,
    ) {
        for map in RowMap::halo_shell(self.local_extent()) {
            self.apply_on_map(dev, info, map, u, w);
        }
    }

    /// `w = A u` fused with the local dot `g · w` (the paper's
    /// `KernelBiCGS1`: `w = A p̂`, `p_sum = r̃ᵀ w`).
    ///
    /// The dot folds each row in the canonical edge-last order
    /// ([`fold_row_edge_last`]), so the result is bitwise identical to
    /// the split halo-overlap form ([`Laplacian::apply_interior_dot`] +
    /// [`Laplacian::apply_shell_dot`] + fold) and to a plain `dot` over
    /// `w` after a separate apply.
    pub fn apply_fused_dot<T: Scalar, D: Device>(
        &self,
        dev: &D,
        info: KernelInfo,
        u: &Field<T>,
        w: &mut Field<T>,
        g: &Field<T>,
    ) -> T {
        let ([cx, cy, cz], sy, sz) = self.coeffs::<T>();
        let map = self.grid.interior_map();
        let [nx, ny, nz] = self.grid.local_n;
        let us = u.as_slice();
        let gs = g.as_slice();
        let base0 = map.base;
        let two = T::from_f64(2.0);
        let [dot] = dev.launch_rows_reduce(info, map, w.as_mut_slice(), |j, k, row| {
            let b = base0 + j * sy + k * sz;
            for (i, out) in row.iter_mut().enumerate() {
                let c = b + i;
                let uc = us[c];
                *out = cx * (two * uc - us[c - 1] - us[c + 1])
                    + cy * (two * uc - us[c - sy] - us[c + sy])
                    + cz * (two * uc - us[c - sz] - us[c + sz]);
            }
            let mid = row_has_deep_middle(nx, ny, nz, j, k);
            [fold_row_edge_last(row.len(), mid, |i| gs[b + i] * row[i])]
        });
        dot
    }

    /// Fused affine stencil sweep: `out = ca * (A u) + sum_i c_i * f_i`
    /// over the interior, with up to three extra fields.
    ///
    /// This is the shape of the Chebyshev kernels of Algorithm 4:
    /// `KernelCI1` is `y = c1*b + ca*(A b)` and `KernelCI2` is
    /// `w = c1*y + c2*b + c3*z + ca*(A y)` — one stencil sweep each, no
    /// reductions (the iteration is reduction-free by construction).
    pub fn apply_combine<T: Scalar, D: Device>(
        &self,
        dev: &D,
        info: KernelInfo,
        u: &Field<T>,
        out: &mut Field<T>,
        ca: T,
        terms: &[(&Field<T>, T)],
    ) {
        self.combine_on_map(dev, info, self.grid.interior_map(), u, out, ca, terms);
    }

    /// [`Laplacian::apply_combine`] over the deep interior only (see
    /// [`Laplacian::apply_interior`] for the overlap contract).
    pub fn apply_combine_interior<T: Scalar, D: Device>(
        &self,
        dev: &D,
        info: KernelInfo,
        u: &Field<T>,
        out: &mut Field<T>,
        ca: T,
        terms: &[(&Field<T>, T)],
    ) {
        if let Some(map) = RowMap::halo_deep_interior(self.local_extent()) {
            self.combine_on_map(dev, info, map, u, out, ca, terms);
        }
    }

    /// [`Laplacian::apply_combine`] over the ghost-adjacent shell (see
    /// [`Laplacian::apply_shell`] for the overlap contract).
    pub fn apply_combine_shell<T: Scalar, D: Device>(
        &self,
        dev: &D,
        info: KernelInfo,
        u: &Field<T>,
        out: &mut Field<T>,
        ca: T,
        terms: &[(&Field<T>, T)],
    ) {
        for map in RowMap::halo_shell(self.local_extent()) {
            self.combine_on_map(dev, info, map, u, out, ca, terms);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn combine_on_map<T: Scalar, D: Device>(
        &self,
        dev: &D,
        info: KernelInfo,
        map: RowMap,
        u: &Field<T>,
        out: &mut Field<T>,
        ca: T,
        terms: &[(&Field<T>, T)],
    ) {
        assert!(
            terms.len() <= 3,
            "apply_combine supports at most 3 extra terms"
        );
        let ([cx, cy, cz], sy, sz) = self.coeffs::<T>();
        let us = u.as_slice();
        // At most 3 terms (asserted above): resolve the slices into fixed
        // stack storage — this runs per shell piece in the preconditioner
        // hot loop, where a heap `collect` would violate the solver's
        // steady-state zero-allocation guarantee.
        let empty: &[T] = &[];
        let mut resolved = [(empty, T::ZERO); 3];
        for (slot, (f, c)) in resolved.iter_mut().zip(terms) {
            *slot = (f.as_slice(), *c);
        }
        let term_slices = &resolved[..terms.len()];
        let base0 = map.base;
        let two = T::from_f64(2.0);
        dev.launch_rows(info, map, out.as_mut_slice(), |j, k, row| {
            let b = base0 + j * sy + k * sz;
            for (i, o) in row.iter_mut().enumerate() {
                let c = b + i;
                let uc = us[c];
                let au = cx * (two * uc - us[c - 1] - us[c + 1])
                    + cy * (two * uc - us[c - sy] - us[c + sy])
                    + cz * (two * uc - us[c - sz] - us[c + sz]);
                let mut v = ca * au;
                for (f, coeff) in term_slices {
                    v += *coeff * f[c];
                }
                *o = v;
            }
        });
    }

    /// `t = A u` fused with the two local dots `(t · r, t · t)` (the
    /// paper's `KernelBiCGS3`). Each dot folds per row in the canonical
    /// edge-last order, matching the split form and the standalone
    /// `dot2` bitwise.
    pub fn apply_fused_dot2<T: Scalar, D: Device>(
        &self,
        dev: &D,
        info: KernelInfo,
        u: &Field<T>,
        t: &mut Field<T>,
        r: &Field<T>,
    ) -> (T, T) {
        let ([cx, cy, cz], sy, sz) = self.coeffs::<T>();
        let map = self.grid.interior_map();
        let [nx, ny, nz] = self.grid.local_n;
        let us = u.as_slice();
        let rs = r.as_slice();
        let base0 = map.base;
        let two = T::from_f64(2.0);
        let [tr, tt] = dev.launch_rows_reduce(info, map, t.as_mut_slice(), |j, k, row| {
            let b = base0 + j * sy + k * sz;
            for (i, out) in row.iter_mut().enumerate() {
                let c = b + i;
                let uc = us[c];
                *out = cx * (two * uc - us[c - 1] - us[c + 1])
                    + cy * (two * uc - us[c - sy] - us[c + sy])
                    + cz * (two * uc - us[c - sz] - us[c + sz]);
            }
            let mid = row_has_deep_middle(nx, ny, nz, j, k);
            [
                fold_row_edge_last(row.len(), mid, |i| row[i] * rs[b + i]),
                fold_row_edge_last(row.len(), mid, |i| row[i] * row[i]),
            ]
        });
        (tr, tt)
    }

    /// `t = A u` fused with the three local dots `(t · r, t · t, g · t)`
    /// — the `KernelBiCGS3F` sweep: the second stencil apply of the
    /// Bi-CGSTAB iteration produces every scalar the ω-step needs
    /// (`p1 = t·r`, `p2 = t·t`, `c4 = r̃ᵀ t`) in one pass. Per-component
    /// folds match [`Laplacian::apply_fused_dot2`] plus a separate
    /// `dot(g, t)` bitwise.
    pub fn apply_fused_dot3<T: Scalar, D: Device>(
        &self,
        dev: &D,
        info: KernelInfo,
        u: &Field<T>,
        t: &mut Field<T>,
        r: &Field<T>,
        g: &Field<T>,
    ) -> (T, T, T) {
        let ([cx, cy, cz], sy, sz) = self.coeffs::<T>();
        let map = self.grid.interior_map();
        let [nx, ny, nz] = self.grid.local_n;
        let us = u.as_slice();
        let rs = r.as_slice();
        let gs = g.as_slice();
        let base0 = map.base;
        let two = T::from_f64(2.0);
        let [tr, tt, gt] = dev.launch_rows_reduce(info, map, t.as_mut_slice(), |j, k, row| {
            let b = base0 + j * sy + k * sz;
            for (i, out) in row.iter_mut().enumerate() {
                let c = b + i;
                let uc = us[c];
                *out = cx * (two * uc - us[c - 1] - us[c + 1])
                    + cy * (two * uc - us[c - sy] - us[c + sy])
                    + cz * (two * uc - us[c - sz] - us[c + sz]);
            }
            let mid = row_has_deep_middle(nx, ny, nz, j, k);
            [
                fold_row_edge_last(row.len(), mid, |i| row[i] * rs[b + i]),
                fold_row_edge_last(row.len(), mid, |i| row[i] * row[i]),
                fold_row_edge_last(row.len(), mid, |i| gs[b + i] * row[i]),
            ]
        });
        (tr, tt, gt)
    }

    /// Batched `KernelBiCGS1`: per-lane `w = A u` fused with the local
    /// dot `g · w`, every lane of a multi-RHS solve in one launch. The
    /// device strides lanes inside a single grid sweep (one kernel-launch
    /// event for the whole batch) while folding each lane's rows with a
    /// private accumulator in solo order, so lane `s` — field and scalar
    /// — is bitwise identical to [`Laplacian::apply_fused_dot`] over the
    /// same fields. Slices are full padded lane arrays with current
    /// ghosts; per-lane dots land in `accs[s]`.
    pub fn apply_fused_dot_batch<T: Scalar, D: Device>(
        &self,
        dev: &D,
        info: KernelInfo,
        us: &[&[T]],
        ws: &mut [&mut [T]],
        gs: &[&[T]],
        accs: &mut [[T; 1]],
    ) {
        assert_eq!(us.len(), ws.len(), "lane count mismatch");
        assert_eq!(us.len(), gs.len(), "lane count mismatch");
        let ([cx, cy, cz], sy, sz) = self.coeffs::<T>();
        let map = self.grid.interior_map();
        let [nx, ny, nz] = self.grid.local_n;
        let base0 = map.base;
        let two = T::from_f64(2.0);
        dev.launch_lanes_reduce(info, map, ws, accs, |s, j, k, row| {
            let b = base0 + j * sy + k * sz;
            let (usl, gsl) = (us[s], gs[s]);
            for (i, out) in row.iter_mut().enumerate() {
                let c = b + i;
                let uc = usl[c];
                *out = cx * (two * uc - usl[c - 1] - usl[c + 1])
                    + cy * (two * uc - usl[c - sy] - usl[c + sy])
                    + cz * (two * uc - usl[c - sz] - usl[c + sz]);
            }
            let mid = row_has_deep_middle(nx, ny, nz, j, k);
            [fold_row_edge_last(row.len(), mid, |i| gsl[b + i] * row[i])]
        });
    }

    /// Batched `KernelBiCGS3F`: per-lane `t = A u` fused with the three
    /// local dots `(t · r, t · t, g · t)`, every lane in one launch.
    /// Lane `s` is bitwise identical to
    /// [`Laplacian::apply_fused_dot3`] over the same fields; per-lane
    /// dot triples land in `accs[s]`.
    #[allow(clippy::too_many_arguments)]
    pub fn apply_fused_dot3_batch<T: Scalar, D: Device>(
        &self,
        dev: &D,
        info: KernelInfo,
        us: &[&[T]],
        ts: &mut [&mut [T]],
        rs: &[&[T]],
        gs: &[&[T]],
        accs: &mut [[T; 3]],
    ) {
        assert_eq!(us.len(), ts.len(), "lane count mismatch");
        assert_eq!(us.len(), rs.len(), "lane count mismatch");
        assert_eq!(us.len(), gs.len(), "lane count mismatch");
        let ([cx, cy, cz], sy, sz) = self.coeffs::<T>();
        let map = self.grid.interior_map();
        let [nx, ny, nz] = self.grid.local_n;
        let base0 = map.base;
        let two = T::from_f64(2.0);
        dev.launch_lanes_reduce(info, map, ts, accs, |s, j, k, row| {
            let b = base0 + j * sy + k * sz;
            let (usl, rsl, gsl) = (us[s], rs[s], gs[s]);
            for (i, out) in row.iter_mut().enumerate() {
                let c = b + i;
                let uc = usl[c];
                *out = cx * (two * uc - usl[c - 1] - usl[c + 1])
                    + cy * (two * uc - usl[c - sy] - usl[c + sy])
                    + cz * (two * uc - usl[c - sz] - usl[c + sz]);
            }
            let mid = row_has_deep_middle(nx, ny, nz, j, k);
            [
                fold_row_edge_last(row.len(), mid, |i| row[i] * rsl[b + i]),
                fold_row_edge_last(row.len(), mid, |i| row[i] * row[i]),
                fold_row_edge_last(row.len(), mid, |i| gsl[b + i] * row[i]),
            ]
        });
    }

    /// Stencil sweep over one sub-map of the interior that also deposits
    /// per-row partials of `NR` dot products into `slots`. `terms`
    /// receives the padded linear index `c` and the freshly computed
    /// stencil value `v` and returns the `NR` per-element dot terms.
    /// `accumulate` adds the piece's row partials onto the slot contents
    /// (x-face pieces extend rows already seeded by the deep sweep);
    /// otherwise the partials overwrite the slot row.
    #[allow(clippy::too_many_arguments)]
    fn apply_on_map_dot<T: Scalar, D: Device, F, const NR: usize>(
        &self,
        dev: &D,
        info: KernelInfo,
        map: RowMap,
        slot_map: RowMap,
        accumulate: bool,
        u: &Field<T>,
        w: &mut Field<T>,
        slots: &mut [T],
        terms: &F,
    ) where
        F: Fn(usize, T) -> [T; NR] + Sync,
    {
        let ([cx, cy, cz], sy, sz) = self.coeffs::<T>();
        let us = u.as_slice();
        let base0 = map.base;
        let two = T::from_f64(2.0);
        dev.launch_rows2(
            info,
            map,
            w.as_mut_slice(),
            slot_map,
            slots,
            |j, k, row, slot| {
                let b = base0 + j * sy + k * sz;
                let mut acc = [T::ZERO; NR];
                for (i, out) in row.iter_mut().enumerate() {
                    let c = b + i;
                    let uc = us[c];
                    let v = cx * (two * uc - us[c - 1] - us[c + 1])
                        + cy * (two * uc - us[c - sy] - us[c + sy])
                        + cz * (two * uc - us[c - sz] - us[c + sz]);
                    *out = v;
                    acc = accel::add_partials(acc, terms(c, v));
                }
                if accumulate {
                    for (s, a) in slot.iter_mut().zip(acc) {
                        *s += a;
                    }
                } else {
                    slot.copy_from_slice(&acc);
                }
            },
        );
    }

    /// Slot-buffer row map for a shell/deep piece: the slot row of
    /// interior row `(J, K)` lives at offset `(J + ny·K) · NR`, and a
    /// piece whose first row is interior row `(j0, k0)` therefore uses
    /// base `(j0 + ny·k0) · NR` with strides `NR` / `ny·NR`.
    fn slot_map_for<const NR: usize>(&self, j0: usize, k0: usize, piece: RowMap) -> RowMap {
        let ny = self.grid.local_n[1];
        RowMap {
            base: (j0 + ny * k0) * NR,
            len: NR,
            ny: piece.ny,
            nz: piece.nz,
            sy: NR,
            sz: ny * NR,
        }
    }

    /// Number of slot elements [`Laplacian::apply_interior_dot`] /
    /// [`Laplacian::apply_shell_dot`] need for an `NR`-way fused dot:
    /// one `NR`-slot row per interior `(j, k)` row.
    pub fn slot_len(&self, nr: usize) -> usize {
        self.grid.local_n[1] * self.grid.local_n[2] * nr
    }

    /// Deep-interior half of a split fused `apply + NR-way dot` sweep:
    /// `w = A u` over the deep interior, depositing each row's dot
    /// partials into `slots`. Safe while the halo exchange is in flight
    /// (the deep stencil reads no ghost). No-op when any local extent is
    /// below 3. Complete the sweep with [`Laplacian::apply_shell_dot`]
    /// and fold the slots with [`PendingDotFold::fold`]; the composed
    /// result is bitwise identical to the monolithic fused-dot sweep.
    pub fn apply_interior_dot<T: Scalar, D: Device, F, const NR: usize>(
        &self,
        dev: &D,
        info: KernelInfo,
        u: &Field<T>,
        w: &mut Field<T>,
        slots: &mut [T],
        terms: &F,
    ) where
        F: Fn(usize, T) -> [T; NR] + Sync,
    {
        if let Some(map) = RowMap::halo_deep_interior(self.local_extent()) {
            let slot_map = self.slot_map_for::<NR>(1, 1, map);
            self.apply_on_map_dot(dev, info, map, slot_map, false, u, w, slots, terms);
        }
    }

    /// Shell half of the split fused `apply + NR-way dot` sweep (pair of
    /// [`Laplacian::apply_interior_dot`]). Requires current ghosts.
    /// Every slot row is written: face pieces overwrite their rows, and
    /// the x-face pieces add the row edges onto the deep sweep's
    /// partials — reproducing the canonical edge-last row fold, so the
    /// composition is bitwise identical to the monolithic sweep.
    pub fn apply_shell_dot<T: Scalar, D: Device, F, const NR: usize>(
        &self,
        dev: &D,
        info: KernelInfo,
        u: &Field<T>,
        w: &mut Field<T>,
        slots: &mut [T],
        terms: &F,
    ) -> PendingDotFold<NR>
    where
        F: Fn(usize, T) -> [T; NR] + Sync,
    {
        let e = self.local_extent();
        let [_, ny, nz] = self.grid.local_n;
        let pieces = RowMap::halo_shell(e);
        if RowMap::halo_deep_interior(e).is_none() {
            // the shell is the whole interior: one Set piece per map
            for map in pieces {
                let slot_map = self.slot_map_for::<NR>(0, 0, map);
                self.apply_on_map_dot(dev, info, map, slot_map, false, u, w, slots, terms);
            }
        } else {
            // halo_shell order: z-lo, z-hi, y-lo, y-hi, x-lo, x-hi.
            // First interior row (j0, k0) of each piece, and whether the
            // piece accumulates onto deep-sweep partials (x faces only).
            let desc: [(usize, usize, bool); 6] = [
                (0, 0, false),
                (0, nz - 1, false),
                (0, 1, false),
                (ny - 1, 1, false),
                (1, 1, true),
                (1, 1, true),
            ];
            for (map, (j0, k0, add)) in pieces.into_iter().zip(desc) {
                let slot_map = self.slot_map_for::<NR>(j0, k0, map);
                self.apply_on_map_dot(dev, info, map, slot_map, add, u, w, slots, terms);
            }
        }
        PendingDotFold { ny, nz }
    }
}

/// Obligation to fold the per-row dot partials deposited by a split
/// fused-dot sweep ([`Laplacian::apply_interior_dot`] +
/// [`Laplacian::apply_shell_dot`]) into the `NR` local dot values.
///
/// The fold launches one reduction over the same `(ny, nz)` row set as
/// the monolithic fused sweep, so the back-end's partial merge is
/// identical and the folded dots are bitwise equal to the monolithic
/// ones.
#[must_use = "slot partials must be folded to complete the fused dot"]
#[derive(Debug)]
pub struct PendingDotFold<const NR: usize> {
    ny: usize,
    nz: usize,
}

impl<const NR: usize> PendingDotFold<NR> {
    /// Reduce the slot buffer to the `NR` local dot values.
    pub fn fold<T: Scalar, D: Device>(self, dev: &D, info: KernelInfo, slots: &[T]) -> [T; NR] {
        let (ny, nz) = (self.ny, self.nz);
        dev.launch_reduce(info, ny, nz, |j, k| {
            let off = (j + ny * k) * NR;
            std::array::from_fn(|q| slots[off + q])
        })
    }
}

/// Update the physical-boundary ghost layers of `field` (the paper's
/// `KernelNeumannBCs` stage): mirror interior planes across Neumann faces,
/// zero Dirichlet faces. Interface ghosts are untouched — they belong to
/// the halo exchange.
///
/// When `restricted` is `true`, interface ghosts are *also* zeroed: this
/// turns the sweep into the Block-Jacobi restricted operator `R_s A R_sᵀ`
/// of Eq. 13 (used by the BJ and GNoComm preconditioners, which skip all
/// communication).
pub fn apply_physical_bcs<T: Scalar>(
    grid: &BlockGrid,
    field: &mut Field<T>,
    recorder: &Recorder,
    restricted: bool,
) {
    let n = grid.local_n;
    let mut ghost_elems = 0usize;
    for axis in 0..3 {
        for side in 0..2 {
            enum Action {
                Mirror,
                Zero,
                Skip,
            }
            let action = match (grid.boundary(axis, side), restricted) {
                (LocalBoundary::Physical(BcKind::Neumann), _) => Action::Mirror,
                (LocalBoundary::Physical(BcKind::Dirichlet), _) => Action::Zero,
                (LocalBoundary::Interface { .. }, true) => Action::Zero,
                (LocalBoundary::Interface { .. }, false) => Action::Skip,
            };
            if matches!(action, Action::Skip) {
                continue;
            }
            // ghost plane coordinate and its mirror (one-in from the
            // boundary node, i.e. two steps from the ghost)
            let (ghost, mirror) = if side == 0 {
                (0, 2)
            } else {
                (n[axis] + 1, n[axis] - 1)
            };
            let (pa, pb) = match axis {
                0 => (n[1], n[2]),
                1 => (n[0], n[2]),
                _ => (n[0], n[1]),
            };
            ghost_elems += pa * pb;
            let data = field.as_mut_slice();
            for b in 1..=pb {
                for a in 1..=pa {
                    let (gi, mi) = match axis {
                        0 => (field_idx(grid, ghost, a, b), field_idx(grid, mirror, a, b)),
                        1 => (field_idx(grid, a, ghost, b), field_idx(grid, a, mirror, b)),
                        _ => (field_idx(grid, a, b, ghost), field_idx(grid, a, b, mirror)),
                    };
                    data[gi] = match action {
                        Action::Mirror => data[mi],
                        Action::Zero => T::ZERO,
                        Action::Skip => unreachable!(),
                    };
                }
            }
        }
    }
    recorder.kernel(INFO_NEUMANN_BCS, ghost_elems);
}

#[inline(always)]
fn field_idx(grid: &BlockGrid, i: usize, j: usize, k: usize) -> usize {
    grid.idx(i, j, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::assemble_poisson;
    use accel::{GpuSimParams, Serial, SimGpu, Threads};
    use blockgrid::{Decomp, GlobalGrid};

    fn rng_values(n: usize, seed: u64) -> Vec<f64> {
        // small deterministic LCG; avoids pulling rand into the hot crate
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect()
    }

    #[test]
    fn batched_fused_dots_bitwise_match_solo_per_lane() {
        // apply_fused_dot_batch / apply_fused_dot3_batch must leave each
        // lane — output field and reduction scalars — bitwise identical
        // to the solo fused sweeps, on every back-end.
        let bc = [[BcKind::Dirichlet, BcKind::Neumann]; 3];
        let grid = single_rank_grid([5, 4, 3], bc);
        let lap = Laplacian::new(&grid);
        let nb = 3;
        let n = grid.global.unknowns();
        let run = |dev: &dyn Fn() -> accel::AnyDevice| {
            let dev = dev();
            let mk = |seed: u64| {
                let mut f = Field::from_interior(&dev, &grid, &rng_values(n, seed));
                apply_physical_bcs(&grid, &mut f, &Recorder::disabled(), false);
                f
            };
            let us: Vec<Field<f64>> = (0..nb).map(|l| mk(70 + l as u64)).collect();
            let rs: Vec<Field<f64>> = (0..nb).map(|l| mk(80 + l as u64)).collect();
            let gs: Vec<Field<f64>> = (0..nb).map(|l| mk(90 + l as u64)).collect();
            let mut w_b: Vec<Field<f64>> = (0..nb).map(|_| Field::zeros(&dev, &grid)).collect();
            let mut accs1 = vec![[0.0f64; 1]; nb];
            {
                let usl: Vec<&[f64]> = us.iter().map(|f| f.as_slice()).collect();
                let gsl: Vec<&[f64]> = gs.iter().map(|f| f.as_slice()).collect();
                let mut wm: Vec<&mut [f64]> = w_b.iter_mut().map(|f| f.as_mut_slice()).collect();
                lap.apply_fused_dot_batch(&dev, INFO_APPLY, &usl, &mut wm, &gsl, &mut accs1);
            }
            let mut t_b: Vec<Field<f64>> = (0..nb).map(|_| Field::zeros(&dev, &grid)).collect();
            let mut accs3 = vec![[0.0f64; 3]; nb];
            {
                let usl: Vec<&[f64]> = us.iter().map(|f| f.as_slice()).collect();
                let rsl: Vec<&[f64]> = rs.iter().map(|f| f.as_slice()).collect();
                let gsl: Vec<&[f64]> = gs.iter().map(|f| f.as_slice()).collect();
                let mut tm: Vec<&mut [f64]> = t_b.iter_mut().map(|f| f.as_mut_slice()).collect();
                lap.apply_fused_dot3_batch(&dev, INFO_APPLY, &usl, &mut tm, &rsl, &gsl, &mut accs3);
            }
            for l in 0..nb {
                let mut w_ref = Field::zeros(&dev, &grid);
                let d = lap.apply_fused_dot(&dev, INFO_APPLY, &us[l], &mut w_ref, &gs[l]);
                assert_eq!(accs1[l][0].to_bits(), d.to_bits());
                for (a, b) in w_b[l].as_slice().iter().zip(w_ref.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                let mut t_ref = Field::zeros(&dev, &grid);
                let (tr, tt, gt) =
                    lap.apply_fused_dot3(&dev, INFO_APPLY, &us[l], &mut t_ref, &rs[l], &gs[l]);
                assert_eq!(accs3[l][0].to_bits(), tr.to_bits());
                assert_eq!(accs3[l][1].to_bits(), tt.to_bits());
                assert_eq!(accs3[l][2].to_bits(), gt.to_bits());
                for (a, b) in t_b[l].as_slice().iter().zip(t_ref.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        };
        run(&|| accel::AnyDevice::Serial(Serial::new(Recorder::disabled())));
        run(&|| accel::AnyDevice::Threads(Threads::new(3, Recorder::disabled())));
        run(&|| {
            accel::AnyDevice::SimGpu(SimGpu::new(GpuSimParams::mi250x(), Recorder::disabled()))
        });
    }

    fn single_rank_grid(n: [usize; 3], bc: [[BcKind; 2]; 3]) -> BlockGrid {
        let mut g = GlobalGrid::dirichlet(n, [0.3, 0.5, 0.7], [0.0; 3]);
        g.bc = bc;
        BlockGrid::new(g, Decomp::single(), 0)
    }

    /// Dense reference: y = A x for the global operator.
    fn dense_apply(grid: &BlockGrid, x: &[f64]) -> Vec<f64> {
        let lap = Laplacian::new(grid);
        let m = assemble_poisson(&lap.global_ops(), grid.global.h);
        m.matvec(x)
    }

    fn check_apply_matches_dense(bc: [[BcKind; 2]; 3]) {
        let grid = single_rank_grid([4, 3, 5], bc);
        let dev = Serial::new(Recorder::disabled());
        let lap = Laplacian::new(&grid);
        let x = rng_values(grid.global.unknowns(), 42);
        let u = Field::from_interior(&dev, &grid, &x);
        let mut u = u;
        apply_physical_bcs(&grid, &mut u, &Recorder::disabled(), false);
        let mut w = Field::zeros(&dev, &grid);
        lap.apply(&dev, INFO_APPLY, &u, &mut w);
        let got = w.interior_to_host(&grid);
        let expect = dense_apply(&grid, &x);
        for (i, (a, b)) in got.iter().zip(&expect).enumerate() {
            assert!((a - b).abs() < 1e-12, "entry {i}: {a} vs {b} (bc {bc:?})");
        }
    }

    #[test]
    fn apply_matches_dense_all_dirichlet() {
        check_apply_matches_dense([[BcKind::Dirichlet; 2]; 3]);
    }

    #[test]
    fn apply_matches_dense_paper_bcs() {
        // paper: Dirichlet on x-, y+, z+; Neumann on x+, y-, z-
        check_apply_matches_dense([
            [BcKind::Dirichlet, BcKind::Neumann],
            [BcKind::Neumann, BcKind::Dirichlet],
            [BcKind::Neumann, BcKind::Dirichlet],
        ]);
    }

    #[test]
    fn apply_matches_dense_all_neumann_x() {
        check_apply_matches_dense([
            [BcKind::Neumann, BcKind::Neumann],
            [BcKind::Dirichlet, BcKind::Dirichlet],
            [BcKind::Dirichlet, BcKind::Neumann],
        ]);
    }

    #[test]
    fn fused_dot_matches_separate() {
        let grid = single_rank_grid([5, 4, 3], [[BcKind::Dirichlet; 2]; 3]);
        let dev = Serial::new(Recorder::disabled());
        let lap = Laplacian::new(&grid);
        let x = rng_values(grid.global.unknowns(), 7);
        let gv = rng_values(grid.global.unknowns(), 8);
        let mut u = Field::from_interior(&dev, &grid, &x);
        apply_physical_bcs(&grid, &mut u, &Recorder::disabled(), false);
        let g = Field::from_interior(&dev, &grid, &gv);
        let mut w = Field::zeros(&dev, &grid);
        let dot = lap.apply_fused_dot(&dev, INFO_APPLY, &u, &mut w, &g);
        let wi = w.interior_to_host(&grid);
        let expect: f64 = wi.iter().zip(&gv).map(|(a, b)| a * b).sum();
        assert!((dot - expect).abs() < 1e-12);
    }

    #[test]
    fn fused_dot2_matches_separate() {
        let grid = single_rank_grid([3, 3, 3], [[BcKind::Dirichlet; 2]; 3]);
        let dev = Serial::new(Recorder::disabled());
        let lap = Laplacian::new(&grid);
        let x = rng_values(27, 3);
        let rv = rng_values(27, 4);
        let mut u = Field::from_interior(&dev, &grid, &x);
        apply_physical_bcs(&grid, &mut u, &Recorder::disabled(), false);
        let r = Field::from_interior(&dev, &grid, &rv);
        let mut t = Field::zeros(&dev, &grid);
        let (tr, tt) = lap.apply_fused_dot2(&dev, INFO_APPLY, &u, &mut t, &r);
        let ti = t.interior_to_host(&grid);
        let e_tr: f64 = ti.iter().zip(&rv).map(|(a, b)| a * b).sum();
        let e_tt: f64 = ti.iter().map(|a| a * a).sum();
        // fused and separate sums use different groupings; compare relatively
        assert!((tr - e_tr).abs() < 1e-12 * e_tr.abs().max(1.0));
        assert!((tt - e_tt).abs() < 1e-12 * e_tt.max(1.0));
    }

    #[test]
    fn apply_combine_matches_composition() {
        let grid = single_rank_grid([4, 4, 4], [[BcKind::Dirichlet; 2]; 3]);
        let dev = Serial::new(Recorder::disabled());
        let lap = Laplacian::new(&grid);
        let n = 64;
        let uv = rng_values(n, 1);
        let f1v = rng_values(n, 2);
        let f2v = rng_values(n, 3);
        let mut u = Field::from_interior(&dev, &grid, &uv);
        apply_physical_bcs(&grid, &mut u, &Recorder::disabled(), false);
        let f1 = Field::from_interior(&dev, &grid, &f1v);
        let f2 = Field::from_interior(&dev, &grid, &f2v);
        let mut out = Field::zeros(&dev, &grid);
        let (ca, c1, c2) = (0.25, -1.5, 2.0);
        lap.apply_combine(&dev, INFO_APPLY, &u, &mut out, ca, &[(&f1, c1), (&f2, c2)]);
        // reference: separate apply then axpys
        let mut au = Field::zeros(&dev, &grid);
        lap.apply(&dev, INFO_APPLY, &u, &mut au);
        let aui = au.interior_to_host(&grid);
        let got = out.interior_to_host(&grid);
        for i in 0..n {
            let expect = ca * aui[i] + c1 * f1v[i] + c2 * f2v[i];
            assert!(
                (got[i] - expect).abs() < 1e-13 * expect.abs().max(1.0),
                "{i}"
            );
        }
    }

    #[test]
    fn apply_combine_no_terms_is_scaled_apply() {
        let grid = single_rank_grid([3, 3, 3], [[BcKind::Dirichlet; 2]; 3]);
        let dev = Serial::new(Recorder::disabled());
        let lap = Laplacian::new(&grid);
        let uv = rng_values(27, 5);
        let mut u = Field::from_interior(&dev, &grid, &uv);
        apply_physical_bcs(&grid, &mut u, &Recorder::disabled(), false);
        let mut out = Field::zeros(&dev, &grid);
        lap.apply_combine(&dev, INFO_APPLY, &u, &mut out, -1.0, &[]);
        let mut au = Field::zeros(&dev, &grid);
        lap.apply(&dev, INFO_APPLY, &u, &mut au);
        let a = out.interior_to_host(&grid);
        let b = au.interior_to_host(&grid);
        for i in 0..27 {
            assert_eq!(a[i], -b[i]);
        }
    }

    #[test]
    fn same_result_across_backends() {
        let grid = single_rank_grid(
            [6, 5, 4],
            [
                [BcKind::Dirichlet, BcKind::Neumann],
                [BcKind::Neumann, BcKind::Dirichlet],
                [BcKind::Dirichlet, BcKind::Dirichlet],
            ],
        );
        let x = rng_values(grid.global.unknowns(), 11);
        let run = |devname: &str| -> Vec<f64> {
            let rec = Recorder::disabled();
            let lap = Laplacian::new(&grid);
            match devname {
                "serial" => {
                    let dev = Serial::new(rec);
                    let mut u = Field::from_interior(&dev, &grid, &x);
                    apply_physical_bcs(&grid, &mut u, &Recorder::disabled(), false);
                    let mut w = Field::zeros(&dev, &grid);
                    lap.apply(&dev, INFO_APPLY, &u, &mut w);
                    w.interior_to_host(&grid)
                }
                "threads" => {
                    let dev = Threads::new(3, rec);
                    let mut u = Field::from_interior(&dev, &grid, &x);
                    apply_physical_bcs(&grid, &mut u, &Recorder::disabled(), false);
                    let mut w = Field::zeros(&dev, &grid);
                    lap.apply(&dev, INFO_APPLY, &u, &mut w);
                    w.interior_to_host(&grid)
                }
                _ => {
                    let dev = SimGpu::new(GpuSimParams::mi250x(), rec);
                    let mut u = Field::from_interior(&dev, &grid, &x);
                    apply_physical_bcs(&grid, &mut u, &Recorder::disabled(), false);
                    let mut w = Field::zeros(&dev, &grid);
                    lap.apply(&dev, INFO_APPLY, &u, &mut w);
                    w.interior_to_host(&grid)
                }
            }
        };
        let a = run("serial");
        let b = run("threads");
        let c = run("gpu");
        assert_eq!(a, b, "elementwise kernels must agree exactly");
        assert_eq!(a, c);
    }

    #[test]
    fn split_apply_bitwise_matches_monolithic() {
        for n in [[5usize, 4, 6], [3, 3, 3], [2, 5, 4], [1, 1, 7]] {
            let grid = single_rank_grid(
                n,
                [
                    [BcKind::Dirichlet, BcKind::Neumann],
                    [BcKind::Neumann, BcKind::Dirichlet],
                    [BcKind::Dirichlet, BcKind::Dirichlet],
                ],
            );
            if (0..3).any(|a| grid.local_n[a] < 2) {
                continue; // Neumann faces need 2 unknowns; keep thin case Dirichlet-only
            }
            let dev = Serial::new(Recorder::disabled());
            let lap = Laplacian::new(&grid);
            let x = rng_values(grid.global.unknowns(), 13);
            let mut u = Field::from_interior(&dev, &grid, &x);
            apply_physical_bcs(&grid, &mut u, &Recorder::disabled(), false);
            let mut w_full = Field::zeros(&dev, &grid);
            lap.apply(&dev, INFO_APPLY, &u, &mut w_full);
            let mut w_split = Field::zeros(&dev, &grid);
            lap.apply_interior(&dev, INFO_APPLY, &u, &mut w_split);
            lap.apply_shell(&dev, INFO_APPLY, &u, &mut w_split);
            assert_eq!(
                w_full.interior_to_host(&grid),
                w_split.interior_to_host(&grid),
                "split sweep must be bitwise equal for {n:?}"
            );
        }
    }

    #[test]
    fn split_fused_dot_bitwise_matches_monolithic() {
        for n in [[5usize, 4, 6], [3, 3, 3], [2, 5, 4], [1, 1, 7]] {
            let grid = single_rank_grid(n, [[BcKind::Dirichlet; 2]; 3]);
            let dev = Serial::new(Recorder::disabled());
            let lap = Laplacian::new(&grid);
            let x = rng_values(grid.global.unknowns(), 17);
            let gv = rng_values(grid.global.unknowns(), 18);
            let mut u = Field::from_interior(&dev, &grid, &x);
            apply_physical_bcs(&grid, &mut u, &Recorder::disabled(), false);
            let g = Field::from_interior(&dev, &grid, &gv);
            let mut w_full = Field::zeros(&dev, &grid);
            let dot_full = lap.apply_fused_dot(&dev, INFO_APPLY, &u, &mut w_full, &g);
            let mut w_split = Field::zeros(&dev, &grid);
            let mut slots = vec![0.0f64; lap.slot_len(1)];
            let gs_field = g.as_slice().to_vec();
            let terms = |c: usize, v: f64| [gs_field[c] * v];
            lap.apply_interior_dot(&dev, INFO_APPLY, &u, &mut w_split, &mut slots, &terms);
            let pending =
                lap.apply_shell_dot(&dev, INFO_APPLY, &u, &mut w_split, &mut slots, &terms);
            let [dot_split] = pending.fold(&dev, INFO_APPLY, &slots);
            assert_eq!(
                dot_full.to_bits(),
                dot_split.to_bits(),
                "split dot must be bitwise equal for {n:?}"
            );
            assert_eq!(
                w_full.interior_to_host(&grid),
                w_split.interior_to_host(&grid),
            );
        }
    }

    #[test]
    fn split_fused_dot3_bitwise_matches_monolithic_across_backends() {
        let grid = single_rank_grid([5, 4, 6], [[BcKind::Dirichlet; 2]; 3]);
        let x = rng_values(grid.global.unknowns(), 21);
        let rv = rng_values(grid.global.unknowns(), 22);
        let gv = rng_values(grid.global.unknowns(), 23);
        fn go<D: Device>(
            dev: &D,
            grid: &BlockGrid,
            x: &[f64],
            rv: &[f64],
            gv: &[f64],
        ) -> ([f64; 3], [f64; 3]) {
            let lap = Laplacian::new(grid);
            let mut u = Field::from_interior(dev, grid, x);
            apply_physical_bcs(grid, &mut u, &Recorder::disabled(), false);
            let r = Field::from_interior(dev, grid, rv);
            let g = Field::from_interior(dev, grid, gv);
            let mut t_full = Field::zeros(dev, grid);
            let (a, b, c) = lap.apply_fused_dot3(dev, INFO_APPLY, &u, &mut t_full, &r, &g);
            let mut t_split = Field::zeros(dev, grid);
            let mut slots = vec![0.0f64; lap.slot_len(3)];
            let rs = r.as_slice().to_vec();
            let gs = g.as_slice().to_vec();
            let terms = |cc: usize, v: f64| [v * rs[cc], v * v, gs[cc] * v];
            lap.apply_interior_dot(dev, INFO_APPLY, &u, &mut t_split, &mut slots, &terms);
            let pending =
                lap.apply_shell_dot(dev, INFO_APPLY, &u, &mut t_split, &mut slots, &terms);
            let split = pending.fold(dev, INFO_APPLY, &slots);
            for (f, s) in t_full.as_slice().iter().zip(t_split.as_slice()) {
                assert_eq!(f.to_bits(), s.to_bits());
            }
            ([a, b, c], split)
        }
        let serial = Serial::new(Recorder::disabled());
        let threads = Threads::new(3, Recorder::disabled());
        let gpu = SimGpu::new(GpuSimParams::mi250x(), Recorder::disabled());
        for (mono, split) in [
            go(&serial, &grid, &x, &rv, &gv),
            go(&threads, &grid, &x, &rv, &gv),
            go(&gpu, &grid, &x, &rv, &gv),
        ] {
            for q in 0..3 {
                assert_eq!(mono[q].to_bits(), split[q].to_bits());
            }
        }
    }

    #[test]
    fn split_combine_bitwise_matches_monolithic() {
        let grid = single_rank_grid([5, 4, 3], [[BcKind::Dirichlet; 2]; 3]);
        let dev = Serial::new(Recorder::disabled());
        let lap = Laplacian::new(&grid);
        let n = grid.global.unknowns();
        let uv = rng_values(n, 6);
        let f1v = rng_values(n, 7);
        let mut u = Field::from_interior(&dev, &grid, &uv);
        apply_physical_bcs(&grid, &mut u, &Recorder::disabled(), false);
        let f1 = Field::from_interior(&dev, &grid, &f1v);
        let mut full = Field::zeros(&dev, &grid);
        lap.apply_combine(&dev, INFO_APPLY, &u, &mut full, 0.5, &[(&f1, -2.0)]);
        let mut split = Field::zeros(&dev, &grid);
        lap.apply_combine_interior(&dev, INFO_APPLY, &u, &mut split, 0.5, &[(&f1, -2.0)]);
        lap.apply_combine_shell(&dev, INFO_APPLY, &u, &mut split, 0.5, &[(&f1, -2.0)]);
        assert_eq!(full.interior_to_host(&grid), split.interior_to_host(&grid));
    }

    #[test]
    fn restricted_bcs_zero_interface_ghosts() {
        // two ranks in x; rank 0 high-x face is an interface
        let mut g = GlobalGrid::dirichlet([8, 4, 4], [0.1; 3], [0.0; 3]);
        g.bc[0] = [BcKind::Dirichlet, BcKind::Dirichlet];
        let grid = BlockGrid::new(g, Decomp::new([2, 1, 1]), 0);
        let dev = Serial::new(Recorder::disabled());
        let mut f = Field::from_interior(&dev, &grid, &vec![1.0f64; 4 * 4 * 4]);
        // scribble an "exchanged" value into the interface ghost
        let gi = grid.idx(5, 2, 2);
        f.as_mut_slice()[gi] = 7.0;
        apply_physical_bcs(&grid, &mut f, &Recorder::disabled(), false);
        assert_eq!(f.as_slice()[gi], 7.0, "unrestricted keeps interface ghosts");
        apply_physical_bcs(&grid, &mut f, &Recorder::disabled(), true);
        assert_eq!(f.as_slice()[gi], 0.0, "restricted zeroes interface ghosts");
    }

    #[test]
    fn neumann_mirror_values() {
        let grid = single_rank_grid(
            [4, 2, 2],
            [
                [BcKind::Neumann, BcKind::Dirichlet],
                [BcKind::Dirichlet, BcKind::Dirichlet],
                [BcKind::Dirichlet, BcKind::Dirichlet],
            ],
        );
        let dev = Serial::new(Recorder::disabled());
        let interior: Vec<f64> = (0..16).map(|i| i as f64 + 1.0).collect();
        let mut f = Field::from_interior(&dev, &grid, &interior);
        apply_physical_bcs(&grid, &mut f, &Recorder::disabled(), false);
        // ghost (0, j, k) must equal interior (2, j, k)
        for k in 1..=2 {
            for j in 1..=2 {
                assert_eq!(
                    f.as_slice()[grid.idx(0, j, k)],
                    f.as_slice()[grid.idx(2, j, k)]
                );
            }
        }
        // Dirichlet high-x ghost is zero
        assert_eq!(f.as_slice()[grid.idx(5, 1, 1)], 0.0);
    }

    #[test]
    fn local_ops_classify_interfaces() {
        let mut g = GlobalGrid::dirichlet([8, 8, 8], [0.1; 3], [0.0; 3]);
        g.bc[0] = [BcKind::Neumann, BcKind::Dirichlet];
        let grid = BlockGrid::new(g, Decomp::new([2, 1, 1]), 0);
        let lap = Laplacian::new(&grid);
        let local = lap.local_ops();
        assert_eq!(local[0].lo, EndKind::Neumann);
        assert_eq!(local[0].hi, EndKind::DirichletLike); // interface
        let global = lap.global_ops();
        assert_eq!(global[0].n, 8);
        assert_eq!(local[0].n, 4);
    }

    #[test]
    #[should_panic(expected = "Neumann face needs at least 2")]
    fn thin_neumann_subdomain_rejected() {
        let mut g = GlobalGrid::dirichlet([1, 4, 4], [0.1; 3], [0.0; 3]);
        g.bc[0] = [BcKind::Neumann, BcKind::Dirichlet];
        let grid = BlockGrid::new(g, Decomp::single(), 0);
        let _ = Laplacian::new(&grid);
    }
}
