//! # stencil — the discrete Poisson operator, matrix-free
//!
//! Everything the solver needs to *be* the matrix `A` of `A x = b`
//! without storing it (Sec. II-A and III-B of the paper):
//!
//! * [`Op1d`] / [`EndKind`] — the per-axis 1-D operators **D** and **N**
//!   (Eqs. 4–5), both as explicit coefficient rules and as dense matrices
//!   for verification.
//! * [`Laplacian`] — the matrix-free 7-point sweep, with fused-dot
//!   variants matching the paper's `KernelBiCGS1` and `KernelBiCGS3`.
//! * [`apply_physical_bcs`] — the `KernelNeumannBCs` ghost update
//!   (Neumann mirror / Dirichlet zero / Block-Jacobi restriction).
//! * [`spectrum`] — analytic (Eq. 9), Gerschgorin, and Sturm-bisection
//!   eigenvalue bounds composed through the Kronecker sum (Eqs. 8, 10–11),
//!   plus the Bergamaschi rescaling used by the Chebyshev preconditioners.
//! * [`matrix`] — dense reference assembly (Eq. 6) and LU/power-iteration
//!   utilities for the test suite.

#![warn(missing_docs)]

mod laplacian;
pub mod matrix;
mod op1d;
pub mod spectrum;

pub use laplacian::{apply_physical_bcs, Laplacian, INFO_APPLY, INFO_NEUMANN_BCS};
pub use op1d::{EndKind, Op1d};
pub use spectrum::SpectralBounds;
