//! Spectral bounds of the discrete Poisson operator (Sec. II-A).
//!
//! The Chebyshev preconditioners need `lambda_min` and `lambda_max` of the
//! operator. By the Kronecker-sum structure (Eq. 8), every 3-D eigenvalue
//! is a sum of per-axis 1-D eigenvalues scaled by `1/h²`, so the extreme
//! 3-D eigenvalues follow from per-axis extremes (Eqs. 10–11):
//!
//! * Matrix **D** (Dirichlet ends): the analytic spectrum of Eq. 9.
//! * Matrix **N** (Neumann end): no closed form. The paper cites the
//!   Gerschgorin estimate `[0, 4]`; we additionally compute *sharp*
//!   extremes with a Sturm-sequence bisection on the symmetrized
//!   tridiagonal (N has positive sub·super products, so it is similar to
//!   a symmetric tridiagonal with the same spectrum).

use crate::op1d::{EndKind, Op1d};

/// Extreme eigenvalues of an operator, `0 < min <= max`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpectralBounds {
    /// Smallest eigenvalue.
    pub min: f64,
    /// Largest eigenvalue.
    pub max: f64,
}

impl SpectralBounds {
    /// Bergamaschi-style rescaling (Sec. IV): shrink the top of the
    /// interval slightly and inflate the bottom, which accelerates the
    /// outer Krylov iteration when the Chebyshev polynomial is used as a
    /// preconditioner. The paper uses `max_shrink = 1e-4` and
    /// `min_factor = 100` (multi-rank) or `10` (single-rank).
    pub fn rescaled(self, max_shrink: f64, min_factor: f64) -> Self {
        let min = self.min * min_factor;
        let max = self.max * (1.0 - max_shrink);
        assert!(
            min < max,
            "rescaling collapsed the spectral interval: [{min}, {max}]"
        );
        Self { min, max }
    }
}

/// Analytic spectrum extremes of matrix **D** of size `n` (Eq. 9):
/// `mu_i = 4 sin²(i π / (2(n+1)))`, `i = 1..=n`.
pub fn dirichlet_extremes(n: usize) -> (f64, f64) {
    assert!(n >= 1);
    let arg = |i: usize| {
        let s = (i as f64 * std::f64::consts::PI / (2.0 * (n as f64 + 1.0))).sin();
        4.0 * s * s
    };
    (arg(1), arg(n))
}

/// The `i`-th (1-based) analytic Dirichlet eigenvalue of Eq. 9.
pub fn dirichlet_eigenvalue(n: usize, i: usize) -> f64 {
    assert!(i >= 1 && i <= n);
    let s = (i as f64 * std::f64::consts::PI / (2.0 * (n as f64 + 1.0))).sin();
    4.0 * s * s
}

/// Gerschgorin estimate for any axis operator: all rows have centre 2 and
/// radius at most 2, so the spectrum lies in `[0, 4]` (the paper's cited
/// bound for matrix **N**).
pub fn gerschgorin(op: &Op1d) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..op.n {
        let r = op.subdiag(i) + op.superdiag(i);
        lo = lo.min(op.diag(i) - r);
        hi = hi.max(op.diag(i) + r);
    }
    (lo.max(0.0), hi)
}

/// Number of eigenvalues of the symmetric tridiagonal `(d, e)` that are
/// strictly below `x` (Sturm sequence count).
///
/// `e2[i]` is the *squared* off-diagonal between rows `i` and `i + 1`.
fn sturm_count(d: &[f64], e2: &[f64], x: f64) -> usize {
    // Count negative pivots of the LDL^T factorisation of (A - xI); a zero
    // pivot is perturbed to a tiny negative (standard bisection convention),
    // so exact eigenvalue hits count as "below".
    let tiny = 1e-300;
    let mut count = 0;
    let mut q = 1.0;
    for i in 0..d.len() {
        q = d[i] - x - if i > 0 { e2[i - 1] / q } else { 0.0 };
        if q.abs() < tiny {
            q = -tiny;
        }
        if q < 0.0 {
            count += 1;
        }
    }
    count
}

/// Bisect for the infimum of `{ x : sturm_count(x) >= k }` within
/// `[lo, hi]` — i.e. the `k`-th smallest eigenvalue (1-based `k`).
fn bisect_kth(d: &[f64], e2: &[f64], k: usize, mut lo: f64, mut hi: f64) -> f64 {
    debug_assert!(sturm_count(d, e2, hi) >= k);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if sturm_count(d, e2, mid) >= k {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Sharp extreme eigenvalues of an axis operator.
///
/// Uses the analytic formula for symmetric (pure-Dirichlet) operators and
/// Sturm bisection on the symmetrized form otherwise. The symmetrization
/// is valid because `sub(i+1) * super(i) > 0` for every `i`, making the
/// operator diagonally similar to the symmetric tridiagonal with
/// off-diagonals `sqrt(sub * super)`.
pub fn extreme_eigenvalues(op: &Op1d) -> (f64, f64) {
    if op.is_symmetric() && op.lo == EndKind::DirichletLike && op.hi == EndKind::DirichletLike {
        return dirichlet_extremes(op.n);
    }
    if op.n == 1 {
        return (2.0, 2.0);
    }
    let d: Vec<f64> = (0..op.n).map(|i| op.diag(i)).collect();
    let e2: Vec<f64> = (0..op.n - 1)
        .map(|i| op.subdiag(i + 1) * op.superdiag(i))
        .collect();
    let (glo, ghi) = gerschgorin(op);
    // widen a touch so bisection brackets even boundary eigenvalues
    let lo = glo - 1e-6;
    let hi = ghi + 1e-6;
    let min = bisect_kth(&d, &e2, 1, lo, hi);
    let max = bisect_kth(&d, &e2, op.n, lo, hi);
    (min, max)
}

/// Kronecker-sum extreme eigenvalues of the 3-D operator (Eqs. 10–11):
/// `lambda_min = sum_a min(mu^a) / h_a²`, likewise for the max.
pub fn kronecker_bounds(ops: &[Op1d; 3], h: [f64; 3]) -> SpectralBounds {
    let mut min = 0.0;
    let mut max = 0.0;
    for a in 0..3 {
        let (lo, hi) = extreme_eigenvalues(&ops[a]);
        let inv_h2 = 1.0 / (h[a] * h[a]);
        min += lo * inv_h2;
        max += hi * inv_h2;
    }
    SpectralBounds { min, max }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{power_iteration_extremes, DenseMatrix};

    #[test]
    fn dirichlet_extremes_match_formula_endpoints() {
        let (lo, hi) = dirichlet_extremes(5);
        assert!((lo - dirichlet_eigenvalue(5, 1)).abs() < 1e-15);
        assert!((hi - dirichlet_eigenvalue(5, 5)).abs() < 1e-15);
        assert!(lo > 0.0 && hi < 4.0);
    }

    #[test]
    fn sturm_matches_analytic_for_dirichlet() {
        for n in [2usize, 3, 7, 33, 128] {
            let op = Op1d::dirichlet(n);
            let d: Vec<f64> = (0..n).map(|i| op.diag(i)).collect();
            let e2: Vec<f64> = (0..n - 1)
                .map(|i| op.subdiag(i + 1) * op.superdiag(i))
                .collect();
            let min = bisect_kth(&d, &e2, 1, -1.0, 5.0);
            let max = bisect_kth(&d, &e2, n, -1.0, 5.0);
            let (alo, ahi) = dirichlet_extremes(n);
            assert!((min - alo).abs() < 1e-10, "n={n} min {min} vs {alo}");
            assert!((max - ahi).abs() < 1e-10, "n={n} max {max} vs {ahi}");
        }
    }

    #[test]
    fn neumann_extremes_agree_with_power_iteration() {
        for (lo, hi) in [
            (EndKind::Neumann, EndKind::DirichletLike),
            (EndKind::DirichletLike, EndKind::Neumann),
            (EndKind::Neumann, EndKind::Neumann),
        ] {
            for n in [3usize, 8, 21] {
                let op = Op1d::new(n, lo, hi);
                let (emin, emax) = extreme_eigenvalues(&op);
                let dense = DenseMatrix::from_row_major(n, op.to_dense());
                let (pmin, pmax) = power_iteration_extremes(&dense, 20_000, 1e-12);
                assert!(
                    (emax - pmax).abs() < 1e-6,
                    "{lo:?}/{hi:?} n={n}: max {emax} vs power {pmax}"
                );
                assert!(
                    (emin - pmin).abs() < 1e-6,
                    "{lo:?}/{hi:?} n={n}: min {emin} vs power {pmin}"
                );
            }
        }
    }

    #[test]
    fn gerschgorin_is_zero_four_for_paper_operators() {
        let op = Op1d::new(16, EndKind::Neumann, EndKind::DirichletLike);
        assert_eq!(gerschgorin(&op), (0.0, 4.0));
        let op = Op1d::dirichlet(16);
        assert_eq!(gerschgorin(&op), (0.0, 4.0));
    }

    #[test]
    fn gerschgorin_contains_sharp_bounds() {
        for n in [2usize, 5, 64] {
            for lo in [EndKind::DirichletLike, EndKind::Neumann] {
                for hi in [EndKind::DirichletLike, EndKind::Neumann] {
                    let op = Op1d::new(n, lo, hi);
                    let (gl, gh) = gerschgorin(&op);
                    let (el, eh) = extreme_eigenvalues(&op);
                    assert!(gl <= el + 1e-9 && eh <= gh + 1e-9);
                    assert!(el <= eh);
                }
            }
        }
    }

    #[test]
    fn kronecker_bounds_scale_with_spacing() {
        let ops = [Op1d::dirichlet(8), Op1d::dirichlet(8), Op1d::dirichlet(8)];
        let b1 = kronecker_bounds(&ops, [1.0; 3]);
        let b2 = kronecker_bounds(&ops, [0.5; 3]);
        assert!((b2.min / b1.min - 4.0).abs() < 1e-12);
        assert!((b2.max / b1.max - 4.0).abs() < 1e-12);
        let (lo, hi) = dirichlet_extremes(8);
        assert!((b1.min - 3.0 * lo).abs() < 1e-12);
        assert!((b1.max - 3.0 * hi).abs() < 1e-12);
    }

    #[test]
    fn rescaling_shrinks_from_both_ends() {
        let b = SpectralBounds {
            min: 0.001,
            max: 10.0,
        }
        .rescaled(1e-4, 100.0);
        assert!((b.min - 0.1).abs() < 1e-12);
        assert!((b.max - 10.0 * (1.0 - 1e-4)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "collapsed")]
    fn rescaling_guards_inverted_interval() {
        let _ = SpectralBounds { min: 1.0, max: 2.0 }.rescaled(0.0, 10.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn end_strategy() -> impl Strategy<Value = EndKind> {
        prop_oneof![Just(EndKind::DirichletLike), Just(EndKind::Neumann)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn bounds_are_ordered_and_inside_gerschgorin(
            n in 1usize..200,
            lo in end_strategy(),
            hi in end_strategy(),
        ) {
            let op = Op1d::new(n, lo, hi);
            let (emin, emax) = extreme_eigenvalues(&op);
            prop_assert!(emin <= emax + 1e-12);
            let (glo, ghi) = gerschgorin(&op);
            prop_assert!(emin >= glo - 1e-6, "{emin} vs Gerschgorin {glo}");
            prop_assert!(emax <= ghi + 1e-6, "{emax} vs Gerschgorin {ghi}");
        }

        #[test]
        fn dirichlet_spectrum_is_monotone_in_index(n in 2usize..100, i in 1usize..99) {
            prop_assume!(i < n);
            let a = dirichlet_eigenvalue(n, i);
            let b = dirichlet_eigenvalue(n, i + 1);
            prop_assert!(a < b, "eigenvalues must increase with index");
            prop_assert!(a > 0.0 && b < 4.0);
        }

        #[test]
        fn rayleigh_quotients_respect_symmetric_bounds(
            n in 2usize..40,
            seed in 1u64..u64::MAX,
        ) {
            // symmetric (pure-Dirichlet) operator: the Rayleigh quotient of
            // any vector lies within the spectral bounds
            let op = Op1d::dirichlet(n);
            let dense = op.to_dense();
            let mut state = seed;
            let v: Vec<f64> = (0..n).map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            }).collect();
            let norm2: f64 = v.iter().map(|x| x * x).sum();
            prop_assume!(norm2 > 1e-12);
            let av: Vec<f64> = (0..n)
                .map(|r| (0..n).map(|c| dense[r * n + c] * v[c]).sum())
                .collect();
            let rq: f64 = av.iter().zip(&v).map(|(a, b)| a * b).sum::<f64>() / norm2;
            let (emin, emax) = extreme_eigenvalues(&op);
            prop_assert!(rq >= emin - 1e-9, "RQ {rq} below lambda_min {emin}");
            prop_assert!(rq <= emax + 1e-9, "RQ {rq} above lambda_max {emax}");
        }

        #[test]
        fn kronecker_bounds_are_axis_sums(
            na in 1usize..20, nb in 1usize..20, nc in 1usize..20,
            ha in 0.05f64..2.0, hb in 0.05f64..2.0, hc in 0.05f64..2.0,
        ) {
            let ops = [Op1d::dirichlet(na), Op1d::dirichlet(nb), Op1d::dirichlet(nc)];
            let b = kronecker_bounds(&ops, [ha, hb, hc]);
            prop_assert!(b.min > 0.0 && b.min <= b.max);
            // per-axis reconstruction
            let mut min = 0.0;
            let mut max = 0.0;
            for (op, h) in ops.iter().zip([ha, hb, hc]) {
                let (lo, hi) = extreme_eigenvalues(op);
                min += lo / (h * h);
                max += hi / (h * h);
            }
            prop_assert!((b.min - min).abs() < 1e-12 * min.max(1.0));
            prop_assert!((b.max - max).abs() < 1e-12 * max.max(1.0));
        }
    }
}
