//! The multi-tenant solve service: admission, workers, session cache.
//!
//! Submitting returns an awaitable [`JobHandle`]; a fixed worker pool
//! drains the priority queue, leasing a device per job and reusing warm
//! sessions when a compatible one is cached. Panics are isolated per
//! job: the offending session is quarantined and the service keeps
//! serving.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use accel::{AnyDevice, DeviceLease, DevicePool, Recorder};
use blockgrid::Decomp;
use check::{try_run_ranks_checked, CheckConfig, Checked};
use comm::ReduceOrder;
use krylov::{SolveOutcome, SolveParams};
use poisson::PoissonSolver;

use crate::job::{JobError, JobHandle, JobMetrics, JobOutput, JobResult, JobShared, SubmitError};
use crate::metrics::{ServiceStats, StatsInner};
use crate::request::SolveRequest;
use crate::scheduler::Scheduler;
use crate::session::{panic_message, primary_panic, scatter, Session, SessionKey};

/// Static configuration of a [`SolveService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads draining the queue concurrently.
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are rejected with
    /// [`SubmitError::Overloaded`]. Admission is class-aware: Normal
    /// and Low each forfeit a `capacity / 8` reserve tranche, so a
    /// flood of low-priority work cannot fill the queue and push
    /// high-priority submissions into `Overloaded`.
    pub queue_capacity: usize,
    /// Device specs backing the lease pool (one lease per entry, e.g.
    /// `"serial"`, `"threads:4"`, `"simgpu"`). Empty means one
    /// `"serial"` device per worker.
    pub devices: Vec<String>,
    /// Warm sessions kept alive across jobs; `0` disables reuse (every
    /// job builds cold).
    pub session_capacity: usize,
    /// Reduction order for multi-rank worlds spawned by the service.
    pub order: ReduceOrder,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            devices: Vec::new(),
            session_capacity: 8,
            order: ReduceOrder::RankOrder,
        }
    }
}

/// LRU-ish warm-session cache: checkout removes, checkin appends and
/// evicts the oldest entry past capacity.
struct SessionCache {
    entries: Mutex<Vec<(SessionKey, Session)>>,
    capacity: usize,
}

impl SessionCache {
    fn new(capacity: usize) -> Self {
        Self {
            entries: Mutex::new(Vec::new()),
            capacity,
        }
    }

    fn checkout(&self, key: &SessionKey) -> Option<Session> {
        let mut entries = self.entries.lock().unwrap();
        let pos = entries.iter().position(|(k, _)| k == key)?;
        Some(entries.remove(pos).1)
    }

    /// Return a healthy session; reports whether an old session was
    /// evicted to make room. With capacity `0` the session is simply
    /// dropped (reuse disabled).
    fn checkin(&self, key: SessionKey, session: Session) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let mut entries = self.entries.lock().unwrap();
        entries.push((key, session));
        if entries.len() > self.capacity {
            entries.remove(0);
            true
        } else {
            false
        }
    }

    fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }
}

struct ServiceInner {
    queue: Scheduler,
    cache: SessionCache,
    pool: DevicePool<AnyDevice>,
    specs: Vec<String>,
    stats: StatsInner,
    order: ReduceOrder,
    next_id: AtomicU64,
}

/// An in-process solve service. Construct with
/// [`SolveService::start`], submit with [`SolveService::submit`],
/// observe with [`SolveService::stats`]. Dropping the service (or
/// calling [`SolveService::shutdown`]) closes admission, sheds
/// everything still queued and joins the workers.
pub struct SolveService {
    inner: Arc<ServiceInner>,
    workers: Vec<JoinHandle<()>>,
}

impl SolveService {
    /// Start the worker pool.
    ///
    /// Panics on an invalid device spec or a zero-sized pool — a
    /// service that cannot run anything is a deployment error, not a
    /// per-job failure.
    pub fn start(cfg: ServiceConfig) -> Self {
        assert!(cfg.workers >= 1, "service needs at least one worker");
        assert!(cfg.queue_capacity >= 1, "service needs a non-empty queue");
        let specs = if cfg.devices.is_empty() {
            vec!["serial".to_string(); cfg.workers]
        } else {
            cfg.devices.clone()
        };
        let devices: Vec<AnyDevice> = specs
            .iter()
            .map(|spec| {
                AnyDevice::from_spec(spec, Recorder::disabled())
                    .unwrap_or_else(|e| panic!("invalid device spec {spec:?}: {e}"))
            })
            .collect();
        let inner = Arc::new(ServiceInner {
            queue: Scheduler::new(cfg.queue_capacity),
            cache: SessionCache::new(cfg.session_capacity),
            pool: DevicePool::new(devices),
            specs,
            stats: StatsInner::default(),
            order: cfg.order,
            next_id: AtomicU64::new(0),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker thread")
            })
            .collect();
        Self { inner, workers }
    }

    /// Submit one request. Never blocks: a full queue answers
    /// `Err(Overloaded)` immediately (admission control), leaving the
    /// caller to shed or retry.
    pub fn submit(&self, request: SolveRequest) -> Result<JobHandle, SubmitError> {
        let id = self.inner.next_id.fetch_add(1, Ordering::SeqCst) + 1;
        let job = Arc::new(JobShared::new(id, request));
        match self.inner.queue.push(job.clone()) {
            Ok(()) => {
                self.inner.stats.bump(&self.inner.stats.submitted);
                Ok(JobHandle { shared: job })
            }
            Err(e) => {
                self.inner.stats.bump(&self.inner.stats.rejected);
                Err(e)
            }
        }
    }

    /// Point-in-time counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        let s = &self.inner.stats;
        let load = |c: &AtomicU64| c.load(Ordering::SeqCst);
        ServiceStats {
            submitted: load(&s.submitted),
            rejected: load(&s.rejected),
            completed: load(&s.completed),
            failed: load(&s.failed),
            shed: load(&s.shed),
            cancelled: load(&s.cancelled),
            panicked: load(&s.panicked),
            quarantined: load(&s.quarantined),
            warm_hits: load(&s.warm_hits),
            cold_builds: load(&s.cold_builds),
            evicted: load(&s.evicted),
            queued: self.inner.queue.len(),
            cached_sessions: self.inner.cache.len(),
        }
    }

    /// Close admission, shed every queued job, finish in-flight work
    /// and join the workers. Idempotent; also runs on drop.
    pub fn shutdown(mut self) -> ServiceStats {
        self.shutdown_impl();
        self.stats()
    }

    fn shutdown_impl(&mut self) {
        for job in self.inner.queue.close() {
            job.finish(JobResult::Shed);
            self.inner.stats.bump(&self.inner.stats.shed);
        }
        for handle in self.workers.drain(..) {
            handle.join().expect("workers never panic at top level");
        }
    }
}

impl Drop for SolveService {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn worker_loop(inner: &ServiceInner) {
    while let Some(job) = inner.queue.pop() {
        let queue_wait = job.submitted.elapsed();
        let Some(request) = job.take_request() else {
            continue;
        };
        if job.cancel.is_cancelled() {
            inner.stats.bump(&inner.stats.cancelled);
            job.finish(JobResult::Cancelled);
            continue;
        }
        if job.deadline_expired(Instant::now()) {
            inner.stats.bump(&inner.stats.shed);
            job.finish(JobResult::Shed);
            continue;
        }
        job.set_running();
        let lease = inner.pool.acquire();
        let result = execute(inner, &job, request, &lease, queue_wait);
        // Return the slot before publishing the result: a submitter
        // reacting to this job's completion must find the device (and
        // its per-slot warm session) available again, not still leased.
        drop(lease);
        match &result {
            JobResult::Done(_) => inner.stats.bump(&inner.stats.completed),
            JobResult::Failed(_) => inner.stats.bump(&inner.stats.failed),
            JobResult::Cancelled => inner.stats.bump(&inner.stats.cancelled),
            JobResult::Shed => inner.stats.bump(&inner.stats.shed),
        };
        job.finish(result);
    }
}

/// Execute one admitted job on the leased device; returns its terminal
/// result (terminal counters are the caller's job, quarantine/session
/// counters are bumped here where the decisions happen).
fn execute(
    inner: &ServiceInner,
    job: &JobShared,
    request: SolveRequest,
    lease: &DeviceLease<AnyDevice>,
    queue_wait: Duration,
) -> JobResult {
    let spec = inner.specs[lease.slot()].clone();
    if request.checked {
        return execute_checked(inner, job, &request, &spec, queue_wait);
    }
    let setup_start = Instant::now();
    // The key derivation discretises the problem, which panics on
    // singular input — isolate it like any other job panic.
    let key = match catch_unwind(AssertUnwindSafe(|| {
        SessionKey::of(&request, &spec, lease.slot())
    })) {
        Ok(key) => key,
        Err(payload) => {
            inner.stats.bump(&inner.stats.panicked);
            return JobResult::Failed(JobError::Panicked(panic_message(payload)));
        }
    };
    let (mut session, warm) = match inner.cache.checkout(&key) {
        Some(session) => {
            inner.stats.bump(&inner.stats.warm_hits);
            (session, true)
        }
        None => match Session::build(&key, &request, inner.order, lease) {
            Ok(session) => {
                inner.stats.bump(&inner.stats.cold_builds);
                (session, false)
            }
            Err(JobError::Panicked(msg)) => {
                // The stillborn session is quarantined: nothing of it
                // ever reaches the cache.
                inner.stats.bump(&inner.stats.panicked);
                inner.stats.bump(&inner.stats.quarantined);
                return JobResult::Failed(JobError::Panicked(msg));
            }
            Err(e) => return JobResult::Failed(e),
        },
    };
    let setup = setup_start.elapsed();
    let solve_start = Instant::now();
    match session.run(&request, job.cancel.clone()) {
        Ok(outcome) => {
            let solve = solve_start.elapsed();
            if inner.cache.checkin(key, session) {
                inner.stats.bump(&inner.stats.evicted);
            }
            if outcome.cancelled {
                JobResult::Cancelled
            } else {
                JobResult::Done(done(inner, outcome, queue_wait, setup, solve, warm, spec))
            }
        }
        Err(JobError::Panicked(msg)) => {
            // `session` is dropped here instead of checked in: the
            // quarantine that keeps one tenant's panic from poisoning
            // the next tenant's solve.
            inner.stats.bump(&inner.stats.panicked);
            inner.stats.bump(&inner.stats.quarantined);
            JobResult::Failed(JobError::Panicked(msg))
        }
        Err(e) => {
            // A clean setup refusal (e.g. malformed RHS override)
            // leaves the session untouched and reusable.
            if inner.cache.checkin(key, session) {
                inner.stats.bump(&inner.stats.evicted);
            }
            JobResult::Failed(e)
        }
    }
}

/// Run a checked job under the full correctness harness: sanitized
/// kernels and verified communicators, always cold (the harness owns
/// its world). Any finding fails the job.
fn execute_checked(
    inner: &ServiceInner,
    job: &JobShared,
    request: &SolveRequest,
    spec: &str,
    queue_wait: Duration,
) -> JobResult {
    let ranks = request.ranks();
    let config = CheckConfig {
        order: inner.order,
        ..CheckConfig::default()
    };
    let params = SolveParams {
        tol: request.tol,
        max_iters: request.max_iters,
        record_history: false,
        overlap_halo: request.opts.overlap_halo,
        overlap_reduce: request.opts.overlap_reduce,
        cancel: Some(job.cancel.clone()),
        ..SolveParams::default()
    };
    let setup_start = Instant::now();
    let ran = try_run_ranks_checked::<f64, _, _>(ranks, config, |comm| {
        let dev = Checked::new(
            AnyDevice::from_spec(spec, Recorder::disabled())
                .expect("device spec validated at service start"),
        );
        let decomp = Decomp::new(request.decomp);
        let mut solver = PoissonSolver::try_new(request.problem.clone(), decomp, dev, comm)?;
        match &request.rhs {
            Some(global) => {
                let local = scatter(solver.grid(), global)?;
                solver.resolve_with_rhs(&local, request.kind, &request.opts, &params)
            }
            None => Ok(solver.solve(request.kind, &request.opts, &params)),
        }
    });
    let solve = setup_start.elapsed();
    match ran {
        Ok(rank_results) => {
            let mut outcome = None;
            let mut setup_err = None;
            for r in rank_results {
                match r {
                    Ok(o) => outcome = outcome.or(Some(o)),
                    Err(e) => setup_err = Some(e),
                }
            }
            if let Some(e) = setup_err {
                return JobResult::Failed(JobError::Setup(e));
            }
            let outcome = outcome.expect("checked world has at least one rank");
            if outcome.cancelled {
                JobResult::Cancelled
            } else {
                JobResult::Done(done(
                    inner,
                    outcome,
                    queue_wait,
                    Duration::ZERO,
                    solve,
                    false,
                    spec.to_string(),
                ))
            }
        }
        Err(failure) => {
            if failure.panics.is_empty() {
                JobResult::Failed(JobError::Check(format!("{failure}")))
            } else {
                inner.stats.bump(&inner.stats.panicked);
                let msgs = failure.panics.into_iter().map(|(_, m)| m).collect();
                JobResult::Failed(JobError::Panicked(primary_panic(msgs)))
            }
        }
    }
}

fn done(
    inner: &ServiceInner,
    outcome: SolveOutcome,
    queue_wait: Duration,
    setup: Duration,
    solve: Duration,
    warm: bool,
    device: String,
) -> JobOutput {
    let metrics = JobMetrics {
        queue_wait,
        setup,
        solve,
        iterations: outcome.iterations,
        warm,
        device,
        completion_seq: inner.stats.bump(&inner.stats.completion_seq),
    };
    JobOutput { outcome, metrics }
}
