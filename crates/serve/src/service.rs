//! The multi-tenant solve service: admission, workers, session cache.
//!
//! Submitting returns an awaitable [`JobHandle`]; a fixed worker pool
//! drains the priority queue, leasing a device per job and reusing warm
//! sessions when a compatible one is cached. Panics are isolated per
//! job: the offending session is quarantined and the service keeps
//! serving.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use accel::{AnyDevice, DeviceLease, DevicePool, Recorder};
use blockgrid::Decomp;
use check::{try_run_ranks_checked, CheckConfig, Checked};
use comm::ReduceOrder;
use krylov::{CancelToken, SolveOutcome, SolveParams};
use poisson::PoissonSolver;

use crate::job::{JobError, JobHandle, JobMetrics, JobOutput, JobResult, JobShared, SubmitError};
use crate::metrics::{ServiceStats, StatsInner};
use crate::request::SolveRequest;
use crate::scheduler::Scheduler;
use crate::session::{panic_message, primary_panic, scatter, Session, SessionKey};
use crate::sync;

/// Why [`SolveService::try_start`] refused to bring the service up — a
/// deployment misconfiguration, never a per-job failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StartError {
    /// `workers` was zero: nothing would ever drain the queue.
    NoWorkers,
    /// `queue_capacity` was zero: nothing could ever be admitted.
    NoQueue,
    /// A device spec failed to parse or construct.
    InvalidDevice {
        /// The offending spec string.
        spec: String,
        /// Why the device could not be built from it.
        reason: String,
    },
    /// The OS refused to spawn a worker thread.
    Spawn(String),
}

impl std::fmt::Display for StartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoWorkers => write!(f, "service needs at least one worker"),
            Self::NoQueue => write!(f, "service needs a non-empty queue"),
            Self::InvalidDevice { spec, reason } => {
                write!(f, "invalid device spec {spec:?}: {reason}")
            }
            Self::Spawn(e) => write!(f, "failed to spawn worker thread: {e}"),
        }
    }
}

impl std::error::Error for StartError {}

/// Static configuration of a [`SolveService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads draining the queue concurrently.
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are rejected with
    /// [`SubmitError::Overloaded`]. Admission is class-aware: Normal
    /// and Low each forfeit a `capacity / 8` reserve tranche, so a
    /// flood of low-priority work cannot fill the queue and push
    /// high-priority submissions into `Overloaded`.
    pub queue_capacity: usize,
    /// Device specs backing the lease pool (one lease per entry, e.g.
    /// `"serial"`, `"threads:4"`, `"simgpu"`). Empty means one
    /// `"serial"` device per worker.
    pub devices: Vec<String>,
    /// Warm sessions kept alive across jobs; `0` disables reuse (every
    /// job builds cold).
    pub session_capacity: usize,
    /// Most lanes one worker may coalesce into a single batched
    /// multi-RHS solve. After popping a job, the worker pulls up to
    /// `batch_window - 1` still-queued jobs with the same session
    /// fingerprint (identical [`SessionKey`] plus solve envelope) into
    /// the same solve, amortising stencil sweeps, halo exchanges and
    /// allreduce latency across all of them; each lane keeps its own
    /// cancel token, deadline and metrics, and its result is
    /// bitwise-identical to a solo run. `0` or `1` disables coalescing.
    /// Riding lanes never displace higher classes from the worker
    /// itself — the queue still pops strictly by class.
    pub batch_window: usize,
    /// Reduction order for multi-rank worlds spawned by the service.
    pub order: ReduceOrder,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            devices: Vec::new(),
            session_capacity: 8,
            batch_window: 1,
            order: ReduceOrder::RankOrder,
        }
    }
}

/// LRU-ish warm-session cache: checkout removes, checkin appends and
/// evicts the oldest entry past capacity.
struct SessionCache {
    entries: Mutex<Vec<(SessionKey, Session)>>,
    capacity: usize,
}

impl SessionCache {
    fn new(capacity: usize) -> Self {
        Self {
            entries: Mutex::new(Vec::new()),
            capacity,
        }
    }

    fn checkout(&self, key: &SessionKey) -> Option<Session> {
        let mut entries = sync::lock(&self.entries);
        let pos = entries.iter().position(|(k, _)| k == key)?;
        Some(entries.remove(pos).1)
    }

    /// Return a healthy session; reports whether an old session was
    /// evicted to make room. With capacity `0` the session is simply
    /// dropped (reuse disabled).
    fn checkin(&self, key: SessionKey, session: Session) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let mut entries = sync::lock(&self.entries);
        entries.push((key, session));
        if entries.len() > self.capacity {
            entries.remove(0);
            true
        } else {
            false
        }
    }

    fn len(&self) -> usize {
        sync::lock(&self.entries).len()
    }
}

struct ServiceInner {
    queue: Scheduler,
    cache: SessionCache,
    pool: DevicePool<AnyDevice>,
    specs: Vec<String>,
    stats: StatsInner,
    order: ReduceOrder,
    batch_window: usize,
    next_id: AtomicU64,
}

/// An in-process solve service. Construct with
/// [`SolveService::start`], submit with [`SolveService::submit`],
/// observe with [`SolveService::stats`]. Dropping the service (or
/// calling [`SolveService::shutdown`]) closes admission, sheds
/// everything still queued and joins the workers.
pub struct SolveService {
    inner: Arc<ServiceInner>,
    workers: Vec<JoinHandle<()>>,
}

impl SolveService {
    /// Start the worker pool.
    ///
    /// Panics on an invalid device spec or a zero-sized pool — a
    /// service that cannot run anything is a deployment error, not a
    /// per-job failure. [`SolveService::try_start`] is the
    /// non-panicking form for callers that surface deployment errors
    /// themselves.
    pub fn start(cfg: ServiceConfig) -> Self {
        // LINT: panic-ok(documented panicking facade over try_start; a
        // service that cannot start is a deployment error)
        Self::try_start(cfg).unwrap_or_else(|e| panic!("cannot start solve service: {e}"))
    }

    /// Start the worker pool, reporting a deployment error instead of
    /// panicking.
    pub fn try_start(cfg: ServiceConfig) -> Result<Self, StartError> {
        if cfg.workers < 1 {
            return Err(StartError::NoWorkers);
        }
        if cfg.queue_capacity < 1 {
            return Err(StartError::NoQueue);
        }
        let specs = if cfg.devices.is_empty() {
            vec!["serial".to_string(); cfg.workers]
        } else {
            cfg.devices.clone()
        };
        let mut devices = Vec::with_capacity(specs.len());
        for spec in &specs {
            match AnyDevice::from_spec(spec, Recorder::disabled()) {
                Ok(dev) => devices.push(dev),
                Err(e) => {
                    return Err(StartError::InvalidDevice {
                        spec: spec.clone(),
                        reason: e.to_string(),
                    })
                }
            }
        }
        let inner = Arc::new(ServiceInner {
            queue: Scheduler::new(cfg.queue_capacity),
            cache: SessionCache::new(cfg.session_capacity),
            pool: DevicePool::new(devices),
            specs,
            stats: StatsInner::default(),
            order: cfg.order,
            batch_window: cfg.batch_window.max(1),
            next_id: AtomicU64::new(0),
        });
        let mut workers = Vec::with_capacity(cfg.workers);
        for i in 0..cfg.workers {
            let worker_inner = inner.clone();
            match std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&worker_inner))
            {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    // Unwind the partial pool: close the queue so the
                    // already-spawned workers exit, then join them.
                    inner.queue.close();
                    for handle in workers {
                        let _ = handle.join();
                    }
                    return Err(StartError::Spawn(e.to_string()));
                }
            }
        }
        Ok(Self { inner, workers })
    }

    /// Submit one request. Never blocks: a full queue answers
    /// `Err(Overloaded)` immediately (admission control), leaving the
    /// caller to shed or retry.
    pub fn submit(&self, request: SolveRequest) -> Result<JobHandle, SubmitError> {
        let id = self.inner.next_id.fetch_add(1, Ordering::SeqCst) + 1;
        let job = Arc::new(JobShared::new(id, request));
        match self.inner.queue.push(job.clone()) {
            Ok(()) => {
                self.inner.stats.bump(&self.inner.stats.submitted);
                Ok(JobHandle { shared: job })
            }
            Err(e) => {
                self.inner.stats.bump(&self.inner.stats.rejected);
                Err(e)
            }
        }
    }

    /// Point-in-time counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        let s = &self.inner.stats;
        let load = |c: &AtomicU64| c.load(Ordering::SeqCst);
        ServiceStats {
            submitted: load(&s.submitted),
            rejected: load(&s.rejected),
            completed: load(&s.completed),
            failed: load(&s.failed),
            shed: load(&s.shed),
            cancelled: load(&s.cancelled),
            panicked: load(&s.panicked),
            quarantined: load(&s.quarantined),
            warm_hits: load(&s.warm_hits),
            cold_builds: load(&s.cold_builds),
            evicted: load(&s.evicted),
            queued: self.inner.queue.len(),
            cached_sessions: self.inner.cache.len(),
        }
    }

    /// Close admission, shed every queued job, finish in-flight work
    /// and join the workers. Idempotent; also runs on drop.
    pub fn shutdown(mut self) -> ServiceStats {
        self.shutdown_impl();
        self.stats()
    }

    fn shutdown_impl(&mut self) {
        for job in self.inner.queue.close() {
            job.finish(JobResult::Shed);
            self.inner.stats.bump(&self.inner.stats.shed);
        }
        for handle in self.workers.drain(..) {
            // LINT: panic-ok(worker_loop catches every job panic; join
            // only fails on an analyzer-visible bug in the loop itself)
            handle.join().expect("workers never panic at top level");
        }
    }
}

impl Drop for SolveService {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// One member of a coalesced batch: the job, its claimed request, and
/// its queue wait measured when it left the queue.
struct Lane {
    job: Arc<JobShared>,
    request: SolveRequest,
    queue_wait: Duration,
}

fn worker_loop(inner: &ServiceInner) {
    while let Some(job) = inner.queue.pop() {
        let queue_wait = job.submitted.elapsed();
        let Some(request) = job.take_request() else {
            continue;
        };
        if job.cancel.is_cancelled() {
            inner.stats.bump(&inner.stats.cancelled);
            job.finish(JobResult::Cancelled);
            continue;
        }
        if job.deadline_expired(Instant::now()) {
            inner.stats.bump(&inner.stats.shed);
            job.finish(JobResult::Shed);
            continue;
        }
        job.set_running();
        let lease = inner.pool.acquire();
        let primary = Lane {
            job,
            request,
            queue_wait,
        };
        let (lanes, key) = form_batch(inner, primary, &lease);
        let results = match key {
            Some(key) if lanes.len() > 1 => execute_batch(inner, &lanes, key, &lease),
            _ => {
                // LINT: panic-ok(form_batch always returns at least the
                // primary job as lane 0)
                let lane = &lanes[0];
                vec![execute(
                    inner,
                    &lane.job,
                    &lane.request,
                    &lease,
                    lane.queue_wait,
                )]
            }
        };
        // Return the slot before publishing the results: a submitter
        // reacting to a completion must find the device (and its
        // per-slot warm session) available again, not still leased.
        drop(lease);
        for (lane, result) in lanes.iter().zip(results) {
            match &result {
                JobResult::Done(_) => inner.stats.bump(&inner.stats.completed),
                JobResult::Failed(_) => inner.stats.bump(&inner.stats.failed),
                JobResult::Cancelled => inner.stats.bump(&inner.stats.cancelled),
                JobResult::Shed => inner.stats.bump(&inner.stats.shed),
            };
            lane.job.finish(result);
        }
    }
}

/// Whether a still-queued job can ride `key`'s batched solve: same
/// session fingerprint (so the one constructed solver fits every lane)
/// plus the same solve envelope (`tol`, `max_iters` — the batched
/// driver runs one stopping rule for all lanes), and not a checked job
/// (the harness owns its world and always runs alone).
///
/// The key derivation discretises the candidate's problem, which panics
/// on singular input; a panicking candidate simply doesn't match and is
/// left queued to fail on its own solo pop.
fn lane_compatible(
    key: &SessionKey,
    primary: &SolveRequest,
    spec: &str,
    slot: usize,
    req: &SolveRequest,
) -> bool {
    !req.checked
        && req.tol.to_bits() == primary.tol.to_bits()
        && req.max_iters == primary.max_iters
        && catch_unwind(AssertUnwindSafe(|| SessionKey::of(req, spec, slot) == *key))
            .unwrap_or(false)
}

/// Coalesce still-queued jobs compatible with the popped `primary`
/// into one batch, bounded by the configured window. Lanes are claimed
/// in pop order; a claimed lane whose cancel fired or deadline expired
/// while queued is finished right here (Cancelled/Shed) and never
/// occupies a lane. Returns the lanes (primary first) and the session
/// key they share — `None` when batching is off, the job is checked,
/// or the key derivation panicked (the solo path re-derives and
/// reports that panic properly).
fn form_batch(
    inner: &ServiceInner,
    primary: Lane,
    lease: &DeviceLease<AnyDevice>,
) -> (Vec<Lane>, Option<SessionKey>) {
    if inner.batch_window <= 1 || primary.request.checked {
        return (vec![primary], None);
    }
    // LINT: panic-ok(the pool is built with exactly one spec per slot)
    let spec = inner.specs[lease.slot()].clone();
    let slot = lease.slot();
    let Ok(key) = catch_unwind(AssertUnwindSafe(|| {
        SessionKey::of(&primary.request, &spec, slot)
    })) else {
        return (vec![primary], None);
    };
    let mates = inner
        .queue
        .take_batchmates(inner.batch_window - 1, |candidate| {
            candidate
                .peek_request(|req| lane_compatible(&key, &primary.request, &spec, slot, req))
                .unwrap_or(false)
        });
    let mut lanes = vec![primary];
    let now = Instant::now();
    for mate in mates {
        let queue_wait = mate.submitted.elapsed();
        let Some(request) = mate.take_request() else {
            continue;
        };
        if mate.cancel.is_cancelled() {
            inner.stats.bump(&inner.stats.cancelled);
            mate.finish(JobResult::Cancelled);
            continue;
        }
        if mate.deadline_expired(now) {
            inner.stats.bump(&inner.stats.shed);
            mate.finish(JobResult::Shed);
            continue;
        }
        mate.set_running();
        lanes.push(Lane {
            job: mate,
            request,
            queue_wait,
        });
    }
    (lanes, Some(key))
}

/// Execute a formed batch as one multi-RHS solve on the leased device,
/// returning one terminal result per lane (in lane order). Session
/// acquisition mirrors the solo path: one warm checkout or one cold
/// build serves every lane; a panic anywhere condemns the whole batch
/// and quarantines the session.
fn execute_batch(
    inner: &ServiceInner,
    lanes: &[Lane],
    key: SessionKey,
    lease: &DeviceLease<AnyDevice>,
) -> Vec<JobResult> {
    // LINT: panic-ok(the pool is built with exactly one spec per slot)
    let spec = inner.specs[lease.slot()].clone();
    let setup_start = Instant::now();
    let (mut session, warm) = match inner.cache.checkout(&key) {
        Some(session) => {
            inner.stats.bump(&inner.stats.warm_hits);
            (session, true)
        }
        // LINT: panic-ok(execute_batch is only called with >= 2 lanes)
        None => match Session::build(&key, &lanes[0].request, inner.order, lease) {
            Ok(session) => {
                inner.stats.bump(&inner.stats.cold_builds);
                (session, false)
            }
            Err(JobError::Panicked(msg)) => {
                inner.stats.bump(&inner.stats.quarantined);
                return lanes
                    .iter()
                    .map(|_| {
                        inner.stats.bump(&inner.stats.panicked);
                        JobResult::Failed(JobError::Panicked(msg.clone()))
                    })
                    .collect();
            }
            Err(e) => return lanes.iter().map(|_| JobResult::Failed(e.clone())).collect(),
        },
    };
    let setup = setup_start.elapsed();
    let reqs: Vec<&SolveRequest> = lanes.iter().map(|l| &l.request).collect();
    let cancels: Vec<Option<CancelToken>> =
        lanes.iter().map(|l| Some(l.job.cancel.clone())).collect();
    let solve_start = Instant::now();
    match session.run_batch(&reqs, &cancels) {
        Ok(per_lane) => {
            let solve = solve_start.elapsed();
            if inner.cache.checkin(key, session) {
                inner.stats.bump(&inner.stats.evicted);
            }
            lanes
                .iter()
                .zip(per_lane)
                .map(|(lane, verdict)| match verdict {
                    Ok(outcome) if outcome.cancelled => JobResult::Cancelled,
                    Ok(outcome) => JobResult::Done(done(
                        inner,
                        outcome,
                        lane.queue_wait,
                        setup,
                        solve,
                        warm,
                        lanes.len(),
                        spec.clone(),
                    )),
                    Err(e) => JobResult::Failed(JobError::Setup(e)),
                })
                .collect()
        }
        Err(JobError::Panicked(msg)) => {
            // The session is dropped instead of checked in: one
            // tenant's panic quarantines the shared world for the
            // whole batch.
            inner.stats.bump(&inner.stats.quarantined);
            lanes
                .iter()
                .map(|_| {
                    inner.stats.bump(&inner.stats.panicked);
                    JobResult::Failed(JobError::Panicked(msg.clone()))
                })
                .collect()
        }
        Err(e) => {
            if inner.cache.checkin(key, session) {
                inner.stats.bump(&inner.stats.evicted);
            }
            lanes.iter().map(|_| JobResult::Failed(e.clone())).collect()
        }
    }
}

/// Execute one admitted job on the leased device; returns its terminal
/// result (terminal counters are the caller's job, quarantine/session
/// counters are bumped here where the decisions happen).
fn execute(
    inner: &ServiceInner,
    job: &JobShared,
    request: &SolveRequest,
    lease: &DeviceLease<AnyDevice>,
    queue_wait: Duration,
) -> JobResult {
    // LINT: panic-ok(the pool is built with exactly one spec per slot)
    let spec = inner.specs[lease.slot()].clone();
    if request.checked {
        return execute_checked(inner, job, request, &spec, queue_wait);
    }
    let setup_start = Instant::now();
    // The key derivation discretises the problem, which panics on
    // singular input — isolate it like any other job panic.
    let key = match catch_unwind(AssertUnwindSafe(|| {
        SessionKey::of(request, &spec, lease.slot())
    })) {
        Ok(key) => key,
        Err(payload) => {
            inner.stats.bump(&inner.stats.panicked);
            return JobResult::Failed(JobError::Panicked(panic_message(payload)));
        }
    };
    let (mut session, warm) = match inner.cache.checkout(&key) {
        Some(session) => {
            inner.stats.bump(&inner.stats.warm_hits);
            (session, true)
        }
        None => match Session::build(&key, request, inner.order, lease) {
            Ok(session) => {
                inner.stats.bump(&inner.stats.cold_builds);
                (session, false)
            }
            Err(JobError::Panicked(msg)) => {
                // The stillborn session is quarantined: nothing of it
                // ever reaches the cache.
                inner.stats.bump(&inner.stats.panicked);
                inner.stats.bump(&inner.stats.quarantined);
                return JobResult::Failed(JobError::Panicked(msg));
            }
            Err(e) => return JobResult::Failed(e),
        },
    };
    let setup = setup_start.elapsed();
    let solve_start = Instant::now();
    match session.run(request, job.cancel.clone()) {
        Ok(outcome) => {
            let solve = solve_start.elapsed();
            if inner.cache.checkin(key, session) {
                inner.stats.bump(&inner.stats.evicted);
            }
            if outcome.cancelled {
                JobResult::Cancelled
            } else {
                JobResult::Done(done(
                    inner, outcome, queue_wait, setup, solve, warm, 1, spec,
                ))
            }
        }
        Err(JobError::Panicked(msg)) => {
            // `session` is dropped here instead of checked in: the
            // quarantine that keeps one tenant's panic from poisoning
            // the next tenant's solve.
            inner.stats.bump(&inner.stats.panicked);
            inner.stats.bump(&inner.stats.quarantined);
            JobResult::Failed(JobError::Panicked(msg))
        }
        Err(e) => {
            // A clean setup refusal (e.g. malformed RHS override)
            // leaves the session untouched and reusable.
            if inner.cache.checkin(key, session) {
                inner.stats.bump(&inner.stats.evicted);
            }
            JobResult::Failed(e)
        }
    }
}

/// Run a checked job under the full correctness harness: sanitized
/// kernels and verified communicators, always cold (the harness owns
/// its world). Any finding fails the job.
fn execute_checked(
    inner: &ServiceInner,
    job: &JobShared,
    request: &SolveRequest,
    spec: &str,
    queue_wait: Duration,
) -> JobResult {
    let ranks = request.ranks();
    let config = CheckConfig {
        order: inner.order,
        ..CheckConfig::default()
    };
    let params = SolveParams {
        tol: request.tol,
        max_iters: request.max_iters,
        record_history: false,
        overlap_halo: request.opts.overlap_halo,
        overlap_reduce: request.opts.overlap_reduce,
        cancel: Some(job.cancel.clone()),
        ..SolveParams::default()
    };
    let setup_start = Instant::now();
    let ran = try_run_ranks_checked::<f64, _, _>(ranks, config, |comm| {
        let dev = Checked::new(
            AnyDevice::from_spec(spec, Recorder::disabled())
                // LINT: panic-ok(try_start built a device from this exact spec)
                .expect("device spec validated at service start"),
        );
        let decomp = Decomp::new(request.decomp);
        let mut solver = PoissonSolver::try_new(request.problem.clone(), decomp, dev, comm)?;
        match &request.rhs {
            Some(global) => {
                let local = scatter(solver.grid(), global)?;
                solver.resolve_with_rhs(&local, request.kind, &request.opts, &params)
            }
            None => Ok(solver.solve(request.kind, &request.opts, &params)),
        }
    });
    let solve = setup_start.elapsed();
    match ran {
        Ok(rank_results) => {
            let mut outcome = None;
            let mut setup_err = None;
            for r in rank_results {
                match r {
                    Ok(o) => outcome = outcome.or(Some(o)),
                    Err(e) => setup_err = Some(e),
                }
            }
            if let Some(e) = setup_err {
                return JobResult::Failed(JobError::Setup(e));
            }
            // LINT: panic-ok(ranks() is >= 1, and the error branch above
            // returned already, so at least one rank produced an outcome)
            let outcome = outcome.expect("checked world has at least one rank");
            if outcome.cancelled {
                JobResult::Cancelled
            } else {
                JobResult::Done(done(
                    inner,
                    outcome,
                    queue_wait,
                    Duration::ZERO,
                    solve,
                    false,
                    1,
                    spec.to_string(),
                ))
            }
        }
        Err(failure) => {
            if failure.panics.is_empty() {
                JobResult::Failed(JobError::Check(format!("{failure}")))
            } else {
                inner.stats.bump(&inner.stats.panicked);
                let msgs = failure.panics.into_iter().map(|(_, m)| m).collect();
                JobResult::Failed(JobError::Panicked(primary_panic(msgs)))
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn done(
    inner: &ServiceInner,
    outcome: SolveOutcome,
    queue_wait: Duration,
    setup: Duration,
    solve: Duration,
    warm: bool,
    batch_size: usize,
    device: String,
) -> JobOutput {
    let metrics = JobMetrics {
        queue_wait,
        setup,
        solve,
        iterations: outcome.iterations,
        warm,
        batch_size,
        device,
        completion_seq: inner.stats.bump(&inner.stats.completion_seq),
    };
    JobOutput { outcome, metrics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Priority;
    use krylov::SolverKind;
    use poisson::unit_cube_dirichlet;
    use proptest::prelude::*;

    fn job_with(id: u64, n: usize, kind: SolverKind, tol: f64, class: usize) -> Arc<JobShared> {
        let mut req = SolveRequest::new(unit_cube_dirichlet(n), kind);
        req.tol = tol;
        req.priority = match class {
            0 => Priority::High,
            1 => Priority::Normal,
            _ => Priority::Low,
        };
        Arc::new(JobShared::new(id, req))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        // Batch formation never merges jobs with different session
        // fingerprints (different discretisation, solver kind, or solve
        // envelope), whatever mix is queued — and while window remains
        // it never strands a compatible job in the queue either.
        #[test]
        fn formation_coalesces_compatible_jobs_and_only_those(
            mix in prop::collection::vec((0usize..2, 0usize..2, 0usize..2, 0usize..3), 1..24),
            window in 1usize..6,
        ) {
            let q = Scheduler::new(256);
            for (i, &(nsel, ksel, tsel, class)) in mix.iter().enumerate() {
                let n = [5, 7][nsel];
                let kind = [SolverKind::BiCgs, SolverKind::BiCgsGCi][ksel];
                let tol = [1e-8, 1e-6][tsel];
                q.push(job_with(i as u64, n, kind, tol, class)).unwrap();
            }
            let primary = q.pop().expect("queue is non-empty");
            let preq = primary.take_request().expect("queued jobs hold their request");
            let key = SessionKey::of(&preq, "serial", 0);
            let taken = q.take_batchmates(window, |cand| {
                cand.peek_request(|r| lane_compatible(&key, &preq, "serial", 0, r))
                    .unwrap_or(false)
            });
            prop_assert!(taken.len() <= window);
            for mate in &taken {
                let same_fingerprint = mate
                    .peek_request(|r| {
                        SessionKey::of(r, "serial", 0) == key
                            && r.tol.to_bits() == preq.tol.to_bits()
                            && r.max_iters == preq.max_iters
                            && !r.checked
                    })
                    .expect("mates still hold their request until claimed");
                prop_assert!(same_fingerprint, "incompatible job {} was coalesced", mate.id);
            }
            if taken.len() < window {
                for leftover in q.close() {
                    let compatible = leftover
                        .peek_request(|r| lane_compatible(&key, &preq, "serial", 0, r))
                        .unwrap_or(false);
                    prop_assert!(!compatible, "compatible job {} was left queued", leftover.id);
                }
            }
        }
    }
}
