//! Poison-recovering lock primitives for the service's shared state.
//!
//! Every mutex in this crate guards state that is consistent at each
//! release point: the scheduler mutates `classes`/`len` inside one
//! critical section, and the job state machine performs single
//! assignments. Worker panics are caught by the per-job `catch_unwind`
//! isolation before they can unwind through these guards, so a poisoned
//! flag can only come from a panicking caller (e.g. a failing test
//! assertion) that held a lock around otherwise-complete state.
//! Recovering the guard instead of `.unwrap()`ing keeps one tenant's
//! panic from wedging every other tenant's submit/wait path, matching
//! the crate's panic-isolation contract.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Lock `m`, recovering the guard if a previous holder panicked.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Wait on `cv`, recovering the guard if a holder panicked mid-wait.
pub(crate) fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}
