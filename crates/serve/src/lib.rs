//! # serve — a multi-tenant solve service over the paper's solver
//!
//! The paper's measurement loop constructs one solver, runs it, and
//! exits. A *service* amortises that setup across tenants: requests
//! arrive concurrently, queue under admission control, and run on a
//! fixed worker/device pool that reuses warm sessions whenever a
//! request matches a previously constructed solver (same
//! discretisation, decomposition, device lease and solver
//! configuration — the hot path skips assembly, normalisation and
//! offload and re-runs only the solve against a fresh right-hand side).
//!
//! The pieces:
//!
//! - [`SolveService`] — submit [`SolveRequest`]s, get awaitable
//!   [`JobHandle`]s, watch [`ServiceStats`].
//! - scheduling — a bounded three-class priority queue; a full queue
//!   *rejects* ([`SubmitError::Overloaded`]) rather than blocking, with
//!   per-class headroom so a low-priority flood cannot crowd
//!   high-priority work out at admission, and queued jobs past their
//!   deadline are shed unstarted.
//! - panic isolation — every job runs under `catch_unwind`; a panic
//!   becomes [`JobError::Panicked`] with the payload preserved and the
//!   session it touched is quarantined, never returned to the pool.
//! - checked mode — a request with `checked: true` runs cold under the
//!   full correctness harness (`check::Checked` kernels +
//!   `check::VerifiedComm`); any finding fails that job only.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod job;
mod metrics;
mod request;
mod scheduler;
mod service;
mod session;
mod sync;

pub use job::{JobError, JobHandle, JobMetrics, JobOutput, JobResult, JobStatus, SubmitError};
pub use metrics::ServiceStats;
pub use request::{Priority, SolveRequest};
pub use service::{ServiceConfig, SolveService, StartError};
