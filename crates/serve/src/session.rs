//! Warm sessions: constructed solvers kept alive across jobs.
//!
//! A session is one fully set-up [`PoissonSolver`] world — single-rank
//! ([`SelfComm`]) or a persistent ranks-as-threads world
//! ([`ThreadComm`]) — cached under a [`SessionKey`]. A warm hit skips
//! the paper's entire setup phase (grid, operator, workspace and RHS
//! assembly, normalisation, offload) and re-runs only `solve`, swapping
//! in a fresh RHS when the job brings one.
//!
//! Panic isolation: every rank closure runs under `catch_unwind`; on a
//! multi-rank panic the world is poisoned so blocked peers unwind
//! instead of deadlocking, and the caller quarantines the session.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use accel::{AnyDevice, Recorder};
use blockgrid::{BlockGrid, Decomp};
use comm::{Poisoner, ReduceOrder, SelfComm, ThreadComm};
use krylov::{CancelToken, SolveOutcome, SolveParams, SolverKind, SolverOptions};
use poisson::assemble::local_rhs;
use poisson::{PoissonProblem, PoissonSolver, SetupError};

use crate::job::JobError;
use crate::request::SolveRequest;

/// What a cached session is keyed by: the problem *discretisation* (not
/// its closures), the decomposition, the device spec *and lease slot*,
/// and the solver configuration. Two requests with equal keys can share
/// a constructed solver; the RHS itself is per-job state (see
/// [`Session::run`]).
///
/// The slot is part of the key because a session embeds its own device
/// handles (a clone of the leased device single-rank, per-rank devices
/// built from the spec multi-rank): keying the cache per slot means a
/// session only ever runs under the lease it was built on, so the
/// `DevicePool` bounds *device* concurrency, not just job concurrency —
/// two workers holding different slots can never drive the same
/// session's devices at once.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SessionKey {
    n: [usize; 3],
    h: [u64; 3],
    origin: [u64; 3],
    bc: [[blockgrid::BcKind; 2]; 3],
    decomp: [usize; 3],
    device: String,
    slot: usize,
    kind: SolverKind,
    opts: ([u64; 4], [usize; 2], [bool; 2]),
}

impl SessionKey {
    /// Key of a request placed on `device` held under lease `slot`.
    /// Calls `problem.discretize()`, which panics on singular input —
    /// callers run this under the job's panic isolation.
    pub(crate) fn of(req: &SolveRequest, device: &str, slot: usize) -> Self {
        let g = req.problem.discretize();
        let o = &req.opts;
        Self {
            n: g.n,
            h: g.h.map(f64::to_bits),
            origin: g.origin.map(f64::to_bits),
            bc: g.bc,
            decomp: req.decomp,
            device: device.to_string(),
            slot,
            kind: req.kind,
            opts: (
                [
                    o.inner_tol_g.to_bits(),
                    o.inner_tol_bj.to_bits(),
                    o.eig_max_shrink.to_bits(),
                    o.eig_min_factor.to_bits(),
                ],
                [o.inner_max_iters, o.ci_iterations],
                [o.overlap_halo, o.overlap_reduce],
            ),
        }
    }

    /// The device spec this key pins.
    pub(crate) fn device(&self) -> &str {
        &self.device
    }
}

/// Identity of the closures a right-hand side was assembled from
/// (pointer identity — resubmitting the same `PoissonProblem` value
/// matches, a problem rebuilt from different closures does not).
///
/// Holds *clones* of the five `Arc`s, not bare addresses: the clones
/// keep the allocations alive for as long as the session remembers
/// them, so a later tenant's closures can never be allocated at the
/// recycled addresses and falsely match. Pointer comparison is only
/// sound while the pointee is pinned by a live reference.
#[derive(Clone)]
struct RhsSource([poisson::SpaceFn; 5]);

impl RhsSource {
    fn of(p: &PoissonProblem) -> Self {
        let [dx0, dx1, dx2] = p.neumann_dx.clone();
        Self([p.rhs.clone(), p.dirichlet.clone(), dx0, dx1, dx2])
    }

    /// Whether `p`'s closures are the very allocations this source
    /// holds (thin-pointer comparison, so vtable identity is moot).
    fn matches(&self, p: &PoissonProblem) -> bool {
        let same = |a: &poisson::SpaceFn, b: &poisson::SpaceFn| {
            std::ptr::eq(Arc::as_ptr(a) as *const (), Arc::as_ptr(b) as *const ())
        };
        let [rhs, dirichlet, dx0, dx1, dx2] = &self.0;
        same(rhs, &p.rhs)
            && same(dirichlet, &p.dirichlet)
            && [dx0, dx1, dx2]
                .into_iter()
                .zip(&p.neumann_dx)
                .all(|(a, b)| same(a, b))
    }
}

enum SessionWorld {
    Single(Box<PoissonSolver<f64, AnyDevice, SelfComm<f64>>>),
    Multi {
        ranks: Vec<PoissonSolver<f64, AnyDevice, ThreadComm<f64>>>,
        poisoner: Poisoner<f64>,
    },
}

/// A constructed solver world, reusable across jobs with equal
/// [`SessionKey`]s.
pub(crate) struct Session {
    world: SessionWorld,
    /// Provenance of the RHS currently offloaded in `b`: the closures
    /// it was assembled from, or `None` after an explicit override.
    b_source: Option<RhsSource>,
    /// Completed solves on this session (diagnostics).
    pub(crate) solves: u64,
}

/// Downcast a panic payload to its message.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Among the per-rank panic payloads, prefer the root cause over the
/// poison cascade every *other* rank unwinds with.
pub(crate) fn primary_panic(msgs: Vec<String>) -> String {
    msgs.iter()
        .find(|m| !m.contains("poisoned"))
        .cloned()
        .unwrap_or_else(|| msgs.first().cloned().unwrap_or_default())
}

/// Scatter a global x-fastest RHS vector to one rank's interior.
pub(crate) fn scatter(grid: &BlockGrid, global: &[f64]) -> Result<Vec<f64>, SetupError> {
    let [nx, ny, nz] = grid.global.n;
    let expected = nx * ny * nz;
    if global.len() != expected {
        return Err(SetupError::RhsSizeMismatch {
            expected,
            got: global.len(),
        });
    }
    let [lx, ly, lz] = grid.local_n;
    let [ox, oy, oz] = grid.offset;
    let mut local = Vec::with_capacity(lx * ly * lz);
    for k in 0..lz {
        for j in 0..ly {
            let row = ox + nx * ((oy + j) + ny * (oz + k));
            // LINT: panic-ok(offset + local_n <= n per axis is a grid
            // invariant, so row + lx <= expected after the size check)
            local.extend_from_slice(&global[row..row + lx]);
        }
    }
    Ok(local)
}

/// How this job's RHS reaches the solver.
#[derive(Clone, Copy)]
enum RhsPlan<'a> {
    /// The offloaded `b` already matches the request; solve directly.
    Keep,
    /// Re-assemble from the request problem's closures, then swap.
    Assemble(&'a PoissonProblem),
    /// Scatter the request's global override, then swap.
    Scatter(&'a [f64]),
}

fn run_one<C: comm::Communicator<f64>>(
    solver: &mut PoissonSolver<f64, AnyDevice, C>,
    plan: RhsPlan<'_>,
    kind: SolverKind,
    opts: &SolverOptions,
    params: &SolveParams,
) -> Result<SolveOutcome, SetupError> {
    match plan {
        RhsPlan::Keep => Ok(solver.solve(kind, opts, params)),
        RhsPlan::Assemble(problem) => {
            let local = local_rhs(problem, solver.grid());
            solver.resolve_with_rhs(&local, kind, opts, params)
        }
        RhsPlan::Scatter(global) => {
            let local = scatter(solver.grid(), global)?;
            solver.resolve_with_rhs(&local, kind, opts, params)
        }
    }
}

/// Run every lane of a coalesced batch through one multi-RHS solve on
/// this rank's solver. Per-lane setup refusals (zero RHS, size
/// mismatch) come back in the lane's slot without poisoning the batch;
/// the verdicts are collective, so every rank returns the same vec.
///
/// Every lane brings its own RHS (a scattered override or a fresh
/// assembly from its problem closures) — the batched path never reuses
/// the session's offloaded `b`, so `b_source` provenance is untouched.
fn run_lanes<C: comm::Communicator<f64>>(
    solver: &mut PoissonSolver<f64, AnyDevice, C>,
    reqs: &[&SolveRequest],
    params: &SolveParams,
    cancels: &[Option<CancelToken>],
) -> Vec<Result<SolveOutcome, SetupError>> {
    // LINT: panic-ok(callers always pass at least one lane request)
    let head = reqs[0];
    let assembled: Vec<Result<Vec<f64>, SetupError>> = reqs
        .iter()
        .map(|req| match &req.rhs {
            Some(global) => scatter(solver.grid(), global),
            None => Ok(local_rhs(&req.problem, solver.grid())),
        })
        .collect();
    // Lanes whose scatter failed stay in the batch as empty slices so
    // lane indexing (and the collective normalisation) stays aligned on
    // every rank; their recorded error wins below. A global-size
    // mismatch is rank-uniform, so this stays collective.
    let rhs_locals: Vec<&[f64]> = assembled
        .iter()
        .map(|r| r.as_deref().unwrap_or(&[]))
        .collect();
    let lanes = solver.solve_batch(&rhs_locals, head.kind, &head.opts, params, cancels);
    lanes
        .into_iter()
        .zip(assembled)
        .map(|(lane, pre)| match pre {
            Err(e) => Err(e),
            Ok(_) => lane.map(|l| l.outcome),
        })
        .collect()
}

impl Session {
    /// Construct the session for `req` cold. The single-rank flavour
    /// runs on a clone of the leased device; multi-rank worlds build
    /// one device per rank from the key's spec. Any panic during
    /// construction is caught (and, multi-rank, the half-built world
    /// poisoned) and reported as [`JobError::Panicked`] — the caller
    /// counts the stillborn session as quarantined.
    pub(crate) fn build(
        key: &SessionKey,
        req: &SolveRequest,
        order: ReduceOrder,
        leased: &AnyDevice,
    ) -> Result<Self, JobError> {
        let decomp = Decomp::new(req.decomp);
        let ranks = decomp.ranks();
        let b_source = Some(RhsSource::of(&req.problem));
        if ranks == 1 {
            let problem = req.problem.clone();
            let dev = leased.clone();
            let built = catch_unwind(AssertUnwindSafe(|| {
                PoissonSolver::try_new(problem, decomp, dev, SelfComm::default())
            }));
            match built {
                Ok(Ok(solver)) => Ok(Self {
                    world: SessionWorld::Single(Box::new(solver)),
                    b_source,
                    solves: 0,
                }),
                Ok(Err(e)) => Err(JobError::Setup(e)),
                Err(p) => Err(JobError::Panicked(panic_message(p))),
            }
        } else {
            let comms = ThreadComm::<f64>::world(ranks, order, vec![Recorder::disabled(); ranks]);
            // LINT: panic-ok(world(ranks, ..) returns exactly ranks >= 2
            // communicators on this branch)
            let poisoner = comms[0].poisoner();
            let spec = key.device().to_string();
            let results: Vec<_> = std::thread::scope(|s| {
                let handles: Vec<_> = comms
                    .into_iter()
                    .map(|comm| {
                        let problem = req.problem.clone();
                        let poi = poisoner.clone();
                        let spec = spec.clone();
                        s.spawn(move || {
                            let r = catch_unwind(AssertUnwindSafe(|| {
                                let dev = AnyDevice::from_spec(&spec, Recorder::disabled())
                                    // LINT: panic-ok(try_start built a device from this exact spec)
                                    .expect("device spec validated at service start");
                                PoissonSolver::try_new(problem, decomp, dev, comm)
                            }));
                            if r.is_err() {
                                // unblock peers stuck in collectives so
                                // they unwind too
                                poi.poison();
                            }
                            r
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    // LINT: panic-ok(rank closures run under catch_unwind)
                    .map(|h| h.join().expect("rank threads catch their panics"))
                    .collect()
            });
            let mut solvers = Vec::with_capacity(ranks);
            let mut panics = Vec::new();
            let mut setup = None;
            for r in results {
                match r {
                    Ok(Ok(s)) => solvers.push(s),
                    Ok(Err(e)) => setup = Some(e),
                    Err(p) => panics.push(panic_message(p)),
                }
            }
            if !panics.is_empty() {
                Err(JobError::Panicked(primary_panic(panics)))
            } else if let Some(e) = setup {
                Err(JobError::Setup(e))
            } else {
                Ok(Self {
                    world: SessionWorld::Multi {
                        ranks: solvers,
                        poisoner,
                    },
                    b_source,
                    solves: 0,
                })
            }
        }
    }

    /// Execute one job on this session.
    ///
    /// `Err(JobError::Panicked)` means the session state can no longer
    /// be trusted — the caller must quarantine it. `Err(JobError::Setup)`
    /// is a clean collective refusal (every rank returned before
    /// touching solver state): the session stays reusable.
    pub(crate) fn run(
        &mut self,
        req: &SolveRequest,
        cancel: CancelToken,
    ) -> Result<SolveOutcome, JobError> {
        let plan = match &req.rhs {
            Some(global) => RhsPlan::Scatter(global),
            None if self
                .b_source
                .as_ref()
                .is_some_and(|s| s.matches(&req.problem)) =>
            {
                RhsPlan::Keep
            }
            None => RhsPlan::Assemble(&req.problem),
        };
        let params = SolveParams {
            tol: req.tol,
            max_iters: req.max_iters,
            record_history: false,
            overlap_halo: req.opts.overlap_halo,
            overlap_reduce: req.opts.overlap_reduce,
            cancel: Some(cancel),
            ..Default::default()
        };
        let outcome = match &mut self.world {
            SessionWorld::Single(solver) => {
                match catch_unwind(AssertUnwindSafe(|| {
                    run_one(solver, plan, req.kind, &req.opts, &params)
                })) {
                    Ok(Ok(out)) => Ok(out),
                    Ok(Err(e)) => Err(JobError::Setup(e)),
                    Err(p) => Err(JobError::Panicked(panic_message(p))),
                }
            }
            SessionWorld::Multi { ranks, poisoner } => {
                let results: Vec<_> = std::thread::scope(|s| {
                    let handles: Vec<_> = ranks
                        .iter_mut()
                        .map(|solver| {
                            let poi = poisoner.clone();
                            let params = params.clone();
                            s.spawn(move || {
                                let r = catch_unwind(AssertUnwindSafe(|| {
                                    run_one(solver, plan, req.kind, &req.opts, &params)
                                }));
                                if r.is_err() {
                                    poi.poison();
                                }
                                r
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        // LINT: panic-ok(rank closures run under catch_unwind)
                        .map(|h| h.join().expect("rank threads catch their panics"))
                        .collect()
                });
                let mut out = None;
                let mut panics = Vec::new();
                let mut setup = None;
                for r in results {
                    match r {
                        Ok(Ok(o)) => out = out.or(Some(o)),
                        Ok(Err(e)) => setup = Some(e),
                        Err(p) => panics.push(panic_message(p)),
                    }
                }
                if !panics.is_empty() {
                    Err(JobError::Panicked(primary_panic(panics)))
                } else if let Some(e) = setup {
                    Err(JobError::Setup(e))
                } else {
                    // LINT: panic-ok(no panics and no setup error means
                    // every rank returned Ok, and ranks >= 2 here)
                    Ok(out.expect("every rank returned an outcome"))
                }
            }
        }?;
        self.solves += 1;
        self.b_source = match &req.rhs {
            Some(_) => None,
            None => Some(RhsSource::of(&req.problem)),
        };
        Ok(outcome)
    }

    /// Execute a coalesced batch of jobs as one multi-RHS solve.
    ///
    /// Callers guarantee the requests share this session's key plus the
    /// solve envelope (`tol`, `max_iters`) — batch formation enforces
    /// it. Each lane carries its own cancel token; cancelling one lane
    /// freezes it and leaves every other lane bitwise-unchanged.
    ///
    /// `Ok` carries one slot per lane: the lane's outcome, or its own
    /// clean setup refusal (a bad lane never poisons its batchmates).
    /// `Err(JobError::Panicked)` condemns the whole batch and the
    /// caller must quarantine the session, exactly like [`Session::run`].
    pub(crate) fn run_batch(
        &mut self,
        reqs: &[&SolveRequest],
        cancels: &[Option<CancelToken>],
    ) -> Result<Vec<Result<SolveOutcome, SetupError>>, JobError> {
        // LINT: panic-ok(callers always pass at least one lane request)
        let head = reqs[0];
        let params = SolveParams {
            tol: head.tol,
            max_iters: head.max_iters,
            record_history: false,
            overlap_halo: head.opts.overlap_halo,
            overlap_reduce: head.opts.overlap_reduce,
            // Per-lane tokens travel through `cancels`; a params-level
            // token is a solo-path concept the batched driver rejects.
            cancel: None,
            ..Default::default()
        };
        let out = match &mut self.world {
            SessionWorld::Single(solver) => {
                match catch_unwind(AssertUnwindSafe(|| {
                    run_lanes(solver, reqs, &params, cancels)
                })) {
                    Ok(lanes) => Ok(lanes),
                    Err(p) => Err(JobError::Panicked(panic_message(p))),
                }
            }
            SessionWorld::Multi { ranks, poisoner } => {
                let results: Vec<_> = std::thread::scope(|s| {
                    let handles: Vec<_> = ranks
                        .iter_mut()
                        .map(|solver| {
                            let poi = poisoner.clone();
                            let params = params.clone();
                            s.spawn(move || {
                                let r = catch_unwind(AssertUnwindSafe(|| {
                                    run_lanes(solver, reqs, &params, cancels)
                                }));
                                if r.is_err() {
                                    poi.poison();
                                }
                                r
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        // LINT: panic-ok(rank closures run under catch_unwind)
                        .map(|h| h.join().expect("rank threads catch their panics"))
                        .collect()
                });
                let mut out = None;
                let mut panics = Vec::new();
                for r in results {
                    match r {
                        // Lane verdicts are collective: every rank's vec
                        // is identical, so rank 0's stands for all.
                        Ok(lanes) => out = out.or(Some(lanes)),
                        Err(p) => panics.push(panic_message(p)),
                    }
                }
                if !panics.is_empty() {
                    Err(JobError::Panicked(primary_panic(panics)))
                } else {
                    // LINT: panic-ok(no panics means every rank returned
                    // its lane vec, and ranks >= 2 here)
                    Ok(out.expect("every rank returned lane outcomes"))
                }
            }
        }?;
        self.solves += reqs.len() as u64;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use krylov::SolverKind;
    use poisson::unit_cube_dirichlet;

    #[test]
    fn session_keys_are_per_lease_slot() {
        // A session embeds its own device handles, so the cache must
        // never hand a session built under one lease to the holder of
        // another — the slot is part of the identity.
        let req = SolveRequest::new(unit_cube_dirichlet(5), SolverKind::BiCgs);
        let a = SessionKey::of(&req, "serial", 0);
        let b = SessionKey::of(&req, "serial", 1);
        assert_ne!(a, b, "same request under different lease slots");
        assert_eq!(a, SessionKey::of(&req, "serial", 0));
    }

    #[test]
    fn rhs_source_tracks_closure_identity_not_value() {
        let p = unit_cube_dirichlet(5);
        let source = RhsSource::of(&p);
        assert!(source.matches(&p));
        assert!(source.matches(&p.clone()), "clones share the same Arcs");
        let mut q = p.clone();
        q.rhs = Arc::new(|_, _, _| 1.0);
        assert!(!source.matches(&q), "a rebuilt closure must not match");
    }
}
