//! Service-wide counters and their snapshot.

use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Default)]
pub(crate) struct StatsInner {
    pub submitted: AtomicU64,
    pub rejected: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub shed: AtomicU64,
    pub cancelled: AtomicU64,
    pub panicked: AtomicU64,
    pub quarantined: AtomicU64,
    pub warm_hits: AtomicU64,
    pub cold_builds: AtomicU64,
    pub evicted: AtomicU64,
    pub completion_seq: AtomicU64,
}

impl StatsInner {
    pub(crate) fn bump(&self, counter: &AtomicU64) -> u64 {
        counter.fetch_add(1, Ordering::SeqCst) + 1
    }
}

/// Point-in-time snapshot of the service counters
/// ([`SolveService::stats`](crate::SolveService::stats)).
///
/// The per-job view (queue wait, setup vs solve split, warm/cold) lives
/// on each job's [`JobMetrics`](crate::JobMetrics); this is the
/// aggregate the operator watches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs admitted into the queue.
    pub submitted: u64,
    /// Submissions refused at the door (queue full or shutting down).
    pub rejected: u64,
    /// Jobs that reached [`JobResult::Done`](crate::JobResult::Done).
    pub completed: u64,
    /// Jobs that reached [`JobResult::Failed`](crate::JobResult::Failed).
    pub failed: u64,
    /// Jobs shed unstarted (deadline expiry or shutdown drain).
    pub shed: u64,
    /// Jobs cancelled (queued or mid-solve).
    pub cancelled: u64,
    /// Jobs that panicked (a subset of `failed`).
    pub panicked: u64,
    /// Sessions retired because a job panicked on (or while building)
    /// them. The pool never sees a poisoned session again.
    pub quarantined: u64,
    /// Jobs served by a cached warm session.
    pub warm_hits: u64,
    /// Sessions constructed from scratch.
    pub cold_builds: u64,
    /// Healthy sessions dropped because the session cache was full.
    pub evicted: u64,
    /// Jobs currently queued.
    pub queued: usize,
    /// Warm sessions currently cached.
    pub cached_sessions: usize,
}
