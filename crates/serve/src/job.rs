//! Job lifecycle: the awaitable handle and its terminal states.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use krylov::{CancelToken, SolveOutcome};
use poisson::SetupError;

use crate::request::{Priority, SolveRequest};
use crate::sync;

/// Why a submission was refused at the door (admission control).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full; resubmit later or shed load upstream.
    Overloaded,
    /// The service is shutting down and admits nothing new.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Overloaded => write!(f, "service overloaded: admission queue full"),
            Self::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an admitted job failed.
#[derive(Clone, Debug)]
pub enum JobError {
    /// The solver refused the input (bad decomposition, zero or
    /// malformed RHS) — the service stays fully healthy.
    Setup(SetupError),
    /// The job panicked; the payload message is preserved. The session
    /// it ran on (or was building) is quarantined, never returned to
    /// the pool.
    Panicked(String),
    /// A checked-mode run produced sanitizer or comm-verifier findings.
    Check(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Setup(e) => write!(f, "setup refused: {e}"),
            Self::Panicked(msg) => write!(f, "job panicked: {msg}"),
            Self::Check(report) => write!(f, "checked run reported findings:\n{report}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Per-job service metrics, attached to every completed job.
#[derive(Clone, Debug)]
pub struct JobMetrics {
    /// Admission to pop (time spent queued).
    pub queue_wait: Duration,
    /// Session acquisition: zero-ish on a warm hit, full construction
    /// (grid, operator, assembly, normalisation, offload) on a cold one.
    pub setup: Duration,
    /// The solve itself.
    pub solve: Duration,
    /// Outer iterations performed.
    pub iterations: usize,
    /// `true` when a cached warm session served this job.
    pub warm: bool,
    /// Lanes in the batched solve this job rode: `1` means it ran solo,
    /// larger values mean the scheduler coalesced it with that many
    /// compatible jobs into one multi-RHS solve (sweeps, halos and
    /// reductions amortised across all of them).
    pub batch_size: usize,
    /// Device spec the job ran on.
    pub device: String,
    /// Global completion order (monotone across the service).
    pub completion_seq: u64,
}

/// A finished job's payload.
#[derive(Clone, Debug)]
pub struct JobOutput {
    /// Solver outcome (rank 0's; identical on every rank).
    pub outcome: SolveOutcome,
    /// Service-side metrics for this job.
    pub metrics: JobMetrics,
}

/// Terminal state of a job. Every admitted job reaches exactly one.
#[derive(Clone, Debug)]
pub enum JobResult {
    /// The solve ran to completion (converged or not — see the outcome).
    Done(JobOutput),
    /// The job failed; see [`JobError`].
    Failed(JobError),
    /// Shed unstarted: its deadline expired while queued, or the
    /// service shut down before a worker picked it up.
    Shed,
    /// Cancelled, either while queued or cooperatively mid-solve.
    Cancelled,
}

impl JobResult {
    /// The output of a `Done` job, if that is what this is.
    pub fn output(&self) -> Option<&JobOutput> {
        match self {
            Self::Done(out) => Some(out),
            _ => None,
        }
    }
}

/// Coarse job state for polling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Reached a terminal [`JobResult`].
    Finished,
}

enum Phase {
    Queued,
    Running,
    Terminal(JobResult),
}

/// Shared core of one job: request, cancel token, state machine.
pub(crate) struct JobShared {
    pub(crate) id: u64,
    pub(crate) priority: Priority,
    pub(crate) submitted: Instant,
    pub(crate) deadline: Option<Instant>,
    pub(crate) cancel: CancelToken,
    request: Mutex<Option<SolveRequest>>,
    state: Mutex<Phase>,
    cv: Condvar,
}

impl JobShared {
    pub(crate) fn new(id: u64, request: SolveRequest) -> Self {
        let submitted = Instant::now();
        let deadline = request.deadline.map(|d| submitted + d);
        Self {
            id,
            priority: request.priority,
            submitted,
            deadline,
            cancel: CancelToken::new(),
            request: Mutex::new(Some(request)),
            state: Mutex::new(Phase::Queued),
            cv: Condvar::new(),
        }
    }

    /// Move the request out (exactly once, by the executing worker).
    pub(crate) fn take_request(&self) -> Option<SolveRequest> {
        sync::lock(&self.request).take()
    }

    /// Inspect the request without taking it (batch-formation
    /// fingerprint checks on still-queued jobs). `None` once a worker
    /// has claimed the request.
    pub(crate) fn peek_request<R>(&self, f: impl FnOnce(&SolveRequest) -> R) -> Option<R> {
        sync::lock(&self.request).as_ref().map(f)
    }

    pub(crate) fn set_running(&self) {
        *sync::lock(&self.state) = Phase::Running;
    }

    pub(crate) fn finish(&self, result: JobResult) {
        *sync::lock(&self.state) = Phase::Terminal(result);
        self.cv.notify_all();
    }

    pub(crate) fn deadline_expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }

    fn wait(&self) -> JobResult {
        let mut state = sync::lock(&self.state);
        loop {
            if let Phase::Terminal(r) = &*state {
                return r.clone();
            }
            state = sync::wait(&self.cv, state);
        }
    }

    fn try_result(&self) -> Option<JobResult> {
        match &*sync::lock(&self.state) {
            Phase::Terminal(r) => Some(r.clone()),
            _ => None,
        }
    }

    fn status(&self) -> JobStatus {
        match &*sync::lock(&self.state) {
            Phase::Queued => JobStatus::Queued,
            Phase::Running => JobStatus::Running,
            Phase::Terminal(_) => JobStatus::Finished,
        }
    }
}

/// The awaitable handle returned by
/// [`SolveService::submit`](crate::SolveService::submit).
///
/// Dropping the handle without awaiting it silently discards the
/// result, so the type is a mandatory-use handle under `cargo xtask
/// lint`, mirroring the `ReduceRequest` rule.
#[must_use = "a submitted job must be awaited with wait() (or cancelled); dropping the handle discards its result"]
pub struct JobHandle {
    pub(crate) shared: Arc<JobShared>,
}

impl JobHandle {
    /// Service-unique job id (admission order).
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// The scheduling class this job was admitted under.
    pub fn priority(&self) -> Priority {
        self.shared.priority
    }

    /// Block until the job reaches a terminal state.
    pub fn wait(&self) -> JobResult {
        self.shared.wait()
    }

    /// The terminal state, if already reached (non-blocking).
    pub fn try_result(&self) -> Option<JobResult> {
        self.shared.try_result()
    }

    /// Coarse state: queued, running, or finished.
    pub fn status(&self) -> JobStatus {
        self.shared.status()
    }

    /// Request cancellation: a queued job resolves to
    /// [`JobResult::Cancelled`] when popped; a running job stops
    /// cooperatively at its next iteration boundary.
    pub fn cancel(&self) {
        self.shared.cancel.cancel();
    }
}
