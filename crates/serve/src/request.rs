//! What a tenant submits: one solve, with placement and scheduling hints.

use std::time::Duration;

use krylov::{SolverKind, SolverOptions};
use poisson::PoissonProblem;

/// Scheduling class of a request; higher classes are always drained
/// first, FIFO within a class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Batch work: runs when nothing better is queued.
    Low,
    /// The default class.
    Normal,
    /// Latency-sensitive work: jumps every queued Normal/Low job.
    High,
}

impl Priority {
    /// Queue index, highest class first.
    pub(crate) fn class(self) -> usize {
        match self {
            Self::High => 0,
            Self::Normal => 1,
            Self::Low => 2,
        }
    }

    /// Number of priority classes.
    pub(crate) const COUNT: usize = 3;
}

/// One solve request: the continuous problem, its placement, the solver
/// configuration, and the scheduling envelope.
#[derive(Clone)]
pub struct SolveRequest {
    /// The continuous Poisson problem to discretise and solve.
    pub problem: PoissonProblem,
    /// Process-grid decomposition; `[1, 1, 1]` solves in-process on the
    /// worker thread, anything larger spawns a ranks-as-threads world.
    pub decomp: [usize; 3],
    /// Solver configuration (Table I family).
    pub kind: SolverKind,
    /// Preconditioner tunables.
    pub opts: SolverOptions,
    /// Relative residual tolerance.
    pub tol: f64,
    /// Outer iteration cap.
    pub max_iters: usize,
    /// Optional right-hand side override: the *global* RHS sampled on
    /// the unknown grid in x-fastest order (`discretize().unknowns()`
    /// values). `None` assembles the problem's own `rhs` closure. The
    /// warm path re-normalises and offloads only this vector.
    pub rhs: Option<Vec<f64>>,
    /// Scheduling class.
    pub priority: Priority,
    /// Drop the job unstarted if it is still queued this long after
    /// submission (deadline-based shedding). `None` never sheds.
    pub deadline: Option<Duration>,
    /// Execute under the full correctness harness: sanitized kernels
    /// ([`check::Checked`]) and verified communicators
    /// ([`check::VerifiedComm`]). Checked jobs always run cold (the
    /// harness owns its world) and any finding fails the job.
    pub checked: bool,
}

impl SolveRequest {
    /// A single-rank request with the default solver envelope: paper
    /// tolerances, `Normal` priority, no deadline, unchecked.
    pub fn new(problem: PoissonProblem, kind: SolverKind) -> Self {
        Self {
            problem,
            decomp: [1, 1, 1],
            kind,
            opts: SolverOptions {
                eig_min_factor: 10.0,
                ..Default::default()
            },
            tol: 1e-10,
            max_iters: 50_000,
            rhs: None,
            priority: Priority::Normal,
            deadline: None,
            checked: false,
        }
    }

    /// Total ranks of the decomposition.
    pub fn ranks(&self) -> usize {
        self.decomp.iter().product()
    }
}
