//! Bounded priority queue with admission control.
//!
//! Three FIFO classes drained strictly highest-first. `push` never
//! blocks: a full queue answers [`SubmitError::Overloaded`] immediately
//! (backpressure belongs to the caller, not a hidden buffer). `pop`
//! blocks workers until work arrives or the queue closes.
//!
//! Admission is *class-aware*: each class below High forfeits one
//! reserve tranche (`capacity / 8` slots) of headroom, so a sustained
//! flood of Low-priority work tops out before the queue is full and
//! High-priority submissions still find slots — backpressure cannot
//! invert priority at the door. Queues smaller than 8 slots have a zero
//! reserve and behave as a single shared buffer.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::job::{JobShared, SubmitError};
use crate::request::Priority;
use crate::sync;
use std::sync::Arc;

struct State {
    classes: [VecDeque<Arc<JobShared>>; Priority::COUNT],
    len: usize,
    open: bool,
}

pub(crate) struct Scheduler {
    state: Mutex<State>,
    cv: Condvar,
    capacity: usize,
}

impl Scheduler {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(State {
                classes: std::array::from_fn(|_| VecDeque::new()),
                len: 0,
                open: true,
            }),
            cv: Condvar::new(),
            capacity,
        }
    }

    /// Occupancy at which `class` stops being admitted: High may fill
    /// the queue, each lower class gives up one more reserve tranche.
    fn watermark(&self, class: usize) -> usize {
        let reserve = self.capacity / 8;
        self.capacity - class * reserve
    }

    /// Admit a job, or reject immediately — never blocks.
    pub(crate) fn push(&self, job: Arc<JobShared>) -> Result<(), SubmitError> {
        let mut st = sync::lock(&self.state);
        if !st.open {
            return Err(SubmitError::ShuttingDown);
        }
        let class = job.priority.class();
        if st.len >= self.watermark(class) {
            return Err(SubmitError::Overloaded);
        }
        // LINT: panic-ok(Priority::class() is 0..COUNT by construction)
        st.classes[class].push_back(job);
        st.len += 1;
        drop(st);
        self.cv.notify_one();
        Ok(())
    }

    /// Take the next job, highest class first, FIFO within a class.
    /// Blocks while the queue is open and empty; `None` once it is
    /// closed and drained.
    pub(crate) fn pop(&self) -> Option<Arc<JobShared>> {
        let mut st = sync::lock(&self.state);
        loop {
            if st.len > 0 {
                // `classes` is ordered highest class first, so the
                // first non-empty queue is the one to drain.
                if let Some(job) = st.classes.iter_mut().find_map(VecDeque::pop_front) {
                    st.len -= 1;
                    return Some(job);
                }
            }
            if !st.open {
                return None;
            }
            st = sync::wait(&self.cv, st);
        }
    }

    /// Remove up to `limit` queued jobs satisfying `matches`, scanning
    /// highest class first and FIFO within each class — the same order
    /// `pop` would eventually serve them in. Jobs that don't match keep
    /// their queue positions. Never blocks; an empty (or closed and
    /// drained) queue returns an empty vec.
    ///
    /// This is the batch-formation hook: a worker that has already
    /// popped and leased a job calls this to pull compatible queued
    /// jobs into the same multi-RHS solve. The predicate runs under the
    /// queue lock, so it must be quick and must not block or panic
    /// (callers wrap panicky checks in `catch_unwind`).
    pub(crate) fn take_batchmates(
        &self,
        limit: usize,
        matches: impl Fn(&JobShared) -> bool,
    ) -> Vec<Arc<JobShared>> {
        let mut taken = Vec::new();
        if limit == 0 {
            return taken;
        }
        let mut st = sync::lock(&self.state);
        for class in st.classes.iter_mut() {
            let mut kept = VecDeque::with_capacity(class.len());
            while let Some(job) = class.pop_front() {
                if taken.len() < limit && matches(&job) {
                    taken.push(job);
                } else {
                    kept.push_back(job);
                }
            }
            *class = kept;
            if taken.len() >= limit {
                break;
            }
        }
        st.len -= taken.len();
        taken
    }

    /// Close the queue and drain everything still waiting (for
    /// shutdown shedding). Wakes every blocked worker.
    pub(crate) fn close(&self) -> Vec<Arc<JobShared>> {
        let mut st = sync::lock(&self.state);
        st.open = false;
        let drained: Vec<_> = st.classes.iter_mut().flat_map(|c| c.drain(..)).collect();
        st.len = 0;
        drop(st);
        self.cv.notify_all();
        drained
    }

    /// Jobs currently queued.
    pub(crate) fn len(&self) -> usize {
        sync::lock(&self.state).len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::SolveRequest;
    use krylov::SolverKind;
    use poisson::unit_cube_dirichlet;
    use proptest::prelude::*;

    fn job(id: u64, priority: Priority) -> Arc<JobShared> {
        let mut req = SolveRequest::new(unit_cube_dirichlet(5), SolverKind::BiCgs);
        req.priority = priority;
        Arc::new(JobShared::new(id, req))
    }

    fn class_of(c: usize) -> Priority {
        match c {
            0 => Priority::High,
            1 => Priority::Normal,
            _ => Priority::Low,
        }
    }

    #[test]
    fn a_low_flood_cannot_starve_higher_classes_at_admission() {
        // capacity 16 → reserve tranche 2: Low tops out at 12, Normal
        // at 14, High fills the queue. A sustained Low flood therefore
        // leaves 4 slots no Low job can take, 2 of them High-exclusive.
        let q = Scheduler::new(16);
        for i in 0..12 {
            q.push(job(i, Priority::Low)).unwrap();
        }
        assert_eq!(
            q.push(job(100, Priority::Low)).unwrap_err(),
            SubmitError::Overloaded,
            "Low must stop at its watermark, not at capacity"
        );
        for i in 0..2 {
            q.push(job(200 + i, Priority::Normal)).unwrap();
        }
        assert_eq!(
            q.push(job(300, Priority::Normal)).unwrap_err(),
            SubmitError::Overloaded
        );
        for i in 0..2 {
            q.push(job(400 + i, Priority::High)).unwrap();
        }
        assert_eq!(
            q.push(job(500, Priority::High)).unwrap_err(),
            SubmitError::Overloaded,
            "High is bounded by the full capacity"
        );
        assert_eq!(q.len(), 16);
    }

    #[test]
    fn a_closed_queue_admits_nothing() {
        let q = Scheduler::new(4);
        q.push(job(1, Priority::Normal)).unwrap();
        let drained = q.close();
        assert_eq!(drained.len(), 1);
        assert_eq!(
            q.push(job(2, Priority::Normal)).unwrap_err(),
            SubmitError::ShuttingDown
        );
        assert!(q.pop().is_none());
    }

    #[test]
    fn batchmates_come_out_in_pop_order_and_the_rest_keep_their_places() {
        // Queue (pop order): High 10, Normal 1, 2, 3, Low 20. Matching
        // the odd ids with limit 2 must take 1 then 3 (FIFO within
        // class, classes high-first) — not Low 21, which is beyond the
        // limit — and leave the rest popping in the original order.
        let q = Scheduler::new(16);
        for (id, p) in [
            (1, Priority::Normal),
            (2, Priority::Normal),
            (10, Priority::High),
            (3, Priority::Normal),
            (21, Priority::Low),
            (20, Priority::Low),
        ] {
            q.push(job(id, p)).unwrap();
        }
        let taken = q.take_batchmates(2, |j| j.id % 2 == 1);
        assert_eq!(taken.iter().map(|j| j.id).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(q.len(), 4);
        let rest: Vec<u64> = (0..4).map(|_| q.pop().unwrap().id).collect();
        assert_eq!(rest, vec![10, 2, 21, 20], "non-mates keep queue order");
    }

    #[test]
    fn batchmates_with_no_match_or_zero_limit_take_nothing() {
        let q = Scheduler::new(8);
        q.push(job(1, Priority::Normal)).unwrap();
        assert!(q.take_batchmates(4, |_| false).is_empty());
        assert!(q.take_batchmates(0, |_| true).is_empty());
        assert_eq!(q.len(), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        // Single-worker drain order: a batch pushed in any class mix
        // comes out highest class first, FIFO within each class — i.e.
        // a stable sort of the submission order by class.
        #[test]
        fn drain_is_a_stable_sort_by_class(seq in prop::collection::vec(0usize..3, 1..40)) {
            // 2x headroom so even an all-Low batch clears the Low
            // admission watermark (capacity - 2 * capacity/8).
            let q = Scheduler::new(seq.len() * 2);
            for (i, &c) in seq.iter().enumerate() {
                q.push(job(i as u64, class_of(c))).unwrap();
            }
            let mut expected: Vec<u64> = (0..seq.len() as u64).collect();
            expected.sort_by_key(|&i| class_of(seq[i as usize]).class());
            let got: Vec<u64> = (0..seq.len())
                .map(|_| q.pop().expect("queue is non-empty").id)
                .collect();
            prop_assert_eq!(got, expected);
        }

        // Under arbitrary push/pop interleavings every pop returns the
        // oldest job of the highest non-empty class, and nothing is
        // lost: the queue mirrors a model list exactly.
        #[test]
        fn pop_returns_the_oldest_of_the_highest_class(
            ops in prop::collection::vec((0usize..4, 0usize..3), 1..60),
        ) {
            // Sized so even 60 all-Low pushes stay under Low's
            // admission watermark (128 - 2*16 = 96).
            let q = Scheduler::new(128);
            let mut model: Vec<(u64, usize)> = Vec::new();
            let mut next = 0u64;
            for (op, c) in ops {
                if op < 3 {
                    let p = class_of(c);
                    q.push(job(next, p)).unwrap();
                    model.push((next, p.class()));
                    next += 1;
                } else if !model.is_empty() {
                    let popped = q.pop().expect("model says non-empty");
                    let best = model
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(id, class))| (class, id))
                        .map(|(i, _)| i)
                        .expect("model non-empty");
                    let (id, _) = model.remove(best);
                    prop_assert_eq!(popped.id, id);
                }
            }
            prop_assert_eq!(q.len(), model.len());
        }

        // Admission control: a full queue answers Overloaded without
        // blocking, and one pop frees exactly one slot.
        #[test]
        fn full_queue_rejects_until_a_pop_frees_a_slot(
            cap in 1usize..8,
            extra in 1usize..5,
        ) {
            let q = Scheduler::new(cap);
            for i in 0..cap {
                prop_assert!(q.push(job(i as u64, Priority::Normal)).is_ok());
            }
            for i in 0..extra {
                prop_assert_eq!(
                    q.push(job((cap + i) as u64, Priority::Normal)).unwrap_err(),
                    SubmitError::Overloaded
                );
            }
            let _ = q.pop().expect("queue is full");
            prop_assert!(q.push(job(1000, Priority::Normal)).is_ok());
            prop_assert_eq!(
                q.push(job(1001, Priority::Normal)).unwrap_err(),
                SubmitError::Overloaded
            );
        }
    }
}
