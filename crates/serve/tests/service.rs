//! End-to-end service tests: lifecycle, warm reuse, panic isolation,
//! scheduling semantics and the checked-mode harness.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use krylov::SolverKind;
use poisson::{paper_problem, unit_cube_dirichlet, PoissonProblem, SetupError};
use serve::{
    JobError, JobHandle, JobResult, JobStatus, Priority, ServiceConfig, SolveRequest, SolveService,
    SubmitError,
};

/// A request small and loose enough to finish in milliseconds.
fn quick(problem: PoissonProblem) -> SolveRequest {
    let mut req = SolveRequest::new(problem, SolverKind::BiCgs);
    req.tol = 1e-8;
    req.max_iters = 2_000;
    req
}

fn single_worker(session_capacity: usize) -> SolveService {
    SolveService::start(ServiceConfig {
        workers: 1,
        session_capacity,
        ..ServiceConfig::default()
    })
}

/// A problem whose RHS assembly blocks until `gate` opens — pins the
/// (single) worker deterministically so tests can fill the queue,
/// expire deadlines or cancel behind it.
fn gated_problem(gate: &Arc<AtomicBool>) -> PoissonProblem {
    let mut p = unit_cube_dirichlet(5);
    let gate = gate.clone();
    p.rhs = Arc::new(move |_, _, _| {
        while !gate.load(Ordering::SeqCst) {
            #[allow(clippy::disallowed_methods)]
            std::thread::sleep(Duration::from_millis(1));
        }
        1.0
    });
    p.exact = None;
    p
}

/// A problem whose RHS assembly panics — the poison tenant.
fn poison_problem() -> PoissonProblem {
    let mut p = unit_cube_dirichlet(5);
    p.rhs = Arc::new(|_, _, _| panic!("tenant rhs exploded"));
    p.exact = None;
    p
}

/// Block until the worker has started executing `handle`'s job.
fn wait_until_running(handle: &JobHandle) {
    let start = Instant::now();
    while handle.status() != JobStatus::Running {
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "job never started running"
        );
        #[allow(clippy::disallowed_methods)]
        std::thread::sleep(Duration::from_micros(100));
    }
}

#[test]
fn solves_a_simple_job_end_to_end() {
    let svc = single_worker(8);
    let handle = svc.submit(quick(unit_cube_dirichlet(9))).unwrap();
    let result = handle.wait();
    let output = result.output().expect("job should complete");
    assert!(output.outcome.converged);
    assert!(!output.metrics.warm);
    assert_eq!(output.metrics.device, "serial");
    let stats = svc.stats();
    assert_eq!(stats.submitted, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.cold_builds, 1);
    assert_eq!(stats.warm_hits, 0);
    assert_eq!(stats.cached_sessions, 1);
}

#[test]
fn warm_reuse_is_bitwise_identical_to_the_cold_solve() {
    let svc = single_worker(8);
    let req = quick(unit_cube_dirichlet(9));
    let cold = svc.submit(req.clone()).unwrap().wait();
    let warm = svc.submit(req).unwrap().wait();
    let cold = cold.output().expect("cold job completes");
    let warm = warm.output().expect("warm job completes");
    assert!(!cold.metrics.warm);
    assert!(
        warm.metrics.warm,
        "second identical request must hit the cache"
    );
    assert_eq!(cold.outcome.iterations, warm.outcome.iterations);
    assert_eq!(
        cold.outcome.final_residual.to_bits(),
        warm.outcome.final_residual.to_bits(),
        "warm solve must be bitwise-identical to the cold one"
    );
    let stats = svc.stats();
    assert_eq!(stats.cold_builds, 1);
    assert_eq!(stats.warm_hits, 1);
}

#[test]
fn warm_sessions_pin_their_rhs_closures_and_reassemble_for_new_tenants() {
    // Regression: RHS provenance must hold the closure Arcs themselves,
    // not their raw addresses. With bare addresses, the first tenant's
    // dropped allocations could be recycled for a later tenant's
    // closures, falsely matching the cached RHS and silently serving
    // the previous tenant's solution.
    let svc = single_worker(8);
    let req = quick(unit_cube_dirichlet(9));
    let rhs_weak = Arc::downgrade(&req.problem.rhs);
    assert!(svc.submit(req).unwrap().wait().output().is_some());
    // The request is long gone, but the cached session must keep the
    // closures it assembled its RHS from alive — that pin is what makes
    // pointer identity sound.
    assert!(
        rhs_weak.upgrade().is_some(),
        "cached session must pin the RHS closures it assembled from"
    );
    // A same-discretisation tenant with different closures must hit the
    // warm cache yet re-assemble: its solve must be bitwise-identical
    // to a cold solve of the same problem.
    let mut other = quick(unit_cube_dirichlet(9));
    other.problem.rhs = Arc::new(|x, y, z| 1.0 + x + 2.0 * y - z);
    other.problem.exact = None;
    let warm = svc.submit(other.clone()).unwrap().wait();
    let warm = warm.output().expect("warm job completes");
    assert!(warm.metrics.warm, "same discretisation must hit the cache");
    let cold_svc = single_worker(8);
    let cold = cold_svc.submit(other).unwrap().wait();
    let cold = cold.output().expect("cold job completes");
    assert_eq!(warm.outcome.iterations, cold.outcome.iterations);
    assert_eq!(
        warm.outcome.final_residual.to_bits(),
        cold.outcome.final_residual.to_bits(),
        "a new tenant's closures must be re-assembled, not kept"
    );
}

#[test]
fn a_panicking_job_is_quarantined_and_the_service_keeps_serving() {
    let svc = single_worker(8);
    let poisoned = svc.submit(quick(poison_problem())).unwrap().wait();
    match poisoned {
        JobResult::Failed(JobError::Panicked(msg)) => {
            assert!(
                msg.contains("tenant rhs exploded"),
                "panic payload must be preserved, got: {msg}"
            );
        }
        other => panic!("poison job should fail as Panicked, got {other:?}"),
    }
    // Every subsequent tenant is served normally.
    let good: Vec<_> = (0..5)
        .map(|_| svc.submit(quick(unit_cube_dirichlet(7))).unwrap())
        .collect();
    for handle in good {
        let result = handle.wait();
        assert!(
            result.output().is_some_and(|o| o.outcome.converged),
            "jobs after a quarantine must still succeed, got {result:?}"
        );
    }
    let stats = svc.stats();
    assert_eq!(stats.panicked, 1);
    assert_eq!(stats.quarantined, 1, "exactly one session quarantined");
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.completed, 5);
}

#[test]
fn eight_rank_checked_job_reports_zero_findings() {
    let svc = single_worker(0);
    let mut req = quick(paper_problem(13));
    req.decomp = [2, 2, 2];
    req.kind = SolverKind::BiCgsGNoCommCi;
    req.checked = true;
    let result = svc.submit(req).unwrap().wait();
    let output = result
        .output()
        .unwrap_or_else(|| panic!("checked 8-rank solve must be clean, got {result:?}"));
    assert!(output.outcome.converged);
    assert!(!output.metrics.warm, "checked jobs always run cold");
}

#[test]
fn full_queue_rejects_immediately_instead_of_blocking() {
    let gate = Arc::new(AtomicBool::new(false));
    let svc = SolveService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 2,
        session_capacity: 0,
        ..ServiceConfig::default()
    });
    let blocker = svc.submit(quick(gated_problem(&gate))).unwrap();
    wait_until_running(&blocker);
    let q1 = svc.submit(quick(unit_cube_dirichlet(7))).unwrap();
    let q2 = svc.submit(quick(unit_cube_dirichlet(7))).unwrap();
    let start = Instant::now();
    let rejected = svc.submit(quick(unit_cube_dirichlet(7)));
    assert!(
        start.elapsed() < Duration::from_secs(1),
        "admission must not block on a full queue"
    );
    assert!(matches!(rejected, Err(SubmitError::Overloaded)));
    assert_eq!(svc.stats().rejected, 1);
    gate.store(true, Ordering::SeqCst);
    assert!(blocker.wait().output().is_some());
    assert!(q1.wait().output().is_some());
    assert!(q2.wait().output().is_some());
}

#[test]
fn deadline_expired_jobs_are_shed_unstarted() {
    let gate = Arc::new(AtomicBool::new(false));
    let svc = single_worker(0);
    let blocker = svc.submit(quick(gated_problem(&gate))).unwrap();
    wait_until_running(&blocker);
    let mut stale = quick(unit_cube_dirichlet(7));
    stale.deadline = Some(Duration::from_millis(10));
    let stale = svc.submit(stale).unwrap();
    #[allow(clippy::disallowed_methods)]
    std::thread::sleep(Duration::from_millis(30));
    gate.store(true, Ordering::SeqCst);
    assert!(matches!(stale.wait(), JobResult::Shed));
    assert!(blocker.wait().output().is_some());
    let stats = svc.stats();
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.completed, 1);
}

#[test]
fn a_queued_job_can_be_cancelled() {
    let gate = Arc::new(AtomicBool::new(false));
    let svc = single_worker(0);
    let blocker = svc.submit(quick(gated_problem(&gate))).unwrap();
    wait_until_running(&blocker);
    let victim = svc.submit(quick(unit_cube_dirichlet(7))).unwrap();
    victim.cancel();
    gate.store(true, Ordering::SeqCst);
    assert!(matches!(victim.wait(), JobResult::Cancelled));
    assert!(blocker.wait().output().is_some());
    assert_eq!(svc.stats().cancelled, 1);
}

#[test]
fn a_running_job_is_cancelled_cooperatively() {
    let svc = single_worker(0);
    let mut req = quick(unit_cube_dirichlet(17));
    // Unreachable tolerance: without cancellation this would grind
    // through the full iteration budget.
    req.tol = 1e-300;
    req.max_iters = 50_000_000;
    let handle = svc.submit(req).unwrap();
    wait_until_running(&handle);
    handle.cancel();
    assert!(matches!(handle.wait(), JobResult::Cancelled));
    assert_eq!(svc.stats().cancelled, 1);
}

#[test]
fn priority_classes_drain_high_first_fifo_within_each() {
    let gate = Arc::new(AtomicBool::new(false));
    let svc = single_worker(8);
    let blocker = svc.submit(quick(gated_problem(&gate))).unwrap();
    wait_until_running(&blocker);
    let submit = |priority| {
        let mut req = quick(unit_cube_dirichlet(7));
        req.priority = priority;
        svc.submit(req).unwrap()
    };
    let low_1 = submit(Priority::Low);
    let normal_1 = submit(Priority::Normal);
    let high_1 = submit(Priority::High);
    let low_2 = submit(Priority::Low);
    let high_2 = submit(Priority::High);
    gate.store(true, Ordering::SeqCst);
    let seq = |h: &JobHandle| {
        h.wait()
            .output()
            .expect("queued jobs complete")
            .metrics
            .completion_seq
    };
    let (h1, h2, n1, l1, l2) = (
        seq(&high_1),
        seq(&high_2),
        seq(&normal_1),
        seq(&low_1),
        seq(&low_2),
    );
    assert!(blocker.wait().output().is_some());
    assert!(
        h1 < h2 && h2 < n1 && n1 < l1 && l1 < l2,
        "expected High(FIFO), Normal, Low(FIFO); got seqs {:?}",
        [h1, h2, n1, l1, l2]
    );
}

#[test]
fn a_zero_rhs_is_refused_cleanly_and_the_session_pool_stays_healthy() {
    let svc = single_worker(8);
    let mut p = unit_cube_dirichlet(7);
    p.rhs = Arc::new(|_, _, _| 0.0);
    p.dirichlet = Arc::new(|_, _, _| 0.0);
    p.exact = None;
    let result = svc.submit(quick(p)).unwrap().wait();
    assert!(
        matches!(
            result,
            JobResult::Failed(JobError::Setup(SetupError::ZeroRhs))
        ),
        "zero RHS must fail as a clean SetupError, got {result:?}"
    );
    let good = svc.submit(quick(unit_cube_dirichlet(7))).unwrap().wait();
    assert!(good.output().is_some_and(|o| o.outcome.converged));
    let stats = svc.stats();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.quarantined, 0, "a setup refusal is not a quarantine");
}

#[test]
fn shutdown_sheds_queued_jobs_and_finishes_running_ones() {
    let gate = Arc::new(AtomicBool::new(false));
    let svc = single_worker(0);
    let blocker = svc.submit(quick(gated_problem(&gate))).unwrap();
    wait_until_running(&blocker);
    let queued = svc.submit(quick(unit_cube_dirichlet(7))).unwrap();
    let releaser = {
        let gate = gate.clone();
        std::thread::spawn(move || {
            #[allow(clippy::disallowed_methods)]
            std::thread::sleep(Duration::from_millis(30));
            gate.store(true, Ordering::SeqCst);
        })
    };
    let stats = svc.shutdown();
    releaser.join().unwrap();
    assert!(matches!(queued.wait(), JobResult::Shed));
    assert!(
        blocker.wait().output().is_some(),
        "the in-flight job runs to completion through shutdown"
    );
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.completed, 1);
}

/// A distinct global RHS override for lane `seed` of a batching test:
/// smooth, nonzero, and cheap to regenerate for the reference run.
fn rhs_override(problem: &PoissonProblem, seed: u64) -> Vec<f64> {
    let n = problem.discretize().unknowns();
    (0..n)
        .map(|i| 1.0 + ((i as f64) * 0.37 + seed as f64).sin())
        .collect()
}

#[test]
fn compatible_queued_jobs_coalesce_into_one_batched_solve_bitwise() {
    // Pin the single worker behind a gate, queue three jobs that share
    // a session fingerprint but carry different right-hand sides, then
    // release: the first popped job must pull the other two into one
    // batched solve, and every lane must be bitwise-identical to the
    // same request served solo.
    let gate = Arc::new(AtomicBool::new(false));
    let svc = SolveService::start(ServiceConfig {
        workers: 1,
        batch_window: 4,
        ..ServiceConfig::default()
    });
    let blocker = svc.submit(quick(gated_problem(&gate))).unwrap();
    wait_until_running(&blocker);
    let base = quick(unit_cube_dirichlet(9));
    let handles: Vec<JobHandle> = (0..3)
        .map(|i| {
            let mut req = base.clone();
            req.rhs = Some(rhs_override(&base.problem, i));
            svc.submit(req).unwrap()
        })
        .collect();
    gate.store(true, Ordering::SeqCst);
    assert!(blocker.wait().output().is_some());
    let solo_svc = single_worker(8);
    for (i, handle) in handles.iter().enumerate() {
        let result = handle.wait();
        let out = result.output().unwrap_or_else(|| {
            panic!("batched lane {i} must complete, got {result:?}");
        });
        assert!(out.outcome.converged, "lane {i} must converge");
        assert_eq!(
            out.metrics.batch_size, 3,
            "three compatible jobs must form one 3-lane batch"
        );
        let mut req = base.clone();
        req.rhs = Some(rhs_override(&base.problem, i as u64));
        let solo = solo_svc.submit(req).unwrap().wait();
        let solo = solo.output().expect("solo reference completes");
        assert_eq!(solo.metrics.batch_size, 1);
        assert_eq!(out.outcome.iterations, solo.outcome.iterations);
        assert_eq!(
            out.outcome.final_residual.to_bits(),
            solo.outcome.final_residual.to_bits(),
            "lane {i} must be bitwise-identical to its solo solve"
        );
    }
    let stats = svc.stats();
    assert_eq!(stats.completed, 4);
    assert_eq!(
        stats.cold_builds, 2,
        "the blocker builds one session, the whole batch shares one more"
    );
}

#[test]
fn formation_honors_cancel_and_deadline_before_claiming_a_lane() {
    // Of three fingerprint-compatible queued jobs, one is cancelled and
    // one is past its deadline by the time the worker forms the batch:
    // neither may occupy a lane, and the survivor runs (solo, as a
    // 1-lane batch collapses to the ordinary path).
    let gate = Arc::new(AtomicBool::new(false));
    let svc = SolveService::start(ServiceConfig {
        workers: 1,
        batch_window: 4,
        ..ServiceConfig::default()
    });
    let blocker = svc.submit(quick(gated_problem(&gate))).unwrap();
    wait_until_running(&blocker);
    let base = quick(unit_cube_dirichlet(9));
    let survivor = svc.submit(base.clone()).unwrap();
    let doomed = svc.submit(base.clone()).unwrap();
    let mut stale_req = base.clone();
    stale_req.deadline = Some(Duration::from_millis(5));
    let stale = svc.submit(stale_req).unwrap();
    doomed.cancel();
    #[allow(clippy::disallowed_methods)]
    std::thread::sleep(Duration::from_millis(20));
    gate.store(true, Ordering::SeqCst);
    assert!(blocker.wait().output().is_some());
    assert!(matches!(doomed.wait(), JobResult::Cancelled));
    assert!(matches!(stale.wait(), JobResult::Shed));
    let out = survivor.wait();
    let out = out.output().expect("survivor completes");
    assert!(out.outcome.converged);
    assert_eq!(
        out.metrics.batch_size, 1,
        "with both mates dropped at formation the survivor runs solo"
    );
    let stats = svc.stats();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.completed, 2);
}

#[test]
fn multi_rank_jobs_coalesce_and_match_their_solo_runs() {
    let gate = Arc::new(AtomicBool::new(false));
    let svc = SolveService::start(ServiceConfig {
        workers: 1,
        batch_window: 4,
        ..ServiceConfig::default()
    });
    let blocker = svc.submit(quick(gated_problem(&gate))).unwrap();
    wait_until_running(&blocker);
    let mut base = quick(paper_problem(9));
    base.decomp = [2, 1, 1];
    base.kind = SolverKind::BiCgsGCi;
    let handles: Vec<JobHandle> = (0..2)
        .map(|i| {
            let mut req = base.clone();
            req.rhs = Some(rhs_override(&base.problem, 10 + i));
            svc.submit(req).unwrap()
        })
        .collect();
    gate.store(true, Ordering::SeqCst);
    assert!(blocker.wait().output().is_some());
    let solo_svc = single_worker(8);
    for (i, handle) in handles.iter().enumerate() {
        let result = handle.wait();
        let out = result.output().unwrap_or_else(|| {
            panic!("multi-rank lane {i} must complete, got {result:?}");
        });
        assert!(out.outcome.converged);
        assert_eq!(out.metrics.batch_size, 2);
        let mut req = base.clone();
        req.rhs = Some(rhs_override(&base.problem, 10 + i as u64));
        let solo = solo_svc.submit(req).unwrap().wait();
        let solo = solo.output().expect("solo reference completes");
        assert_eq!(out.outcome.iterations, solo.outcome.iterations);
        assert_eq!(
            out.outcome.final_residual.to_bits(),
            solo.outcome.final_residual.to_bits(),
            "multi-rank lane {i} must match its solo solve bitwise"
        );
    }
}

mod no_job_lost {
    //! Property: every admitted job reaches exactly one terminal state,
    //! whatever mix of good, poison, cancelled and stale jobs arrives,
    //! and the terminal counters account for all of them.

    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        #[test]
        fn every_admitted_job_reaches_a_terminal_state(
            flavors in prop::collection::vec((0usize..4, 0usize..3), 1..7),
            workers in 1usize..3,
        ) {
            let svc = SolveService::start(ServiceConfig {
                workers,
                queue_capacity: 64,
                session_capacity: 4,
                ..ServiceConfig::default()
            });
            let mut handles = Vec::new();
            for (flavor, class) in flavors {
                let mut req = quick(unit_cube_dirichlet(5 + 2 * (class % 2)));
                req.priority = match class {
                    0 => Priority::High,
                    1 => Priority::Normal,
                    _ => Priority::Low,
                };
                match flavor {
                    1 => req.problem = poison_problem(),
                    2 => req.deadline = Some(Duration::ZERO),
                    _ => {}
                }
                let handle = svc.submit(req).unwrap();
                if flavor == 3 {
                    handle.cancel();
                }
                handles.push(handle);
            }
            let admitted = handles.len() as u64;
            for handle in &handles {
                // wait() returning at all is the invariant: a lost job
                // would hang here (and trip the harness timeout).
                let _terminal = handle.wait();
            }
            let stats = svc.shutdown();
            prop_assert_eq!(stats.submitted, admitted);
            prop_assert_eq!(
                stats.completed + stats.failed + stats.shed + stats.cancelled,
                admitted,
                "terminal counters must account for every admitted job"
            );
        }
    }
}
