//! Event-stream cost replay.

use accel::Event;
use serde::{Deserialize, Serialize};

use crate::machine::MachineModel;

/// Modeled wall time of one rank's event stream, split the way the
/// paper's Figs. 6–7 split their bars.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize, PartialEq)]
pub struct CostBreakdown {
    /// Device kernel time (the paper's "computation").
    pub compute_s: f64,
    /// Halo exchange + reduction time (the paper's "communication").
    pub comm_s: f64,
    /// Host↔device transfer time.
    pub transfer_s: f64,
}

impl CostBreakdown {
    /// Total modeled time.
    pub fn total_s(&self) -> f64 {
        self.compute_s + self.comm_s + self.transfer_s
    }

    /// Component-wise sum.
    pub fn add(&mut self, other: &CostBreakdown) {
        self.compute_s += other.compute_s;
        self.comm_s += other.comm_s;
        self.transfer_s += other.transfer_s;
    }

    /// Component-wise scale (e.g. extrapolating one iteration to many).
    pub fn scaled(&self, factor: f64) -> CostBreakdown {
        CostBreakdown {
            compute_s: self.compute_s * factor,
            comm_s: self.comm_s * factor,
            transfer_s: self.transfer_s * factor,
        }
    }
}

/// Cost of a single event (seconds) on `machine` in a `ranks`-rank world.
pub fn event_cost_s(ev: &Event, machine: &MachineModel, ranks: usize) -> f64 {
    match ev {
        Event::Kernel { bytes, flops, .. } => machine.kernel_cost_s(*bytes, *flops),
        Event::Halo { msgs, bytes } => machine.halo_cost_s(*msgs, *bytes, ranks),
        Event::AllReduce { bytes, .. } => machine.allreduce_cost_s(*bytes, ranks),
        Event::H2D { bytes } | Event::D2H { bytes } => machine.transfer_cost_s(*bytes),
        Event::Begin { .. } | Event::End { .. } => 0.0,
    }
}

/// Replay one rank's event stream through a machine model.
///
/// Communication posted inside an overlap window proceeds concurrently
/// with the kernels launched inside the window, so the window contributes
/// `max(comm, compute)` to the modeled wall time: kernel time is booked
/// as compute and only the *excess* of the communication time over it is
/// booked as communication. Two window kinds exist, and each hides only
/// its own communication class:
///
/// * [`accel::HALO_OVERLAP_STAGE`] — the split-phase halo exchange of
///   `HaloExchange::begin`/`finish`; hides [`Event::Halo`] costs.
/// * [`accel::REDUCE_OVERLAP_STAGE`] — the split-phase batched
///   `iall_reduce` of the reduction-overlap Bi-CGSTAB schedule; hides
///   [`Event::AllReduce`] costs.
///
/// The solver never nests the two (each window brackets a pure compute
/// span), so a single open window suffices; communication of the *other*
/// class inside a window is conservatively booked synchronously.
pub fn replay(events: &[Event], machine: &MachineModel, ranks: usize) -> CostBreakdown {
    let mut out = CostBreakdown::default();
    // Open overlap window: Some((stage, comm_s, compute_s)).
    let mut window: Option<(&str, f64, f64)> = None;
    for ev in events {
        let c = event_cost_s(ev, machine, ranks);
        match ev {
            Event::Begin { name }
                if *name == accel::HALO_OVERLAP_STAGE || *name == accel::REDUCE_OVERLAP_STAGE =>
            {
                window = Some((name, 0.0, 0.0));
            }
            Event::End { name } if window.is_some_and(|(w, _, _)| w == *name) => {
                if let Some((_, comm, compute)) = window.take() {
                    out.compute_s += compute;
                    out.comm_s += (comm - compute).max(0.0);
                }
            }
            Event::Kernel { .. } => match &mut window {
                Some((_, _, compute)) => *compute += c,
                None => out.compute_s += c,
            },
            Event::Halo { .. } => match &mut window {
                Some((w, comm, _)) if *w == accel::HALO_OVERLAP_STAGE => *comm += c,
                _ => out.comm_s += c,
            },
            Event::AllReduce { .. } => match &mut window {
                Some((w, comm, _)) if *w == accel::REDUCE_OVERLAP_STAGE => *comm += c,
                _ => out.comm_s += c,
            },
            Event::H2D { .. } | Event::D2H { .. } => out.transfer_s += c,
            Event::Begin { .. } | Event::End { .. } => {}
        }
    }
    // An unterminated window degrades gracefully to the synchronous model.
    if let Some((_, comm, compute)) = window {
        out.compute_s += compute;
        out.comm_s += comm;
    }
    out
}

/// Scale a measured per-iteration event stream to a different local
/// problem size: volumetric footprints (kernels, transfers) scale by
/// `volume_ratio`, surface footprints (halo bytes) by `face_ratio`.
/// Message and reduction *counts* are preserved — the structure of one
/// iteration does not change with the mesh.
pub fn scale_events(events: &[Event], volume_ratio: f64, face_ratio: f64) -> Vec<Event> {
    let sv = |v: u64| ((v as f64 * volume_ratio).round() as u64).max(1);
    let sf = |v: u64| ((v as f64 * face_ratio).round() as u64).max(1);
    events
        .iter()
        .map(|ev| match ev {
            Event::Kernel {
                name,
                elems,
                bytes,
                flops,
            } => Event::Kernel {
                name,
                elems: sv(*elems),
                bytes: sv(*bytes),
                flops: sv(*flops),
            },
            Event::Halo { msgs, bytes } => Event::Halo {
                msgs: *msgs,
                bytes: sf(*bytes),
            },
            Event::H2D { bytes } => Event::H2D { bytes: sv(*bytes) },
            Event::D2H { bytes } => Event::D2H { bytes: sv(*bytes) },
            other => other.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::Begin { name: "iter" },
            Event::Kernel {
                name: "KernelBiCGS1",
                elems: 1000,
                bytes: 24_000,
                flops: 12_000,
            },
            Event::Halo {
                msgs: 6,
                bytes: 4800,
            },
            Event::AllReduce {
                elems: 2,
                bytes: 16,
            },
            Event::D2H { bytes: 8000 },
            Event::End { name: "iter" },
        ]
    }

    #[test]
    fn replay_buckets_costs() {
        let m = MachineModel::mi250x();
        let b = replay(&sample_events(), &m, 64);
        assert!(b.compute_s > 0.0 && b.comm_s > 0.0 && b.transfer_s > 0.0);
        let manual = m.kernel_cost_s(24_000, 12_000)
            + m.halo_cost_s(6, 4800, 64)
            + m.allreduce_cost_s(16, 64)
            + m.transfer_cost_s(8000);
        assert!((b.total_s() - manual).abs() < 1e-15);
    }

    #[test]
    fn fused_kernel_events_model_the_traffic_dedup() {
        // A kernel built with `KernelInfo::fused` streams the two bodies'
        // bytes minus the deduplicated operand traffic; replaying it must
        // therefore model strictly less compute time than the two unfused
        // launches, with the gap explained entirely by the saved bytes.
        use accel::{KernelInfo, Recorder};
        let m = MachineModel::mi250x();
        let a = KernelInfo::new("KernelAxpy", 24, 2); // y = a*x + y
        let b = KernelInfo::new("KernelDot", 16, 2); // s += y*z
        let ab = KernelInfo::fused("KernelAxpyDot", a, b, 16); // y re-streamed once
        assert_eq!(ab.bytes_per_elem, 24);
        assert_eq!(ab.flops_per_elem, 4);

        let elems = 1 << 20;
        let rec = |infos: &[KernelInfo]| {
            let r = Recorder::enabled();
            for info in infos {
                r.kernel(*info, elems);
            }
            r.drain()
        };
        let unfused = replay(&rec(&[a, b]), &m, 1);
        let fused = replay(&rec(&[ab]), &m, 1);
        assert!(
            fused.compute_s < unfused.compute_s,
            "fused {fused:?} vs unfused {unfused:?}"
        );
        // At a memory-bound operational intensity the saving is exactly
        // the deduplicated bytes over the device bandwidth, plus the one
        // launch overhead the fusion removes.
        let saved = unfused.compute_s - fused.compute_s;
        let floor = m.kernel_cost_s(16 * elems as u64, 0) - m.kernel_cost_s(1, 0);
        assert!(
            saved >= floor,
            "saved {saved} should cover the dedup traffic {floor}"
        );
    }

    #[test]
    fn f64_replays_price_identically_to_the_legacy_8_byte_rule() {
        // Regression for the byte-carrying AllReduce event: a double-
        // precision stream (whose recorders set `bytes = elems × 8`)
        // must replay to exactly what the old hard-coded 8-B/scalar
        // formula produced, across rank counts and element counts.
        let m = MachineModel::mi250x();
        for ranks in [1usize, 2, 8, 64, 512] {
            for elems in [1u32, 2, 4, 64] {
                let ev = Event::AllReduce {
                    elems,
                    bytes: u64::from(elems) * 8,
                };
                let legacy = if ranks <= 1 {
                    0.0
                } else {
                    let stages = (ranks as f64).log2().ceil();
                    stages * m.sync_stage_us * 1e-6
                        + stages * (elems as u64 * 8) as f64 / (m.net_bw_gbps * 1e9)
                };
                let now = event_cost_s(&ev, &m, ranks);
                assert!(
                    (now - legacy).abs() < 1e-18,
                    "ranks {ranks} elems {elems}: {now} != legacy {legacy}"
                );
            }
        }
        // And a single-precision reduction of the same element count is
        // strictly cheaper on the wire (same sync floor, half the bytes).
        let wide = event_cost_s(
            &Event::AllReduce {
                elems: 64,
                bytes: 512,
            },
            &m,
            64,
        );
        let narrow = event_cost_s(
            &Event::AllReduce {
                elems: 64,
                bytes: 256,
            },
            &m,
            64,
        );
        assert!(narrow < wide);
    }

    #[test]
    fn markers_cost_nothing() {
        let m = MachineModel::mi250x();
        let only_markers = vec![Event::Begin { name: "a" }, Event::End { name: "a" }];
        assert_eq!(replay(&only_markers, &m, 4).total_s(), 0.0);
    }

    #[test]
    fn overlap_window_models_max_of_comm_and_compute() {
        let m = MachineModel::mi250x();
        let kernel = Event::Kernel {
            name: "KernelApplyA",
            elems: 1000,
            bytes: 32_000,
            flops: 10_000,
        };
        let halo = Event::Halo {
            msgs: 6,
            bytes: 4800,
        };
        let sync = vec![kernel.clone(), halo.clone()];
        let overlapped = vec![
            Event::Begin {
                name: accel::HALO_OVERLAP_STAGE,
            },
            halo.clone(),
            kernel.clone(),
            Event::End {
                name: accel::HALO_OVERLAP_STAGE,
            },
        ];
        let bs = replay(&sync, &m, 64);
        let bo = replay(&overlapped, &m, 64);
        let k = m.kernel_cost_s(32_000, 10_000);
        let h = m.halo_cost_s(6, 4800, 64);
        assert!((bs.total_s() - (k + h)).abs() < 1e-15, "sync adds");
        assert!(
            (bo.total_s() - k.max(h)).abs() < 1e-15,
            "overlap takes the max"
        );
        assert!(bo.total_s() <= bs.total_s());
        // compute is always fully booked; only comm shrinks
        assert!((bo.compute_s - k).abs() < 1e-15);
        assert!((bo.comm_s - (h - k).max(0.0)).abs() < 1e-15);
    }

    #[test]
    fn reduce_overlap_window_models_max_of_reduce_and_compute() {
        let m = MachineModel::mi250x();
        let kernel = Event::Kernel {
            name: "KernelBiCGS4a",
            elems: 200_000,
            bytes: 4_800_000,
            flops: 400_000,
        };
        let red = Event::AllReduce {
            elems: 4,
            bytes: 32,
        };
        let sync = vec![red.clone(), kernel.clone()];
        let overlapped = vec![
            Event::Begin {
                name: accel::REDUCE_OVERLAP_STAGE,
            },
            red.clone(),
            kernel.clone(),
            Event::End {
                name: accel::REDUCE_OVERLAP_STAGE,
            },
        ];
        let k = m.kernel_cost_s(4_800_000, 400_000);
        let r = m.allreduce_cost_s(32, 512);
        let bs = replay(&sync, &m, 512);
        let bo = replay(&overlapped, &m, 512);
        assert!((bs.total_s() - (k + r)).abs() < 1e-15, "sync adds");
        assert!(
            (bo.total_s() - k.max(r)).abs() < 1e-15,
            "overlap takes the max"
        );
        // compute is always fully booked; only the reduction shrinks
        assert!((bo.compute_s - k).abs() < 1e-15);
        assert!((bo.comm_s - (r - k).max(0.0)).abs() < 1e-15);
        // a halo event inside a *reduce* window is not hidden by it
        let mixed = vec![
            Event::Begin {
                name: accel::REDUCE_OVERLAP_STAGE,
            },
            Event::Halo {
                msgs: 2,
                bytes: 1000,
            },
            Event::End {
                name: accel::REDUCE_OVERLAP_STAGE,
            },
        ];
        let bm = replay(&mixed, &m, 512);
        assert!((bm.comm_s - m.halo_cost_s(2, 1000, 512)).abs() < 1e-15);
    }

    #[test]
    fn unterminated_reduce_window_falls_back_to_sync() {
        let m = MachineModel::mi250x();
        let evs = vec![
            Event::Begin {
                name: accel::REDUCE_OVERLAP_STAGE,
            },
            Event::AllReduce {
                elems: 2,
                bytes: 16,
            },
            Event::Kernel {
                name: "k",
                elems: 10,
                bytes: 320,
                flops: 100,
            },
        ];
        let b = replay(&evs, &m, 8);
        let expect = m.allreduce_cost_s(16, 8) + m.kernel_cost_s(320, 100);
        assert!((b.total_s() - expect).abs() < 1e-15);
    }

    #[test]
    fn unterminated_overlap_window_falls_back_to_sync() {
        let m = MachineModel::mi250x();
        let evs = vec![
            Event::Begin {
                name: accel::HALO_OVERLAP_STAGE,
            },
            Event::Halo {
                msgs: 2,
                bytes: 1000,
            },
            Event::Kernel {
                name: "k",
                elems: 10,
                bytes: 320,
                flops: 100,
            },
        ];
        let b = replay(&evs, &m, 8);
        let expect = m.halo_cost_s(2, 1000, 8) + m.kernel_cost_s(320, 100);
        assert!((b.total_s() - expect).abs() < 1e-15);
    }

    #[test]
    fn scaled_breakdown() {
        let b = CostBreakdown {
            compute_s: 1.0,
            comm_s: 2.0,
            transfer_s: 3.0,
        };
        let s = b.scaled(2.0);
        assert_eq!(s.total_s(), 12.0);
    }

    #[test]
    fn scale_events_volume_vs_face() {
        let scaled = scale_events(&sample_events(), 8.0, 4.0);
        match &scaled[1] {
            Event::Kernel { bytes, .. } => assert_eq!(*bytes, 192_000),
            other => panic!("unexpected {other:?}"),
        }
        match &scaled[2] {
            Event::Halo { msgs, bytes } => {
                assert_eq!(*msgs, 6, "message count unchanged");
                assert_eq!(*bytes, 19_200);
            }
            other => panic!("unexpected {other:?}"),
        }
        // reductions untouched
        assert_eq!(
            scaled[3],
            Event::AllReduce {
                elems: 2,
                bytes: 16
            }
        );
    }
}
