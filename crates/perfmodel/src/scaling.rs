//! Strong-scaling projection (the paper's Fig. 5 experiment).
//!
//! The paper scales a 1024³ mesh from 8 to 256 GCDs. That problem is
//! ~8.6 GB *per vector* — far beyond this environment — so the projection
//! works from a real measured per-iteration event profile at a small
//! mesh, rescaled per rank count:
//!
//! * kernel footprints scale with the local subdomain volume,
//! * halo bytes scale with the local face area,
//! * message/reduction counts per iteration are structural and fixed,
//!
//! and the rescaled stream is replayed through a machine model.

use serde::{Deserialize, Serialize};

use accel::Event;

use crate::cost::{replay, scale_events, CostBreakdown};
use crate::machine::MachineModel;

/// One point of a strong-scaling curve.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Number of ranks (GCDs).
    pub ranks: usize,
    /// Modeled time to solution (s).
    pub tts_s: f64,
    /// Modeled per-iteration breakdown.
    pub per_iter: CostBreakdown,
    /// Parallel efficiency relative to the reference point.
    pub efficiency: f64,
}

/// Project a strong-scaling curve.
///
/// * `profile` — measured per-iteration event stream of one rank, taken
///   from a real run with local mesh `measured_local` and that rank's
///   halo faces present (use an interior rank so all 6 faces exchange).
/// * `global_mesh` — the target global mesh (e.g. `[1024; 3]`).
/// * `rank_counts` — the sweep (e.g. `[8, 16, 32, 64, 128, 256]`);
///   ranks are assumed arranged in a near-cubic grid, so the local mesh
///   is `global / ranks^(1/3)`.
/// * `iterations` — outer iterations to solution (measured; the paper's
///   solver converges in a rank-count-independent number of iterations
///   to first order).
///
/// The first entry of `rank_counts` is the efficiency reference.
pub fn strong_scaling(
    profile: &[Event],
    measured_local: [usize; 3],
    global_mesh: [usize; 3],
    rank_counts: &[usize],
    iterations: usize,
    machine: &MachineModel,
) -> Vec<ScalingPoint> {
    assert!(!rank_counts.is_empty());
    let measured_vol = (measured_local[0] * measured_local[1] * measured_local[2]) as f64;
    // area of one face, averaged over the three axis pairs
    let measured_face = ((measured_local[0] * measured_local[1]
        + measured_local[1] * measured_local[2]
        + measured_local[0] * measured_local[2]) as f64)
        / 3.0;

    let mut points: Vec<ScalingPoint> = Vec::with_capacity(rank_counts.len());
    for &ranks in rank_counts {
        let per_axis = (ranks as f64).cbrt();
        let local: [f64; 3] = std::array::from_fn(|a| global_mesh[a] as f64 / per_axis);
        let vol = local[0] * local[1] * local[2];
        let face = (local[0] * local[1] + local[1] * local[2] + local[0] * local[2]) / 3.0;
        let scaled = scale_events(profile, vol / measured_vol, face / measured_face);
        let per_iter = replay(&scaled, machine, ranks);
        let tts = per_iter.total_s() * iterations as f64;
        points.push(ScalingPoint {
            ranks,
            tts_s: tts,
            per_iter,
            efficiency: 1.0,
        });
    }
    let (r0, t0) = (points[0].ranks as f64, points[0].tts_s);
    for p in &mut points {
        p.efficiency = (t0 * r0) / (p.tts_s * p.ranks as f64);
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic per-iteration profile shaped like one GNoComm(CI)
    /// outer iteration on a 32³ local mesh.
    fn profile_32() -> Vec<Event> {
        let elems = 32 * 32 * 32u64;
        let mut evs = Vec::new();
        for _ in 0..24 {
            evs.push(Event::Kernel {
                name: "KernelCI2",
                elems,
                bytes: elems * 48,
                flops: elems * 16,
            });
        }
        for name in [
            "KernelBiCGS1",
            "KernelBiCGS2",
            "KernelBiCGS3",
            "KernelBiCGS4",
            "KernelBiCGS5",
            "KernelBiCGS6",
        ] {
            evs.push(Event::Kernel {
                name,
                elems,
                bytes: elems * 24,
                flops: elems * 8,
            });
        }
        evs.push(Event::Halo {
            msgs: 6,
            bytes: 6 * 32 * 32 * 8,
        });
        evs.push(Event::Halo {
            msgs: 6,
            bytes: 6 * 32 * 32 * 8,
        });
        evs.push(Event::AllReduce { elems: 1, bytes: 8 });
        evs.push(Event::AllReduce {
            elems: 2,
            bytes: 16,
        });
        evs.push(Event::AllReduce {
            elems: 2,
            bytes: 16,
        });
        evs
    }

    #[test]
    fn efficiency_reference_is_one() {
        let pts = strong_scaling(
            &profile_32(),
            [32; 3],
            [1024; 3],
            &[8, 16, 32, 64, 128, 256],
            140,
            &MachineModel::mi250x(),
        );
        assert_eq!(pts[0].ranks, 8);
        assert!((pts[0].efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_decays_with_rank_count() {
        let pts = strong_scaling(
            &profile_32(),
            [32; 3],
            [1024; 3],
            &[8, 64, 256, 2048],
            140,
            &MachineModel::mi250x(),
        );
        for w in pts.windows(2) {
            assert!(
                w[1].efficiency <= w[0].efficiency + 1e-9,
                "efficiency must not increase: {:?}",
                pts.iter().map(|p| p.efficiency).collect::<Vec<_>>()
            );
        }
        // large problem: near-perfect at small counts, degraded at huge ones
        assert!(pts[0].efficiency > 0.95);
        assert!(pts.last().unwrap().efficiency < 0.9);
    }

    #[test]
    fn tts_shrinks_with_more_ranks() {
        let pts = strong_scaling(
            &profile_32(),
            [32; 3],
            [1024; 3],
            &[8, 64],
            100,
            &MachineModel::mi250x(),
        );
        assert!(pts[1].tts_s < pts[0].tts_s);
    }

    #[test]
    fn paper_shape_fig5() {
        // Fig. 5: ≥ ~95% at 16–32 GCDs, ≥ 90% at 64, ~85% at 128,
        // dropping hard by 256. Allow generous bands — shape, not values.
        let pts = strong_scaling(
            &profile_32(),
            [32; 3],
            [1024; 3],
            &[8, 16, 32, 64, 128, 256],
            140,
            &MachineModel::mi250x(),
        );
        let eff: Vec<f64> = pts.iter().map(|p| p.efficiency).collect();
        assert!(eff[1] > 0.90, "16 GCDs: {eff:?}");
        assert!(eff[3] > 0.80, "64 GCDs: {eff:?}");
        assert!(
            eff[5] < eff[3],
            "efficiency collapses toward 256 GCDs: {eff:?}"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn efficiency_reference_always_unity_and_positive(
            iters in 1usize..500,
            kernels in 1usize..30,
            bpe in 8u64..64,
        ) {
            let elems = 32 * 32 * 32u64;
            let mut profile: Vec<Event> = (0..kernels)
                .map(|_| Event::Kernel { name: "k", elems, bytes: elems * bpe, flops: elems })
                .collect();
            profile.push(Event::Halo { msgs: 6, bytes: 6 * 32 * 32 * 8 });
            profile.push(Event::AllReduce { elems: 2, bytes: 16 });
            let pts = strong_scaling(
                &profile,
                [32; 3],
                [512; 3],
                &[8, 64],
                iters,
                &crate::MachineModel::mi250x(),
            );
            prop_assert!((pts[0].efficiency - 1.0).abs() < 1e-12);
            prop_assert!(pts.iter().all(|p| p.tts_s > 0.0 && p.efficiency > 0.0));
            // TTS scales linearly with iteration count
            let pts2 = strong_scaling(
                &profile,
                [32; 3],
                [512; 3],
                &[8, 64],
                iters * 2,
                &crate::MachineModel::mi250x(),
            );
            prop_assert!((pts2[0].tts_s / pts[0].tts_s - 2.0).abs() < 1e-9);
        }

        #[test]
        fn scale_events_is_multiplicative(
            vol_a in 0.5f64..8.0,
            vol_b in 0.5f64..8.0,
        ) {
            let evs = vec![Event::Kernel { name: "k", elems: 1_000_000, bytes: 24_000_000, flops: 8_000_000 }];
            // scaling by a then b approximates scaling by a*b (up to rounding)
            let once = crate::scale_events(&crate::scale_events(&evs, vol_a, 1.0), vol_b, 1.0);
            let direct = crate::scale_events(&evs, vol_a * vol_b, 1.0);
            match (&once[0], &direct[0]) {
                (Event::Kernel { bytes: b1, .. }, Event::Kernel { bytes: b2, .. }) => {
                    let rel = (*b1 as f64 - *b2 as f64).abs() / (*b2 as f64);
                    prop_assert!(rel < 1e-6, "{b1} vs {b2}");
                }
                _ => prop_assert!(false),
            }
        }
    }
}
