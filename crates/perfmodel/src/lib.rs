//! # perfmodel — machine models, cost replay, and tracing
//!
//! The paper's evaluation ran on LUMI-G (AMD MI250X), MareNostrum5
//! (NVIDIA H100) and LUMI-C (EPYC CPUs), profiled with rocProf and
//! Omnitrace. None of that hardware is available here, so this crate
//! substitutes the *costing* side of the evaluation while every
//! *algorithmic* observable (iteration counts, residual histories,
//! message/byte/kernel counts) is measured for real from the Rust
//! implementation:
//!
//! * [`MachineModel`] — calibrated per-rank hardware models
//!   (MI250X GCD, H100 with/without working GPU-direct, LUMI-C ranks).
//! * [`replay`] — replays a measured event stream into a
//!   [`CostBreakdown`] (compute / communication / transfer seconds), the
//!   basis of the Table II TTS column and Figs. 6–7.
//! * [`strong_scaling`] — projects the Fig. 5 strong-scaling curve from
//!   a measured per-iteration profile.
//! * [`build_timeline`] / [`render_timeline`] — the Omnitrace-substitute
//!   Gantt view of one solver cycle (Fig. 8).

#![warn(missing_docs)]

mod cost;
mod machine;
mod roofline;
mod scaling;
mod trace;

pub use cost::{event_cost_s, replay, scale_events, CostBreakdown};
pub use machine::MachineModel;
pub use roofline::{render_roofline, ridge_point, roofline, RooflineBound, RooflinePoint};
pub use scaling::{strong_scaling, ScalingPoint};
pub use trace::{build_timeline, render_timeline, totals_by_name, Span};
