//! Roofline analysis of the measured kernel stream.
//!
//! A standard HPC characterisation the paper's rocProf workflow enables:
//! for each kernel, its arithmetic intensity (flops per byte) against the
//! machine's memory and compute ceilings, the achieved throughput under
//! the model, and which roof binds it. All solver kernels are strongly
//! memory-bound (AI well below the ridge point), which is why the
//! cross-architecture speedups in Figs. 6–7 follow effective bandwidth
//! ratios.

use accel::Event;
use serde::{Deserialize, Serialize};

use crate::machine::MachineModel;

/// Which ceiling limits a kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RooflineBound {
    /// Below the ridge point: limited by memory bandwidth.
    Memory,
    /// Above the ridge point: limited by FP throughput.
    Compute,
}

/// One kernel's position on the roofline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Kernel name.
    pub kernel: String,
    /// Total launches aggregated.
    pub launches: u64,
    /// Arithmetic intensity (flop / byte).
    pub intensity: f64,
    /// Modeled achieved throughput (GFLOP/s), launch overhead included.
    pub achieved_gflops: f64,
    /// The ceiling for this intensity (GFLOP/s).
    pub ceiling_gflops: f64,
    /// Which roof binds the kernel.
    pub bound: RooflineBound,
    /// `achieved / ceiling` (1.0 = sitting on the roof; launch latency
    /// and ceiling mismatch push it below).
    pub roof_fraction: f64,
}

/// The machine's ridge point: the intensity where the memory roof meets
/// the compute roof (flop/byte).
pub fn ridge_point(machine: &MachineModel) -> f64 {
    machine.flops_gflops / machine.mem_bw_gbps
}

/// Aggregate the kernel events of `events` into per-kernel roofline
/// positions on `machine` (sorted by total modeled time, descending).
pub fn roofline(events: &[Event], machine: &MachineModel) -> Vec<RooflinePoint> {
    struct Acc {
        name: &'static str,
        launches: u64,
        bytes: u64,
        flops: u64,
        time_s: f64,
    }
    let mut accs: Vec<Acc> = Vec::new();
    for ev in events {
        if let Event::Kernel {
            name, bytes, flops, ..
        } = ev
        {
            let t = machine.kernel_cost_s(*bytes, *flops);
            match accs.iter_mut().find(|a| a.name == *name) {
                Some(a) => {
                    a.launches += 1;
                    a.bytes += bytes;
                    a.flops += flops;
                    a.time_s += t;
                }
                None => accs.push(Acc {
                    name,
                    launches: 1,
                    bytes: *bytes,
                    flops: *flops,
                    time_s: t,
                }),
            }
        }
    }
    accs.sort_by(|a, b| b.time_s.total_cmp(&a.time_s));
    let ridge = ridge_point(machine);
    accs.into_iter()
        .map(|a| {
            let intensity = a.flops as f64 / (a.bytes.max(1)) as f64;
            let bound = if intensity < ridge {
                RooflineBound::Memory
            } else {
                RooflineBound::Compute
            };
            let ceiling = match bound {
                RooflineBound::Memory => intensity * machine.mem_bw_gbps,
                RooflineBound::Compute => machine.flops_gflops,
            };
            let achieved = a.flops as f64 / a.time_s.max(f64::MIN_POSITIVE) / 1e9;
            RooflinePoint {
                kernel: a.name.to_owned(),
                launches: a.launches,
                intensity,
                achieved_gflops: achieved,
                ceiling_gflops: ceiling,
                bound,
                roof_fraction: achieved / ceiling.max(f64::MIN_POSITIVE),
            }
        })
        .collect()
}

/// Render the roofline positions as a fixed-width table.
pub fn render_roofline(points: &[RooflinePoint], machine: &MachineModel) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "roofline on {} (ridge point {:.2} flop/B, peaks {:.0} GB/s / {:.0} GFLOP/s)\n",
        machine.name,
        ridge_point(machine),
        machine.mem_bw_gbps,
        machine.flops_gflops
    ));
    out.push_str(&format!(
        "{:<20} {:>9} {:>12} {:>14} {:>14} {:>8} {:>8}\n",
        "kernel", "launches", "AI [f/B]", "achieved GF/s", "ceiling GF/s", "bound", "of-roof"
    ));
    for p in points {
        out.push_str(&format!(
            "{:<20} {:>9} {:>12.4} {:>14.2} {:>14.2} {:>8} {:>7.1}%\n",
            p.kernel,
            p.launches,
            p.intensity,
            p.achieved_gflops,
            p.ceiling_gflops,
            match p.bound {
                RooflineBound::Memory => "memory",
                RooflineBound::Compute => "compute",
            },
            p.roof_fraction * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(name: &'static str, elems: u64, bpe: u64, fpe: u64) -> Event {
        Event::Kernel {
            name,
            elems,
            bytes: elems * bpe,
            flops: elems * fpe,
        }
    }

    #[test]
    fn ridge_point_is_peak_ratio() {
        let m = MachineModel::mi250x();
        assert!((ridge_point(&m) - m.flops_gflops / m.mem_bw_gbps).abs() < 1e-12);
    }

    #[test]
    fn stencil_kernels_are_memory_bound() {
        let m = MachineModel::mi250x();
        let evs = vec![
            kernel("KernelCI2", 1 << 18, 56, 16),
            kernel("KernelBiCGS1", 1 << 18, 40, 12),
        ];
        let pts = roofline(&evs, &m);
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert_eq!(p.bound, RooflineBound::Memory, "{}", p.kernel);
            assert!(p.roof_fraction > 0.0 && p.roof_fraction <= 1.0);
        }
        // CI2 moves more bytes => more modeled time => sorted first
        assert_eq!(pts[0].kernel, "KernelCI2");
    }

    #[test]
    fn synthetic_compute_bound_kernel() {
        let m = MachineModel::mi250x();
        // absurd flop density: 10_000 flops per byte
        let evs = vec![kernel("fma_storm", 1 << 20, 1, 10_000)];
        let pts = roofline(&evs, &m);
        assert_eq!(pts[0].bound, RooflineBound::Compute);
        assert!((pts[0].ceiling_gflops - m.flops_gflops).abs() < 1e-9);
    }

    #[test]
    fn launches_aggregate_by_name() {
        let m = MachineModel::mi250x();
        let evs = vec![
            kernel("KernelBiCGS2", 100, 24, 2),
            kernel("KernelBiCGS2", 100, 24, 2),
            kernel("KernelBiCGS2", 100, 24, 2),
        ];
        let pts = roofline(&evs, &m);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].launches, 3);
    }

    #[test]
    fn render_includes_every_kernel() {
        let m = MachineModel::h100_gpudirect();
        let evs = vec![kernel("a", 10, 8, 1), kernel("b", 10, 8, 100_000)];
        let txt = render_roofline(&roofline(&evs, &m), &m);
        assert!(txt.contains('a') && txt.contains('b'));
        assert!(txt.contains("ridge point"));
    }

    #[test]
    fn launch_latency_pushes_small_kernels_off_the_roof() {
        let m = MachineModel::mi250x();
        let small = roofline(&[kernel("tiny", 64, 24, 4)], &m);
        let large = roofline(&[kernel("big", 1 << 24, 24, 4)], &m);
        assert!(small[0].roof_fraction < 0.1, "{}", small[0].roof_fraction);
        assert!(large[0].roof_fraction > 0.9, "{}", large[0].roof_fraction);
    }
}
