//! Trace building and timeline rendering — the Omnitrace substitute.
//!
//! The paper's Fig. 8 shows an annotated Omnitrace timeline of one
//! BiCGS-GNoComm(CI) cycle: which kernels and MPI stages run, in order,
//! and how long each takes. Here the same picture is reconstructed from
//! the solver's event stream: every costed event advances a simulated
//! clock, `Begin`/`End` markers group events into named stages, and the
//! renderer draws an ASCII Gantt chart.

use accel::Event;
use serde::{Deserialize, Serialize};

use crate::cost::event_cost_s;
use crate::machine::MachineModel;

/// One span on the simulated timeline.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct Span {
    /// Stage or kernel name.
    pub name: String,
    /// Nesting depth (stages at 0, kernels inside a stage at 1, ...).
    pub depth: usize,
    /// Start time (s) on the simulated clock.
    pub start_s: f64,
    /// End time (s).
    pub end_s: f64,
    /// `true` for `Begin`/`End` stage spans (containers), `false` for
    /// costed leaf events.
    pub is_stage: bool,
}

impl Span {
    /// Span duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Replay `events` into a simulated timeline of [`Span`]s.
///
/// Every costed event becomes a leaf span; `Begin`/`End` pairs become
/// enclosing spans. Unbalanced `End`s are ignored; unclosed `Begin`s are
/// closed at the end of the stream.
pub fn build_timeline(events: &[Event], machine: &MachineModel, ranks: usize) -> Vec<Span> {
    let mut clock = 0.0f64;
    let mut spans = Vec::new();
    let mut stack: Vec<(usize, &'static str, f64)> = Vec::new(); // (span slot, name, start)
    for ev in events {
        match ev {
            Event::Begin { name } => {
                let slot = spans.len();
                spans.push(Span {
                    name: (*name).to_owned(),
                    depth: stack.len(),
                    start_s: clock,
                    end_s: clock,
                    is_stage: true,
                });
                stack.push((slot, name, clock));
            }
            Event::End { name } => {
                if let Some(pos) = stack.iter().rposition(|(_, n, _)| n == name) {
                    let (slot, _, _) = stack.remove(pos);
                    spans[slot].end_s = clock;
                }
            }
            other => {
                let cost = event_cost_s(other, machine, ranks);
                let name = match other {
                    Event::Kernel { name, .. } => (*name).to_owned(),
                    Event::Halo { .. } => "HaloExchange".to_owned(),
                    Event::AllReduce { .. } => "MPI_Allreduce".to_owned(),
                    Event::H2D { .. } => "H2D".to_owned(),
                    Event::D2H { .. } => "D2H".to_owned(),
                    Event::Begin { .. } | Event::End { .. } => unreachable!(),
                };
                spans.push(Span {
                    name,
                    depth: stack.len(),
                    start_s: clock,
                    end_s: clock + cost,
                    is_stage: false,
                });
                clock += cost;
            }
        }
    }
    // close unbalanced Begins
    while let Some((slot, _, _)) = stack.pop() {
        spans[slot].end_s = clock;
    }
    spans
}

/// Render spans as an ASCII Gantt chart `width` characters wide.
pub fn render_timeline(spans: &[Span], width: usize) -> String {
    let total = spans
        .iter()
        .map(|s| s.end_s)
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let name_w = spans
        .iter()
        .map(|s| s.name.len() + 2 * s.depth)
        .max()
        .unwrap_or(8)
        .max(8);
    let mut out = String::new();
    out.push_str(&format!(
        "{:name_w$}  {:>10}  timeline ({} = {:.3} µs/char)\n",
        "span",
        "µs",
        "#",
        total * 1e6 / width as f64,
    ));
    for s in spans {
        let c0 = ((s.start_s / total) * width as f64).floor() as usize;
        let c1 = ((s.end_s / total) * width as f64).ceil() as usize;
        let c1 = c1.clamp(c0 + 1, width);
        let mut bar = String::with_capacity(width);
        bar.extend(std::iter::repeat_n(' ', c0));
        bar.extend(std::iter::repeat_n('#', c1 - c0));
        let label = format!("{}{}", "  ".repeat(s.depth), s.name);
        out.push_str(&format!(
            "{label:name_w$}  {:>10.2}  |{bar:<width$}|\n",
            s.duration_s() * 1e6,
        ));
    }
    out
}

/// Aggregate total duration per span name (for per-kernel summaries).
pub fn totals_by_name(spans: &[Span]) -> Vec<(String, f64)> {
    let mut totals: Vec<(String, f64)> = Vec::new();
    for s in spans {
        // only leaves: enclosing stage spans would double count
        if s.is_stage {
            continue;
        }
        match totals.iter_mut().find(|(n, _)| *n == s.name) {
            Some((_, t)) => *t += s.duration_s(),
            None => totals.push((s.name.clone(), s.duration_s())),
        }
    }
    totals.sort_by(|a, b| b.1.total_cmp(&a.1));
    totals
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events() -> Vec<Event> {
        vec![
            Event::Begin {
                name: "Preconditioner",
            },
            Event::Kernel {
                name: "KernelCI1",
                elems: 100,
                bytes: 3200,
                flops: 1200,
            },
            Event::Kernel {
                name: "KernelCI2",
                elems: 100,
                bytes: 4800,
                flops: 1600,
            },
            Event::End {
                name: "Preconditioner",
            },
            Event::Begin { name: "MPI1" },
            Event::Halo {
                msgs: 6,
                bytes: 4800,
            },
            Event::End { name: "MPI1" },
            Event::Kernel {
                name: "KernelBiCGS1",
                elems: 100,
                bytes: 2400,
                flops: 1200,
            },
        ]
    }

    #[test]
    fn timeline_is_monotonic_and_nested() {
        let spans = build_timeline(&events(), &MachineModel::mi250x(), 8);
        // first span is the Preconditioner stage enclosing two kernels
        assert_eq!(spans[0].name, "Preconditioner");
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[1].depth, 1);
        assert!(spans[0].start_s <= spans[1].start_s);
        assert!(spans[0].end_s >= spans[2].end_s);
        // clock advances
        let last = spans.last().unwrap();
        assert!(last.end_s > 0.0);
    }

    #[test]
    fn unbalanced_begin_is_closed() {
        let evs = vec![
            Event::Begin { name: "open" },
            Event::Kernel {
                name: "k",
                elems: 1,
                bytes: 100,
                flops: 1,
            },
        ];
        let spans = build_timeline(&evs, &MachineModel::mi250x(), 2);
        assert_eq!(spans[0].name, "open");
        assert!((spans[0].end_s - spans[1].end_s).abs() < 1e-18);
    }

    #[test]
    fn render_contains_all_names() {
        let spans = build_timeline(&events(), &MachineModel::mi250x(), 8);
        let txt = render_timeline(&spans, 60);
        for name in [
            "Preconditioner",
            "KernelCI1",
            "KernelCI2",
            "HaloExchange",
            "KernelBiCGS1",
        ] {
            assert!(txt.contains(name), "missing {name} in:\n{txt}");
        }
    }

    #[test]
    fn totals_aggregate_leaves_only() {
        let spans = build_timeline(&events(), &MachineModel::mi250x(), 8);
        let totals = totals_by_name(&spans);
        assert!(totals.iter().any(|(n, _)| n == "KernelCI1"));
        assert!(
            !totals.iter().any(|(n, _)| n == "Preconditioner"),
            "stage spans must not double count"
        );
    }
}
