//! Calibrated machine models.
//!
//! No MI250X, H100 or EPYC hardware exists in this environment, so
//! time-to-solution results are produced by replaying the solver's
//! *measured* logical event stream (kernel launches with byte/flop
//! footprints, halo messages, reductions) through these models.
//!
//! The models use **achieved** (effective) bandwidths, not datasheet
//! peaks: the paper's own measurements imply its alpaka stencil kernels
//! reach ~200 GB/s on an MI250X GCD (launch overhead and short-kernel
//! underutilisation included) and single-digit GB/s per CPU rank for its
//! OpenMP back-end. Constants are calibrated so the paper's headline
//! ratios are reproduced:
//!
//! * single-rank 64³ computation speedups ≈ **50×** (MI250X) and
//!   **47×** (H100) over the 128-thread CPU node (Fig. 7);
//! * multi-rank computation speedup ≈ **29×** (MI250X vs CPU ranks,
//!   Fig. 6) with the CPU ~**20×** slower overall;
//! * MareNostrum5's broken GPU-direct makes the H100 runs
//!   communication-dominated and ≈ **42×** slower overall than LUMI-G
//!   (modelled as a large per-message host-staging latency);
//! * collective synchronisation ≈ 0.4 ms per reduction/exchange at 64
//!   ranks (`sync`/`allreduce` stages × log₂ P), which is what makes the
//!   un-preconditioned solver communication-bound as in Table II.
//!
//! EXPERIMENTS.md compares every replayed number against the paper.

use serde::{Deserialize, Serialize};

/// A per-rank hardware model used to cost one rank's event stream.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct MachineModel {
    /// Model name used in reports.
    pub name: String,
    /// Effective (achieved) memory streaming bandwidth per rank (GB/s).
    pub mem_bw_gbps: f64,
    /// FP64 throughput per rank (GFLOP/s).
    pub flops_gflops: f64,
    /// Kernel launch latency (µs).
    pub kernel_launch_us: f64,
    /// Network latency per point-to-point message (µs).
    pub net_latency_us: f64,
    /// Network bandwidth per rank (GB/s).
    pub net_bw_gbps: f64,
    /// Synchronisation cost per collective tree stage (µs); both halo
    /// `Waitall`s and allreduces pay `sync_stage_us × log₂(P)` (stragglers
    /// and device synchronisation — the `MPI_Waitall` cost dominating the
    /// paper's Fig. 8 trace).
    pub sync_stage_us: f64,
    /// Whether MPI can read GPU memory directly (GPU-direct / RDMA).
    pub gpu_direct: bool,
    /// Extra per-message latency when staging through the host (µs).
    pub staged_copy_latency_us: f64,
    /// Host-staging bandwidth (GB/s) when `gpu_direct` is false.
    pub staged_copy_bw_gbps: f64,
    /// Host↔device transfer bandwidth (GB/s).
    pub h2d_bw_gbps: f64,
}

impl MachineModel {
    /// One AMD MI250X Graphics Compute Die on LUMI-G (one MPI rank per
    /// GCD, as in the paper). Effective stencil bandwidth ≈ 197 GB/s
    /// (calibrated; HBM2e peak is 1.6 TB/s per GCD).
    pub fn mi250x() -> Self {
        Self {
            name: "LUMI-G (MI250X GCD)".into(),
            mem_bw_gbps: 197.0,
            flops_gflops: 23_900.0,
            kernel_launch_us: 6.0, // HIP launch overhead
            net_latency_us: 2.0,   // Slingshot-11
            net_bw_gbps: 25.0,
            sync_stage_us: 65.0,
            gpu_direct: true,
            staged_copy_latency_us: 0.0,
            staged_copy_bw_gbps: 0.0,
            h2d_bw_gbps: 36.0, // Infinity Fabric host link
        }
    }

    /// One NVIDIA H100 on MareNostrum5 *as the paper found it*: GPU-direct
    /// MPI broken, every halo message bounces through host memory with a
    /// large software latency (calibrated so the 256³/64-rank run lands
    /// ≈ 42× slower than LUMI-G, the paper's observation).
    pub fn h100_mn5() -> Self {
        Self {
            name: "MareNostrum5 (H100, staged copies)".into(),
            gpu_direct: false,
            staged_copy_latency_us: 19_000.0, // pathological bounce (calibrated)
            staged_copy_bw_gbps: 2.0,
            ..Self::h100_gpudirect()
        }
    }

    /// The counterfactual healthy H100 node (working GPU-direct) — used
    /// by the single-rank experiment and the ablation benches. Effective
    /// stencil bandwidth ≈ 194 GB/s: the paper measured the H100 runs
    /// *slightly slower* than the MI250X GCD on these small kernels
    /// (47× vs 50× over the CPU) despite the larger datasheet HBM3 peak.
    pub fn h100_gpudirect() -> Self {
        Self {
            name: "H100 (GPU-direct)".into(),
            mem_bw_gbps: 194.0,
            flops_gflops: 33_500.0,
            kernel_launch_us: 9.0,
            net_latency_us: 2.0,
            net_bw_gbps: 25.0,
            sync_stage_us: 65.0,
            gpu_direct: true,
            staged_copy_latency_us: 0.0,
            staged_copy_bw_gbps: 0.0,
            h2d_bw_gbps: 55.0, // PCIe gen5
        }
    }

    /// One LUMI-C MPI rank of the paper's multi-node CPU run
    /// (64 ranks × 16 OpenMP threads across 8 dual-EPYC nodes).
    /// Effective 6.2 GB/s per rank — calibrated to the paper's 29×
    /// MI250X-vs-CPU computation ratio.
    pub fn lumi_c_rank() -> Self {
        Self {
            name: "LUMI-C (CPU rank, 16 threads)".into(),
            mem_bw_gbps: 6.2,
            flops_gflops: 500.0,
            kernel_launch_us: 1.0, // parallel-region fork/join
            net_latency_us: 1.5,
            net_bw_gbps: 12.5,
            sync_stage_us: 30.0,
            gpu_direct: true, // data already in host memory
            staged_copy_latency_us: 0.0,
            staged_copy_bw_gbps: 0.0,
            h2d_bw_gbps: f64::INFINITY,
        }
    }

    /// The paper's single-process CPU configuration (one rank, 128
    /// OpenMP threads spanning all NUMA domains of a LUMI-C node).
    /// Effective 3.52 GB/s — *worse* than the 16-thread ranks per unit
    /// of work, as the paper's own 50×-vs-29× ratios imply (a single
    /// process spanning 8 NUMA domains streams poorly).
    pub fn lumi_c_node() -> Self {
        Self {
            name: "LUMI-C (CPU node, 128 threads)".into(),
            mem_bw_gbps: 3.52,
            flops_gflops: 2_000.0,
            kernel_launch_us: 4.0, // 128-thread fork/join
            ..Self::lumi_c_rank()
        }
    }

    /// Cost of one kernel launch (seconds) under the roofline model.
    pub fn kernel_cost_s(&self, bytes: u64, flops: u64) -> f64 {
        let stream = bytes as f64 / (self.mem_bw_gbps * 1e9);
        let compute = flops as f64 / (self.flops_gflops * 1e9);
        self.kernel_launch_us * 1e-6 + stream.max(compute)
    }

    /// Synchronisation cost of one collective over `ranks` ranks.
    fn sync_cost_s(&self, ranks: usize) -> f64 {
        if ranks <= 1 {
            return 0.0;
        }
        (ranks as f64).log2().ceil() * self.sync_stage_us * 1e-6
    }

    /// Cost of one halo exchange posting `msgs` messages totalling
    /// `bytes`, synchronised with `Waitall` across `ranks` (seconds).
    pub fn halo_cost_s(&self, msgs: u32, bytes: u64, ranks: usize) -> f64 {
        if msgs == 0 {
            return 0.0;
        }
        let wire = bytes as f64 / (self.net_bw_gbps * 1e9);
        let mut cost = msgs as f64 * self.net_latency_us * 1e-6 + wire + self.sync_cost_s(ranks);
        if !self.gpu_direct {
            // each message bounces device -> host -> NIC (and mirror on
            // the receive side, folded into the same per-message penalty)
            cost += msgs as f64 * self.staged_copy_latency_us * 1e-6
                + 2.0 * bytes as f64 / (self.staged_copy_bw_gbps * 1e9);
        }
        cost
    }

    /// Cost of one allreduce moving `bytes` payload bytes per tree stage
    /// over `ranks` ranks (seconds). The payload width is carried by the
    /// event (`elems × element width`) rather than assumed to be
    /// 8 B/scalar, so mixed-precision reductions are priced honestly.
    pub fn allreduce_cost_s(&self, bytes: u64, ranks: usize) -> f64 {
        if ranks <= 1 {
            return 0.0;
        }
        let stages = (ranks as f64).log2().ceil();
        self.sync_cost_s(ranks) + stages * bytes as f64 / (self.net_bw_gbps * 1e9)
    }

    /// Cost of a host↔device transfer (seconds).
    pub fn transfer_cost_s(&self, bytes: u64) -> f64 {
        if self.h2d_bw_gbps.is_infinite() {
            return 0.0;
        }
        10e-6 + bytes as f64 / (self.h2d_bw_gbps * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bytes of one fused Chebyshev sweep on the paper's 64³ mesh.
    const CI_SWEEP_BYTES: u64 = 64 * 64 * 64 * 56;

    #[test]
    fn kernel_cost_is_roofline() {
        let m = MachineModel::mi250x();
        // bandwidth-bound kernel
        let c = m.kernel_cost_s(16_000_000, 1_000);
        let expect = 6e-6 + 16e6 / 197e9;
        assert!((c - expect).abs() < 1e-12);
        // flop-bound kernel: 23_900 GFLOP at 23_900 GFLOP/s = 1 s
        let c = m.kernel_cost_s(8, 23_900 * 1_000_000_000);
        assert!((c - (6e-6 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn staged_copies_dominate_broken_gpu_direct() {
        let healthy = MachineModel::h100_gpudirect();
        let broken = MachineModel::h100_mn5();
        let (msgs, bytes) = (6, 6 * 64 * 64 * 8);
        assert!(broken.halo_cost_s(msgs, bytes, 64) > 50.0 * healthy.halo_cost_s(msgs, bytes, 64));
    }

    #[test]
    fn allreduce_scales_logarithmically() {
        let m = MachineModel::mi250x();
        let c64 = m.allreduce_cost_s(16, 64);
        let c8 = m.allreduce_cost_s(16, 8);
        assert!((c64 / c8 - 2.0).abs() < 1e-6, "log2 64 / log2 8 = 2");
        assert_eq!(m.allreduce_cost_s(16, 1), 0.0);
    }

    #[test]
    fn calibration_single_rank_gpu_speedups() {
        // Fig. 7: computation speedups of 50x (MI250X) and 47x (H100)
        // over the 128-thread CPU node on the 64^3 mesh.
        let cpu = MachineModel::lumi_c_node().kernel_cost_s(CI_SWEEP_BYTES, 0);
        let amd = MachineModel::mi250x().kernel_cost_s(CI_SWEEP_BYTES, 0);
        let nv = MachineModel::h100_gpudirect().kernel_cost_s(CI_SWEEP_BYTES, 0);
        let amd_speedup = cpu / amd;
        let nv_speedup = cpu / nv;
        assert!(
            (amd_speedup - 50.0).abs() < 3.0,
            "AMD speedup {amd_speedup}"
        );
        assert!(
            (nv_speedup - 47.0).abs() < 3.0,
            "NVIDIA speedup {nv_speedup}"
        );
        assert!(
            amd_speedup > nv_speedup,
            "paper: AMD edges out H100 on small kernels"
        );
    }

    #[test]
    fn calibration_multi_rank_cpu_ratio() {
        // Fig. 6: MI250X computation 29x faster than a 16-thread CPU rank.
        let cpu = MachineModel::lumi_c_rank().kernel_cost_s(CI_SWEEP_BYTES, 0);
        let amd = MachineModel::mi250x().kernel_cost_s(CI_SWEEP_BYTES, 0);
        let ratio = cpu / amd;
        assert!(
            (ratio - 29.0).abs() < 3.0,
            "multi-rank compute ratio {ratio}"
        );
    }

    #[test]
    fn sync_cost_at_64_ranks_matches_calibration() {
        // ~0.4 ms per collective at 64 ranks — what makes plain BiCGSTAB
        // communication-bound in Table II.
        let m = MachineModel::mi250x();
        let c = m.allreduce_cost_s(16, 64);
        assert!((0.3e-3..0.6e-3).contains(&c), "allreduce at 64 ranks: {c}");
    }

    #[test]
    fn zero_message_halo_is_free() {
        assert_eq!(MachineModel::mi250x().halo_cost_s(0, 0, 64), 0.0);
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let m = MachineModel::mi250x();
        assert_eq!(m.allreduce_cost_s(16, 1), 0.0);
        // loopback halo has wire cost only, no sync
        assert!(m.halo_cost_s(1, 800, 1) < m.halo_cost_s(1, 800, 2));
    }

    #[test]
    fn cpu_transfers_are_free() {
        assert_eq!(MachineModel::lumi_c_node().transfer_cost_s(1 << 30), 0.0);
        assert!(MachineModel::mi250x().transfer_cost_s(1 << 30) > 0.0);
    }
}
