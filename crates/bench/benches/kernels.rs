//! Criterion micro-benchmarks of the solver's device kernels — the
//! per-kernel costs behind the paper's Fig. 8 trace.

use accel::{Recorder, Serial, Threads};
use blockgrid::{BlockGrid, Decomp, Field, GlobalGrid};
use comm::{run_ranks, ReduceOrder};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use krylov::kernels::{
    axpy3_inplace, axpy_dot, axpy_inplace, dot, residual_p_update_fused, residual_update_fused,
    INFO_BICGS2, INFO_BICGS2F, INFO_BICGS5, INFO_BICGS56, INFO_BICGS6, INFO_DOT,
};
use krylov::{global_bounds, ChebyMode, ChebyshevIteration, RankCtx};
use stencil::{apply_physical_bcs, Laplacian, INFO_APPLY};

fn grid(n: usize) -> BlockGrid {
    BlockGrid::new(
        GlobalGrid::dirichlet([n, n, n], [0.1; 3], [0.0; 3]),
        Decomp::single(),
        0,
    )
}

fn filled(dev: &Serial, g: &BlockGrid, seed: usize) -> Field<f64> {
    let n = g.local_n.iter().product();
    let vals: Vec<f64> = (0..n)
        .map(|i| ((i * 31 + seed) % 97) as f64 / 97.0)
        .collect();
    Field::from_interior(dev, g, &vals)
}

fn bench_stencil(c: &mut Criterion) {
    let mut group = c.benchmark_group("stencil_apply");
    for n in [16usize, 32] {
        let g = grid(n);
        let dev = Serial::new(Recorder::disabled());
        let lap = Laplacian::new(&g);
        let mut u = filled(&dev, &g, 1);
        apply_physical_bcs(&g, &mut u, &Recorder::disabled(), false);
        let r0t = filled(&dev, &g, 2);
        let mut w = Field::zeros(&dev, &g);
        group.throughput(Throughput::Elements((n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("plain", n), &n, |b, _| {
            b.iter(|| lap.apply(&dev, INFO_APPLY, &u, &mut w));
        });
        group.bench_with_input(
            BenchmarkId::new("fused_dot(KernelBiCGS1)", n),
            &n,
            |b, _| {
                b.iter(|| lap.apply_fused_dot(&dev, INFO_APPLY, &u, &mut w, &r0t));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fused_dot2(KernelBiCGS3)", n),
            &n,
            |b, _| {
                b.iter(|| lap.apply_fused_dot2(&dev, INFO_APPLY, &u, &mut w, &r0t));
            },
        );
    }
    group.finish();
}

fn bench_vector_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("vector_kernels");
    let n = 32;
    let g = grid(n);
    let dev = Serial::new(Recorder::disabled());
    let mut y = filled(&dev, &g, 1);
    let x = filled(&dev, &g, 2);
    let t = filled(&dev, &g, 3);
    let r0t = filled(&dev, &g, 4);
    group.throughput(Throughput::Elements((n * n * n) as u64));
    group.bench_function("axpy(KernelBiCGS2)", |b| {
        b.iter(|| axpy_inplace(&dev, INFO_BICGS2, &g, &mut y, &x, 1e-9));
    });
    group.bench_function("residual_update(KernelBiCGS5)", |b| {
        b.iter(|| residual_update_fused(&dev, INFO_BICGS5, &g, &mut y, &t, 1e-9, &r0t));
    });
    group.bench_function("p_update(KernelBiCGS6)", |b| {
        b.iter(|| axpy3_inplace(&dev, INFO_BICGS6, &g, &mut y, &x, &t, 0.5, 0.1));
    });
    group.bench_function("dot", |b| {
        b.iter(|| dot(&dev, INFO_DOT, &g, &x, &t));
    });
    group.bench_function("axpy_dot(KernelBiCGS2F)", |b| {
        b.iter(|| axpy_dot(&dev, INFO_BICGS2F, &g, &mut y, &x, 1e-9, &r0t));
    });
    group.bench_function("residual_p_update(KernelBiCGS56)", |b| {
        let mut p = filled(&dev, &g, 5);
        b.iter(|| {
            residual_p_update_fused(&dev, INFO_BICGS56, &g, &mut y, &mut p, &t, &x, 0.1, 0.5)
        });
    });
    group.finish();
}

fn bench_backends(c: &mut Criterion) {
    // the same stencil kernel on the serial and the threaded back-end
    let mut group = c.benchmark_group("backend_stencil");
    let n = 32;
    group.throughput(Throughput::Elements((n * n * n) as u64));
    {
        let g = grid(n);
        let dev = Serial::new(Recorder::disabled());
        let lap = Laplacian::new(&g);
        let mut u = filled(&dev, &g, 1);
        apply_physical_bcs(&g, &mut u, &Recorder::disabled(), false);
        let mut w = Field::zeros(&dev, &g);
        group.bench_function("serial", |b| {
            b.iter(|| lap.apply(&dev, INFO_APPLY, &u, &mut w));
        });
    }
    {
        let g = grid(n);
        let dev = Threads::new(2, Recorder::disabled());
        let lap = Laplacian::new(&g);
        let serial = Serial::new(Recorder::disabled());
        let mut u = filled(&serial, &g, 1);
        apply_physical_bcs(&g, &mut u, &Recorder::disabled(), false);
        let mut w = Field::zeros(&serial, &g);
        group.bench_function("threads2", |b| {
            b.iter(|| lap.apply(&dev, INFO_APPLY, &u, &mut w));
        });
    }
    group.finish();
}

fn bench_cheby_sweeps(c: &mut Criterion) {
    let mut group = c.benchmark_group("chebyshev_preconditioner");
    let n = 32;
    let g = grid(n);
    let ctx: RankCtx<f64, _, comm::SelfComm<f64>> = RankCtx::new(
        Serial::new(Recorder::disabled()),
        comm::SelfComm::default(),
        g,
    );
    let bounds = global_bounds(&ctx);
    group.throughput(Throughput::Elements((n * n * n) as u64));
    for sweeps in [6usize, 24] {
        let mut ci = ChebyshevIteration::new(&ctx, ChebyMode::GlobalNoComm, bounds, sweeps);
        let mut b_field = filled(&ctx.dev, &ctx.grid, 5);
        let mut out = ctx.field();
        group.bench_with_input(BenchmarkId::new("gnocomm", sweeps), &sweeps, |b, _| {
            b.iter(|| ci.solve(&ctx, &mut b_field, &mut out));
        });
    }
    group.finish();
}

fn bench_halo_exchange(c: &mut Criterion) {
    // full 2-rank halo exchange, including the SPMD spawn (dominated by
    // the exchange itself for repeated iterations inside the closure)
    let mut group = c.benchmark_group("halo_exchange");
    group.sample_size(10);
    for n in [16usize, 32] {
        group.bench_with_input(BenchmarkId::new("x_split_100_exchanges", n), &n, |b, &n| {
            b.iter(|| {
                run_ranks::<f64, _, _>(2, ReduceOrder::RankOrder, |comm_handle| {
                    let global = GlobalGrid::dirichlet([n, n, n], [0.1; 3], [0.0; 3]);
                    let grid = BlockGrid::new(global, Decomp::new([2, 1, 1]), {
                        use comm::Communicator;
                        comm_handle.rank()
                    });
                    let dev = Serial::new(Recorder::disabled());
                    let mut f = filled(&dev, &grid, 7);
                    let halo = blockgrid::HaloExchange::new(&grid);
                    for _ in 0..100 {
                        halo.exchange(&dev, &comm_handle, &mut f);
                    }
                });
            });
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_stencil, bench_vector_kernels, bench_backends, bench_cheby_sweeps, bench_halo_exchange
);
criterion_main!(benches);
