//! Load test of the serving layer (`crates/serve`): open-loop synthetic
//! arrivals against a `SolveService`, cold vs warm.
//!
//! Methodology (EXPERIMENTS.md §"Serving-layer load test"): a fixed
//! job trace — mixed grid sizes, mixed priorities, a few poison
//! tenants — is submitted open-loop (fixed inter-arrival time,
//! independent of completions) to two identically configured services
//! that differ only in the warm-session cache:
//!
//! - **cold**: `session_capacity = 0`, every job pays the full setup
//!   (grid, operator, RHS assembly, normalisation, offload);
//! - **warm**: `session_capacity = 8`, repeat discretisations reuse the
//!   constructed solver and re-run only the solve.
//!
//! Solves are deliberately short (small iteration budget) so the trace
//! is setup-dominated — the regime a multi-tenant service amortises.
//! Emits `BENCH_serve.json` with per-phase throughput and p50/p99
//! latency plus the warm/cold throughput ratio.
//!
//! `SERVE_BENCH_SMOKE=1` shrinks the trace for CI smoke runs.

use std::time::{Duration, Instant};

use krylov::SolverKind;
use poisson::{paper_problem, PoissonProblem};
use serde::Serialize;
use serve::{JobResult, Priority, ServiceConfig, SolveRequest, SolveService};

/// One deterministic synthetic trace: `jobs` requests cycling through
/// `problems` (and priorities), with a poison tenant every
/// `poison_every` jobs.
struct Trace {
    jobs: usize,
    poison_every: usize,
    inter_arrival: Duration,
}

fn poison_problem() -> PoissonProblem {
    let mut p = paper_problem(9);
    p.rhs = std::sync::Arc::new(|_, _, _| panic!("poison tenant"));
    p.exact = None;
    p
}

fn request_for(problems: &[PoissonProblem], i: usize, trace: &Trace) -> SolveRequest {
    let mut req = if trace.poison_every != 0 && i % trace.poison_every == trace.poison_every / 2 {
        SolveRequest::new(poison_problem(), SolverKind::BiCgs)
    } else {
        SolveRequest::new(problems[i % problems.len()].clone(), SolverKind::BiCgs)
    };
    // Short, fixed-length solves: the residual target is unreachable,
    // so every good job runs exactly `max_iters` outer iterations and
    // the trace cost is dominated by setup — which is the quantity the
    // warm path removes.
    req.tol = 1e-300;
    req.max_iters = 3;
    req.priority = match i % 3 {
        0 => Priority::High,
        1 => Priority::Normal,
        _ => Priority::Low,
    };
    req
}

#[derive(Serialize)]
struct PhaseRecord {
    name: &'static str,
    jobs: usize,
    completed: u64,
    failed: u64,
    panicked: u64,
    quarantined: u64,
    warm_hits: u64,
    cold_builds: u64,
    wall_ms: f64,
    throughput_jobs_per_s: f64,
    latency_p50_ms: f64,
    latency_p99_ms: f64,
    mean_setup_ms: f64,
    mean_solve_ms: f64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn run_phase(
    name: &'static str,
    problems: &[PoissonProblem],
    session_capacity: usize,
    trace: &Trace,
) -> PhaseRecord {
    let svc = SolveService::start(ServiceConfig {
        workers: 2,
        queue_capacity: trace.jobs + 8,
        session_capacity,
        ..ServiceConfig::default()
    });
    let start = Instant::now();
    let mut handles = Vec::with_capacity(trace.jobs);
    for i in 0..trace.jobs {
        handles.push(
            svc.submit(request_for(problems, i, trace))
                .expect("queue sized for the whole trace"),
        );
        // Open loop: arrivals are paced by the trace, not by service
        // completions.
        #[allow(clippy::disallowed_methods)]
        std::thread::sleep(trace.inter_arrival);
    }
    let mut latencies_ms = Vec::new();
    let mut setup_ms = Vec::new();
    let mut solve_ms = Vec::new();
    for handle in &handles {
        if let JobResult::Done(out) = handle.wait() {
            let m = &out.metrics;
            let total = m.queue_wait + m.setup + m.solve;
            latencies_ms.push(total.as_secs_f64() * 1e3);
            setup_ms.push(m.setup.as_secs_f64() * 1e3);
            solve_ms.push(m.solve.as_secs_f64() * 1e3);
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let stats = svc.shutdown();
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    PhaseRecord {
        name,
        jobs: trace.jobs,
        completed: stats.completed,
        failed: stats.failed,
        panicked: stats.panicked,
        quarantined: stats.quarantined,
        warm_hits: stats.warm_hits,
        cold_builds: stats.cold_builds,
        wall_ms: wall * 1e3,
        throughput_jobs_per_s: stats.completed as f64 / wall,
        latency_p50_ms: percentile(&latencies_ms, 0.50),
        latency_p99_ms: percentile(&latencies_ms, 0.99),
        mean_setup_ms: mean(&setup_ms),
        mean_solve_ms: mean(&solve_ms),
    }
}

#[derive(Serialize)]
struct ServeRecord {
    smoke: bool,
    workers: usize,
    grids: Vec<usize>,
    cold: PhaseRecord,
    warm: PhaseRecord,
    warm_over_cold_throughput: f64,
}

fn main() {
    // Poison tenants panic by design; keep their backtraces out of the
    // bench output while leaving real failures loud.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let poison = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("poison tenant"));
        if !poison {
            default_hook(info);
        }
    }));
    let smoke = std::env::var("SERVE_BENCH_SMOKE").is_ok_and(|v| v != "0");
    let grids = vec![21usize, 25, 29];
    let problems: Vec<PoissonProblem> = grids.iter().map(|&n| paper_problem(n)).collect();
    let trace = Trace {
        jobs: if smoke { 12 } else { 72 },
        poison_every: 12,
        inter_arrival: Duration::from_micros(200),
    };
    // Cold first, then warm, on the *same* problem instances so the
    // warm phase can recognise repeat right-hand sides.
    let cold = run_phase("cold", &problems, 0, &trace);
    let warm = run_phase("warm", &problems, 8, &trace);
    let ratio = warm.throughput_jobs_per_s / cold.throughput_jobs_per_s;
    println!(
        "serve load test ({} jobs/phase): cold {:.1} jobs/s (p50 {:.2} ms, p99 {:.2} ms) | \
         warm {:.1} jobs/s (p50 {:.2} ms, p99 {:.2} ms) | warm/cold = {ratio:.2}x",
        trace.jobs,
        cold.throughput_jobs_per_s,
        cold.latency_p50_ms,
        cold.latency_p99_ms,
        warm.throughput_jobs_per_s,
        warm.latency_p50_ms,
        warm.latency_p99_ms,
    );
    assert_eq!(
        cold.quarantined + warm.quarantined,
        (cold.panicked + warm.panicked),
        "every poison tenant quarantines exactly one session"
    );
    let record = ServeRecord {
        smoke,
        workers: 2,
        grids,
        cold,
        warm,
        warm_over_cold_throughput: ratio,
    };
    let path = bench::write_bench_json("serve", &record).expect("write BENCH_serve.json");
    println!("wrote {path}");
    if !smoke {
        assert!(
            ratio >= 2.0,
            "warm-session reuse should at least double throughput on a repeat \
             workload, got {ratio:.2}x"
        );
    }
}
