//! Criterion benchmarks of full solves per Table I configuration —
//! the wall-clock counterpart of Table II at CI scale.

use accel::{Recorder, Serial};
use blockgrid::Decomp;
use comm::SelfComm;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use krylov::{SolveParams, SolverKind, SolverOptions};
use poisson::{paper_problem, PoissonSolver};

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_solve_17cubed");
    group.sample_size(10);
    for kind in SolverKind::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut solver: PoissonSolver<f64, _, _> = PoissonSolver::new(
                        paper_problem(17),
                        Decomp::single(),
                        Serial::new(Recorder::disabled()),
                        SelfComm::default(),
                    );
                    let out = solver.solve(
                        kind,
                        &SolverOptions {
                            eig_min_factor: 10.0,
                            ..Default::default()
                        },
                        &SolveParams {
                            tol: 1e-10,
                            max_iters: 20_000,
                            record_history: false,
                            ..Default::default()
                        },
                    );
                    assert!(out.converged);
                    out.iterations
                });
            },
        );
    }
    group.finish();
}

fn bench_setup(c: &mut Criterion) {
    // problem assembly + normalisation + offload (the paper's setup phase)
    let mut group = c.benchmark_group("setup");
    for nodes in [17usize, 33] {
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &nodes| {
            b.iter(|| {
                let solver: PoissonSolver<f64, _, _> = PoissonSolver::new(
                    paper_problem(nodes),
                    Decomp::single(),
                    Serial::new(Recorder::disabled()),
                    SelfComm::default(),
                );
                solver.rhs_norm()
            });
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_solvers, bench_setup
);
criterion_main!(benches);
