//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! preconditioner communication, Chebyshev sweep count, eigenvalue
//! rescaling, kernel fusion, and reduction ordering.

use accel::{Recorder, Serial};
use blockgrid::{Decomp, Field};
use comm::{run_ranks, Communicator, ReduceOp, ReduceOrder};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use krylov::kernels::{dot, INFO_DOT};
use krylov::{SolveParams, SolverKind, SolverOptions};
use poisson::{paper_problem, PoissonSolver};
use stencil::{apply_physical_bcs, Laplacian, INFO_APPLY};

fn solve_time(kind: SolverKind, opts: &SolverOptions) -> usize {
    let mut solver: PoissonSolver<f64, _, _> = PoissonSolver::new(
        paper_problem(17),
        Decomp::single(),
        Serial::new(Recorder::disabled()),
        comm::SelfComm::default(),
    );
    let out = solver.solve(
        kind,
        opts,
        &SolveParams {
            tol: 1e-10,
            max_iters: 20_000,
            record_history: false,
            ..Default::default()
        },
    );
    assert!(out.converged);
    out.iterations
}

/// G(CI) vs GNoComm(CI): the cost of communicating in the preconditioner.
fn ablation_comm(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_comm");
    group.sample_size(10);
    let opts = SolverOptions {
        eig_min_factor: 10.0,
        ..Default::default()
    };
    for kind in [
        SolverKind::BiCgsGCi,
        SolverKind::BiCgsGNoCommCi,
        SolverKind::BiCgsBjCi,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &k| {
            b.iter(|| solve_time(k, &opts));
        });
    }
    group.finish();
}

/// Chebyshev sweep-count sweep around the paper's N_s/2 bound.
fn ablation_ci_iters(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_ci_iters");
    group.sample_size(10);
    for sweeps in [6usize, 12, 24, 48] {
        let opts = SolverOptions {
            eig_min_factor: 10.0,
            ci_iterations: sweeps,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(sweeps), &sweeps, |b, _| {
            b.iter(|| solve_time(SolverKind::BiCgsGNoCommCi, &opts));
        });
    }
    group.finish();
}

/// Bergamaschi eigenvalue rescaling on/off.
fn ablation_rescale(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_rescale");
    group.sample_size(10);
    for (label, min_factor) in [("raw_bounds", 1.0), ("rescaled_x10", 10.0)] {
        let opts = SolverOptions {
            eig_min_factor: min_factor,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter(|| solve_time(SolverKind::BiCgsGNoCommCi, &opts));
        });
    }
    group.finish();
}

/// Fused stencil+dot (KernelBiCGS1) vs separate apply-then-dot — the
/// temporal-locality claim of Sec. III-B.
fn ablation_fusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_fusion");
    let n = 32;
    let grid = blockgrid::BlockGrid::new(
        blockgrid::GlobalGrid::dirichlet([n, n, n], [0.1; 3], [0.0; 3]),
        Decomp::single(),
        0,
    );
    let dev = Serial::new(Recorder::disabled());
    let lap = Laplacian::new(&grid);
    let vals: Vec<f64> = (0..n * n * n).map(|i| (i % 89) as f64 / 89.0).collect();
    let mut u = Field::from_interior(&dev, &grid, &vals);
    apply_physical_bcs(&grid, &mut u, &Recorder::disabled(), false);
    let g = Field::from_interior(&dev, &grid, &vals);
    let mut w = Field::zeros(&dev, &grid);
    group.bench_function("fused", |b| {
        b.iter(|| lap.apply_fused_dot(&dev, INFO_APPLY, &u, &mut w, &g));
    });
    group.bench_function("separate", |b| {
        b.iter(|| {
            lap.apply(&dev, INFO_APPLY, &u, &mut w);
            dot(&dev, INFO_DOT, &grid, &g, &w)
        });
    });
    group.finish();
}

/// Chebyshev vs naive Richardson polynomial preconditioning at equal
/// sweep budgets — the quantitative case for the paper's CI choice.
fn ablation_polynomial(c: &mut Criterion) {
    use accel::Recorder;
    use krylov::{
        bicgstab_solve, global_bounds, ChebyMode, ChebyPrecond, RankCtx, RichardsonPrec, Scope,
        Workspace,
    };

    let mut group = c.benchmark_group("ablation_polynomial");
    group.sample_size(10);
    let problem = paper_problem(17);
    let grid = blockgrid::BlockGrid::new(problem.discretize(), Decomp::single(), 0);
    let ctx: RankCtx<f64, _, comm::SelfComm<f64>> = RankCtx::new(
        Serial::new(Recorder::disabled()),
        comm::SelfComm::default(),
        grid,
    );
    let bounds = global_bounds(&ctx).rescaled(1e-4, 10.0);
    let b_host = poisson::assemble::local_rhs(&problem, &ctx.grid);
    let bnorm: f64 = b_host.iter().map(|v| v * v).sum::<f64>().sqrt();
    let b_scaled: Vec<f64> = b_host.iter().map(|v| v / bnorm).collect();
    let b = Field::from_interior(&ctx.dev, &ctx.grid, &b_scaled);
    let params = SolveParams {
        tol: 1e-10,
        max_iters: 20_000,
        record_history: false,
        ..Default::default()
    };

    group.bench_function("chebyshev_24", |bch| {
        bch.iter(|| {
            let mut prec = ChebyPrecond::new(&ctx, ChebyMode::GlobalNoComm, bounds, 24);
            let mut x = ctx.field();
            let mut ws = Workspace::new(&ctx.dev, &ctx.grid);
            let out = bicgstab_solve(&ctx, Scope::Global, &b, &mut x, &mut prec, &mut ws, &params);
            assert!(out.converged);
            out.iterations
        });
    });
    group.bench_function("richardson_24", |bch| {
        bch.iter(|| {
            let mut prec = RichardsonPrec::new(&ctx, ChebyMode::GlobalNoComm, bounds, 24);
            let mut x = ctx.field();
            let mut ws = Workspace::new(&ctx.dev, &ctx.grid);
            let out = bicgstab_solve(&ctx, Scope::Global, &b, &mut x, &mut prec, &mut ws, &params);
            assert!(out.converged);
            out.iterations
        });
    });
    group.finish();
}

/// Overlap vs no overlap: RAS(1) against the paper's non-overlapping
/// Block-Jacobi limit, at equal local sweep counts (the Schwarz trade of
/// Sec. III-A: fewer outer iterations vs one extra exchange per apply).
fn ablation_overlap(c: &mut Criterion) {
    use accel::Recorder;
    use krylov::{
        bicgstab_solve, local_bounds, ChebyMode, ChebyPrecond, RankCtx, RasPrec, Scope, Workspace,
    };

    let mut group = c.benchmark_group("ablation_overlap");
    group.sample_size(10);
    // single rank: RAS == BJ, so run the comparison on the structure cost
    // only; multi-rank comparisons live in the krylov test suite.
    let problem = paper_problem(17);
    let grid = blockgrid::BlockGrid::new(problem.discretize(), Decomp::single(), 0);
    let ctx: RankCtx<f64, _, comm::SelfComm<f64>> = RankCtx::new(
        Serial::new(Recorder::disabled()),
        comm::SelfComm::default(),
        grid,
    );
    let b_host = poisson::assemble::local_rhs(&problem, &ctx.grid);
    let bnorm: f64 = b_host.iter().map(|v| v * v).sum::<f64>().sqrt();
    let b_scaled: Vec<f64> = b_host.iter().map(|v| v / bnorm).collect();
    let b = Field::from_interior(&ctx.dev, &ctx.grid, &b_scaled);
    let params = SolveParams {
        tol: 1e-10,
        max_iters: 20_000,
        record_history: false,
        ..Default::default()
    };

    group.bench_function("bj_no_overlap", |bch| {
        bch.iter(|| {
            let bounds = local_bounds(&ctx).rescaled(1e-4, 10.0);
            let mut prec = ChebyPrecond::new(&ctx, ChebyMode::BlockJacobi, bounds, 24);
            let mut x = ctx.field();
            let mut ws = Workspace::new(&ctx.dev, &ctx.grid);
            bicgstab_solve(&ctx, Scope::Global, &b, &mut x, &mut prec, &mut ws, &params).iterations
        });
    });
    group.bench_function("ras_overlap1", |bch| {
        bch.iter(|| {
            let mut prec = RasPrec::new(&ctx, 24, 1e-4, 10.0);
            let mut x = ctx.field();
            let mut ws = Workspace::new(&ctx.dev, &ctx.grid);
            bicgstab_solve(&ctx, Scope::Global, &b, &mut x, &mut prec, &mut ws, &params).iterations
        });
    });
    group.finish();
}

/// Split-phase overlapped halo exchange vs the synchronous exchange, per
/// operator application, on the Threads back-end at 8 ranks (2×2×2).
///
/// The in-process communicator delivers messages in nanoseconds, and on a
/// shared CI host the OS scheduler interleaves all eight rank threads on
/// the same cores, so raw wall time cannot expose what overlap buys on a
/// real interconnect (even sleep-based latency emulation is void: while
/// one rank sleeps on a "wire", the scheduler runs the other ranks'
/// compute, hiding the latency in *both* arms). This bench therefore
/// follows the repo's standing methodology (DESIGN.md, EXPERIMENTS.md):
/// run the real 8-rank Threads world, record each rank's logical event
/// stream — kernel launches with measured byte/flop footprints, halo
/// message counts and bytes, overlap windows — and report that stream's
/// modeled time on the paper's LUMI-G machine model, where a split-phase
/// window costs `max(comm, in-window compute)`. The reported duration is
/// the slowest rank's modeled per-application time; the event streams it
/// prices are measured, not synthesized.
fn ablation_halo_overlap(c: &mut Criterion) {
    use accel::{Event, Threads};
    use blockgrid::{BlockGrid, GlobalGrid, HaloExchange};
    use comm::run_ranks_recorded;
    use perfmodel::MachineModel;
    use std::time::Duration;

    const RANKS: usize = 8;

    // One operator application's event stream per rank, measured live.
    let record_world = |overlap: bool| -> Vec<Vec<Event>> {
        let decomp = Decomp::new([2, 2, 2]);
        // Local 96³ per rank: the regime where one face-wave of halo
        // latency rivals the interior sweep (the paper's Fig. 6 balance
        // at 64 ranks), i.e. where split-phase overlap pays off most.
        let global = GlobalGrid::dirichlet([192, 192, 192], [0.05; 3], [0.0; 3]);
        // Size the worker pool like an MPI+OpenMP job: cores / ranks,
        // at least one; oversubscription would only slow the recording.
        let workers = std::thread::available_parallelism()
            .map_or(1, |p| p.get() / RANKS)
            .max(1);
        let recorders: Vec<Recorder> = (0..RANKS).map(|_| Recorder::enabled()).collect();
        run_ranks_recorded::<f64, _, _>(RANKS, ReduceOrder::RankOrder, recorders, move |comm| {
            let rec = comm.recorder().clone();
            let dev = Threads::new(workers, rec.clone());
            let grid = BlockGrid::new(global.clone(), decomp, comm.rank());
            let vals: Vec<f64> = (0..grid.local_n.iter().product())
                .map(|i| (i % 97) as f64 / 97.0)
                .collect();
            let mut u = Field::from_interior(&dev, &grid, &vals);
            let lap = Laplacian::new(&grid);
            let mut w = Field::zeros(&dev, &grid);
            let halo = HaloExchange::new(&grid);
            // warm the buffer pool and the per-(peer, tag) message
            // queues, then discard the warm-up's events
            halo.exchange(&dev, &comm, &mut u);
            rec.drain();
            if overlap {
                let pending = halo.begin(&dev, &comm, &u);
                apply_physical_bcs(&grid, &mut u, &rec, false);
                lap.apply_interior(&dev, INFO_APPLY, &u, &mut w);
                halo.finish(&dev, &comm, pending, &mut u);
                lap.apply_shell(&dev, INFO_APPLY, &u, &mut w);
            } else {
                halo.exchange(&dev, &comm, &mut u);
                apply_physical_bcs(&grid, &mut u, &rec, false);
                lap.apply(&dev, INFO_APPLY, &u, &mut w);
            }
            rec.drain()
        })
    };

    let machine = MachineModel::mi250x();
    let modeled = |streams: &[Vec<Event>]| -> Duration {
        Duration::from_secs_f64(bench::worst_rank_replay(streams, &machine, RANKS).total_s())
    };

    let mut group = c.benchmark_group("ablation_halo_overlap");
    group.sample_size(10);
    group.bench_function("synchronous", |b| {
        b.iter_custom(|_| modeled(&record_world(false)))
    });
    group.bench_function("overlapped", |b| {
        b.iter_custom(|_| modeled(&record_world(true)))
    });
    group.finish();

    // The headline claim this ablation exists for: overlapping must be
    // worth >= 1.2x per operator application in this regime.
    let sync_streams = record_world(false);
    let over_streams = record_world(true);
    let sync_b = bench::worst_rank_replay(&sync_streams, &machine, RANKS);
    let over_b = bench::worst_rank_replay(&over_streams, &machine, RANKS);
    let (sync_s, over_s) = (sync_b.total_s(), over_b.total_s());
    assert!(
        sync_s >= 1.2 * over_s,
        "split-phase overlap models below the 1.2x bar: \
         synchronous {sync_s:.3e}s vs overlapped {over_s:.3e}s"
    );

    #[derive(serde::Serialize)]
    struct HaloRecord {
        ranks: usize,
        machine: &'static str,
        synchronous: perfmodel::CostBreakdown,
        overlapped: perfmodel::CostBreakdown,
        speedup: f64,
    }
    bench::write_bench_json(
        "halo_overlap",
        &HaloRecord {
            ranks: RANKS,
            machine: "mi250x",
            synchronous: sync_b,
            overlapped: over_b,
            speedup: sync_s / over_s,
        },
    )
    .expect("write BENCH_halo_overlap.json");
}

/// Split-phase batched reductions vs the blocking per-stage schedule, on
/// a full 8-rank Bi-CGSTAB solve recorded live on the Threads back-end.
///
/// Same methodology as [`ablation_halo_overlap`]: the in-process
/// communicator cannot expose allreduce latency in wall time, so the
/// real 8-rank event streams — with their `ReduceOverlap` windows and
/// per-message reduction counts measured, not synthesized — are replayed
/// through the LUMI-G machine model. The model is replayed at growing
/// *model* rank counts (its allreduce term scales with `ceil(log2 P)`
/// software-tree stages), which is where the 3-to-2 message cut and the
/// compute posted under each window pay off: reduction latency grows
/// with P while the measured local compute stays fixed, exactly the
/// strong-scaling regime of the paper's Fig. 6.
fn ablation_reduce_overlap(c: &mut Criterion) {
    use accel::Event;
    use perfmodel::{CostBreakdown, MachineModel};
    use std::time::Duration;

    const RANKS: usize = 8;

    // Record one full solve's event stream per rank, live on Threads.
    let record = |overlap_reduce: bool| -> (usize, Vec<Vec<Event>>) {
        let workers = std::thread::available_parallelism()
            .map_or(1, |p| p.get() / RANKS)
            .max(1);
        let mut cfg = bench::RunConfig::small(SolverKind::BiCgs);
        // Global 32³ (local 16³): the strong-scaling limit where the
        // per-iteration dots rival the kernels — the regime Fig. 6's
        // high-rank bars show reduction latency dominating.
        cfg.nodes = 33;
        cfg.decomp = [2, 2, 2];
        cfg.device = format!("threads:{workers}");
        cfg.record_events = true;
        cfg.tol = 1e-8;
        cfg.opts.overlap_reduce = overlap_reduce;
        let res = bench::run_once(&cfg);
        assert!(res.outcome.converged, "{:?}", res.outcome);
        (res.outcome.iterations, res.events)
    };

    let (iters_sync, sync_streams) = record(false);
    let (iters_over, over_streams) = record(true);
    assert_eq!(
        iters_sync, iters_over,
        "batching must not change the iteration count"
    );

    let machine = MachineModel::mi250x();
    let worst = |streams: &[Vec<Event>], model_ranks: usize| -> CostBreakdown {
        bench::worst_rank_replay(streams, &machine, model_ranks)
    };

    let mut group = c.benchmark_group("ablation_reduce_overlap");
    group.sample_size(10);
    for model_ranks in [8usize, 64, 256, 512] {
        group.bench_with_input(
            BenchmarkId::new("synchronous", model_ranks),
            &model_ranks,
            |b, &p| b.iter_custom(|_| Duration::from_secs_f64(worst(&sync_streams, p).total_s())),
        );
        group.bench_with_input(
            BenchmarkId::new("overlapped", model_ranks),
            &model_ranks,
            |b, &p| b.iter_custom(|_| Duration::from_secs_f64(worst(&over_streams, p).total_s())),
        );
    }
    group.finish();

    #[derive(serde::Serialize)]
    struct Row {
        model_ranks: usize,
        synchronous: CostBreakdown,
        overlapped: CostBreakdown,
        speedup: f64,
    }
    #[derive(serde::Serialize)]
    struct ReduceRecord {
        recorded_ranks: usize,
        machine: &'static str,
        iterations: usize,
        rows: Vec<Row>,
    }
    let rows: Vec<Row> = [8usize, 64, 256, 512]
        .iter()
        .map(|&p| {
            let s = worst(&sync_streams, p);
            let o = worst(&over_streams, p);
            let speedup = s.total_s() / o.total_s();
            // The headline claim: at high model rank counts the batched
            // split-phase schedule must model >= 1.15x faster.
            if p >= 256 {
                assert!(
                    speedup >= 1.15,
                    "reduce overlap below the 1.15x bar at {p} model ranks: {speedup:.3}"
                );
            }
            Row {
                model_ranks: p,
                synchronous: s,
                overlapped: o,
                speedup,
            }
        })
        .collect();
    bench::write_bench_json(
        "reduce_overlap",
        &ReduceRecord {
            recorded_ranks: RANKS,
            machine: "mi250x",
            iterations: iters_sync,
            rows,
        },
    )
    .expect("write BENCH_reduce_overlap.json");
}

/// The tentpole kernel-fusion ablation: record 8-rank Threads solves
/// with the fused and unfused schedules, scale the per-rank streams to
/// production-size local blocks, and replay both through the LUMI-G
/// node model. Fusion cuts the hot path from 11 full-grid sweeps per
/// iteration to 5 (264 B → 200 B of streaming traffic per element per
/// iteration), so at memory-bandwidth-bound sizes the modeled
/// per-iteration time must drop by at least the 1.25x bar.
fn ablation_fused_kernels(c: &mut Criterion) {
    use accel::Event;
    use perfmodel::{CostBreakdown, MachineModel};
    use std::time::Duration;

    const RANKS: usize = 8;
    // nodes = 33 under a 2x2x2 decomp: each rank owns a 16^3 block.
    const RECORDED_LOCAL: f64 = 16.0;
    const LOCALS: [usize; 4] = [64, 128, 256, 320];

    let record = |fuse: bool| -> (usize, u64, Vec<Vec<Event>>) {
        let workers = std::thread::available_parallelism()
            .map_or(1, |p| p.get() / RANKS)
            .max(1);
        let mut cfg = bench::RunConfig::small(SolverKind::BiCgs);
        cfg.nodes = 33;
        cfg.decomp = [2, 2, 2];
        cfg.device = format!("threads:{workers}");
        cfg.record_events = true;
        cfg.tol = 1e-8;
        cfg.opts.fuse_kernels = fuse;
        let res = bench::run_once(&cfg);
        assert!(res.outcome.converged, "{:?}", res.outcome);
        (
            res.outcome.iterations,
            res.comm_stats.allreduces,
            res.events,
        )
    };

    let (iters_unfused, msgs_unfused, unfused_streams) = record(false);
    let (iters_fused, msgs_fused, fused_streams) = record(true);
    assert_eq!(
        iters_unfused, iters_fused,
        "fusion must not change the iteration count"
    );
    assert_eq!(
        msgs_unfused, msgs_fused,
        "fusion must not change the reduction message count"
    );

    let machine = MachineModel::mi250x();
    // Scale the recorded 16^3-per-rank streams to an n^3 local block
    // (volume ratio for kernels/transfers, face ratio for halos) and
    // take the slowest rank's modeled solve time.
    let worst = |streams: &[Vec<Event>], local: usize| -> CostBreakdown {
        let r = local as f64 / RECORDED_LOCAL;
        bench::worst_rank_replay_scaled(streams, &machine, RANKS, r.powi(3), r.powi(2))
    };

    let mut group = c.benchmark_group("ablation_fused_kernels");
    group.sample_size(10);
    for local in LOCALS {
        group.bench_with_input(BenchmarkId::new("unfused", local), &local, |b, &n| {
            b.iter_custom(|_| Duration::from_secs_f64(worst(&unfused_streams, n).total_s()))
        });
        group.bench_with_input(BenchmarkId::new("fused", local), &local, |b, &n| {
            b.iter_custom(|_| Duration::from_secs_f64(worst(&fused_streams, n).total_s()))
        });
    }
    group.finish();

    // Sweep counts from dedicated fixed-cap serial runs (the difference
    // of two caps removes setup and drain), using the same counting
    // rule the bench library's regression test pins to 11 -> 5.
    let sweeps = |fuse: bool| -> f64 {
        let run = |iters: usize| {
            let mut cfg = bench::RunConfig::small(SolverKind::BiCgs);
            cfg.nodes = 17;
            cfg.tol = 1e-300;
            cfg.max_iters = iters;
            cfg.record_events = true;
            cfg.opts.fuse_kernels = fuse;
            bench::hot_sweep_elems(&bench::run_once(&cfg).events[0])
        };
        let (lo, interior) = run(3);
        let (hi, _) = run(6);
        (hi - lo) as f64 / (3 * interior) as f64
    };
    let sweeps_unfused = sweeps(false);
    let sweeps_fused = sweeps(true);

    #[derive(serde::Serialize)]
    struct Row {
        local_nodes: usize,
        unfused: CostBreakdown,
        fused: CostBreakdown,
        unfused_iter_s: f64,
        fused_iter_s: f64,
        model_speedup: f64,
    }
    #[derive(serde::Serialize)]
    struct FusedRecord {
        schema_version: u32,
        recorded_ranks: usize,
        machine: &'static str,
        iterations: usize,
        allreduce_messages: u64,
        sweeps_per_iteration_unfused: f64,
        sweeps_per_iteration_fused: f64,
        bytes_per_elem_per_iteration_unfused: u32,
        bytes_per_elem_per_iteration_fused: u32,
        rows: Vec<Row>,
    }
    let rows: Vec<Row> = LOCALS
        .iter()
        .map(|&n| {
            let u = worst(&unfused_streams, n);
            let f = worst(&fused_streams, n);
            let model_speedup = u.total_s() / f.total_s();
            // The headline claim: once the local block is big enough to
            // be bandwidth-bound, fusion must model >= 1.25x faster.
            if n >= 256 {
                assert!(
                    model_speedup >= 1.25,
                    "kernel fusion below the 1.25x bar at {n}^3/rank: {model_speedup:.3}"
                );
            }
            Row {
                local_nodes: n,
                unfused_iter_s: u.total_s() / iters_unfused as f64,
                fused_iter_s: f.total_s() / iters_fused as f64,
                unfused: u,
                fused: f,
                model_speedup,
            }
        })
        .collect();
    let record = FusedRecord {
        schema_version: 1,
        recorded_ranks: RANKS,
        machine: "mi250x",
        iterations: iters_fused,
        allreduce_messages: msgs_fused,
        sweeps_per_iteration_unfused: sweeps_unfused,
        sweeps_per_iteration_fused: sweeps_fused,
        bytes_per_elem_per_iteration_unfused: 264,
        bytes_per_elem_per_iteration_fused: 200,
        rows,
    };
    bench::write_bench_json("fused_kernels", &record).expect("write BENCH_fused_kernels.json");

    // Refresh the committed stable-schema summary artifact at the
    // repository root, so the headline figures travel with the tree.
    bench::update_summary("fused_kernels", serde::Serialize::to_value(&record));
}

/// Batched multi-RHS solves: B independent single-lane solves vs one
/// B-lane batched solve, on the real 8-rank Threads world.
///
/// The batched driver runs every lane through the same iteration
/// schedule — one lane-strided kernel launch per sweep instead of B, one
/// B-face halo message per neighbour instead of B, and one chunked
/// B-wide allreduce per reduction point instead of B — so all the
/// per-launch and per-message fixed costs amortize across lanes while
/// the streamed bytes stay proportional to B. Wall time is measured
/// live (criterion re-runs the world per sample); the headline claim is
/// modeled, same methodology as [`ablation_fused_kernels`]: replay the
/// recorded per-rank event streams through the MI250X node model in the
/// strong-scaling regime (16³ per rank) where those fixed costs
/// dominate, and require the B=4 batched aggregate throughput to model
/// at >= 1.5x four back-to-back solo solves.
fn ablation_batched_rhs(c: &mut Criterion) {
    use accel::{Event, Threads};
    use comm::run_ranks_recorded;
    use perfmodel::{CostBreakdown, MachineModel};
    use std::time::{Duration, Instant};

    const RANKS: usize = 8;
    const WIDTHS: [usize; 4] = [1, 2, 4, 8];

    struct WorldRun {
        /// Per-lane outer iteration counts (identical on all ranks).
        iters: Vec<usize>,
        /// Slowest rank's wall seconds over the measured solves.
        wall_s: f64,
        /// Rank-0 allreduce messages over the measured solves.
        allreduces: u64,
        /// Per-rank event streams (empty unless recording).
        streams: Vec<Vec<Event>>,
    }

    // One 8-rank Threads world solving `nb` right-hand sides, either as
    // nb sequential single-lane solves or as one nb-lane batched solve.
    // A warm-up lane fills the buffer pools and message queues first and
    // its events/counters are discarded.
    let run_world = |nb: usize, batched: bool, record: bool| -> WorldRun {
        let decomp = Decomp::new([2, 2, 2]);
        let workers = std::thread::available_parallelism()
            .map_or(1, |p| p.get() / RANKS)
            .max(1);
        let recorders: Vec<Recorder> = (0..RANKS)
            .map(|_| {
                if record {
                    Recorder::enabled()
                } else {
                    Recorder::disabled()
                }
            })
            .collect();
        let handles = recorders.clone();
        let per_rank = run_ranks_recorded::<f64, _, _>(
            RANKS,
            ReduceOrder::RankOrder,
            recorders,
            move |comm| {
                let rec = comm.recorder().clone();
                let dev = Threads::new(workers, rec.clone());
                // nodes = 33 under 2x2x2: 16^3 per rank, the
                // strong-scaling limit regime of the paper's Fig. 6.
                let mut solver: PoissonSolver<f64, _, _> =
                    PoissonSolver::new(paper_problem(33), decomp, dev, comm);
                let n: usize = solver.grid().local_n.iter().product();
                let rhs: Vec<Vec<f64>> = (0..nb)
                    .map(|lane| {
                        (0..n)
                            .map(|i| 1.0 + (((i + 7 * lane) as f64) * 0.29).sin())
                            .collect()
                    })
                    .collect();
                let opts = SolverOptions {
                    eig_min_factor: 10.0,
                    ..Default::default()
                };
                let params = SolveParams {
                    tol: 1e-8,
                    max_iters: 50_000,
                    record_history: false,
                    ..Default::default()
                };
                let lane_iters = |lane: Result<poisson::LaneSolve, _>| {
                    let lane = lane.expect("valid lane");
                    assert!(lane.outcome.converged, "{:?}", lane.outcome);
                    lane.outcome.iterations
                };
                let warm = solver.solve_batch(&[&rhs[0]], SolverKind::BiCgs, &opts, &params, &[]);
                lane_iters(warm.into_iter().next().expect("one warm-up lane"));
                rec.drain();
                let reduces0 = solver.ctx().comm.stats().allreduces;
                let t0 = Instant::now();
                let iters: Vec<usize> = if batched {
                    let refs: Vec<&[f64]> = rhs.iter().map(Vec::as_slice).collect();
                    solver
                        .solve_batch(&refs, SolverKind::BiCgs, &opts, &params, &[])
                        .into_iter()
                        .map(lane_iters)
                        .collect()
                } else {
                    rhs.iter()
                        .map(|b| {
                            let lanes = solver.solve_batch(
                                &[b.as_slice()],
                                SolverKind::BiCgs,
                                &opts,
                                &params,
                                &[],
                            );
                            lane_iters(lanes.into_iter().next().expect("one solo lane"))
                        })
                        .collect()
                };
                let wall = t0.elapsed().as_secs_f64();
                let reduces = solver.ctx().comm.stats().allreduces - reduces0;
                (iters, wall, reduces)
            },
        );
        WorldRun {
            iters: per_rank[0].0.clone(),
            wall_s: per_rank.iter().map(|r| r.1).fold(0.0, f64::max),
            allreduces: per_rank[0].2,
            streams: handles.iter().map(|r| r.drain()).collect(),
        }
    };

    let machine = MachineModel::mi250x();
    let worst = |streams: &[Vec<Event>]| -> CostBreakdown {
        bench::worst_rank_replay(streams, &machine, RANKS)
    };

    // One recorded run per (width, arm) for the model replay; the wall
    // arms below re-run the world unrecorded on every criterion sample.
    let recorded: Vec<(usize, WorldRun, WorldRun)> = WIDTHS
        .iter()
        .map(|&nb| (nb, run_world(nb, false, true), run_world(nb, true, true)))
        .collect();

    let mut group = c.benchmark_group("ablation_batched_rhs");
    group.sample_size(10);
    for &nb in &WIDTHS {
        group.bench_with_input(BenchmarkId::new("solo_wall", nb), &nb, |b, &nb| {
            b.iter_custom(|_| Duration::from_secs_f64(run_world(nb, false, false).wall_s))
        });
        group.bench_with_input(BenchmarkId::new("batched_wall", nb), &nb, |b, &nb| {
            b.iter_custom(|_| Duration::from_secs_f64(run_world(nb, true, false).wall_s))
        });
        let (_, solo, batched) = recorded
            .iter()
            .find(|(w, _, _)| *w == nb)
            .expect("recorded");
        let (solo_s, batched_s) = (
            worst(&solo.streams).total_s(),
            worst(&batched.streams).total_s(),
        );
        group.bench_with_input(BenchmarkId::new("solo_model", nb), &solo_s, |b, &s| {
            b.iter_custom(|_| Duration::from_secs_f64(s))
        });
        group.bench_with_input(
            BenchmarkId::new("batched_model", nb),
            &batched_s,
            |b, &s| b.iter_custom(|_| Duration::from_secs_f64(s)),
        );
    }
    group.finish();

    #[derive(serde::Serialize)]
    struct Row {
        lanes: usize,
        iterations: Vec<usize>,
        wall_solo_s: f64,
        wall_batched_s: f64,
        wall_speedup: f64,
        allreduce_messages_solo: u64,
        allreduce_messages_batched: u64,
        solo: CostBreakdown,
        batched: CostBreakdown,
        model_throughput_x: f64,
    }
    let rows: Vec<Row> = recorded
        .iter()
        .map(|(nb, solo, batched)| {
            assert_eq!(
                solo.iters, batched.iters,
                "batching must not change any lane's iteration count (B={nb})"
            );
            let longest = *batched.iters.iter().max().expect("at least one lane") as u64;
            // The reduction-amortization contract: one chunked B-wide
            // message per reduction point of the longest-running lane
            // (2 per iteration + setup), not B per point. Frozen lanes
            // keep voting, so the count is bounded by the longest lane,
            // with a small constant for rhs-norm and residual setup.
            assert!(
                batched.allreduces <= 2 * longest + 6,
                "B={nb}: {} batched allreduces exceeds 2*{longest}+6",
                batched.allreduces
            );
            if *nb >= 2 {
                assert!(
                    batched.allreduces < solo.allreduces,
                    "B={nb}: batching must cut allreduce messages \
                     ({} batched vs {} solo)",
                    batched.allreduces,
                    solo.allreduces
                );
            }
            let s = worst(&solo.streams);
            let b = worst(&batched.streams);
            // Same nb solves completed in both arms, so the aggregate
            // throughput ratio is the modeled time ratio.
            let model_throughput_x = s.total_s() / b.total_s();
            if *nb == 4 {
                assert!(
                    model_throughput_x >= 1.5,
                    "batched multi-RHS below the 1.5x bar at B=4: {model_throughput_x:.3}"
                );
            }
            Row {
                lanes: *nb,
                iterations: solo.iters.clone(),
                wall_solo_s: solo.wall_s,
                wall_batched_s: batched.wall_s,
                wall_speedup: solo.wall_s / batched.wall_s,
                allreduce_messages_solo: solo.allreduces,
                allreduce_messages_batched: batched.allreduces,
                solo: s,
                batched: b,
                model_throughput_x,
            }
        })
        .collect();

    #[derive(serde::Serialize)]
    struct BatchedRecord {
        schema_version: u32,
        recorded_ranks: usize,
        machine: &'static str,
        local_nodes: usize,
        rows: Vec<Row>,
    }
    let record = BatchedRecord {
        schema_version: 1,
        recorded_ranks: RANKS,
        machine: "mi250x",
        local_nodes: 16,
        rows,
    };
    bench::write_bench_json("batched_rhs", &record).expect("write BENCH_batched_rhs.json");
    bench::update_summary("batched_rhs", serde::Serialize::to_value(&record));
}

/// Mixed-precision Chebyshev preconditioning: f32 inner sweeps, state
/// and halo wire words under the f64 outer recurrence, vs the all-f64
/// baseline, on real 8-rank Threads `G(CI)` solves.
///
/// Same methodology as [`ablation_fused_kernels`]: record the
/// 16³-per-rank event streams live — the halved kernel footprints of
/// the f32 sweeps and the half-width wire words of the f32 halo band
/// are measured, not synthesized — scale them to production-size local
/// blocks and replay through the MI250X node model, reporting the
/// slowest rank. The convergence side of the trade rides on the same
/// runs: the outer iteration count must stay within ±2 of the all-f64
/// baseline (the guard the poisson test suite also pins per back-end).
fn ablation_mixed_precision(c: &mut Criterion) {
    use accel::Event;
    use perfmodel::{CostBreakdown, MachineModel};
    use std::time::Duration;

    const RANKS: usize = 8;
    // nodes = 33 under a 2x2x2 decomp: each rank owns a 16^3 block.
    const RECORDED_LOCAL: f64 = 16.0;
    const LOCALS: [usize; 4] = [64, 128, 256, 320];

    let record = |mixed: bool| -> (usize, Vec<Vec<Event>>) {
        let workers = std::thread::available_parallelism()
            .map_or(1, |p| p.get() / RANKS)
            .max(1);
        let mut cfg = bench::RunConfig::small(SolverKind::BiCgsGCi);
        cfg.nodes = 33;
        cfg.decomp = [2, 2, 2];
        cfg.device = format!("threads:{workers}");
        cfg.record_events = true;
        cfg.tol = 1e-8;
        cfg.opts.mixed_precision = mixed;
        let res = bench::run_once(&cfg);
        assert!(res.outcome.converged, "{:?}", res.outcome);
        (res.outcome.iterations, res.events)
    };

    let (iters_f64, f64_streams) = record(false);
    let (iters_mixed, mixed_streams) = record(true);
    let drift = (iters_mixed as i64 - iters_f64 as i64).abs();
    assert!(
        drift <= 2,
        "mixed precision drifted {drift} outer iterations \
         ({iters_mixed} mixed vs {iters_f64} f64)"
    );

    let machine = MachineModel::mi250x();
    let worst = |streams: &[Vec<Event>], local: usize| -> CostBreakdown {
        let r = local as f64 / RECORDED_LOCAL;
        bench::worst_rank_replay_scaled(streams, &machine, RANKS, r.powi(3), r.powi(2))
    };

    let mut group = c.benchmark_group("ablation_mixed_precision");
    group.sample_size(10);
    for local in LOCALS {
        group.bench_with_input(BenchmarkId::new("f64", local), &local, |b, &n| {
            b.iter_custom(|_| Duration::from_secs_f64(worst(&f64_streams, n).total_s()))
        });
        group.bench_with_input(BenchmarkId::new("mixed", local), &local, |b, &n| {
            b.iter_custom(|_| Duration::from_secs_f64(worst(&mixed_streams, n).total_s()))
        });
    }
    group.finish();

    #[derive(serde::Serialize)]
    struct Row {
        local_nodes: usize,
        f64_iter_s: f64,
        mixed_iter_s: f64,
        per_iteration_speedup: f64,
        f64_total: CostBreakdown,
        mixed_total: CostBreakdown,
    }
    #[derive(serde::Serialize)]
    struct MixedRecord {
        schema_version: u32,
        recorded_ranks: usize,
        machine: &'static str,
        iterations_f64: usize,
        iterations_mixed: usize,
        rows: Vec<Row>,
    }
    let rows: Vec<Row> = LOCALS
        .iter()
        .map(|&n| {
            let base = worst(&f64_streams, n);
            let mix = worst(&mixed_streams, n);
            let f64_iter_s = base.total_s() / iters_f64 as f64;
            let mixed_iter_s = mix.total_s() / iters_mixed as f64;
            let per_iteration_speedup = f64_iter_s / mixed_iter_s;
            // The headline claim: once the local block is bandwidth
            // bound, halving the preconditioner's streamed bytes must
            // model >= 1.2x faster per outer iteration.
            if n >= 256 {
                assert!(
                    per_iteration_speedup >= 1.2,
                    "mixed precision below the 1.2x bar at {n}^3/rank: \
                     {per_iteration_speedup:.3}"
                );
            }
            Row {
                local_nodes: n,
                f64_iter_s,
                mixed_iter_s,
                per_iteration_speedup,
                f64_total: base,
                mixed_total: mix,
            }
        })
        .collect();
    let record = MixedRecord {
        schema_version: 1,
        recorded_ranks: RANKS,
        machine: "mi250x",
        iterations_f64: iters_f64,
        iterations_mixed: iters_mixed,
        rows,
    };
    bench::write_bench_json("mixed_precision", &record).expect("write BENCH_mixed_precision.json");
    bench::update_summary("mixed_precision", serde::Serialize::to_value(&record));
}

/// Algorithm 1's mid-loop convergence check vs Algorithm 3 (the paper's
/// implementation) — one extra reduction per iteration vs a potentially
/// saved half-iteration.
fn ablation_early_exit(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_early_exit");
    group.sample_size(10);
    let opts = SolverOptions {
        eig_min_factor: 10.0,
        ..Default::default()
    };
    for (label, early) in [("alg3_no_check", false), ("alg1_mid_loop_check", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &early, |b, &early| {
            b.iter(|| {
                let mut solver: PoissonSolver<f64, _, _> = PoissonSolver::new(
                    paper_problem(17),
                    Decomp::single(),
                    Serial::new(Recorder::disabled()),
                    comm::SelfComm::default(),
                );
                let out = solver.solve(
                    SolverKind::BiCgsGNoCommCi,
                    &opts,
                    &SolveParams {
                        tol: 1e-10,
                        max_iters: 20_000,
                        record_history: false,
                        early_exit_check: early,
                        ..Default::default()
                    },
                );
                assert!(out.converged);
                out.iterations
            });
        });
    }
    group.finish();
}

/// Deterministic (rank-order) vs arrival-order allreduce.
fn ablation_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_reduction");
    group.sample_size(10);
    for (label, order) in [
        ("rank_order", ReduceOrder::RankOrder),
        ("arrival", ReduceOrder::Arrival),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &order, |b, &order| {
            b.iter(|| {
                run_ranks::<f64, _, _>(4, order, |comm_handle| {
                    let mut acc = 0.0;
                    for i in 0..200 {
                        let mut v = [comm_handle.rank() as f64 + i as f64];
                        comm_handle.all_reduce(&mut v, ReduceOp::Sum);
                        acc += v[0];
                    }
                    acc
                })
            });
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(300));
    targets = ablation_comm, ablation_ci_iters, ablation_rescale, ablation_fusion, ablation_reduction, ablation_polynomial, ablation_early_exit, ablation_overlap, ablation_halo_overlap, ablation_reduce_overlap, ablation_fused_kernels, ablation_batched_rhs, ablation_mixed_precision
);
criterion_main!(benches);
