//! # bench — the experiment harness behind every paper table and figure
//!
//! One binary per table/figure (`table1`, `fig2`, `table2`, `fig3`,
//! `fig4`, `fig5`, `fig6`, `fig7`, `fig8`) plus Criterion micro-benches.
//! This library holds the shared machinery: a tiny CLI parser, the SPMD
//! experiment runner, and JSON result records.
//!
//! Default problem sizes are scaled to a small CI machine; pass `--full`
//! (or explicit `--nodes`/`--ranks`) for paper-scale runs. Convergence
//! observables are always *measured*; times-to-solution are produced by
//! replaying the measured event stream through `perfmodel` machine
//! models (see DESIGN.md for the substitution rationale).

#![warn(missing_docs)]

use std::collections::HashMap;
use std::time::Instant;

use accel::{AnyDevice, Event, Recorder};
use blockgrid::Decomp;
use comm::{run_ranks_recorded, CommStats, Communicator, ReduceOrder};
use krylov::{SolveOutcome, SolveParams, SolverKind, SolverOptions};
use poisson::{paper_problem, PoissonSolver};
use serde::Serialize;

/// Minimal `--key value` / `--flag` CLI parser for the harness binaries.
pub struct Args {
    map: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse `std::env::args`.
    pub fn parse() -> Self {
        let mut map = HashMap::new();
        let mut flags = Vec::new();
        let mut it = std::env::args().skip(1).peekable();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        map.insert(key.to_owned(), it.next().unwrap());
                    }
                    _ => flags.push(key.to_owned()),
                }
            }
        }
        Self { map, flags }
    }

    /// Typed lookup with default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        self.map
            .get(key)
            .map(|v| v.parse().unwrap_or_else(|e| panic!("--{key} {v:?}: {e:?}")))
            .unwrap_or(default)
    }

    /// String lookup with default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.map
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_owned())
    }

    /// Presence of `--flag`.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Parse a decomposition spec like `2x2x2`.
    pub fn decomp(&self, key: &str, default: [usize; 3]) -> [usize; 3] {
        self.try_decomp(key, default)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Args::decomp`], for CLI front-ends that want to
    /// reject a malformed spec with a usage hint instead of panicking.
    pub fn try_decomp(&self, key: &str, default: [usize; 3]) -> Result<[usize; 3], String> {
        match self.map.get(key) {
            None => Ok(default),
            Some(spec) => {
                let parts: Vec<usize> = spec
                    .split('x')
                    .map(|p| p.parse().map_err(|e| format!("--{key} {spec:?}: {e}")))
                    .collect::<Result<_, _>>()?;
                if parts.len() != 3 {
                    return Err(format!("--{key} {spec:?}: must be AxBxC"));
                }
                Ok([parts[0], parts[1], parts[2]])
            }
        }
    }
}

/// Configuration of one solver experiment.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Mesh nodes per axis (the paper's "N × N × N mesh").
    pub nodes: usize,
    /// Process-grid decomposition.
    pub decomp: [usize; 3],
    /// Solver configuration under test.
    pub kind: SolverKind,
    /// Preconditioner tunables.
    pub opts: SolverOptions,
    /// Relative residual tolerance (paper: 1e-10).
    pub tol: f64,
    /// Outer iteration cap.
    pub max_iters: usize,
    /// Back-end spec for [`accel::AnyDevice::from_spec`].
    pub device: String,
    /// Reduction ordering (Arrival reproduces the paper's run-to-run
    /// variance).
    pub order: ReduceOrder,
    /// Capture the per-rank event streams.
    pub record_events: bool,
    /// Extra solver options (mid-loop exit, true-residual monitoring,
    /// restart budget) threaded through to [`SolveParams`].
    pub params_extra: ParamsExtra,
}

/// The optional [`SolveParams`] features exposed on [`RunConfig`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ParamsExtra {
    /// Algorithm 1's mid-loop convergence check.
    pub early_exit_check: bool,
    /// True-residual recomputation period (0 = off).
    pub true_residual_every: usize,
    /// Shadow-residual restart budget on breakdown.
    pub max_restarts: usize,
}

impl RunConfig {
    /// A small-machine default: 64³ mesh, 2×2×2 ranks, serial back-end,
    /// paper tolerances, single-rank eigenvalue rescaling (×10 — the 64³
    /// setting of Sec. IV).
    pub fn small(kind: SolverKind) -> Self {
        Self {
            nodes: 64,
            decomp: [2, 2, 2],
            kind,
            opts: SolverOptions {
                eig_min_factor: 10.0,
                ..Default::default()
            },
            tol: 1e-10,
            max_iters: 50_000,
            device: "serial".into(),
            order: ReduceOrder::RankOrder,
            record_events: false,
            params_extra: ParamsExtra::default(),
        }
    }

    /// Total rank count.
    pub fn ranks(&self) -> usize {
        self.decomp[0] * self.decomp[1] * self.decomp[2]
    }
}

/// Result of one experiment run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Solver outcome (identical on all ranks; taken from rank 0).
    pub outcome: SolveOutcome,
    /// Max total preconditioner sweeps across ranks (local inner solves
    /// may differ per rank for `BJ(BiCGS)`).
    pub prec_iterations_max: u64,
    /// Wall-clock seconds of the solve phase (max over ranks).
    pub wall_s: f64,
    /// Per-rank event streams (`record_events` only).
    pub events: Vec<Vec<Event>>,
    /// Rank-0 communication counters.
    pub comm_stats: CommStats,
    /// Global relative L2 error vs. the manufactured solution.
    pub l2_error: f64,
}

/// Run one solver experiment on the paper problem.
pub fn run_once(cfg: &RunConfig) -> RunResult {
    let ranks = cfg.ranks();
    let recorders: Vec<Recorder> = (0..ranks)
        .map(|_| {
            if cfg.record_events {
                Recorder::enabled()
            } else {
                Recorder::disabled()
            }
        })
        .collect();
    let handles = recorders.clone();
    let decomp = Decomp::new(cfg.decomp);
    let cfg2 = cfg.clone();
    let per_rank = run_ranks_recorded::<f64, _, _>(ranks, cfg.order, recorders, move |comm| {
        let rec = comm.recorder().clone();
        let dev = AnyDevice::from_spec(&cfg2.device, rec).expect("bad device spec");
        let problem = paper_problem(cfg2.nodes);
        let mut solver: PoissonSolver<f64, _, _> = PoissonSolver::new(problem, decomp, dev, comm);
        let params = SolveParams {
            tol: cfg2.tol,
            max_iters: cfg2.max_iters,
            record_history: true,
            early_exit_check: cfg2.params_extra.early_exit_check,
            true_residual_every: cfg2.params_extra.true_residual_every,
            max_restarts: cfg2.params_extra.max_restarts,
            overlap_halo: cfg2.opts.overlap_halo,
            overlap_reduce: cfg2.opts.overlap_reduce,
            fuse_kernels: cfg2.opts.fuse_kernels,
            cancel: None,
        };
        let t0 = Instant::now();
        let outcome = solver.solve(cfg2.kind, &cfg2.opts, &params);
        let wall = t0.elapsed().as_secs_f64();
        let (l2, _linf) = solver.error_vs_exact();
        let stats = solver.ctx().comm.stats();
        (outcome, wall, stats, l2)
    });
    let events: Vec<Vec<Event>> = handles.iter().map(|r| r.drain()).collect();
    let outcome = per_rank[0].0.clone();
    RunResult {
        prec_iterations_max: per_rank
            .iter()
            .map(|r| r.0.prec_iterations)
            .max()
            .unwrap_or(0),
        wall_s: per_rank.iter().map(|r| r.1).fold(0.0, f64::max),
        comm_stats: per_rank[0].2,
        l2_error: per_rank[0].3,
        events,
        outcome,
    }
}

/// Extract the events of the solve's *first outer iteration* from a
/// recorded stream: everything from the first `Begin("Preconditioner")`
/// to just before the second one... more precisely, one full cycle —
/// two preconditioner stages, the kernels and the reduction messages
/// (two batched ones under the overlapped schedule, three blocking ones
/// otherwise).
pub fn first_iteration_profile(events: &[Event]) -> Vec<Event> {
    let starts: Vec<usize> = events
        .iter()
        .enumerate()
        .filter_map(|(i, e)| match e {
            Event::Begin { name } if *name == "Preconditioner" => Some(i),
            _ => None,
        })
        .collect();
    match starts.len() {
        0 => events.to_vec(),
        1 | 2 => events[starts[0]..].to_vec(),
        // an outer iteration contains exactly two Preconditioner stages
        _ => events[starts[0]..starts[2]].to_vec(),
    }
}

/// Mean and population standard deviation.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    assert!(!values.is_empty());
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

/// A serialisable experiment record written next to each harness run.
#[derive(Serialize)]
pub struct ExperimentRecord<T: Serialize> {
    /// Experiment id (e.g. `"table2"`).
    pub experiment: String,
    /// Mesh nodes per axis.
    pub nodes: usize,
    /// Rank count.
    pub ranks: usize,
    /// Payload rows.
    pub data: T,
}

/// Write an experiment record as pretty JSON under `results/`.
pub fn write_json<T: Serialize>(record: &ExperimentRecord<T>) -> std::io::Result<String> {
    std::fs::create_dir_all("results")?;
    let path = format!("results/{}.json", record.experiment);
    std::fs::write(
        &path,
        serde_json::to_string_pretty(record).expect("serialise"),
    )?;
    Ok(path)
}

/// Write a machine-readable ablation record as `BENCH_<name>.json` at the
/// repository root, where CI picks the files up as artifacts. The shared
/// emitter keeps every ablation's output at a predictable path regardless
/// of the working directory cargo launches the bench binary with.
pub fn write_bench_json<T: Serialize>(name: &str, payload: &T) -> std::io::Result<String> {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate sits two levels below the repository root");
    let path = root.join(format!("BENCH_{name}.json"));
    std::fs::write(
        &path,
        serde_json::to_string_pretty(payload).expect("serialise"),
    )?;
    Ok(path.display().to_string())
}

/// Replay every rank's recorded event stream through `machine` at
/// `model_ranks` and return the slowest rank's cost breakdown — the
/// worst-rank figure every model-replay ablation reports. Panics on an
/// empty stream set.
pub fn worst_rank_replay(
    streams: &[Vec<Event>],
    machine: &perfmodel::MachineModel,
    model_ranks: usize,
) -> perfmodel::CostBreakdown {
    streams
        .iter()
        .map(|evs| perfmodel::replay(evs, machine, model_ranks))
        .max_by(|a, b| a.total_s().total_cmp(&b.total_s()))
        .expect("at least one rank stream")
}

/// [`worst_rank_replay`] with each stream first rescaled from the
/// recorded local block to a production-size one: kernel/transfer
/// footprints by `volume_ratio`, halo payloads by `face_ratio` (see
/// [`perfmodel::scale_events`]).
pub fn worst_rank_replay_scaled(
    streams: &[Vec<Event>],
    machine: &perfmodel::MachineModel,
    model_ranks: usize,
    volume_ratio: f64,
    face_ratio: f64,
) -> perfmodel::CostBreakdown {
    let scaled: Vec<Vec<Event>> = streams
        .iter()
        .map(|evs| perfmodel::scale_events(evs, volume_ratio, face_ratio))
        .collect();
    worst_rank_replay(&scaled, machine, model_ranks)
}

/// Merge one ablation's headline record into the committed
/// `results/bench_summary.json` at the repository root. The summary is a
/// `{schema_version, sections: {<ablation>: ...}}` document so several
/// ablations can contribute rows without clobbering each other; a legacy
/// v1 file (the flat fused-kernels record) is migrated into its section
/// on first contact.
pub fn update_summary(section: &str, value: serde::Value) {
    use serde::Value;
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate sits two levels below the repository root");
    std::fs::create_dir_all(root.join("results")).expect("create results/");
    let path = root.join("results/bench_summary.json");
    let prior = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok());
    let mut sections: Vec<(String, Value)> = match prior {
        Some(Value::Object(entries)) => match entries.iter().position(|(k, _)| k == "sections") {
            Some(i) => match entries.into_iter().nth(i) {
                Some((_, Value::Object(secs))) => secs,
                _ => Vec::new(),
            },
            // a legacy v1 flat file is the fused-kernels record
            None if entries.iter().any(|(k, _)| k == "rows") => {
                vec![("fused_kernels".into(), Value::Object(entries))]
            }
            None => Vec::new(),
        },
        _ => Vec::new(),
    };
    match sections.iter_mut().find(|(k, _)| k == section) {
        Some(slot) => slot.1 = value,
        None => sections.push((section.into(), value)),
    }
    let doc = Value::Object(vec![
        ("schema_version".into(), Value::U64(2)),
        ("sections".into(), Value::Object(sections)),
    ]);
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&doc).expect("serialise"),
    )
    .expect("write results/bench_summary.json");
}

/// Sum the elements streamed by the Bi-CGSTAB hot-path full-grid
/// sweeps in an event stream: kernels outside `Preconditioner`
/// stages, excluding the O(faces) boundary/halo-staging kernels and
/// the O(ny·nz) slot folds. The split interior/shell pieces of one
/// overlapped sweep sum to exactly one interior's worth of elements,
/// so elements ÷ interior = full-grid sweep count. Reduction kernels
/// record their *row* count as `elems`, but each launch streams the
/// whole grid once — so a dot launch counts as one interior.
///
/// Returns `(total_hot_elems, interior_elems)`; dividing the difference
/// of two runs at different iteration caps by `caps_delta * interior`
/// yields the sweeps-per-iteration figure the fusion ablation reports.
pub fn hot_sweep_elems(events: &[Event]) -> (u64, u64) {
    let interior = events
        .iter()
        .filter_map(|e| match e {
            Event::Kernel { name, elems, .. } if name.starts_with("KernelBiCGS") => Some(*elems),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let mut depth = 0usize;
    let mut total = 0u64;
    for e in events {
        match e {
            Event::Begin { name } if *name == "Preconditioner" => depth += 1,
            Event::End { name } if *name == "Preconditioner" => depth -= 1,
            Event::Kernel { name, elems, .. } if depth == 0 => {
                if name.starts_with("KernelDot") {
                    total += interior;
                } else if *name != "KernelNeumannBCs"
                    && !name.starts_with("KernelFold")
                    && !name.starts_with("KernelHalo")
                {
                    total += elems;
                }
            }
            _ => {}
        }
    }
    (total, interior)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0]);
        assert_eq!(m, 3.0);
        assert_eq!(s, 1.0);
        let (m, s) = mean_std(&[5.0]);
        assert_eq!(m, 5.0);
        assert_eq!(s, 0.0);
    }

    #[test]
    fn small_config_runs_and_converges() {
        let mut cfg = RunConfig::small(SolverKind::BiCgsGNoCommCi);
        cfg.nodes = 17;
        cfg.decomp = [2, 1, 1];
        let res = run_once(&cfg);
        assert!(res.outcome.converged, "{:?}", res.outcome);
        assert!(res.l2_error < 1e-2);
        assert!(res.outcome.residual_history.len() == res.outcome.iterations + 1);
    }

    #[test]
    fn recorded_run_produces_event_streams() {
        let mut cfg = RunConfig::small(SolverKind::BiCgsGNoCommCi);
        cfg.nodes = 13;
        cfg.decomp = [2, 1, 1];
        cfg.record_events = true;
        let res = run_once(&cfg);
        assert_eq!(res.events.len(), 2);
        assert!(!res.events[0].is_empty());
        let profile = first_iteration_profile(&res.events[0]);
        // a GNoComm(CI) iteration: 2 preconditioner stages with 24 CI
        // sweeps each, plus the BiCGS kernels
        let kernels = profile
            .iter()
            .filter(|e| matches!(e, Event::Kernel { .. }))
            .count();
        assert!(
            kernels > 40,
            "expected a full iteration, got {kernels} kernels"
        );
        let allreduces = profile
            .iter()
            .filter(|e| matches!(e, Event::AllReduce { .. }))
            .count();
        // reduction overlap is on by default on >1 rank: the iteration's
        // dots travel as the two batched messages M1 and M2
        assert_eq!(allreduces, 2, "M1 [σ, ‖r‖²_prev] and M2 [σ₁..σ₄]");
    }

    #[test]
    fn fusion_cuts_sweeps_per_iteration_from_eleven_to_five() {
        // The tentpole traffic claim, asserted on real event streams: the
        // unfused overlapped schedule runs 11 full-grid sweeps per outer
        // iteration, the fused one 5. Two solves at different iteration
        // caps difference away setup and drain.
        let sweeps = |fuse: bool| {
            let run = |iters: usize| {
                let mut cfg = RunConfig::small(SolverKind::BiCgs);
                cfg.nodes = 17;
                cfg.tol = 1e-300; // never reached: fixed iteration count
                cfg.max_iters = iters;
                cfg.record_events = true;
                cfg.opts.fuse_kernels = fuse;
                hot_sweep_elems(&run_once(&cfg).events[0])
            };
            let (lo, interior) = run(3);
            let (hi, _) = run(6);
            (hi - lo) as f64 / (3 * interior) as f64
        };
        let unfused = sweeps(false);
        let fused = sweeps(true);
        assert!(
            unfused >= 10.0,
            "unfused schedule should sweep >=10x/iter, measured {unfused}"
        );
        assert!(
            fused <= 6.0,
            "fused schedule should sweep <=6x/iter, measured {fused}"
        );
        assert!(
            (unfused - 11.0).abs() < 0.01 && (fused - 5.0).abs() < 0.01,
            "expected exactly 11 -> 5 sweeps, measured {unfused} -> {fused}"
        );
    }

    #[test]
    fn bench_json_lands_at_repo_root() {
        #[derive(Serialize)]
        struct Payload {
            ok: bool,
        }
        let path = write_bench_json("selftest", &Payload { ok: true }).unwrap();
        assert!(path.ends_with("BENCH_selftest.json"), "{path}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"ok\": true"), "{text}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn prec_iterations_counted() {
        let mut cfg = RunConfig::small(SolverKind::BiCgsBjCi);
        cfg.nodes = 13;
        cfg.decomp = [1, 1, 1];
        let res = run_once(&cfg);
        assert!(res.outcome.converged);
        // fixed 24-sweep CI applied twice per outer iteration
        assert_eq!(res.outcome.prec_per_outer(), 48.0);
    }
}

/// Render convergence series as an ASCII semilog plot (x = iteration,
/// y = log10 of the residual) — the terminal rendition of the paper's
/// Figs. 2–4. Each series gets a distinct glyph; overlapping points show
/// the later series' glyph.
pub fn ascii_semilogy(series: &[(String, Vec<f64>)], width: usize, height: usize) -> String {
    const GLYPHS: [char; 8] = ['o', '+', 'x', '*', '#', '@', '%', '&'];
    let max_len = series.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    if max_len == 0 {
        return String::from("(no data)\n");
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (_, s) in series {
        for &v in s {
            if v > 0.0 && v.is_finite() {
                lo = lo.min(v.log10());
                hi = hi.max(v.log10());
            }
        }
    }
    if !lo.is_finite() || hi - lo < 1e-12 {
        return String::from("(series constant or empty)\n");
    }
    let mut canvas = vec![vec![' '; width]; height];
    for (si, (_, s)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (i, &v) in s.iter().enumerate() {
            if !(v > 0.0 && v.is_finite()) {
                continue;
            }
            let x = if max_len == 1 {
                0
            } else {
                i * (width - 1) / (max_len - 1)
            };
            let fy = (v.log10() - lo) / (hi - lo);
            let y = ((1.0 - fy) * (height - 1) as f64).round() as usize;
            canvas[y.min(height - 1)][x.min(width - 1)] = glyph;
        }
    }
    let mut out = String::new();
    for (row, line) in canvas.iter().enumerate() {
        let level = hi - (hi - lo) * row as f64 / (height - 1) as f64;
        out.push_str(&format!("1e{level:>6.1} |"));
        out.extend(line.iter());
        out.push('\n');
    }
    out.push_str(&format!("         +{}\n", "-".repeat(width)));
    out.push_str(&format!(
        "          0{:>width$}\n",
        format!("iter {}", max_len - 1),
        width = width - 1
    ));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], name));
    }
    out
}

#[cfg(test)]
mod plot_tests {
    use super::ascii_semilogy;

    #[test]
    fn plot_contains_legend_and_axes() {
        let series = vec![
            ("fast".to_owned(), vec![1.0, 1e-3, 1e-6, 1e-9]),
            ("slow".to_owned(), vec![1.0, 1e-1, 1e-2, 1e-3]),
        ];
        let txt = ascii_semilogy(&series, 40, 12);
        assert!(txt.contains("o fast"));
        assert!(txt.contains("+ slow"));
        assert!(txt.contains("iter 3"));
        // the fast series must reach a lower row than the slow one
        assert!(txt.lines().count() > 12);
    }

    #[test]
    fn empty_and_degenerate_series_are_safe() {
        assert!(ascii_semilogy(&[], 20, 5).contains("no data"));
        let flat = vec![("flat".to_owned(), vec![1.0, 1.0])];
        assert!(ascii_semilogy(&flat, 20, 5).contains("constant"));
        let zeros = vec![("z".to_owned(), vec![0.0, 0.0])];
        assert!(ascii_semilogy(&zeros, 20, 5).contains("constant"));
    }

    #[test]
    fn monotone_series_descends_across_rows() {
        let s = vec![(
            "d".to_owned(),
            (0..20).map(|i| 10f64.powi(-i)).collect::<Vec<_>>(),
        )];
        let txt = ascii_semilogy(&s, 40, 10);
        // first data row (top) holds the early iterations, bottom the late
        let rows: Vec<&str> = txt.lines().take(10).collect();
        let first_col = rows[0].find('o').unwrap();
        let last_col = rows[9].find('o').unwrap();
        assert!(first_col < last_col, "plot must descend left-to-right");
    }
}
