//! Table I — summary of the tested solvers' characteristics.
//!
//! Printed straight from the solver metadata so the table is guaranteed
//! to describe the actual implementation (each property is also asserted
//! by unit tests in `krylov::config`).

use krylov::SolverKind;

fn mark(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no "
    }
}

fn main() {
    println!("TABLE I: SUMMARY OF THE TESTED SOLVERS CHARACTERISTICS");
    println!(
        "{:<20} {:>11} {:>16} {:>21}",
        "Solver", "Fixed prec.", "Comm-free prec.", "Reduction-free prec."
    );
    for kind in SolverKind::all() {
        match kind.prec_traits() {
            None => println!("{:<20} {:>11} {:>16} {:>21}", kind.label(), "-", "-", "-"),
            Some(t) => println!(
                "{:<20} {:>11} {:>16} {:>21}",
                kind.label(),
                mark(t.fixed),
                mark(t.comm_free),
                mark(t.reduction_free)
            ),
        }
    }
    println!();
    println!("Paper comparison: matches Table I row for row (asserted by");
    println!("krylov::config::tests::table1_rows).");
}
