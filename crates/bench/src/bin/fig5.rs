//! Fig. 5 — strong scaling of BiCGS-GNoComm(CI) on LUMI-G, 1024³ mesh,
//! 8 → 256 GCDs, efficiency relative to 8 GCDs.
//!
//! A 1024³ problem needs ~8.6 GB per solver vector — far beyond this
//! machine — so the harness combines two *measured* ingredients with the
//! MI250X machine model:
//!
//! 1. **Iteration counts per rank count** — real solves on a reduced
//!    mesh with the exact decompositions of the sweep. The GNoComm
//!    preconditioner weakens as the block count grows (more truncated
//!    couplings), so outer iterations genuinely increase with ranks; this
//!    algorithmic term is measured, not modelled.
//! 2. **Per-iteration event profile** — the kernel/message/reduction
//!    stream of one outer iteration from an interior rank, with byte
//!    footprints rescaled to each target local mesh
//!    (`perfmodel::strong_scaling` machinery).
//!
//! Usage: `fig5 [--nodes N] [--fixed-iters]`

use bench::{first_iteration_profile, run_once, write_json, Args, ExperimentRecord, RunConfig};
use krylov::SolverKind;
use perfmodel::{replay, scale_events, MachineModel};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    ranks: usize,
    iterations: usize,
    per_iter_compute_s: f64,
    per_iter_comm_s: f64,
    tts_s: f64,
    efficiency: f64,
}

fn main() {
    let args = Args::parse();
    let nodes = args.get("nodes", 64);
    let fixed_iters = args.flag("fixed-iters");
    let machine = MachineModel::mi250x();
    // decomposition per rank count, near-cubic as on LUMI-G
    let sweep: [(usize, [usize; 3]); 6] = [
        (8, [2, 2, 2]),
        (16, [4, 2, 2]),
        (32, [4, 4, 2]),
        (64, [4, 4, 4]),
        (128, [8, 4, 4]),
        (256, [8, 8, 4]),
    ];

    println!(
        "Fig. 5: strong scaling, 1024^3 mesh, {} model",
        machine.name
    );
    println!(
        "iteration counts measured on a {nodes}^3 mesh; per-iteration costs from a\nmeasured event profile rescaled to the 1024^3 local meshes\n"
    );

    // one profiled run to get the per-iteration event structure from an
    // interior rank (3x3x3 => rank 13 has all six interface faces)
    let mut pcfg = RunConfig::small(SolverKind::BiCgsGNoCommCi);
    pcfg.nodes = nodes;
    pcfg.decomp = [3, 3, 3];
    pcfg.record_events = true;
    let pres = run_once(&pcfg);
    assert!(pres.outcome.converged);
    let profile = first_iteration_profile(&pres.events[13]);
    let unknowns = nodes - 1;
    let mlocal = accel::chunk_range(unknowns, 3, 1).len();
    let mvol = (mlocal * mlocal * mlocal) as f64;
    let mface = (mlocal * mlocal) as f64;

    let mut points = Vec::new();
    for (ranks, decomp) in sweep {
        // measured iteration count at this decomposition
        let mut cfg = RunConfig::small(SolverKind::BiCgsGNoCommCi);
        cfg.nodes = nodes;
        cfg.decomp = decomp;
        let res = run_once(&cfg);
        assert!(res.outcome.converged, "{ranks} ranks: {:?}", res.outcome);
        let iterations = if fixed_iters {
            pres.outcome.iterations
        } else {
            res.outcome.iterations
        };

        // rescale the measured per-iteration profile to the 1024^3 local mesh
        let local: [f64; 3] = std::array::from_fn(|a| 1024.0 / decomp[a] as f64);
        let vol = local[0] * local[1] * local[2];
        let face = (local[0] * local[1] + local[1] * local[2] + local[0] * local[2]) / 3.0;
        let scaled = scale_events(&profile, vol / mvol, face / mface);
        let per_iter = replay(&scaled, &machine, ranks);
        let tts = per_iter.total_s() * iterations as f64;
        points.push(Point {
            ranks,
            iterations,
            per_iter_compute_s: per_iter.compute_s,
            per_iter_comm_s: per_iter.comm_s,
            tts_s: tts,
            efficiency: 1.0,
        });
    }
    let t0 = points[0].tts_s * points[0].ranks as f64;
    for p in &mut points {
        p.efficiency = t0 / (p.tts_s * p.ranks as f64);
    }

    println!(
        "{:>6} {:>8} {:>14} {:>12} {:>12} {:>12}",
        "GCDs", "iters", "per-iter comp", "per-iter comm", "TTS [s]", "efficiency"
    );
    let paper = [1.0, 0.95, 0.95, 0.91, 0.85, 0.65];
    for (p, pe) in points.iter().zip(paper) {
        let bar = "#".repeat((p.efficiency * 40.0).round() as usize);
        println!(
            "{:>6} {:>8} {:>12.2}ms {:>10.2}ms {:>12.3} {:>11.1}%  |{bar:<40}| paper {:.0}%",
            p.ranks,
            p.iterations,
            p.per_iter_compute_s * 1e3,
            p.per_iter_comm_s * 1e3,
            p.tts_s,
            p.efficiency * 100.0,
            pe * 100.0
        );
    }

    println!("\nShape vs paper: >=90% efficiency through 64 GCDs, decaying beyond");
    println!("(the paper attributes the decay to GPU underutilisation; here the");
    println!("measured block-count-driven iteration growth provides the same shape).");
    let eff = |r: usize| points.iter().find(|p| p.ranks == r).unwrap().efficiency;
    assert!(eff(16) > 0.80, "16 GCDs: {}", eff(16));
    assert!(
        eff(256) < eff(64),
        "efficiency must decay from 64 to 256 GCDs"
    );
    assert!(eff(256) < 0.95, "256 GCDs must show real degradation");

    let record = ExperimentRecord {
        experiment: "fig5".to_owned(),
        nodes: 1024,
        ranks: 256,
        data: points,
    };
    match write_json(&record) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
