//! Fig. 7 — BiCGS-GNoComm(CI) time to solution across architectures,
//! single rank, 64³ mesh (the paper's own size).
//!
//! Paper observation: both GPUs massively outperform the 128-thread CPU
//! node in computation — 50× (MI250X) and 47× (H100); with a single
//! process there is no MPI, so communication is nil everywhere.
//!
//! Usage: `fig7 [--nodes N]`

use bench::{run_once, write_json, Args, ExperimentRecord, RunConfig};
use krylov::SolverKind;
use perfmodel::{replay, CostBreakdown, MachineModel};
use serde::Serialize;

#[derive(Serialize)]
struct Bar {
    machine: String,
    breakdown: CostBreakdown,
    total_s: f64,
    compute_speedup_vs_cpu: f64,
}

fn main() {
    let args = Args::parse();
    let nodes = args.get("nodes", 64);

    let mut cfg = RunConfig::small(SolverKind::BiCgsGNoCommCi);
    cfg.nodes = nodes;
    cfg.decomp = [1, 1, 1];
    cfg.record_events = true;
    let res = run_once(&cfg);
    assert!(res.outcome.converged);

    println!("Fig. 7: BiCGS-GNoComm(CI) TTS across architectures (single rank)");
    println!(
        "mesh {nodes}^3, 1 rank, {} iterations (measured)\n",
        res.outcome.iterations
    );

    let machines = [
        MachineModel::lumi_c_node(),
        MachineModel::mi250x(),
        MachineModel::h100_gpudirect(),
    ];
    let cpu_compute = replay(&res.events[0], &machines[0], 1).compute_s;
    let mut bars = Vec::new();
    for m in &machines {
        let b = replay(&res.events[0], m, 1);
        let speedup = cpu_compute / b.compute_s;
        println!(
            "{:<40} compute {:>9.4} s   comm {:>7.4} s   total {:>9.4} s   compute speedup vs CPU {:>5.1}x",
            m.name,
            b.compute_s,
            b.comm_s,
            b.total_s(),
            speedup
        );
        bars.push(Bar {
            machine: m.name.clone(),
            breakdown: b,
            total_s: b.total_s(),
            compute_speedup_vs_cpu: speedup,
        });
    }

    println!("\nShape vs paper: 50x (MI250X) and 47x (H100) computation speedups,");
    println!("no communication in the single-process run.");
    let amd = bars[1].compute_speedup_vs_cpu;
    let nv = bars[2].compute_speedup_vs_cpu;
    assert!((amd - 50.0).abs() < 15.0, "AMD speedup {amd}");
    assert!((nv - 47.0).abs() < 15.0, "NVIDIA speedup {nv}");
    assert!(
        bars.iter().all(|b| b.breakdown.comm_s == 0.0),
        "single rank => no comm"
    );

    let record = ExperimentRecord {
        experiment: "fig7".to_owned(),
        nodes,
        ranks: 1,
        data: bars,
    };
    match write_json(&record) {
        Ok(path) => println!("\nwrote {path}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
