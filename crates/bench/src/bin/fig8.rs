//! Fig. 8 — annotated trace of one BiCGS-GNoComm(CI) cycle (the
//! Omnitrace view).
//!
//! The paper instruments one outer iteration on LUMI-G and shows that
//! the preconditioner and `KernelBiCGS1` dominate GPU work while
//! `MPI_Waitall` during halo exchange dominates communication. Here the
//! same cycle is reconstructed: the solver's event stream for one outer
//! iteration is replayed on the MI250X model into a simulated timeline
//! and rendered as an ASCII Gantt chart plus a per-kernel summary.
//!
//! Usage: `fig8 [--nodes N] [--ranks AxBxC] [--width W]`

use bench::{first_iteration_profile, run_once, Args, RunConfig};
use krylov::SolverKind;
use perfmodel::{build_timeline, render_timeline, totals_by_name, MachineModel};

fn main() {
    let args = Args::parse();
    let nodes = args.get("nodes", 64);
    let decomp = args.decomp("ranks", [2, 2, 2]);
    let width = args.get("width", 72usize);
    let ranks: usize = decomp.iter().product();

    let mut cfg = RunConfig::small(SolverKind::BiCgsGNoCommCi);
    cfg.nodes = nodes;
    cfg.decomp = decomp;
    cfg.record_events = true;
    let res = run_once(&cfg);
    assert!(res.outcome.converged);
    let profile = first_iteration_profile(&res.events[0]);

    let machine = MachineModel::mi250x();
    let spans = build_timeline(&profile, &machine, ranks);

    println!(
        "Fig. 8: one BiCGS-GNoComm(CI) cycle on the {} model",
        machine.name
    );
    println!("mesh {nodes}^3, {ranks} ranks — measured event stream, modeled durations\n");
    println!("{}", render_timeline(&spans, width));

    println!("per-kernel totals over the cycle:");
    let totals = totals_by_name(&spans);
    let cycle: f64 = totals.iter().map(|(_, t)| t).sum();
    for (name, t) in &totals {
        println!(
            "  {:<18} {:>10.2} us  {:>5.1}%  |{}",
            name,
            t * 1e6,
            100.0 * t / cycle,
            "#".repeat((t / cycle * 50.0).round() as usize)
        );
    }

    println!("\nShape vs paper: the preconditioner kernels dominate the GPU workload");
    println!("(with KernelBiCGS1 next), while the MPI synchronisation stages are the");
    println!("largest single cost of the cycle — exactly the paper's reading of its");
    println!("Omnitrace capture.");
    let time_of = |n: &str| {
        totals
            .iter()
            .find(|(name, _)| name == n)
            .map(|(_, t)| *t)
            .unwrap_or(0.0)
    };
    let ci = time_of("KernelCI2") + time_of("KernelCI1") + time_of("KernelScale");
    let device: f64 = totals
        .iter()
        .filter(|(n, _)| n.starts_with("Kernel"))
        .map(|(_, t)| t)
        .sum();
    assert!(
        ci > 0.5 * device,
        "the Chebyshev preconditioner must dominate device time ({:.1}%)",
        100.0 * ci / device
    );
    assert!(time_of("KernelBiCGS1") > time_of("KernelBiCGS2"));
    let mpi = time_of("MPI_Allreduce") + time_of("HaloExchange");
    println!(
        "\ndevice share of the cycle: {:.1}%  (preconditioner {:.1}% of device time, MPI {:.1}% of cycle)",
        100.0 * device / cycle,
        100.0 * ci / device,
        100.0 * mpi / cycle
    );
}
