//! Table II — outer iterations, preconditioner iterations per outer
//! cycle, and time to solution per solver, mean ± std over repeated runs.
//!
//! Paper setting: 256³ mesh, 64 GCDs on LUMI-G, 5 runs, nondeterministic
//! MPI reductions (the source of the ± columns). Default here: 64³ mesh,
//! 8 ranks, 3 runs with arrival-order reductions; TTS is the measured
//! event stream replayed on the MI250X machine model (the wall-clock of
//! this CI box is also printed for reference).
//!
//! Usage: `table2 [--nodes N] [--ranks AxBxC] [--runs K] [--full]`

use bench::{mean_std, run_once, write_json, Args, ExperimentRecord, RunConfig};
use comm::ReduceOrder;
use krylov::SolverKind;
use perfmodel::{replay, MachineModel};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    solver: String,
    outer_mean: f64,
    outer_std: f64,
    prec_per_outer_mean: f64,
    prec_per_outer_std: f64,
    tts_model_mean_s: f64,
    tts_model_std_s: f64,
    wall_mean_s: f64,
    paper_outer: &'static str,
    paper_prec: &'static str,
    paper_tts: &'static str,
}

fn paper_reference(kind: SolverKind) -> (&'static str, &'static str, &'static str) {
    match kind {
        SolverKind::BiCgs => ("1543 +/- 245", "-", "5.0 +/- 0.8"),
        SolverKind::FBiCgsGBiCgs => ("13 +/- 3", "950 +/- 10", "38 +/- 8"),
        SolverKind::FBiCgsBjBiCgs => ("125 +/- 12", "370 +/- 2", "35 +/- 3"),
        SolverKind::BiCgsBjCi => ("172 +/- 20", "48", "1.0 +/- 0.1"),
        SolverKind::BiCgsGCi => ("50 +/- 2", "48", "3.3 +/- 0.1"),
        SolverKind::BiCgsGNoCommCi => ("140 +/- 12", "48", "0.77 +/- 0.06"),
    }
}

fn main() {
    let args = Args::parse();
    let full = args.flag("full");
    let nodes = args.get("nodes", if full { 256 } else { 64 });
    let decomp = args.decomp("ranks", if full { [4, 4, 4] } else { [2, 2, 2] });
    let runs = args.get("runs", if full { 5 } else { 3 });
    let machine = MachineModel::mi250x();
    let ranks: usize = decomp.iter().product();

    println!("TABLE II: results per solver, {nodes}^3 mesh, {ranks} ranks, {runs} runs");
    println!(
        "TTS = measured event stream replayed on the {} model\n",
        machine.name
    );

    let mut rows = Vec::new();
    for kind in SolverKind::all() {
        let mut outer = Vec::new();
        let mut prec = Vec::new();
        let mut tts = Vec::new();
        let mut wall = Vec::new();
        for run in 0..runs {
            let mut cfg = RunConfig::small(kind);
            cfg.nodes = nodes;
            cfg.decomp = decomp;
            if full {
                cfg.opts.eig_min_factor = 100.0;
            }
            // arrival-order reductions: the paper's run-to-run variance
            cfg.order = ReduceOrder::Arrival;
            cfg.record_events = true;
            let res = run_once(&cfg);
            assert!(
                res.outcome.converged,
                "{kind} run {run} did not converge: {:?}",
                res.outcome.breakdown
            );
            outer.push(res.outcome.iterations as f64);
            prec.push(res.prec_iterations_max as f64 / res.outcome.iterations.max(1) as f64);
            let modeled = replay(&res.events[0], &machine, ranks);
            tts.push(modeled.total_s());
            wall.push(res.wall_s);
        }
        let (om, os) = mean_std(&outer);
        let (pm, ps) = mean_std(&prec);
        let (tm, ts) = mean_std(&tts);
        let (wm, _) = mean_std(&wall);
        let (p_outer, p_prec, p_tts) = paper_reference(kind);
        println!(
            "{:<20} outer {:>7.1} +/- {:>5.1}   prec/outer {:>7.1} +/- {:>4.1}   TTS(model) {:>8.3} +/- {:>6.3} s   wall(this box) {:>7.2} s",
            kind.label(), om, os, pm, ps, tm, ts, wm
        );
        println!(
            "{:<20}   paper @256^3/64GCD: outer {p_outer}, prec/outer {p_prec}, TTS {p_tts} s",
            ""
        );
        rows.push(Row {
            solver: kind.label().to_owned(),
            outer_mean: om,
            outer_std: os,
            prec_per_outer_mean: pm,
            prec_per_outer_std: ps,
            tts_model_mean_s: tm,
            tts_model_std_s: ts,
            wall_mean_s: wm,
            paper_outer: p_outer,
            paper_prec: p_prec,
            paper_tts: p_tts,
        });
    }

    // headline shape checks from the paper's Observation I
    let tts_of = |k: &str| {
        rows.iter()
            .find(|r| r.solver == k)
            .unwrap()
            .tts_model_mean_s
    };
    let plain = tts_of("BiCGS");
    let gnocomm = tts_of("BiCGS-GNoComm(CI)");
    let gbicgs = tts_of("FBiCGS-G(BiCGS)");
    let gci = tts_of("BiCGS-G(CI)");
    println!("\nShape vs paper (Observation I):");
    println!(
        "  GNoComm(CI) vs plain:      {:>6.1}x faster (paper @256^3: 6.5x)",
        plain / gnocomm
    );
    println!(
        "  GNoComm(CI) vs G(BiCGS):   {:>6.1}x faster (paper @256^3: 50x)",
        gbicgs / gnocomm
    );
    println!(
        "  GNoComm(CI) vs G(CI):      {:>6.1}x faster (paper @256^3: 4.3x)",
        gci / gnocomm
    );
    if !full {
        println!("  (the 6.5x-vs-plain headline needs the paper mesh: plain BiCGSTAB's");
        println!("   iteration count grows ~linearly with resolution while GNoComm(CI)'s");
        println!("   grows much slower — rerun with --full to reproduce it)");
    }
    assert!(gnocomm < gbicgs, "GNoComm(CI) must beat G(BiCGS)");
    assert!(
        gnocomm < gci,
        "comm-free must beat the communicating CI preconditioner"
    );
    if full {
        assert!(
            gnocomm < plain,
            "GNoComm(CI) must beat plain BiCGS at paper scale"
        );
        assert!(
            rows.iter().all(|r| r.tts_model_mean_s >= gnocomm * 0.95),
            "GNoComm(CI) must be the fastest configuration at paper scale"
        );
    }

    let record = ExperimentRecord {
        experiment: "table2".to_owned(),
        nodes,
        ranks,
        data: rows,
    };
    match write_json(&record) {
        Ok(path) => println!("\nwrote {path}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
