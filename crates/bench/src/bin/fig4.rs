//! Fig. 4 — residual norm per iteration for BiCGS-GNoComm(CI) across
//! back-ends, single rank.
//!
//! Paper setting: 64³ mesh, one MPI process (one GCD / one GPU / 128 OMP
//! threads), CI iterations fixed at 24, eigenvalue rescaling (1−1e-4, 10).
//! This is the paper's own default size, so it runs as-is here. The paper
//! observed 14 iterations on both GPUs vs 27 on the CPU back-end — a pure
//! floating-point-reduction-order effect, reproduced here by the
//! back-ends' different summation groupings.
//!
//! Usage: `fig4 [--nodes N]`

use bench::{ascii_semilogy, run_once, write_json, Args, ExperimentRecord, RunConfig};
use krylov::SolverKind;
use serde::Serialize;

#[derive(Serialize)]
struct Series {
    backend: String,
    iterations: usize,
    converged: bool,
    residuals: Vec<f64>,
}

fn main() {
    let args = Args::parse();
    let nodes = args.get("nodes", 64); // the paper's actual Fig. 4 mesh

    println!("Fig. 4: residual vs iteration, BiCGS-GNoComm(CI), single rank");
    println!("mesh {nodes}^3, 1 rank, CI=24, rescale (1-1e-4, x10)\n");

    let mut series = Vec::new();
    for device in ["serial", "threads:4", "mi250x", "h100"] {
        let mut cfg = RunConfig::small(SolverKind::BiCgsGNoCommCi);
        cfg.nodes = nodes;
        cfg.decomp = [1, 1, 1];
        cfg.device = device.to_owned();
        let res = run_once(&cfg);
        println!(
            "{:<12} iterations {:>5}  converged {}  final residual {:.3e}",
            device, res.outcome.iterations, res.outcome.converged, res.outcome.final_residual
        );
        series.push(Series {
            backend: device.to_owned(),
            iterations: res.outcome.iterations,
            converged: res.outcome.converged,
            residuals: res.outcome.residual_history.clone(),
        });
    }

    let longest = series.iter().map(|s| s.residuals.len()).max().unwrap_or(0);
    println!(
        "\niter  {}",
        series
            .iter()
            .map(|s| format!("{:>16}", s.backend))
            .collect::<String>()
    );
    for i in 0..longest {
        let mut row = format!("{i:>5} ");
        for s in &series {
            match s.residuals.get(i) {
                Some(r) => row.push_str(&format!("{r:>16.4e}")),
                None => row.push_str(&format!("{:>16}", "-")),
            }
        }
        println!("{row}");
    }

    let plot_series: Vec<(String, Vec<f64>)> = series
        .iter()
        .map(|s| (s.backend.clone(), s.residuals.clone()))
        .collect();
    println!("\n{}", ascii_semilogy(&plot_series, 76, 18));

    println!("\nShape vs paper: every back-end converges to 1e-10; iteration counts");
    println!("differ only through floating-point reduction order (paper: GPUs 14,");
    println!("CPU 27 on this mesh).");
    assert!(
        series.iter().all(|s| s.converged),
        "all back-ends must converge"
    );
    // quantify the reduction-order divergence between back-ends
    let reference = &series[0].residuals;
    for s in &series[1..] {
        let div = s
            .residuals
            .iter()
            .zip(reference)
            .map(|(a, b)| (a - b).abs() / b.max(f64::MIN_POSITIVE))
            .fold(0.0f64, f64::max);
        println!(
            "  residual-history divergence vs {}: max rel {:.2e} ({})",
            series[0].backend, div, s.backend
        );
    }

    let record = ExperimentRecord {
        experiment: "fig4".to_owned(),
        nodes,
        ranks: 1,
        data: series,
    };
    match write_json(&record) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
