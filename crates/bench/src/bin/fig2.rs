//! Fig. 2 — residual norm per iteration for all six solvers.
//!
//! Paper setting: 256³ mesh, 64 GCDs / 64 MPI ranks on LUMI-G, relative
//! tolerance 1e-10. Default here: 64³ mesh on 8 in-process ranks (pass
//! `--full` for 256 nodes on a 4x4x4 decomposition — slow on one core).
//!
//! Usage: `fig2 [--nodes N] [--ranks AxBxC] [--device spec] [--full]`

use bench::{ascii_semilogy, run_once, write_json, Args, ExperimentRecord, RunConfig};
use krylov::SolverKind;
use serde::Serialize;

#[derive(Serialize)]
struct Series {
    solver: String,
    iterations: usize,
    converged: bool,
    residuals: Vec<f64>,
}

fn main() {
    let args = Args::parse();
    let full = args.flag("full");
    let nodes = args.get("nodes", if full { 256 } else { 64 });
    let decomp = args.decomp("ranks", if full { [4, 4, 4] } else { [2, 2, 2] });
    let device = args.get_str("device", "serial");

    println!("Fig. 2: residual norm vs iteration, all solvers");
    println!("mesh {nodes}^3, ranks {decomp:?}, device {device}, tol 1e-10\n");

    let mut series = Vec::new();
    for kind in SolverKind::all() {
        let mut cfg = RunConfig::small(kind);
        cfg.nodes = nodes;
        cfg.decomp = decomp;
        cfg.device = device.clone();
        if full {
            // Sec. IV: the 256^3 experiments rescale lambda_min by 100
            cfg.opts.eig_min_factor = 100.0;
        }
        let res = run_once(&cfg);
        println!(
            "{:<20} iterations {:>6}  converged {}  final residual {:.3e}",
            kind.label(),
            res.outcome.iterations,
            res.outcome.converged,
            res.outcome.final_residual
        );
        series.push(Series {
            solver: kind.label().to_owned(),
            iterations: res.outcome.iterations,
            converged: res.outcome.converged,
            residuals: res.outcome.residual_history.clone(),
        });
    }

    println!(
        "\niter  {}",
        series
            .iter()
            .map(|s| format!("{:>22}", s.solver))
            .collect::<String>()
    );
    let longest = series.iter().map(|s| s.residuals.len()).max().unwrap_or(0);
    let stride = (longest / 40).max(1);
    for i in (0..longest).step_by(stride) {
        let mut row = format!("{i:>5} ");
        for s in &series {
            match s.residuals.get(i) {
                Some(r) => row.push_str(&format!("{r:>22.6e}")),
                None => row.push_str(&format!("{:>22}", "-")),
            }
        }
        println!("{row}");
    }

    // the figure itself, terminal rendition
    let plot_series: Vec<(String, Vec<f64>)> = series
        .iter()
        .map(|s| (s.solver.clone(), s.residuals.clone()))
        .collect();
    println!("\n{}", ascii_semilogy(&plot_series, 76, 20));

    // paper-shape checks
    let iters = |k: &str| {
        series
            .iter()
            .find(|s| s.solver == k)
            .map(|s| s.iterations)
            .unwrap()
    };
    let plain = iters("BiCGS");
    println!("\nShape vs paper:");
    println!("  plain BiCGS iterations: {plain} (paper @256^3: ~1543)");
    for s in &series[1..] {
        let speedup = plain as f64 / s.iterations.max(1) as f64;
        println!(
            "  {:<20} {:>6} iterations  ({speedup:.1}x fewer than plain; paper: all preconditioners < 200 @256^3)",
            s.solver, s.iterations
        );
    }
    let g = iters("FBiCGS-G(BiCGS)");
    assert!(
        g < iters("BiCGS-GNoComm(CI)"),
        "global preconditioner needs fewest outer iterations"
    );

    let record = ExperimentRecord {
        experiment: "fig2".to_owned(),
        nodes,
        ranks: decomp.iter().product(),
        data: series,
    };
    match write_json(&record) {
        Ok(path) => println!("\nwrote {path}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
