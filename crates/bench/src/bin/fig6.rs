//! Fig. 6 — BiCGS-GNoComm(CI) time to solution across architectures,
//! multi-rank, with computation/communication breakdown.
//!
//! Paper setting: 256³ mesh, 64 MPI processes, on LUMI-C (CPU), LUMI-G
//! (MI250X) and MareNostrum5 (H100 with broken GPU-direct). The paper
//! found AMD fastest, the CPU ~20× slower overall (29× in compute), and
//! NVIDIA ~42× slower overall because every halo message staged through
//! host memory.
//!
//! Here the measured event stream of a real run is replayed through the
//! three machine models.
//!
//! Usage: `fig6 [--nodes N] [--ranks AxBxC] [--full]`

use bench::{run_once, write_json, Args, ExperimentRecord, RunConfig};
use krylov::SolverKind;
use perfmodel::{replay, CostBreakdown, MachineModel};
use serde::Serialize;

#[derive(Serialize)]
struct Bar {
    machine: String,
    breakdown: CostBreakdown,
    total_s: f64,
}

fn main() {
    let args = Args::parse();
    let full = args.flag("full");
    let nodes = args.get("nodes", if full { 256 } else { 64 });
    let decomp = args.decomp("ranks", if full { [4, 4, 4] } else { [2, 2, 2] });
    let ranks: usize = decomp.iter().product();

    let mut cfg = RunConfig::small(SolverKind::BiCgsGNoCommCi);
    cfg.nodes = nodes;
    cfg.decomp = decomp;
    cfg.record_events = true;
    if full {
        cfg.opts.eig_min_factor = 100.0;
    }
    let res = run_once(&cfg);
    assert!(res.outcome.converged);

    println!("Fig. 6: BiCGS-GNoComm(CI) TTS across architectures (multi-rank)");
    println!(
        "mesh {nodes}^3, {ranks} ranks, {} iterations (measured), event replay\n",
        res.outcome.iterations
    );

    let machines = [
        MachineModel::lumi_c_rank(),
        MachineModel::mi250x(),
        MachineModel::h100_mn5(),
    ];
    let mut bars = Vec::new();
    for m in &machines {
        let b = replay(&res.events[0], m, ranks);
        println!(
            "{:<40} compute {:>9.3} s   comm {:>9.3} s   transfer {:>7.4} s   total {:>9.3} s",
            m.name,
            b.compute_s,
            b.comm_s,
            b.transfer_s,
            b.total_s()
        );
        bars.push(Bar {
            machine: m.name.clone(),
            breakdown: b,
            total_s: b.total_s(),
        });
    }

    let cpu = &bars[0];
    let amd = &bars[1];
    let nv = &bars[2];
    println!("\nShape vs paper:");
    println!(
        "  CPU/AMD compute ratio: {:>6.1}x   (paper: 29x)",
        cpu.breakdown.compute_s / amd.breakdown.compute_s
    );
    println!(
        "  CPU/AMD total ratio:   {:>6.1}x   (paper: ~20x)",
        cpu.total_s / amd.total_s
    );
    println!(
        "  NVIDIA/AMD total:      {:>6.1}x   (paper: 42x, broken GPU-direct on MareNostrum5)",
        nv.total_s / amd.total_s
    );
    assert!(amd.total_s < cpu.total_s, "AMD must beat the CPU back-end");
    assert!(
        amd.total_s < nv.total_s,
        "AMD must beat the staged-copy NVIDIA run"
    );
    assert!(
        nv.breakdown.comm_s > nv.breakdown.compute_s,
        "the broken-GPU-direct NVIDIA run must be communication-dominated"
    );

    let record = ExperimentRecord {
        experiment: "fig6".to_owned(),
        nodes,
        ranks,
        data: bars,
    };
    match write_json(&record) {
        Ok(path) => println!("\nwrote {path}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
