//! Fig. 3 — residual norm per iteration for BiCGS-GNoComm(CI) across
//! hardware back-ends (multi-rank).
//!
//! Paper setting: 256³ mesh, 64 MPI ranks, run on LUMI-C (CPUs), LUMI-G
//! (MI250X) and MareNostrum5 (H100); convergence is near-identical on
//! the two GPUs and slightly slower on the CPU back-end. Here the three
//! back-ends are `threads` (OpenMP-analogue CPU), `mi250x` and `h100`
//! (simulated GPUs with their distinct block-tree reduction orders) —
//! the same floating-point mechanism behind the paper's differences.
//!
//! Usage: `fig3 [--nodes N] [--ranks AxBxC] [--full]`

use bench::{ascii_semilogy, run_once, write_json, Args, ExperimentRecord, RunConfig};
use krylov::SolverKind;
use serde::Serialize;

#[derive(Serialize)]
struct Series {
    backend: String,
    iterations: usize,
    converged: bool,
    residuals: Vec<f64>,
}

fn main() {
    let args = Args::parse();
    let full = args.flag("full");
    let nodes = args.get("nodes", if full { 256 } else { 64 });
    let decomp = args.decomp("ranks", if full { [4, 4, 4] } else { [2, 2, 2] });

    println!("Fig. 3: residual vs iteration, BiCGS-GNoComm(CI), per back-end");
    println!("mesh {nodes}^3, ranks {decomp:?}\n");

    let mut series = Vec::new();
    for device in ["threads:4", "mi250x", "h100"] {
        let mut cfg = RunConfig::small(SolverKind::BiCgsGNoCommCi);
        cfg.nodes = nodes;
        cfg.decomp = decomp;
        cfg.device = device.to_owned();
        if full {
            cfg.opts.eig_min_factor = 100.0;
        }
        let res = run_once(&cfg);
        println!(
            "{:<12} iterations {:>5}  converged {}  final residual {:.3e}",
            device, res.outcome.iterations, res.outcome.converged, res.outcome.final_residual
        );
        series.push(Series {
            backend: device.to_owned(),
            iterations: res.outcome.iterations,
            converged: res.outcome.converged,
            residuals: res.outcome.residual_history.clone(),
        });
    }

    let longest = series.iter().map(|s| s.residuals.len()).max().unwrap_or(0);
    println!(
        "\niter  {}",
        series
            .iter()
            .map(|s| format!("{:>16}", s.backend))
            .collect::<String>()
    );
    for i in (0..longest).step_by((longest / 40).max(1)) {
        let mut row = format!("{i:>5} ");
        for s in &series {
            match s.residuals.get(i) {
                Some(r) => row.push_str(&format!("{r:>16.4e}")),
                None => row.push_str(&format!("{:>16}", "-")),
            }
        }
        println!("{row}");
    }

    let plot_series: Vec<(String, Vec<f64>)> = series
        .iter()
        .map(|s| (s.backend.clone(), s.residuals.clone()))
        .collect();
    println!("\n{}", ascii_semilogy(&plot_series, 76, 18));

    println!("\nShape vs paper: same convergence rate on both GPUs, CPU back-end");
    println!("within a few iterations of the GPUs at this multi-rank scale.");
    let reference = &series[0].residuals;
    for s in &series[1..] {
        let div = s
            .residuals
            .iter()
            .zip(reference)
            .map(|(a, b)| (a - b).abs() / b.max(f64::MIN_POSITIVE))
            .fold(0.0f64, f64::max);
        println!(
            "  residual-history divergence {} vs {}: max rel {:.2e}",
            s.backend, series[0].backend, div
        );
    }
    let gpu_a = series[1].iterations as f64;
    let gpu_n = series[2].iterations as f64;
    assert!(
        (gpu_a - gpu_n).abs() / gpu_a.max(gpu_n) < 0.25,
        "GPU back-ends should converge at nearly the same rate"
    );

    let record = ExperimentRecord {
        experiment: "fig3".to_owned(),
        nodes,
        ranks: decomp.iter().product(),
        data: series,
    };
    match write_json(&record) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
