//! # comm — an MPI-style message-passing runtime for in-process ranks
//!
//! The paper parallelises across nodes with MPI: non-blocking halo
//! point-to-point (`MPI_Isend`/`MPI_Irecv`/`MPI_Waitall`), global
//! reductions (`MPI_Allreduce`) for the Bi-CGSTAB scalar products, and
//! derived datatypes that ship a whole subdomain face in one message.
//!
//! No multi-node cluster is available in this environment, so this crate
//! rebuilds the same contract with *ranks as OS threads* inside one
//! process:
//!
//! * [`Communicator`] is the API the solver is written against.
//! * [`ThreadComm`] is the N-rank implementation: tagged, buffered
//!   point-to-point channels plus a generation-stamped collective engine.
//! * [`SelfComm`] is the trivial single-rank world (`MPI_COMM_SELF`).
//! * [`run_ranks`] spawns one thread per rank and runs an SPMD closure,
//!   which is exactly how the examples, tests and benches launch the
//!   distributed solver.
//!
//! ## Reduction order and floating-point nondeterminism
//!
//! The paper attributes its run-to-run variance in iteration counts
//! (Table II) to non-associative floating-point reductions. The collective
//! engine makes that effect a first-class, *controllable* property:
//! [`ReduceOrder::RankOrder`] folds contributions deterministically by
//! rank, while [`ReduceOrder::Arrival`] folds them in the order ranks
//! happened to arrive — reproducing MPI's allreduce nondeterminism while
//! still guaranteeing that every rank observes the bitwise-same result
//! (which MPI also guarantees within one call).

#![warn(missing_docs)]

mod runner;
mod self_comm;
mod thread_comm;
mod types;

pub use runner::{run_ranks, run_ranks_recorded};
pub use self_comm::SelfComm;
pub use thread_comm::{Poisoner, ThreadComm};
pub use types::{
    CommStats, Communicator, RecvRequest, ReduceManyRequest, ReduceOp, ReduceOrder, ReduceRequest,
    Tag, MAX_REDUCE_SCALARS,
};
