//! N-rank in-process communicator.

use accel::{Event, Recorder, Scalar};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::types::{CommStats, Communicator, ReduceOp, ReduceOrder, ReduceRequest, StatsCell, Tag};

/// Messages keyed by (source, tag), FIFO per key.
type QueueMap<T> = HashMap<(usize, Tag), VecDeque<Vec<T>>>;

/// Per-destination mailbox.
struct Mailbox<T> {
    queues: Mutex<QueueMap<T>>,
    arrived: Condvar,
}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Self {
            queues: Mutex::new(HashMap::new()),
            arrived: Condvar::new(),
        }
    }
}

/// Phase of the collective engine.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Accepting contributions for the current generation.
    Collect,
    /// Result published; ranks are copying it out.
    Distribute,
}

/// State of the generation-stamped collective engine.
///
/// All buffers are recycled round over round: contribution slots retire
/// into `spare` after the fold and are reused by later arrivals, and the
/// result vector keeps its capacity across rounds. After one warm-up
/// round per payload size the engine never touches the heap — the
/// steady-state allocation audits depend on this.
struct Collective<T> {
    phase: Phase,
    generation: u64,
    /// Contributions in arrival order (rank, payload).
    contributions: Vec<(usize, Vec<T>)>,
    /// Retired contribution slots awaiting reuse.
    spare: Vec<Vec<T>>,
    result: Vec<T>,
    departed: usize,
}

impl<T> Default for Collective<T> {
    fn default() -> Self {
        Self {
            phase: Phase::Collect,
            generation: 0,
            contributions: Vec::new(),
            spare: Vec::new(),
            result: Vec::new(),
            departed: 0,
        }
    }
}

struct Shared<T> {
    size: usize,
    order: ReduceOrder,
    mailboxes: Vec<Mailbox<T>>,
    collective: Mutex<Collective<T>>,
    collective_cvar: Condvar,
    /// Set by [`ThreadComm::poison`]: every blocked or future blocking call
    /// panics instead of waiting, so a detected deadlock (or a watchdog
    /// timeout) unwinds the whole world instead of hanging it.
    poisoned: AtomicBool,
}

impl<T> Shared<T> {
    fn check_poison(&self) {
        assert!(
            !self.poisoned.load(Ordering::Acquire),
            "ThreadComm world poisoned (deadlock or watchdog abort); \
             see the comm-verifier report for the wait-for graph"
        );
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        for mailbox in &self.mailboxes {
            // Acquire the lock so no waiter can miss the wake-up between
            // its poison check and its condvar wait.
            let _guard = mailbox.queues.lock();
            mailbox.arrived.notify_all();
        }
        let _guard = self.collective.lock();
        self.collective_cvar.notify_all();
    }
}

/// Detached watchdog handle onto one world's poison flag.
///
/// Unlike a [`ThreadComm`] rank handle, a poisoner is cloneable and holds
/// no rank identity, so a supervising thread (the `check` crate's
/// watchdog) can keep one aside while every rank handle is moved onto its
/// thread, and still abort the world on a timeout.
pub struct Poisoner<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Poisoner<T> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Poisoner<T> {
    /// Poison the world (see [`ThreadComm::poison`]). Idempotent.
    pub fn poison(&self) {
        self.shared.poison();
    }

    /// `true` once the world has been poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.shared.poisoned.load(Ordering::Acquire)
    }
}

/// One rank's handle onto an N-rank world.
///
/// Created in bulk with [`ThreadComm::world`]; each handle is moved onto
/// its rank's thread (see [`crate::run_ranks`]).
///
/// Semantics mirror buffered MPI: `send` enqueues and returns immediately,
/// `recv` blocks for a matching `(source, tag)` message, `all_reduce` and
/// `barrier` synchronise all ranks. If a rank panics while peers are
/// blocked in a collective the program hangs, as a crashed MPI rank also
/// hangs its communicator — run SPMD closures that do not panic.
pub struct ThreadComm<T> {
    shared: Arc<Shared<T>>,
    rank: usize,
    stats: Arc<StatsCell>,
    recorder: Recorder,
}

impl<T: Scalar> ThreadComm<T> {
    /// Create an N-rank world. `recorders[r]` receives rank `r`'s
    /// collective events; pass [`Recorder::disabled`] handles to skip
    /// recording.
    pub fn world(size: usize, order: ReduceOrder, recorders: Vec<Recorder>) -> Vec<Self> {
        assert!(size >= 1, "world needs at least one rank");
        assert_eq!(recorders.len(), size, "one recorder per rank required");
        let shared = Arc::new(Shared {
            size,
            order,
            mailboxes: (0..size).map(|_| Mailbox::default()).collect(),
            collective: Mutex::new(Collective::default()),
            collective_cvar: Condvar::new(),
            poisoned: AtomicBool::new(false),
        });
        recorders
            .into_iter()
            .enumerate()
            .map(|(rank, recorder)| Self {
                shared: Arc::clone(&shared),
                rank,
                stats: Arc::new(StatsCell::default()),
                recorder,
            })
            .collect()
    }

    /// Create a world with deterministic reductions and no recording.
    pub fn world_default(size: usize) -> Vec<Self> {
        Self::world(
            size,
            ReduceOrder::RankOrder,
            vec![Recorder::disabled(); size],
        )
    }

    /// The reduction-order policy of this world.
    pub fn reduce_order(&self) -> ReduceOrder {
        self.shared.order
    }

    /// Non-blocking receive: pop a matching `(src, tag)` message if one has
    /// already arrived (`MPI_Iprobe` + receive). Used by the `check`
    /// crate's verified communicator to poll instead of blocking, which is
    /// what lets it run deadlock detection while "blocked".
    pub fn try_recv(&self, src: usize, tag: Tag) -> Option<Vec<T>> {
        assert!(src < self.shared.size, "recv from rank {src} outside world");
        self.shared.check_poison();
        self.shared.mailboxes[self.rank]
            .queues
            .lock()
            .get_mut(&(src, tag))
            .and_then(VecDeque::pop_front)
    }

    /// Poison the world: every rank blocked in `recv` or a collective (and
    /// every later call) panics instead of waiting forever. Idempotent.
    ///
    /// This is the escape hatch for deadlock diagnosis: a verifier or
    /// watchdog that has *proved* no progress is possible poisons the
    /// world so all rank threads unwind and the test harness can report,
    /// instead of hanging CI.
    pub fn poison(&self) {
        self.shared.poison();
    }

    /// A detached, cloneable handle that can poison this world without
    /// occupying a rank (for watchdog threads).
    pub fn poisoner(&self) -> Poisoner<T> {
        Poisoner {
            shared: Arc::clone(&self.shared),
        }
    }

    /// `true` once [`ThreadComm::poison`] has been called on any handle.
    pub fn is_poisoned(&self) -> bool {
        self.shared.poisoned.load(Ordering::Acquire)
    }

    /// Begin phase of the collective engine: pass the entry gate (the
    /// previous round must fully drain first), contribute, and — if this
    /// rank is the last arriver — fold and publish. Returns the generation
    /// the contribution entered; the caller completes it with
    /// [`Self::collective_finish`]. Never blocks on *other ranks'
    /// contributions*, only on the previous round draining, which is what
    /// makes the split-phase reduction overlap-capable.
    fn collective_begin(&self, vals: &[T], op: ReduceOp) -> u64 {
        let shared = &self.shared;
        shared.check_poison();
        let mut st = shared.collective.lock();
        // Entry gate: the previous round must fully drain first.
        while st.phase == Phase::Distribute {
            shared.collective_cvar.wait(&mut st);
            shared.check_poison();
        }
        assert!(
            st.contributions.iter().all(|(rank, _)| *rank != self.rank),
            "rank {} began a second collective while one is outstanding \
             (only one split-phase reduction may be in flight per rank)",
            self.rank
        );
        let my_generation = st.generation;
        // Stage the contribution in a recycled slot: `clear` +
        // `extend_from_slice` keeps the slot's capacity, so after one
        // warm-up round per payload size no round allocates.
        let mut slot = st.spare.pop().unwrap_or_default();
        slot.clear();
        slot.extend_from_slice(vals);
        st.contributions.push((self.rank, slot));
        if st.contributions.len() == shared.size {
            // Last arriver folds and publishes.
            let Collective {
                contributions,
                spare,
                result,
                ..
            } = &mut *st;
            if shared.order == ReduceOrder::RankOrder {
                // Unstable sort: ranks are unique, and stable sort would
                // allocate its merge scratch.
                contributions.sort_unstable_by_key(|(rank, _)| *rank);
            }
            result.clear();
            result.extend_from_slice(&contributions[0].1);
            for (_, contribution) in &contributions[1..] {
                for (a, b) in result.iter_mut().zip(contribution) {
                    *a = op.combine(*a, *b);
                }
            }
            // Retire the slots for the next round's arrivals.
            spare.extend(contributions.drain(..).map(|(_, slot)| slot));
            st.phase = Phase::Distribute;
            st.departed = 0;
            shared.collective_cvar.notify_all();
        }
        my_generation
    }

    /// Finish phase: wait for `generation`'s result to be published, copy
    /// it out and depart (the last departer resets the engine for the next
    /// round).
    fn collective_finish(&self, generation: u64, out: &mut [T]) {
        let shared = &self.shared;
        shared.check_poison();
        let mut st = shared.collective.lock();
        while !(st.phase == Phase::Distribute && st.generation == generation) {
            shared.collective_cvar.wait(&mut st);
            shared.check_poison();
        }
        out.copy_from_slice(&st.result[..out.len()]);
        st.departed += 1;
        if st.departed == shared.size {
            st.phase = Phase::Collect;
            st.generation += 1;
            shared.collective_cvar.notify_all();
        }
    }

    fn collective_exchange(&self, vals: &mut [T], op: ReduceOp) {
        let generation = self.collective_begin(vals, op);
        self.collective_finish(generation, vals);
    }
}

impl<T: Scalar> Communicator<T> for ThreadComm<T> {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.shared.size
    }

    fn send(&self, dest: usize, tag: Tag, data: Vec<T>) {
        assert!(dest < self.shared.size, "send to rank {dest} outside world");
        self.stats.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_sent
            .fetch_add((data.len() * T::BYTES) as u64, Ordering::Relaxed);
        let mailbox = &self.shared.mailboxes[dest];
        mailbox
            .queues
            .lock()
            .entry((self.rank, tag))
            .or_default()
            .push_back(data);
        mailbox.arrived.notify_all();
    }

    fn recv(&self, src: usize, tag: Tag) -> Vec<T> {
        assert!(src < self.shared.size, "recv from rank {src} outside world");
        self.shared.check_poison();
        let mailbox = &self.shared.mailboxes[self.rank];
        let mut queues = mailbox.queues.lock();
        loop {
            if let Some(msg) = queues.get_mut(&(src, tag)).and_then(VecDeque::pop_front) {
                return msg;
            }
            mailbox.arrived.wait(&mut queues);
            self.shared.check_poison();
        }
    }

    fn all_reduce(&self, vals: &mut [T], op: ReduceOp) {
        self.stats.allreduces.fetch_add(1, Ordering::Relaxed);
        self.recorder.record(Event::AllReduce {
            elems: vals.len() as u32,
            bytes: (vals.len() * T::BYTES) as u64,
        });
        self.collective_exchange(vals, op);
    }

    fn barrier(&self) {
        self.collective_exchange(&mut [], ReduceOp::Sum);
    }

    fn stats(&self) -> CommStats {
        self.stats.snapshot()
    }

    fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    fn iall_reduce(&self, vals: &[T], op: ReduceOp) -> ReduceRequest<T> {
        self.stats.allreduces.fetch_add(1, Ordering::Relaxed);
        self.recorder.record(Event::AllReduce {
            elems: vals.len() as u32,
            bytes: (vals.len() * T::BYTES) as u64,
        });
        let generation = self.collective_begin(vals, op);
        ReduceRequest {
            len: vals.len(),
            op,
            generation,
            resolved: None,
        }
    }

    fn reduce_finish(&self, req: ReduceRequest<T>, out: &mut [T]) {
        assert_eq!(
            out.len(),
            req.len,
            "reduce_finish output buffer does not match the request length"
        );
        match req.resolved {
            Some(resolved) => out.copy_from_slice(&resolved[..req.len]),
            None => self.collective_finish(req.generation, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_ranks;

    #[test]
    fn ring_pass_delivers_in_order() {
        let sums = run_ranks::<f64, _, _>(4, ReduceOrder::RankOrder, |comm| {
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(right, 0, vec![comm.rank() as f64]);
            comm.send(right, 0, vec![comm.rank() as f64 + 0.5]);
            let first = comm.recv(left, 0);
            let second = comm.recv(left, 0);
            first[0] + second[0]
        });
        for (rank, s) in sums.iter().enumerate() {
            let left = (rank + 3) % 4;
            assert_eq!(*s, left as f64 * 2.0 + 0.5);
        }
    }

    #[test]
    fn all_reduce_sum_matches_serial() {
        let results = run_ranks::<f64, _, _>(5, ReduceOrder::RankOrder, |comm| {
            let mut v = vec![comm.rank() as f64, 1.0];
            comm.all_reduce(&mut v, ReduceOp::Sum);
            v
        });
        for v in &results {
            assert_eq!(v, &vec![10.0, 5.0]);
        }
    }

    #[test]
    fn all_reduce_min_max() {
        let results = run_ranks::<f64, _, _>(3, ReduceOrder::RankOrder, |comm| {
            let mut v = vec![comm.rank() as f64];
            comm.all_reduce(&mut v, ReduceOp::Max);
            let mut w = vec![comm.rank() as f64];
            comm.all_reduce(&mut w, ReduceOp::Min);
            (v[0], w[0])
        });
        assert!(results.iter().all(|&(mx, mn)| mx == 2.0 && mn == 0.0));
    }

    #[test]
    fn repeated_collectives_do_not_cross_generations() {
        let results = run_ranks::<f64, _, _>(4, ReduceOrder::RankOrder, |comm| {
            let mut acc = 0.0;
            for round in 0..200 {
                let mut v = [comm.rank() as f64 + round as f64];
                comm.all_reduce(&mut v, ReduceOp::Sum);
                acc += v[0];
            }
            acc
        });
        let expect: f64 = (0..200).map(|round| 6.0 + 4.0 * round as f64).sum();
        assert!(results.iter().all(|&a| a == expect));
    }

    #[test]
    fn arrival_order_gives_identical_result_on_all_ranks() {
        for _ in 0..10 {
            let results = run_ranks::<f64, _, _>(6, ReduceOrder::Arrival, |comm| {
                let mut v = [1.0 / (comm.rank() as f64 + 3.0)];
                comm.all_reduce(&mut v, ReduceOp::Sum);
                v[0]
            });
            let first = results[0].to_bits();
            assert!(results.iter().all(|r| r.to_bits() == first));
        }
    }

    #[test]
    fn barrier_synchronises() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run_ranks::<f64, _, _>(4, ReduceOrder::RankOrder, |comm| {
            counter.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier every rank must have incremented.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn stats_and_events_are_per_rank() {
        let recorders: Vec<Recorder> = (0..2).map(|_| Recorder::enabled()).collect();
        let snapshot = recorders.clone();
        let comms = ThreadComm::<f64>::world(2, ReduceOrder::RankOrder, recorders);
        std::thread::scope(|s| {
            for comm in comms {
                s.spawn(move || {
                    if comm.rank() == 0 {
                        comm.send(1, 3, vec![1.0, 2.0, 3.0]);
                    } else {
                        let m = comm.recv(0, 3);
                        assert_eq!(m.len(), 3);
                    }
                    let mut v = [1.0];
                    comm.all_reduce(&mut v, ReduceOp::Sum);
                    if comm.rank() == 0 {
                        let st = comm.stats();
                        assert_eq!(st.msgs_sent, 1);
                        assert_eq!(st.bytes_sent, 24);
                        assert_eq!(st.allreduces, 1);
                    }
                });
            }
        });
        assert_eq!(
            snapshot[0].snapshot(),
            vec![Event::AllReduce { elems: 1, bytes: 8 }]
        );
        assert_eq!(
            snapshot[1].snapshot(),
            vec![Event::AllReduce { elems: 1, bytes: 8 }]
        );
    }

    #[test]
    fn messages_with_distinct_tags_do_not_mix() {
        run_ranks::<f64, _, _>(2, ReduceOrder::RankOrder, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 10, vec![10.0]);
                comm.send(1, 20, vec![20.0]);
            } else {
                // Receive in the opposite order of sending.
                assert_eq!(comm.recv(0, 20), vec![20.0]);
                assert_eq!(comm.recv(0, 10), vec![10.0]);
            }
        });
    }
}

#[cfg(test)]
mod stress_tests {
    use super::*;
    use crate::run_ranks;

    /// Random-ish all-to-all message storm: every rank sends a batch of
    /// messages with varying tags to every peer, then receives them all.
    /// Exercises mailbox matching under contention.
    #[test]
    fn all_to_all_message_storm() {
        let size = 6;
        let rounds = 20;
        run_ranks::<f64, _, _>(size, ReduceOrder::RankOrder, move |comm| {
            let me = comm.rank();
            for round in 0..rounds {
                for dest in 0..size {
                    if dest != me {
                        comm.send(dest, round as Tag, vec![(me * 1000 + round) as f64]);
                    }
                }
                for src in 0..size {
                    if src != me {
                        let msg = comm.recv(src, round as Tag);
                        assert_eq!(msg, vec![(src * 1000 + round) as f64]);
                    }
                }
            }
        });
    }

    /// Mixed collectives and point-to-point in the same round must not
    /// interfere (the solver does exactly this inside one iteration).
    #[test]
    fn interleaved_p2p_and_collectives() {
        run_ranks::<f64, _, _>(5, ReduceOrder::Arrival, |comm| {
            let me = comm.rank();
            let size = comm.size();
            for round in 0..50u32 {
                let right = (me + 1) % size;
                let left = (me + size - 1) % size;
                comm.send(right, round, vec![me as f64; 3]);
                let mut v = [1.0f64];
                comm.all_reduce(&mut v, ReduceOp::Sum);
                assert_eq!(v[0] as usize, size);
                let got = comm.recv(left, round);
                assert_eq!(got, vec![left as f64; 3]);
                comm.barrier();
            }
        });
    }

    /// Large payloads survive intact.
    #[test]
    fn large_message_integrity() {
        run_ranks::<f64, _, _>(2, ReduceOrder::RankOrder, |comm| {
            if comm.rank() == 0 {
                let payload: Vec<f64> = (0..1_000_000).map(|i| i as f64 * 0.5).collect();
                comm.send(1, 0, payload);
            } else {
                let got = comm.recv(0, 0);
                assert_eq!(got.len(), 1_000_000);
                assert_eq!(got[999_999], 999_999.0 * 0.5);
                assert_eq!(got[123_456], 123_456.0 * 0.5);
            }
        });
    }

    /// f32 worlds work end to end (the comm layer is generic over T_data).
    #[test]
    fn f32_world() {
        run_ranks::<f32, _, _>(3, ReduceOrder::RankOrder, |comm| {
            let mut v = [comm.rank() as f32 + 0.5];
            comm.all_reduce(&mut v, ReduceOp::Sum);
            assert_eq!(v[0], 0.5 + 1.5 + 2.5);
            assert_eq!(comm.stats().allreduces, 1);
        });
    }

    /// Reusing the same tag across collective generations must never pair
    /// a message with the wrong round: the per-(src, tag) FIFO plus the
    /// generation-stamped collective engine keep rounds ordered even when
    /// every round uses tag 0.
    #[test]
    fn tag_reuse_across_generations_stays_fifo() {
        run_ranks::<f64, _, _>(4, ReduceOrder::RankOrder, |comm| {
            let me = comm.rank();
            let right = (me + 1) % comm.size();
            let left = (me + comm.size() - 1) % comm.size();
            for round in 0..100u32 {
                comm.send(right, 0, vec![(me * 1000) as f64 + round as f64]);
                // Interleave a collective so the generation counter advances
                // between reuses of tag 0.
                let mut v = [1.0f64];
                comm.all_reduce(&mut v, ReduceOp::Sum);
                assert_eq!(v[0], 4.0);
                let got = comm.recv(left, 0);
                assert_eq!(got, vec![(left * 1000) as f64 + round as f64]);
            }
        });
    }

    /// Zero-length messages are legal (a face message of an empty plane):
    /// they match by (src, tag) like any other message and count zero
    /// payload bytes.
    #[test]
    fn zero_length_messages_round_trip() {
        run_ranks::<f64, _, _>(2, ReduceOrder::RankOrder, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![]);
                comm.send(1, 7, vec![1.0]);
                let st = comm.stats();
                assert_eq!(st.msgs_sent, 2);
                assert_eq!(st.bytes_sent, 8, "empty message adds no bytes");
            } else {
                assert_eq!(comm.recv(0, 7), Vec::<f64>::new());
                assert_eq!(comm.recv(0, 7), vec![1.0]);
            }
        });
    }

    /// A world may tear down with buffered sends still in flight: the
    /// sender's `send` completed (buffered semantics), nothing blocks, and
    /// dropping the world frees the undelivered payloads. The comm layer
    /// itself is silent here — flagging the lost message is the job of the
    /// `check` crate's verified communicator.
    #[test]
    fn teardown_with_in_flight_sends_does_not_hang() {
        let counts = run_ranks::<f64, _, _>(3, ReduceOrder::RankOrder, |comm| {
            comm.send((comm.rank() + 1) % 3, 42, vec![comm.rank() as f64; 5]);
            comm.stats().msgs_sent
        });
        assert_eq!(counts, vec![1, 1, 1]);
    }

    #[test]
    fn try_recv_polls_without_blocking() {
        run_ranks::<f64, _, _>(2, ReduceOrder::RankOrder, |comm| {
            if comm.rank() == 0 {
                comm.barrier();
                comm.send(1, 3, vec![9.0]);
            } else {
                assert_eq!(comm.try_recv(0, 3), None, "nothing sent yet");
                comm.barrier();
                loop {
                    if let Some(msg) = comm.try_recv(0, 3) {
                        assert_eq!(msg, vec![9.0]);
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        });
    }

    #[test]
    fn poison_unblocks_a_stuck_receiver() {
        let mut comms = ThreadComm::<f64>::world_default(2);
        let c1 = comms.pop().expect("rank 1");
        let c0 = comms.pop().expect("rank 0");
        let joined = std::thread::scope(|s| {
            let blocked = s.spawn(move || {
                // Blocks forever: rank 0 never sends.
                let _ = c1.recv(0, 0);
            });
            // Give rank 1 a moment to block, then poison the world.
            #[allow(clippy::disallowed_methods)]
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert!(!c0.is_poisoned());
            c0.poison();
            assert!(c0.is_poisoned());
            blocked.join()
        });
        assert!(joined.is_err(), "rank 1 panics out of the dead recv");
    }

    /// Split-phase reduction: the result after `reduce_finish` is bitwise
    /// identical to the blocking `all_reduce` of the same values, under
    /// both fold topologies.
    ///
    /// The split-phase and blocking calls are *separate collective rounds*,
    /// so under `Arrival` their fold orders are independent. The
    /// contributions are therefore chosen exactly summable (distinct powers
    /// of two and small integers): every fold order produces the bitwise
    /// same sum, which makes the assertion deterministic under load instead
    /// of flaking when OS jitter reorders one of the two rounds.
    #[test]
    fn iall_reduce_matches_blocking_all_reduce() {
        for order in [ReduceOrder::RankOrder, ReduceOrder::Arrival] {
            run_ranks::<f64, _, _>(5, order, |comm| {
                let mine = vec![2f64.powi(-(comm.rank() as i32)), comm.rank() as f64];
                let req = comm.iall_reduce(&mine, ReduceOp::Sum);
                // Overlap window: the rank is free to compute here.
                let busywork: f64 = (0..100).map(|i| i as f64).sum();
                assert_eq!(busywork, 4950.0);
                let mut split = vec![0.0; mine.len()];
                comm.reduce_finish(req, &mut split);
                let mut blocking = mine;
                comm.all_reduce(&mut blocking, ReduceOp::Sum);
                assert_eq!(
                    split.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    blocking.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                );
            });
        }
    }

    /// Split-phase rounds keep their generation stamps straight when the
    /// begin/finish pairs of consecutive rounds interleave across ranks.
    #[test]
    fn repeated_iall_reduce_rounds_do_not_cross() {
        run_ranks::<f64, _, _>(4, ReduceOrder::RankOrder, |comm| {
            for round in 0..200 {
                let req = comm.iall_reduce(&[comm.rank() as f64 + round as f64], ReduceOp::Sum);
                let mut got = [0.0];
                comm.reduce_finish(req, &mut got);
                assert_eq!(got, [6.0 + 4.0 * round as f64]);
            }
        });
    }

    /// A batched request ships N scalars in ONE collective round and the
    /// message counter reflects that.
    #[test]
    fn iall_reduce_batch_is_one_message() {
        run_ranks::<f64, _, _>(3, ReduceOrder::RankOrder, |comm| {
            let a = [comm.rank() as f64];
            let b = [1.0, 2.0];
            let req = comm.iall_reduce_batch(&[&a, &b], ReduceOp::Sum);
            assert_eq!(req.len, 3);
            let mut out = [0.0; 3];
            comm.reduce_finish(req, &mut out);
            assert_eq!(out, [3.0, 3.0, 6.0]);
            assert_eq!(comm.stats().allreduces, 1);
        });
    }

    /// `reduce_batch` (the blocking batched form) unpacks each group in
    /// place and also costs a single message.
    #[test]
    fn reduce_batch_unpacks_groups_in_place() {
        run_ranks::<f64, _, _>(4, ReduceOrder::RankOrder, |comm| {
            let mut a = [comm.rank() as f64];
            let mut b = [10.0, 20.0];
            comm.reduce_batch(&mut [&mut a, &mut b], ReduceOp::Sum);
            assert_eq!(a, [6.0]);
            assert_eq!(b, [40.0, 80.0]);
            assert_eq!(comm.stats().allreduces, 1);
        });
    }

    /// A chunked many-scalar reduction past `MAX_REDUCE_SCALARS` matches
    /// the blocking `all_reduce` of the same payload bitwise, chunk
    /// boundaries included (element-wise folds are packing-transparent).
    #[test]
    fn iall_reduce_many_matches_blocking_all_reduce() {
        use crate::types::MAX_REDUCE_SCALARS;
        let len = 2 * MAX_REDUCE_SCALARS + 22; // head + two tail chunks
        run_ranks::<f64, _, _>(4, ReduceOrder::RankOrder, move |comm| {
            let mine: Vec<f64> = (0..len)
                .map(|i| (comm.rank() * len + i) as f64 * 0.25)
                .collect();
            let req = comm.iall_reduce_many(&mine, ReduceOp::Sum);
            assert_eq!(req.len(), len);
            assert_eq!(req.messages(), 3, "head chunk plus two tail chunks");
            let mut split = vec![0.0; len];
            comm.reduce_finish_many(req, &mut split);
            let mut blocking = mine;
            comm.all_reduce(&mut blocking, ReduceOp::Sum);
            assert_eq!(
                split.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                blocking.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            // one split-phase head + two blocking tail chunks + the
            // reference reduction
            assert_eq!(comm.stats().allreduces, 4);
        });
    }

    /// An in-budget many-scalar reduction costs exactly one message and
    /// stays fully split-phase (no blocking tail).
    #[test]
    fn iall_reduce_many_within_budget_is_one_message() {
        run_ranks::<f64, _, _>(3, ReduceOrder::RankOrder, |comm| {
            let mine = [comm.rank() as f64, 1.0, 2.0];
            let req = comm.iall_reduce_many(&mine, ReduceOp::Sum);
            assert_eq!(req.messages(), 1);
            let mut out = [0.0; 3];
            comm.reduce_finish_many(req, &mut out);
            assert_eq!(out, [3.0, 3.0, 6.0]);
            assert_eq!(comm.stats().allreduces, 1);
        });
    }

    /// Min/Max ride the chunked path too (the operator is applied per
    /// chunk, not fixed to Sum).
    #[test]
    fn iall_reduce_many_honours_the_operator() {
        use crate::types::MAX_REDUCE_SCALARS;
        let len = MAX_REDUCE_SCALARS + 5;
        run_ranks::<f64, _, _>(3, ReduceOrder::Arrival, move |comm| {
            let mine: Vec<f64> = (0..len).map(|i| (comm.rank() + i) as f64).collect();
            let req = comm.iall_reduce_many(&mine, ReduceOp::Max);
            let mut out = vec![0.0; len];
            comm.reduce_finish_many(req, &mut out);
            // rank 2 holds the maximum of every slot
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, (2 + i) as f64);
            }
        });
    }

    /// Beginning a second split-phase reduction while one is outstanding
    /// is a protocol violation and must fail loudly, not corrupt the fold.
    #[test]
    fn double_begin_without_finish_panics() {
        let comms = ThreadComm::<f64>::world_default(2);
        let c0 = &comms[0];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _r1 = c0.iall_reduce(&[1.0], ReduceOp::Sum);
            let _r2 = c0.iall_reduce(&[2.0], ReduceOp::Sum);
        }));
        let msg = *result
            .expect_err("second begin must panic")
            .downcast::<String>()
            .expect("string panic payload");
        assert!(msg.contains("second collective"), "{msg}");
    }

    /// Min/Max reductions across many ranks.
    #[test]
    fn min_max_over_many_ranks() {
        run_ranks::<f64, _, _>(12, ReduceOrder::Arrival, |comm| {
            let mut v = [comm.rank() as f64, -(comm.rank() as f64)];
            comm.all_reduce(&mut v[..1], ReduceOp::Max);
            comm.all_reduce(&mut v[1..], ReduceOp::Min);
            assert_eq!(v[0], 11.0);
            assert_eq!(v[1], -11.0);
        });
    }
}
