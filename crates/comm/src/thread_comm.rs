//! N-rank in-process communicator.

use accel::{Event, Recorder, Scalar};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::types::{CommStats, Communicator, ReduceOp, ReduceOrder, StatsCell, Tag};

/// Messages keyed by (source, tag), FIFO per key.
type QueueMap<T> = HashMap<(usize, Tag), VecDeque<Vec<T>>>;

/// Per-destination mailbox.
struct Mailbox<T> {
    queues: Mutex<QueueMap<T>>,
    arrived: Condvar,
}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Self {
            queues: Mutex::new(HashMap::new()),
            arrived: Condvar::new(),
        }
    }
}

/// Phase of the collective engine.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Accepting contributions for the current generation.
    Collect,
    /// Result published; ranks are copying it out.
    Distribute,
}

/// State of the generation-stamped collective engine.
struct Collective<T> {
    phase: Phase,
    generation: u64,
    /// Contributions in arrival order (rank, payload).
    contributions: Vec<(usize, Vec<T>)>,
    result: Vec<T>,
    departed: usize,
}

impl<T> Default for Collective<T> {
    fn default() -> Self {
        Self {
            phase: Phase::Collect,
            generation: 0,
            contributions: Vec::new(),
            result: Vec::new(),
            departed: 0,
        }
    }
}

struct Shared<T> {
    size: usize,
    order: ReduceOrder,
    mailboxes: Vec<Mailbox<T>>,
    collective: Mutex<Collective<T>>,
    collective_cvar: Condvar,
}

/// One rank's handle onto an N-rank world.
///
/// Created in bulk with [`ThreadComm::world`]; each handle is moved onto
/// its rank's thread (see [`crate::run_ranks`]).
///
/// Semantics mirror buffered MPI: `send` enqueues and returns immediately,
/// `recv` blocks for a matching `(source, tag)` message, `all_reduce` and
/// `barrier` synchronise all ranks. If a rank panics while peers are
/// blocked in a collective the program hangs, as a crashed MPI rank also
/// hangs its communicator — run SPMD closures that do not panic.
pub struct ThreadComm<T> {
    shared: Arc<Shared<T>>,
    rank: usize,
    stats: Arc<StatsCell>,
    recorder: Recorder,
}

impl<T: Scalar> ThreadComm<T> {
    /// Create an N-rank world. `recorders[r]` receives rank `r`'s
    /// collective events; pass [`Recorder::disabled`] handles to skip
    /// recording.
    pub fn world(size: usize, order: ReduceOrder, recorders: Vec<Recorder>) -> Vec<Self> {
        assert!(size >= 1, "world needs at least one rank");
        assert_eq!(recorders.len(), size, "one recorder per rank required");
        let shared = Arc::new(Shared {
            size,
            order,
            mailboxes: (0..size).map(|_| Mailbox::default()).collect(),
            collective: Mutex::new(Collective::default()),
            collective_cvar: Condvar::new(),
        });
        recorders
            .into_iter()
            .enumerate()
            .map(|(rank, recorder)| Self {
                shared: Arc::clone(&shared),
                rank,
                stats: Arc::new(StatsCell::default()),
                recorder,
            })
            .collect()
    }

    /// Create a world with deterministic reductions and no recording.
    pub fn world_default(size: usize) -> Vec<Self> {
        Self::world(
            size,
            ReduceOrder::RankOrder,
            vec![Recorder::disabled(); size],
        )
    }

    /// The reduction-order policy of this world.
    pub fn reduce_order(&self) -> ReduceOrder {
        self.shared.order
    }

    fn collective_exchange(&self, vals: &mut [T], op: ReduceOp) {
        let shared = &self.shared;
        let mut st = shared.collective.lock();
        // Entry gate: the previous round must fully drain first.
        while st.phase == Phase::Distribute {
            shared.collective_cvar.wait(&mut st);
        }
        let my_generation = st.generation;
        st.contributions.push((self.rank, vals.to_vec()));
        if st.contributions.len() == shared.size {
            // Last arriver folds and publishes.
            let mut items = std::mem::take(&mut st.contributions);
            if shared.order == ReduceOrder::RankOrder {
                items.sort_by_key(|(rank, _)| *rank);
            }
            let mut iter = items.into_iter();
            let (_, mut acc) = iter.next().expect("at least one contribution");
            for (_, contribution) in iter {
                for (a, b) in acc.iter_mut().zip(contribution) {
                    *a = op.combine(*a, b);
                }
            }
            st.result = acc;
            st.phase = Phase::Distribute;
            st.departed = 0;
            shared.collective_cvar.notify_all();
        } else {
            while !(st.phase == Phase::Distribute && st.generation == my_generation) {
                shared.collective_cvar.wait(&mut st);
            }
        }
        vals.copy_from_slice(&st.result);
        st.departed += 1;
        if st.departed == shared.size {
            st.phase = Phase::Collect;
            st.generation += 1;
            st.result.clear();
            shared.collective_cvar.notify_all();
        }
    }
}

impl<T: Scalar> Communicator<T> for ThreadComm<T> {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.shared.size
    }

    fn send(&self, dest: usize, tag: Tag, data: Vec<T>) {
        assert!(dest < self.shared.size, "send to rank {dest} outside world");
        self.stats.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_sent
            .fetch_add((data.len() * T::BYTES) as u64, Ordering::Relaxed);
        let mailbox = &self.shared.mailboxes[dest];
        mailbox
            .queues
            .lock()
            .entry((self.rank, tag))
            .or_default()
            .push_back(data);
        mailbox.arrived.notify_all();
    }

    fn recv(&self, src: usize, tag: Tag) -> Vec<T> {
        assert!(src < self.shared.size, "recv from rank {src} outside world");
        let mailbox = &self.shared.mailboxes[self.rank];
        let mut queues = mailbox.queues.lock();
        loop {
            if let Some(msg) = queues.get_mut(&(src, tag)).and_then(VecDeque::pop_front) {
                return msg;
            }
            mailbox.arrived.wait(&mut queues);
        }
    }

    fn all_reduce(&self, vals: &mut [T], op: ReduceOp) {
        self.stats.allreduces.fetch_add(1, Ordering::Relaxed);
        self.recorder.record(Event::AllReduce {
            elems: vals.len() as u32,
        });
        self.collective_exchange(vals, op);
    }

    fn barrier(&self) {
        self.collective_exchange(&mut [], ReduceOp::Sum);
    }

    fn stats(&self) -> CommStats {
        self.stats.snapshot()
    }

    fn recorder(&self) -> &Recorder {
        &self.recorder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_ranks;

    #[test]
    fn ring_pass_delivers_in_order() {
        let sums = run_ranks::<f64, _, _>(4, ReduceOrder::RankOrder, |comm| {
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(right, 0, vec![comm.rank() as f64]);
            comm.send(right, 0, vec![comm.rank() as f64 + 0.5]);
            let first = comm.recv(left, 0);
            let second = comm.recv(left, 0);
            first[0] + second[0]
        });
        for (rank, s) in sums.iter().enumerate() {
            let left = (rank + 3) % 4;
            assert_eq!(*s, left as f64 * 2.0 + 0.5);
        }
    }

    #[test]
    fn all_reduce_sum_matches_serial() {
        let results = run_ranks::<f64, _, _>(5, ReduceOrder::RankOrder, |comm| {
            let mut v = vec![comm.rank() as f64, 1.0];
            comm.all_reduce(&mut v, ReduceOp::Sum);
            v
        });
        for v in &results {
            assert_eq!(v, &vec![10.0, 5.0]);
        }
    }

    #[test]
    fn all_reduce_min_max() {
        let results = run_ranks::<f64, _, _>(3, ReduceOrder::RankOrder, |comm| {
            let mut v = vec![comm.rank() as f64];
            comm.all_reduce(&mut v, ReduceOp::Max);
            let mut w = vec![comm.rank() as f64];
            comm.all_reduce(&mut w, ReduceOp::Min);
            (v[0], w[0])
        });
        assert!(results.iter().all(|&(mx, mn)| mx == 2.0 && mn == 0.0));
    }

    #[test]
    fn repeated_collectives_do_not_cross_generations() {
        let results = run_ranks::<f64, _, _>(4, ReduceOrder::RankOrder, |comm| {
            let mut acc = 0.0;
            for round in 0..200 {
                let mut v = [comm.rank() as f64 + round as f64];
                comm.all_reduce(&mut v, ReduceOp::Sum);
                acc += v[0];
            }
            acc
        });
        let expect: f64 = (0..200).map(|round| 6.0 + 4.0 * round as f64).sum();
        assert!(results.iter().all(|&a| a == expect));
    }

    #[test]
    fn arrival_order_gives_identical_result_on_all_ranks() {
        for _ in 0..10 {
            let results = run_ranks::<f64, _, _>(6, ReduceOrder::Arrival, |comm| {
                let mut v = [1.0 / (comm.rank() as f64 + 3.0)];
                comm.all_reduce(&mut v, ReduceOp::Sum);
                v[0]
            });
            let first = results[0].to_bits();
            assert!(results.iter().all(|r| r.to_bits() == first));
        }
    }

    #[test]
    fn barrier_synchronises() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run_ranks::<f64, _, _>(4, ReduceOrder::RankOrder, |comm| {
            counter.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier every rank must have incremented.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn stats_and_events_are_per_rank() {
        let recorders: Vec<Recorder> = (0..2).map(|_| Recorder::enabled()).collect();
        let snapshot = recorders.clone();
        let comms = ThreadComm::<f64>::world(2, ReduceOrder::RankOrder, recorders);
        std::thread::scope(|s| {
            for comm in comms {
                s.spawn(move || {
                    if comm.rank() == 0 {
                        comm.send(1, 3, vec![1.0, 2.0, 3.0]);
                    } else {
                        let m = comm.recv(0, 3);
                        assert_eq!(m.len(), 3);
                    }
                    let mut v = [1.0];
                    comm.all_reduce(&mut v, ReduceOp::Sum);
                    if comm.rank() == 0 {
                        let st = comm.stats();
                        assert_eq!(st.msgs_sent, 1);
                        assert_eq!(st.bytes_sent, 24);
                        assert_eq!(st.allreduces, 1);
                    }
                });
            }
        });
        assert_eq!(snapshot[0].snapshot(), vec![Event::AllReduce { elems: 1 }]);
        assert_eq!(snapshot[1].snapshot(), vec![Event::AllReduce { elems: 1 }]);
    }

    #[test]
    fn messages_with_distinct_tags_do_not_mix() {
        run_ranks::<f64, _, _>(2, ReduceOrder::RankOrder, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 10, vec![10.0]);
                comm.send(1, 20, vec![20.0]);
            } else {
                // Receive in the opposite order of sending.
                assert_eq!(comm.recv(0, 20), vec![20.0]);
                assert_eq!(comm.recv(0, 10), vec![10.0]);
            }
        });
    }
}

#[cfg(test)]
mod stress_tests {
    use super::*;
    use crate::run_ranks;

    /// Random-ish all-to-all message storm: every rank sends a batch of
    /// messages with varying tags to every peer, then receives them all.
    /// Exercises mailbox matching under contention.
    #[test]
    fn all_to_all_message_storm() {
        let size = 6;
        let rounds = 20;
        run_ranks::<f64, _, _>(size, ReduceOrder::RankOrder, move |comm| {
            let me = comm.rank();
            for round in 0..rounds {
                for dest in 0..size {
                    if dest != me {
                        comm.send(dest, round as Tag, vec![(me * 1000 + round) as f64]);
                    }
                }
                for src in 0..size {
                    if src != me {
                        let msg = comm.recv(src, round as Tag);
                        assert_eq!(msg, vec![(src * 1000 + round) as f64]);
                    }
                }
            }
        });
    }

    /// Mixed collectives and point-to-point in the same round must not
    /// interfere (the solver does exactly this inside one iteration).
    #[test]
    fn interleaved_p2p_and_collectives() {
        run_ranks::<f64, _, _>(5, ReduceOrder::Arrival, |comm| {
            let me = comm.rank();
            let size = comm.size();
            for round in 0..50u32 {
                let right = (me + 1) % size;
                let left = (me + size - 1) % size;
                comm.send(right, round, vec![me as f64; 3]);
                let mut v = [1.0f64];
                comm.all_reduce(&mut v, ReduceOp::Sum);
                assert_eq!(v[0] as usize, size);
                let got = comm.recv(left, round);
                assert_eq!(got, vec![left as f64; 3]);
                comm.barrier();
            }
        });
    }

    /// Large payloads survive intact.
    #[test]
    fn large_message_integrity() {
        run_ranks::<f64, _, _>(2, ReduceOrder::RankOrder, |comm| {
            if comm.rank() == 0 {
                let payload: Vec<f64> = (0..1_000_000).map(|i| i as f64 * 0.5).collect();
                comm.send(1, 0, payload);
            } else {
                let got = comm.recv(0, 0);
                assert_eq!(got.len(), 1_000_000);
                assert_eq!(got[999_999], 999_999.0 * 0.5);
                assert_eq!(got[123_456], 123_456.0 * 0.5);
            }
        });
    }

    /// f32 worlds work end to end (the comm layer is generic over T_data).
    #[test]
    fn f32_world() {
        run_ranks::<f32, _, _>(3, ReduceOrder::RankOrder, |comm| {
            let mut v = [comm.rank() as f32 + 0.5];
            comm.all_reduce(&mut v, ReduceOp::Sum);
            assert_eq!(v[0], 0.5 + 1.5 + 2.5);
            assert_eq!(comm.stats().allreduces, 1);
        });
    }

    /// Min/Max reductions across many ranks.
    #[test]
    fn min_max_over_many_ranks() {
        run_ranks::<f64, _, _>(12, ReduceOrder::Arrival, |comm| {
            let mut v = [comm.rank() as f64, -(comm.rank() as f64)];
            comm.all_reduce(&mut v[..1], ReduceOp::Max);
            comm.all_reduce(&mut v[1..], ReduceOp::Min);
            assert_eq!(v[0], 11.0);
            assert_eq!(v[1], -11.0);
        });
    }
}
