//! Communicator trait and shared types.

use accel::{Recorder, Scalar};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Message tag (disambiguates concurrent exchanges, like an MPI tag).
pub type Tag = u32;

/// Element-wise reduction operator for collectives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise minimum.
    Min,
    /// Element-wise maximum.
    Max,
}

impl ReduceOp {
    /// Apply the operator to a pair of scalars.
    #[inline]
    pub fn combine<T: Scalar>(self, a: T, b: T) -> T {
        match self {
            Self::Sum => a + b,
            Self::Min => a.min(b),
            Self::Max => a.max(b),
        }
    }
}

/// In which order `all_reduce` folds the per-rank contributions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ReduceOrder {
    /// Fold in rank index order — bitwise-deterministic across runs.
    #[default]
    RankOrder,
    /// Fold in the order ranks arrived at the collective — varies run to
    /// run exactly like a real MPI reduction tree under OS jitter. All
    /// ranks still observe the same result within one call.
    Arrival,
}

/// Monotonic communication counters for one rank.
#[must_use = "a stats snapshot is pure bookkeeping; dropping it does nothing"]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Point-to-point messages sent.
    pub msgs_sent: u64,
    /// Point-to-point payload bytes sent.
    pub bytes_sent: u64,
    /// Collective reductions participated in.
    pub allreduces: u64,
}

/// Shared atomic counters behind [`CommStats`].
#[derive(Default, Debug)]
pub(crate) struct StatsCell {
    pub msgs_sent: AtomicU64,
    pub bytes_sent: AtomicU64,
    pub allreduces: AtomicU64,
}

impl StatsCell {
    pub(crate) fn snapshot(&self) -> CommStats {
        CommStats {
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            allreduces: self.allreduces.load(Ordering::Relaxed),
        }
    }
}

/// A posted non-blocking receive (the `MPI_Irecv` request object).
///
/// Completion is by matching order: because point-to-point messages are
/// buffered and matched by `(source, tag)` FIFO queues, posting early
/// never changes which message a request completes with — so the request
/// is a plain token and [`Communicator::wait`] performs the match.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use = "a posted receive must be completed with wait/wait_all"]
pub struct RecvRequest {
    /// Source rank.
    pub src: usize,
    /// Message tag.
    pub tag: Tag,
}

/// Capacity ceiling for one split-phase reduction, in scalars.
///
/// Split-phase reductions carry the solver's *dot-product groups*. The
/// solo Bi-CGSTAB schedules batch at most four scalars per message; the
/// batched multi-RHS driver widens every group to `B` lanes (σ/‖r‖²/cancel
/// blocks in M1, the four ω/ρ dots in M2), so the ceiling leaves room for
/// 16 lanes at four scalars each. Bounding the payload lets every layer
/// stage it in fixed stack/inline storage, which is what keeps the
/// steady-state iteration allocation-free. Larger payloads go through the
/// chunked [`Communicator::iall_reduce_many`] or the blocking
/// [`Communicator::all_reduce`] instead.
pub const MAX_REDUCE_SCALARS: usize = 64;

/// A begun split-phase reduction (the `MPI_Iallreduce` request object).
///
/// The contribution is made at begin time ([`Communicator::iall_reduce`]);
/// the reduced values are only available after
/// [`Communicator::reduce_finish`]. Between the two calls the caller is
/// free to compute — that window is what hides the reduction latency.
/// Exactly one split-phase reduction may be outstanding per rank (the
/// collective engine is a single shared slot, like a communicator-wide
/// `MPI_Iallreduce` without multiplexing).
#[derive(Clone, Debug)]
#[must_use = "a begun reduction must be completed with reduce_finish"]
pub struct ReduceRequest<T: Scalar> {
    /// Number of reduced elements (at most [`MAX_REDUCE_SCALARS`]).
    pub len: usize,
    /// Reduction operator applied element-wise.
    pub op: ReduceOp,
    /// Collective-engine generation the contribution entered
    /// (`ThreadComm` bookkeeping; 0 for resolve-at-begin communicators).
    pub(crate) generation: u64,
    /// Pre-resolved result (first `len` slots) for communicators that
    /// complete the reduction at begin time (`SelfComm`, the blocking
    /// default). Inline storage: resolving must not touch the heap.
    pub(crate) resolved: Option<[T; MAX_REDUCE_SCALARS]>,
}

/// A begun chunked many-scalar reduction — the batched-RHS analogue of
/// [`ReduceRequest`] for payloads that may exceed [`MAX_REDUCE_SCALARS`].
///
/// The head chunk is a true split-phase reduction already in flight; any
/// remaining scalars are carried locally in the handle and reduced with
/// blocking collectives when the handle is completed by
/// [`Communicator::reduce_finish_many`]. Overlap therefore hides the head
/// chunk's latency and the tail costs one extra message per further
/// [`MAX_REDUCE_SCALARS`] scalars at finish time. Every rank chunks the
/// same way (the payload length is collectively uniform), so the chunk
/// sequence is collective-safe by construction.
#[derive(Debug)]
#[must_use = "a begun chunked reduction must be completed with reduce_finish_many"]
pub struct ReduceManyRequest<T: Scalar> {
    /// Split-phase handle on the in-flight head chunk.
    head: ReduceRequest<T>,
    /// Not-yet-reduced tail (empty when the payload fits one chunk).
    tail: Vec<T>,
    /// Reduction operator for the tail chunks.
    op: ReduceOp,
    /// Total number of scalars across head and tail.
    len: usize,
}

impl<T: Scalar> ReduceManyRequest<T> {
    /// Total number of scalars the handle reduces.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the handle carries no scalars at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of collective messages the whole reduction costs
    /// (the in-flight head plus one per tail chunk).
    pub fn messages(&self) -> usize {
        1 + self.tail.len().div_ceil(MAX_REDUCE_SCALARS)
    }
}

/// The message-passing interface the solver is written against.
///
/// Sends are buffered and never block (the runtime owns the payload after
/// `send` returns, like a completed `MPI_Isend` on a buffered message);
/// `recv` blocks until a matching message arrives. The halo-exchange
/// pattern "post all receives and sends, then `wait_all`" is therefore
/// deadlock-free by construction.
pub trait Communicator<T: Scalar>: Send + Sync + 'static {
    /// This rank's index in `0..size()`.
    fn rank(&self) -> usize;

    /// World size.
    fn size(&self) -> usize;

    /// Post a buffered, non-blocking send of `data` to rank `dest`.
    fn send(&self, dest: usize, tag: Tag, data: Vec<T>);

    /// Block until a message with `tag` from rank `src` arrives.
    fn recv(&self, src: usize, tag: Tag) -> Vec<T>;

    /// Element-wise global reduction; every rank receives the identical
    /// combined vector in `vals`.
    fn all_reduce(&self, vals: &mut [T], op: ReduceOp);

    /// Block until every rank has entered the barrier.
    fn barrier(&self);

    /// Snapshot of this rank's communication counters.
    fn stats(&self) -> CommStats;

    /// The event stream this communicator reports collectives to.
    fn recorder(&self) -> &Recorder;

    /// Convenience: reduce a single scalar with [`ReduceOp::Sum`].
    fn all_reduce_scalar(&self, v: T) -> T {
        let mut buf = [v];
        self.all_reduce(&mut buf, ReduceOp::Sum);
        buf[0]
    }

    /// Post a non-blocking receive (`MPI_Irecv`).
    #[must_use = "a posted receive must be completed with wait/wait_all"]
    fn irecv(&self, src: usize, tag: Tag) -> RecvRequest {
        RecvRequest { src, tag }
    }

    /// Complete one posted receive (`MPI_Wait`).
    #[must_use = "dropping a completed receive silently discards its payload"]
    fn wait(&self, req: RecvRequest) -> Vec<T> {
        self.recv(req.src, req.tag)
    }

    /// Complete a batch of posted receives (`MPI_Waitall`); payloads are
    /// returned in request order.
    #[must_use = "dropping completed receives silently discards their payloads"]
    fn wait_all(&self, reqs: Vec<RecvRequest>) -> Vec<Vec<T>> {
        reqs.into_iter().map(|r| self.wait(r)).collect()
    }

    /// Combined send + blocking receive (`MPI_Sendrecv`).
    fn sendrecv(
        &self,
        dest: usize,
        send_tag: Tag,
        data: Vec<T>,
        src: usize,
        recv_tag: Tag,
    ) -> Vec<T> {
        self.send(dest, send_tag, data);
        self.recv(src, recv_tag)
    }

    /// Begin a split-phase reduction (`MPI_Iallreduce`): contribute `vals`
    /// to the collective and return a completion handle without waiting
    /// for the other ranks. The fold topology (RankOrder vs Arrival) is
    /// the communicator's configured [`ReduceOrder`], identical to
    /// [`Communicator::all_reduce`] — so a split-phase reduction of the
    /// same values is bitwise-identical to the blocking call.
    ///
    /// At most one split-phase reduction may be outstanding per rank and
    /// `vals.len()` must not exceed [`MAX_REDUCE_SCALARS`] — the bounded
    /// payload is what lets every implementation run the steady state
    /// without heap allocation. The default implementation completes at
    /// begin time (blocking).
    #[must_use = "a begun reduction must be completed with reduce_finish"]
    fn iall_reduce(&self, vals: &[T], op: ReduceOp) -> ReduceRequest<T> {
        let mut buf = [T::ZERO; MAX_REDUCE_SCALARS];
        buf[..vals.len()].copy_from_slice(vals);
        self.all_reduce(&mut buf[..vals.len()], op);
        ReduceRequest {
            len: vals.len(),
            op,
            generation: 0,
            resolved: Some(buf),
        }
    }

    /// Complete a begun split-phase reduction (`MPI_Wait` on the
    /// [`iall_reduce`](Communicator::iall_reduce) handle), copying the
    /// reduced values — identical on every rank — into `out`, whose
    /// length must equal the request's `len`.
    fn reduce_finish(&self, req: ReduceRequest<T>, out: &mut [T]) {
        assert_eq!(
            out.len(),
            req.len,
            "reduce_finish output buffer does not match the request length"
        );
        let resolved = req
            .resolved
            .expect("reduce_finish on a request this communicator did not begin");
        out.copy_from_slice(&resolved[..req.len]);
    }

    /// Reduce several independent vectors in one message: pack, one
    /// [`all_reduce`](Communicator::all_reduce), unpack in place. Because
    /// the fold is element-wise, each group's result is bitwise-identical
    /// to reducing it in its own call — batching only changes the message
    /// count, never the values.
    fn reduce_batch(&self, groups: &mut [&mut [T]], op: ReduceOp) {
        let total: usize = groups.iter().map(|g| g.len()).sum();
        // Scalar batches (the solver hot path) pack through fixed stack
        // storage; only oversized batches pay for a heap buffer.
        let mut stack = [T::ZERO; MAX_REDUCE_SCALARS];
        // LINT: alloc-ok(Vec::new is non-allocating; the heap path only
        // engages beyond MAX_REDUCE_SCALARS, off the solver hot path)
        let mut heap: Vec<T> = Vec::new();
        let packed: &mut [T] = if total <= MAX_REDUCE_SCALARS {
            &mut stack[..total]
        } else {
            heap.resize(total, T::ZERO);
            &mut heap
        };
        let mut off = 0;
        for g in groups.iter() {
            packed[off..off + g.len()].copy_from_slice(g);
            off += g.len();
        }
        self.all_reduce(packed, op);
        let mut off = 0;
        for g in groups.iter_mut() {
            g.copy_from_slice(&packed[off..off + g.len()]);
            off += g.len();
        }
    }

    /// Begin a batched split-phase reduction: several scalar groups packed
    /// into one [`iall_reduce`](Communicator::iall_reduce) message (at
    /// most [`MAX_REDUCE_SCALARS`] in total). The reduced groups come back
    /// concatenated in request order from
    /// [`reduce_finish`](Communicator::reduce_finish). Packing stages
    /// through fixed stack storage — no allocation.
    #[must_use = "a begun reduction must be completed with reduce_finish"]
    fn iall_reduce_batch(&self, groups: &[&[T]], op: ReduceOp) -> ReduceRequest<T> {
        let mut buf = [T::ZERO; MAX_REDUCE_SCALARS];
        let mut n = 0;
        for g in groups {
            buf[n..n + g.len()].copy_from_slice(g);
            n += g.len();
        }
        self.iall_reduce(&buf[..n], op)
    }

    /// Begin a chunked many-scalar reduction: the first
    /// [`MAX_REDUCE_SCALARS`] values enter a split-phase reduction
    /// immediately (overlappable exactly like
    /// [`iall_reduce`](Communicator::iall_reduce)); any remainder rides in
    /// the handle and is reduced chunk-by-chunk inside
    /// [`reduce_finish_many`](Communicator::reduce_finish_many). Chunking
    /// is element-wise and therefore bitwise-transparent: each scalar
    /// reduces exactly as it would in a dedicated call. Every rank must
    /// pass the same `vals.len()` so the chunk schedule is identical
    /// world-wide.
    #[must_use = "a begun chunked reduction must be completed with reduce_finish_many"]
    fn iall_reduce_many(&self, vals: &[T], op: ReduceOp) -> ReduceManyRequest<T> {
        let split = vals.len().min(MAX_REDUCE_SCALARS);
        // LINT: alloc-ok(the tail only exists past MAX_REDUCE_SCALARS —
        // beyond any solver hot-path payload; in-budget requests carry an
        // empty Vec, which does not allocate)
        ReduceManyRequest {
            head: self.iall_reduce(&vals[..split], op),
            tail: vals[split..].to_vec(),
            op,
            len: vals.len(),
        }
    }

    /// Complete a chunked many-scalar reduction begun with
    /// [`iall_reduce_many`](Communicator::iall_reduce_many): finish the
    /// in-flight head chunk, then reduce any carried tail chunks with
    /// blocking collectives, filling `out` (whose length must equal the
    /// request's `len`) in contribution order.
    fn reduce_finish_many(&self, req: ReduceManyRequest<T>, out: &mut [T]) {
        assert_eq!(
            out.len(),
            req.len,
            "reduce_finish_many output buffer does not match the request length"
        );
        let ReduceManyRequest {
            head,
            mut tail,
            op,
            len: _,
        } = req;
        let split = head.len;
        self.reduce_finish(head, &mut out[..split]);
        let mut off = split;
        for chunk in tail.chunks_mut(MAX_REDUCE_SCALARS) {
            self.all_reduce(chunk, op);
            out[off..off + chunk.len()].copy_from_slice(chunk);
            off += chunk.len();
        }
    }
}

/// Blanket impl so `Arc<C>` is usable wherever a communicator is expected.
impl<T: Scalar, C: Communicator<T>> Communicator<T> for Arc<C> {
    fn rank(&self) -> usize {
        (**self).rank()
    }
    fn size(&self) -> usize {
        (**self).size()
    }
    fn send(&self, dest: usize, tag: Tag, data: Vec<T>) {
        (**self).send(dest, tag, data)
    }
    fn recv(&self, src: usize, tag: Tag) -> Vec<T> {
        (**self).recv(src, tag)
    }
    fn all_reduce(&self, vals: &mut [T], op: ReduceOp) {
        (**self).all_reduce(vals, op)
    }
    fn barrier(&self) {
        (**self).barrier()
    }
    fn stats(&self) -> CommStats {
        (**self).stats()
    }
    fn recorder(&self) -> &Recorder {
        (**self).recorder()
    }
    fn iall_reduce(&self, vals: &[T], op: ReduceOp) -> ReduceRequest<T> {
        (**self).iall_reduce(vals, op)
    }
    fn reduce_finish(&self, req: ReduceRequest<T>, out: &mut [T]) {
        (**self).reduce_finish(req, out)
    }
    fn reduce_batch(&self, groups: &mut [&mut [T]], op: ReduceOp) {
        (**self).reduce_batch(groups, op)
    }
    fn iall_reduce_batch(&self, groups: &[&[T]], op: ReduceOp) -> ReduceRequest<T> {
        (**self).iall_reduce_batch(groups, op)
    }
    fn iall_reduce_many(&self, vals: &[T], op: ReduceOp) -> ReduceManyRequest<T> {
        (**self).iall_reduce_many(vals, op)
    }
    fn reduce_finish_many(&self, req: ReduceManyRequest<T>, out: &mut [T]) {
        (**self).reduce_finish_many(req, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_op_combine() {
        assert_eq!(ReduceOp::Sum.combine(2.0f64, 3.0), 5.0);
        assert_eq!(ReduceOp::Min.combine(2.0f64, 3.0), 2.0);
        assert_eq!(ReduceOp::Max.combine(2.0f64, 3.0), 3.0);
    }

    #[test]
    fn default_order_is_deterministic() {
        assert_eq!(ReduceOrder::default(), ReduceOrder::RankOrder);
    }

    #[test]
    fn stats_snapshot_reads_counters() {
        let cell = StatsCell::default();
        cell.msgs_sent.store(3, Ordering::Relaxed);
        cell.bytes_sent.store(99, Ordering::Relaxed);
        let s = cell.snapshot();
        assert_eq!(s.msgs_sent, 3);
        assert_eq!(s.bytes_sent, 99);
        assert_eq!(s.allreduces, 0);
    }
}
