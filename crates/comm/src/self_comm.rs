//! Single-rank communicator (`MPI_COMM_SELF`).

use accel::{Event, Recorder, Scalar};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crate::types::{CommStats, Communicator, ReduceOp, StatsCell, Tag};

/// The trivial world of one rank.
///
/// Used for the paper's single-process experiments (the 64³ mesh of
/// Figs. 4 and 7). Loopback messaging is supported so code that sends to
/// itself (periodic 1-rank decompositions, tests) still works; collectives
/// are identities.
#[derive(Clone)]
pub struct SelfComm<T> {
    loopback: Arc<Mutex<HashMap<Tag, VecDeque<Vec<T>>>>>,
    stats: Arc<StatsCell>,
    recorder: Recorder,
}

impl<T: Scalar> SelfComm<T> {
    /// Create a single-rank communicator reporting to `recorder`.
    pub fn new(recorder: Recorder) -> Self {
        Self {
            loopback: Arc::new(Mutex::new(HashMap::new())),
            stats: Arc::new(StatsCell::default()),
            recorder,
        }
    }
}

impl<T: Scalar> Default for SelfComm<T> {
    fn default() -> Self {
        Self::new(Recorder::disabled())
    }
}

impl<T: Scalar> Communicator<T> for SelfComm<T> {
    fn rank(&self) -> usize {
        0
    }

    fn size(&self) -> usize {
        1
    }

    fn send(&self, dest: usize, tag: Tag, data: Vec<T>) {
        assert_eq!(dest, 0, "SelfComm only has rank 0");
        self.stats
            .msgs_sent
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.stats.bytes_sent.fetch_add(
            (data.len() * T::BYTES) as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
        self.loopback.lock().entry(tag).or_default().push_back(data);
    }

    fn recv(&self, src: usize, tag: Tag) -> Vec<T> {
        assert_eq!(src, 0, "SelfComm only has rank 0");
        self.loopback
            .lock()
            .get_mut(&tag)
            .and_then(VecDeque::pop_front)
            .expect("SelfComm recv with no matching loopback message (would deadlock)")
    }

    fn all_reduce(&self, vals: &mut [T], _op: ReduceOp) {
        self.stats
            .allreduces
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.recorder.record(Event::AllReduce {
            elems: vals.len() as u32,
            bytes: (vals.len() * T::BYTES) as u64,
        });
    }

    fn barrier(&self) {}

    fn stats(&self) -> CommStats {
        self.stats.snapshot()
    }

    fn recorder(&self) -> &Recorder {
        &self.recorder
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_collectives() {
        let c = SelfComm::<f64>::default();
        let mut v = [1.0, 2.0];
        c.all_reduce(&mut v, ReduceOp::Sum);
        assert_eq!(v, [1.0, 2.0]);
        c.barrier();
        assert_eq!(c.rank(), 0);
        assert_eq!(c.size(), 1);
        assert_eq!(c.all_reduce_scalar(5.0), 5.0);
    }

    #[test]
    fn loopback_messages_fifo_per_tag() {
        let c = SelfComm::<f64>::default();
        c.send(0, 7, vec![1.0]);
        c.send(0, 7, vec![2.0]);
        c.send(0, 9, vec![3.0]);
        assert_eq!(c.recv(0, 9), vec![3.0]);
        assert_eq!(c.recv(0, 7), vec![1.0]);
        assert_eq!(c.recv(0, 7), vec![2.0]);
    }

    #[test]
    fn stats_count_traffic() {
        let c = SelfComm::<f64>::default();
        c.send(0, 1, vec![0.0; 10]);
        let _ = c.recv(0, 1);
        let mut v = [0.0];
        c.all_reduce(&mut v, ReduceOp::Sum);
        let s = c.stats();
        assert_eq!(s.msgs_sent, 1);
        assert_eq!(s.bytes_sent, 80);
        assert_eq!(s.allreduces, 1);
    }

    #[test]
    #[should_panic(expected = "no matching loopback")]
    fn recv_without_send_panics() {
        let c = SelfComm::<f64>::default();
        let _ = c.recv(0, 1);
    }

    /// Single-rank split-phase reductions resolve at begin time with
    /// identity values, and still count as collectives in the stats.
    #[test]
    fn iall_reduce_is_identity_resolved_at_begin() {
        let c = SelfComm::<f64>::default();
        let req = c.iall_reduce(&[3.0, 4.0], ReduceOp::Sum);
        assert_eq!(req.len, 2);
        let mut out = [0.0; 2];
        c.reduce_finish(req, &mut out);
        assert_eq!(out, [3.0, 4.0]);
        let mut a = [1.0];
        let mut b = [2.0, 3.0];
        c.reduce_batch(&mut [&mut a, &mut b], ReduceOp::Sum);
        assert_eq!((a, b), ([1.0], [2.0, 3.0]));
        let batched = c.iall_reduce_batch(&[&[5.0], &[6.0]], ReduceOp::Max);
        let mut out = [0.0; 2];
        c.reduce_finish(batched, &mut out);
        assert_eq!(out, [5.0, 6.0]);
        assert_eq!(c.stats().allreduces, 3);
    }
}
