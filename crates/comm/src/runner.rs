//! SPMD launch helper.

use accel::{Recorder, Scalar};

use crate::thread_comm::ThreadComm;
use crate::types::{Communicator, ReduceOrder};

/// Run `f` as an SPMD program on `size` ranks (one OS thread per rank) and
/// collect the per-rank return values in rank order.
///
/// This is the reproduction's `mpirun`: every closure invocation receives
/// its own [`ThreadComm`] handle, exactly one per rank.
pub fn run_ranks<T, R, F>(size: usize, order: ReduceOrder, f: F) -> Vec<R>
where
    T: Scalar,
    R: Send,
    F: Fn(ThreadComm<T>) -> R + Sync,
{
    run_ranks_recorded(size, order, vec![Recorder::disabled(); size], f)
}

/// Like [`run_ranks`], with one caller-provided event [`Recorder`] per rank
/// (rank `r` gets `recorders[r]`, so the caller can inspect per-rank event
/// streams afterwards).
pub fn run_ranks_recorded<T, R, F>(
    size: usize,
    order: ReduceOrder,
    recorders: Vec<Recorder>,
    f: F,
) -> Vec<R>
where
    T: Scalar,
    R: Send,
    F: Fn(ThreadComm<T>) -> R + Sync,
{
    let comms = ThreadComm::<T>::world(size, order, recorders);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                std::thread::Builder::new()
                    .name(format!("rank-{}", comm.rank()))
                    .spawn_scoped(scope, move || f(comm))
                    .expect("failed to spawn rank thread")
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Communicator;

    #[test]
    fn results_are_in_rank_order() {
        let ranks = run_ranks::<f64, _, _>(8, ReduceOrder::RankOrder, |comm| comm.rank());
        assert_eq!(ranks, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn single_rank_world_works() {
        let out = run_ranks::<f64, _, _>(1, ReduceOrder::RankOrder, |comm| {
            assert_eq!(comm.size(), 1);
            comm.all_reduce_scalar(4.0)
        });
        assert_eq!(out, vec![4.0]);
    }

    #[test]
    fn recorded_variant_wires_recorders_by_rank() {
        let recorders: Vec<Recorder> = (0..3).map(|_| Recorder::enabled()).collect();
        let handles = recorders.clone();
        run_ranks_recorded::<f64, _, _>(3, ReduceOrder::RankOrder, recorders, |comm| {
            let mut v = [1.0];
            comm.all_reduce(&mut v, crate::ReduceOp::Sum);
        });
        assert_eq!(handles[0].len(), 1);
        assert_eq!(handles[1].len(), 1);
        assert_eq!(handles[2].len(), 1);
    }
}

#[cfg(test)]
mod request_tests {
    use super::*;
    use crate::types::{Communicator, ReduceOp};

    #[test]
    fn irecv_wait_matches_blocking_recv_semantics() {
        run_ranks::<f64, _, _>(2, ReduceOrder::RankOrder, |comm| {
            if comm.rank() == 0 {
                // post receives BEFORE the peers send — must still match
                let r1 = comm.irecv(1, 5);
                let r2 = comm.irecv(1, 5);
                comm.barrier();
                let first = comm.wait(r1);
                let second = comm.wait(r2);
                assert_eq!(first, vec![1.0]);
                assert_eq!(second, vec![2.0]);
            } else {
                comm.barrier();
                comm.send(0, 5, vec![1.0]);
                comm.send(0, 5, vec![2.0]);
            }
        });
    }

    #[test]
    fn wait_all_returns_in_request_order() {
        run_ranks::<f64, _, _>(3, ReduceOrder::RankOrder, |comm| {
            if comm.rank() == 0 {
                let reqs = vec![comm.irecv(2, 9), comm.irecv(1, 9)];
                let msgs = comm.wait_all(reqs);
                assert_eq!(msgs, vec![vec![2.0], vec![1.0]]);
            } else {
                comm.send(0, 9, vec![comm.rank() as f64]);
            }
            let mut v = [1.0];
            comm.all_reduce(&mut v, ReduceOp::Sum);
            assert_eq!(v[0], 3.0);
        });
    }

    #[test]
    fn sendrecv_exchanges_pairwise() {
        run_ranks::<f64, _, _>(2, ReduceOrder::RankOrder, |comm| {
            let peer = 1 - comm.rank();
            let got = comm.sendrecv(peer, 3, vec![comm.rank() as f64], peer, 3);
            assert_eq!(got, vec![peer as f64]);
        });
    }
}
