//! Checked SPMD launcher: verified ranks plus a deadlock watchdog.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use accel::{Recorder, Scalar};
use comm::{Communicator, ReduceOrder, ThreadComm};

use crate::verifier::{teardown_report, VerifiedComm, VerifierShared};

/// Configuration of a checked world.
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// Reduction-order policy of the underlying world.
    pub order: ReduceOrder,
    /// Opt-in watchdog: when the whole world makes no progress for this
    /// long, it is poisoned and the run fails with the wait-for graph —
    /// covering hangs the polling detector cannot see (e.g. every rank
    /// stuck inside the collective engine).
    pub timeout: Option<Duration>,
    /// How long a polling receive must observe a fully-blocked world with
    /// frozen progress before declaring deadlock.
    pub deadlock_window: Duration,
    /// One event recorder per rank (empty = recording disabled).
    pub recorders: Vec<Recorder>,
}

impl Default for CheckConfig {
    fn default() -> Self {
        Self {
            order: ReduceOrder::RankOrder,
            timeout: None,
            deadlock_window: Duration::from_millis(250),
            recorders: Vec::new(),
        }
    }
}

/// Why a checked run failed.
#[derive(Debug)]
pub struct CheckFailure {
    /// Per-rank panic messages (rank, message), in rank order.
    pub panics: Vec<(usize, String)>,
    /// Teardown findings: unmatched sends, dropped requests, size and
    /// collective mismatches, recorded deadlock reports.
    pub findings: Vec<String>,
}

impl fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "comm-verifier report:")?;
        for (rank, msg) in &self.panics {
            writeln!(f, "  rank {rank} panicked: {msg}")?;
        }
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

impl std::error::Error for CheckFailure {}

/// Run `f` as an SPMD program on `size` verified ranks; collect per-rank
/// results or a [`CheckFailure`] describing every protocol violation.
///
/// This is [`comm::run_ranks`] under verification: each rank receives a
/// [`VerifiedComm`] wrapping its [`ThreadComm`] handle, the main thread
/// runs the opt-in watchdog, and after all ranks return the world is
/// audited for unmatched sends, never-waited receives and collective
/// mismatches.
pub fn try_run_ranks_checked<T, R, F>(
    size: usize,
    config: CheckConfig,
    f: F,
) -> Result<Vec<R>, CheckFailure>
where
    T: Scalar,
    R: Send,
    F: Fn(VerifiedComm<T>) -> R + Sync,
{
    let recorders = if config.recorders.is_empty() {
        vec![Recorder::disabled(); size]
    } else {
        assert_eq!(config.recorders.len(), size, "one recorder per rank");
        config.recorders.clone()
    };
    let comms = ThreadComm::<T>::world(size, config.order, recorders);
    let poisoner = comms[0].poisoner();
    let shared = VerifierShared::new(size, config.deadlock_window);
    let finished = AtomicUsize::new(0);
    let f = &f;
    let outcomes: Vec<Result<R, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let shared = &shared;
                let finished = &finished;
                std::thread::Builder::new()
                    .name(format!("rank-{}", comm.rank()))
                    .spawn_scoped(scope, move || {
                        let rank = comm.rank();
                        let verified = VerifiedComm::new(comm, shared.clone());
                        let out = catch_unwind(AssertUnwindSafe(|| f(verified)));
                        shared.set_done(rank);
                        finished.fetch_add(1, Ordering::Release);
                        out.map_err(|payload| panic_message(&payload))
                    })
                    .expect("failed to spawn rank thread")
            })
            .collect();
        // Watchdog: abort the world if it outlives the opt-in timeout.
        if let Some(timeout) = config.timeout {
            let start = Instant::now();
            while finished.load(Ordering::Acquire) < size {
                if start.elapsed() >= timeout && !poisoner.is_poisoned() {
                    let graph = shared.wait_for_graph();
                    shared
                        .violations
                        .lock()
                        .expect("violations lock")
                        .push(format!(
                            "watchdog: world still blocked after {timeout:?}\n{graph}"
                        ));
                    poisoner.poison();
                    break;
                }
                #[allow(clippy::disallowed_methods)]
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread died outside catch_unwind"))
            .collect()
    });
    let panics: Vec<(usize, String)> = outcomes
        .iter()
        .enumerate()
        .filter_map(|(rank, r)| r.as_ref().err().map(|m| (rank, m.clone())))
        .collect();
    let findings = teardown_report(&shared);
    if panics.is_empty() && findings.is_empty() {
        Ok(outcomes.into_iter().map(|r| r.expect("no panic")).collect())
    } else {
        Err(CheckFailure { panics, findings })
    }
}

/// Like [`try_run_ranks_checked`] but panics with the full report on any
/// violation — the drop-in strict replacement for [`comm::run_ranks`].
pub fn run_ranks_checked<T, R, F>(size: usize, config: CheckConfig, f: F) -> Vec<R>
where
    T: Scalar,
    R: Send,
    F: Fn(VerifiedComm<T>) -> R + Sync,
{
    match try_run_ranks_checked(size, config, f) {
        Ok(results) => results,
        Err(failure) => panic!("{failure}"),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}
