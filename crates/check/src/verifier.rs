//! `VerifiedComm` — the comm-protocol verifier.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use accel::{Recorder, Scalar};
use comm::{CommStats, Communicator, RecvRequest, ReduceOp, ReduceRequest, Tag, ThreadComm};

/// What one rank is doing right now, as seen by the verifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RankState {
    /// Executing user code.
    Running,
    /// Polling for a `(src, tag)` message.
    BlockedRecv {
        /// Source rank awaited.
        src: usize,
        /// Tag awaited.
        tag: Tag,
    },
    /// Inside the inner communicator's collective engine.
    BlockedCollective {
        /// `"all_reduce"` or `"barrier"`.
        kind: &'static str,
    },
    /// The rank closure returned.
    Done,
}

/// Per-channel `(src, dst, tag)` message accounting.
#[derive(Clone, Copy, Debug, Default)]
struct ChannelStat {
    sent: u64,
    received: u64,
    first_len: Option<usize>,
    len_mismatch: Option<usize>,
}

/// One globally-ordered collective call, as recorded by its first arriver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct CollectiveRecord {
    kind: &'static str,
    op: Option<ReduceOp>,
    len: usize,
}

/// Verifier state shared by every rank of one world (plus the watchdog).
pub(crate) struct VerifierShared {
    size: usize,
    /// Bumped on every send, delivered receive and completed collective;
    /// a stable counter while every rank is blocked proves a deadlock.
    progress: AtomicU64,
    states: Mutex<Vec<RankState>>,
    channels: Mutex<HashMap<(usize, usize, Tag), ChannelStat>>,
    /// Outstanding posted-but-never-waited receives per `(rank, src, tag)`.
    posted: Mutex<HashMap<(usize, usize, Tag), u64>>,
    /// Global collective log, indexed by each rank's local call count.
    collectives: Mutex<Vec<CollectiveRecord>>,
    coll_counts: Mutex<Vec<u64>>,
    /// Outstanding split-phase reductions per rank (begun with
    /// `iall_reduce` but not yet completed with `reduce_finish`).
    ireduce_outstanding: Mutex<Vec<u64>>,
    /// Everything the verifier has diagnosed, for the runner's report.
    pub(crate) violations: Mutex<Vec<String>>,
    deadlock_reported: AtomicBool,
    /// How long the world must sit fully-blocked with no progress before
    /// a polling rank declares deadlock.
    window: Duration,
}

impl VerifierShared {
    pub(crate) fn new(size: usize, window: Duration) -> Arc<Self> {
        Arc::new(Self {
            size,
            progress: AtomicU64::new(0),
            states: Mutex::new(vec![RankState::Running; size]),
            channels: Mutex::new(HashMap::new()),
            posted: Mutex::new(HashMap::new()),
            collectives: Mutex::new(Vec::new()),
            coll_counts: Mutex::new(vec![0; size]),
            ireduce_outstanding: Mutex::new(vec![0; size]),
            violations: Mutex::new(Vec::new()),
            deadlock_reported: AtomicBool::new(false),
            window,
        })
    }

    fn set_state(&self, rank: usize, state: RankState) {
        self.states.lock().expect("states lock")[rank] = state;
    }

    pub(crate) fn set_done(&self, rank: usize) {
        self.set_state(rank, RankState::Done);
    }

    fn bump_progress(&self) {
        self.progress.fetch_add(1, Ordering::Release);
    }

    fn record_violation(&self, msg: String) {
        self.violations.lock().expect("violations lock").push(msg);
    }

    /// Render the wait-for graph: what every rank is blocked on, which
    /// channels hold undelivered messages, and any blocked-recv cycle.
    pub(crate) fn wait_for_graph(&self) -> String {
        let states = self.states.lock().expect("states lock").clone();
        let mut out = String::from("wait-for graph:\n");
        for (rank, st) in states.iter().enumerate() {
            let line = match st {
                RankState::Running => format!("  rank {rank}: running\n"),
                RankState::BlockedRecv { src, tag } => {
                    format!("  rank {rank}: blocked in recv(src={src}, tag={tag})\n")
                }
                RankState::BlockedCollective { kind } => {
                    format!("  rank {rank}: blocked in {kind}\n")
                }
                RankState::Done => format!("  rank {rank}: finished\n"),
            };
            out.push_str(&line);
        }
        let channels = self.channels.lock().expect("channels lock");
        let mut undelivered: Vec<_> = channels
            .iter()
            .filter(|(_, c)| c.sent > c.received)
            .collect();
        undelivered.sort_by_key(|(k, _)| **k);
        if !undelivered.is_empty() {
            out.push_str("undelivered messages:\n");
            for ((src, dst, tag), c) in undelivered {
                out.push_str(&format!(
                    "  rank {src} -> rank {dst} tag {tag}: {} sent, {} received\n",
                    c.sent, c.received
                ));
            }
        }
        // Follow blocked-recv edges from each rank to surface a cycle.
        for start in 0..self.size {
            let mut path = vec![start];
            let mut cur = start;
            while let RankState::BlockedRecv { src, .. } = states[cur] {
                if src == start {
                    let names: Vec<String> = path.iter().map(|r| format!("rank {r}")).collect();
                    out.push_str(&format!(
                        "recv cycle: {} -> rank {start}\n",
                        names.join(" -> ")
                    ));
                    return out;
                }
                if path.contains(&src) {
                    break;
                }
                path.push(src);
                cur = src;
            }
        }
        out
    }

    /// `true` when no rank is in user code: every rank is blocked or done.
    fn nobody_running(&self) -> bool {
        self.states
            .lock()
            .expect("states lock")
            .iter()
            .all(|s| !matches!(s, RankState::Running))
    }
}

/// A protocol-verifying [`Communicator`] wrapping one rank's
/// [`ThreadComm`] handle.
///
/// Point-to-point and collective traffic delegate to the inner
/// communicator, but the verifier additionally:
///
/// * implements `recv` as a polling loop over [`ThreadComm::try_recv`],
///   so a blocked receive participates in **live deadlock detection**:
///   when every rank of the world is blocked and the global progress
///   counter stays frozen for a stability window, the poller dumps the
///   wait-for graph (rank, source and tag of every blocked receive,
///   undelivered channels, recv cycles), poisons the world and panics —
///   instead of hanging CI;
/// * audits every collective against the global call order: all ranks'
///   n-th collective must agree on kind (`all_reduce` vs `barrier`),
///   reduction operator and vector length, otherwise the inner engine
///   would silently fold mismatched vectors;
/// * counts messages per `(src, dst, tag)` channel and posted receives
///   per `(rank, src, tag)`, so the checked runner can report unmatched
///   sends, never-waited requests and size-mismatched channels at world
///   teardown.
pub struct VerifiedComm<T: Scalar> {
    inner: ThreadComm<T>,
    shared: Arc<VerifierShared>,
}

impl<T: Scalar> VerifiedComm<T> {
    pub(crate) fn new(inner: ThreadComm<T>, shared: Arc<VerifierShared>) -> Self {
        Self { inner, shared }
    }

    /// The wrapped per-rank communicator.
    pub fn inner(&self) -> &ThreadComm<T> {
        &self.inner
    }

    fn rank(&self) -> usize {
        Communicator::<T>::rank(&self.inner)
    }

    /// Declare deadlock from a polling receive: record, dump, poison,
    /// panic. Only the first declaring rank reports.
    fn declare_deadlock(&self, src: usize, tag: Tag) -> ! {
        if self.shared.deadlock_reported.swap(true, Ordering::AcqRel) {
            // Another rank already reported; unwind quietly via poison.
            self.inner.poison();
            panic!("comm-verifier: world poisoned after deadlock");
        }
        let graph = self.shared.wait_for_graph();
        let msg = format!(
            "deadlock: rank {} can never complete recv(src={src}, tag={tag}) — \
             no rank can make progress\n{graph}",
            self.rank()
        );
        self.shared.record_violation(msg.clone());
        self.inner.poison();
        panic!("comm-verifier: {msg}");
    }

    /// Audit this rank's next collective against the global call order.
    fn audit_collective(&self, kind: &'static str, op: Option<ReduceOp>, len: usize) {
        let my_call = {
            let mut counts = self.shared.coll_counts.lock().expect("counts lock");
            let c = counts[self.rank()];
            counts[self.rank()] += 1;
            c as usize
        };
        let mine = CollectiveRecord { kind, op, len };
        let mut log = self.shared.collectives.lock().expect("collectives lock");
        if my_call < log.len() {
            let first = log[my_call];
            if first != mine {
                let msg = format!(
                    "collective mismatch at call #{my_call}: rank {} entered \
                     {kind}(op={op:?}, len={len}) but an earlier rank entered \
                     {}(op={:?}, len={})",
                    self.rank(),
                    first.kind,
                    first.op,
                    first.len
                );
                drop(log);
                self.shared.record_violation(msg.clone());
                self.inner.poison();
                panic!("comm-verifier: {msg}");
            }
        } else {
            log.push(mine);
        }
    }

    fn verified_collective(&self, kind: &'static str, f: impl FnOnce()) {
        self.shared
            .set_state(self.rank(), RankState::BlockedCollective { kind });
        f();
        self.shared.set_state(self.rank(), RankState::Running);
        self.shared.bump_progress();
    }
}

impl<T: Scalar> Communicator<T> for VerifiedComm<T> {
    fn rank(&self) -> usize {
        Communicator::<T>::rank(&self.inner)
    }

    fn size(&self) -> usize {
        Communicator::<T>::size(&self.inner)
    }

    fn send(&self, dest: usize, tag: Tag, data: Vec<T>) {
        {
            let mut channels = self.shared.channels.lock().expect("channels lock");
            let stat = channels.entry((self.rank(), dest, tag)).or_default();
            stat.sent += 1;
            match stat.first_len {
                None => stat.first_len = Some(data.len()),
                Some(first) if first != data.len() && stat.len_mismatch.is_none() => {
                    stat.len_mismatch = Some(data.len());
                }
                _ => {}
            }
        }
        self.inner.send(dest, tag, data);
        self.shared.bump_progress();
    }

    fn recv(&self, src: usize, tag: Tag) -> Vec<T> {
        let me = self.rank();
        self.shared
            .set_state(me, RankState::BlockedRecv { src, tag });
        let mut last_progress = self.shared.progress.load(Ordering::Acquire);
        let mut stable_since = Instant::now();
        let mut spins = 0u32;
        loop {
            if self.inner.is_poisoned() {
                panic!(
                    "comm-verifier: world poisoned while rank {me} waited for \
                     recv(src={src}, tag={tag}); see the verifier report"
                );
            }
            if let Some(msg) = self.inner.try_recv(src, tag) {
                self.shared.set_state(me, RankState::Running);
                self.shared
                    .channels
                    .lock()
                    .expect("channels lock")
                    .entry((src, me, tag))
                    .or_default()
                    .received += 1;
                self.shared.bump_progress();
                return msg;
            }
            let p = self.shared.progress.load(Ordering::Acquire);
            if p != last_progress {
                last_progress = p;
                stable_since = Instant::now();
            } else if stable_since.elapsed() >= self.shared.window && self.shared.nobody_running() {
                self.declare_deadlock(src, tag);
            }
            spins += 1;
            if spins < 128 {
                std::thread::yield_now();
            } else {
                #[allow(clippy::disallowed_methods)]
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }

    fn all_reduce(&self, vals: &mut [T], op: ReduceOp) {
        self.audit_collective("all_reduce", Some(op), vals.len());
        self.verified_collective("all_reduce", || self.inner.all_reduce(vals, op));
    }

    fn barrier(&self) {
        self.audit_collective("barrier", None, 0);
        self.verified_collective("barrier", || self.inner.barrier());
    }

    fn stats(&self) -> CommStats {
        Communicator::<T>::stats(&self.inner)
    }

    fn recorder(&self) -> &Recorder {
        Communicator::<T>::recorder(&self.inner)
    }

    fn irecv(&self, src: usize, tag: Tag) -> RecvRequest {
        *self
            .shared
            .posted
            .lock()
            .expect("posted lock")
            .entry((self.rank(), src, tag))
            .or_default() += 1;
        RecvRequest { src, tag }
    }

    fn iall_reduce(&self, vals: &[T], op: ReduceOp) -> ReduceRequest<T> {
        self.audit_collective("iall_reduce", Some(op), vals.len());
        let me = self.rank();
        {
            let mut outstanding = self
                .shared
                .ireduce_outstanding
                .lock()
                .expect("ireduce lock");
            if outstanding[me] > 0 {
                let msg = format!(
                    "rank {me} began a second iall_reduce while one was still \
                     outstanding (complete it with reduce_finish first)"
                );
                drop(outstanding);
                self.shared.record_violation(msg.clone());
                self.inner.poison();
                panic!("comm-verifier: {msg}");
            }
            outstanding[me] += 1;
        }
        // The begin phase only blocks on the previous round draining, but
        // it *can* block — expose that to the deadlock detector.
        self.shared.set_state(
            me,
            RankState::BlockedCollective {
                kind: "iall_reduce",
            },
        );
        let req = self.inner.iall_reduce(vals, op);
        self.shared.set_state(me, RankState::Running);
        self.shared.bump_progress();
        req
    }

    fn reduce_finish(&self, req: ReduceRequest<T>, out: &mut [T]) {
        let me = self.rank();
        {
            let mut outstanding = self
                .shared
                .ireduce_outstanding
                .lock()
                .expect("ireduce lock");
            if outstanding[me] == 0 {
                let msg = format!(
                    "rank {me} called reduce_finish with no outstanding \
                     iall_reduce (the request was not begun on this rank)"
                );
                drop(outstanding);
                self.shared.record_violation(msg.clone());
                self.inner.poison();
                panic!("comm-verifier: {msg}");
            }
            outstanding[me] -= 1;
        }
        self.shared.set_state(
            me,
            RankState::BlockedCollective {
                kind: "reduce_finish",
            },
        );
        self.inner.reduce_finish(req, out);
        self.shared.set_state(me, RankState::Running);
        self.shared.bump_progress();
    }

    fn wait(&self, req: RecvRequest) -> Vec<T> {
        {
            let mut posted = self.shared.posted.lock().expect("posted lock");
            match posted.get_mut(&(self.rank(), req.src, req.tag)) {
                Some(n) if *n > 0 => *n -= 1,
                _ => {
                    let msg = format!(
                        "rank {} waited on recv(src={}, tag={}) that was never \
                         posted with irecv",
                        self.rank(),
                        req.src,
                        req.tag
                    );
                    drop(posted);
                    self.shared.record_violation(msg.clone());
                    self.inner.poison();
                    panic!("comm-verifier: {msg}");
                }
            }
        }
        self.recv(req.src, req.tag)
    }
}

/// World-teardown findings assembled by the checked runner.
pub(crate) fn teardown_report(shared: &VerifierShared) -> Vec<String> {
    let mut findings = Vec::new();
    let channels = shared.channels.lock().expect("channels lock");
    let mut sorted: Vec<_> = channels.iter().collect();
    sorted.sort_by_key(|(k, _)| **k);
    for ((src, dst, tag), c) in sorted {
        if c.sent > c.received {
            findings.push(format!(
                "unmatched send: rank {src} sent {} message(s) to rank {dst} \
                 with tag {tag} that were never received",
                c.sent - c.received
            ));
        }
        if let (Some(first), Some(other)) = (c.first_len, c.len_mismatch) {
            findings.push(format!(
                "size mismatch: rank {src} -> rank {dst} tag {tag} carried \
                 messages of {first} and of {other} elements"
            ));
        }
    }
    let posted = shared.posted.lock().expect("posted lock");
    let mut sorted: Vec<_> = posted.iter().filter(|(_, &n)| n > 0).collect();
    sorted.sort_by_key(|(k, _)| **k);
    for ((rank, src, tag), n) in sorted {
        findings.push(format!(
            "dropped request: rank {rank} posted {n} irecv(src={src}, \
             tag={tag}) that were never completed with wait"
        ));
    }
    let outstanding = shared.ireduce_outstanding.lock().expect("ireduce lock");
    for (rank, &n) in outstanding.iter().enumerate() {
        if n > 0 {
            findings.push(format!(
                "dropped reduction: rank {rank} began {n} iall_reduce that \
                 were never completed with reduce_finish"
            ));
        }
    }
    let counts = shared.coll_counts.lock().expect("counts lock");
    let min = counts.iter().min().copied().unwrap_or(0);
    let max = counts.iter().max().copied().unwrap_or(0);
    if min != max {
        findings.push(format!(
            "collective count mismatch: ranks completed between {min} and \
             {max} collective calls"
        ));
    }
    findings.extend(
        shared
            .violations
            .lock()
            .expect("violations lock")
            .iter()
            .cloned(),
    );
    findings
}

#[cfg(test)]
mod tests {
    use crate::runner::{run_ranks_checked, try_run_ranks_checked, CheckConfig};
    use comm::{Communicator, ReduceOp, MAX_REDUCE_SCALARS};

    /// The chunked many-scalar reduction is fully audited through the
    /// verifier: the begin/finish pair flows through the tracked
    /// `iall_reduce` slot and the blocking tail chunks enter the global
    /// collective log, so a clean world tears down with no findings.
    #[test]
    fn chunked_reduction_is_verified_clean() {
        let len = MAX_REDUCE_SCALARS + 9;
        let results = run_ranks_checked::<f64, _, _>(4, CheckConfig::default(), move |comm| {
            let mine: Vec<f64> = (0..len).map(|i| (comm.rank() + i) as f64).collect();
            let req = comm.iall_reduce_many(&mine, ReduceOp::Sum);
            let mut out = vec![0.0; len];
            comm.reduce_finish_many(req, &mut out);
            out[0]
        });
        assert!(results.iter().all(|&v| v == 6.0));
    }

    /// Dropping a chunked handle without finishing it is flagged at
    /// teardown exactly like a dropped `iall_reduce`.
    #[test]
    fn dropped_chunked_reduction_is_reported() {
        let err = try_run_ranks_checked::<f64, _, _>(2, CheckConfig::default(), |comm| {
            let req = comm.iall_reduce_many(&[comm.rank() as f64], ReduceOp::Sum);
            drop(req);
        })
        .expect_err("dropped reduction must be reported");
        assert!(
            err.findings.iter().any(|f| f.contains("dropped reduction")),
            "findings: {:?}",
            err.findings
        );
    }
}
