//! Violation types and the shared violation sink.

use std::fmt;
use std::sync::{Arc, Mutex};

/// One correctness violation found by the kernel sanitizer.
///
/// Every variant names the offending kernel, so a diagnostic is
/// actionable without a debugger: which launch, which cell, which rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// The launch's `RowMap` escapes the output slice.
    MapOutOfBounds {
        /// Offending kernel name.
        kernel: &'static str,
        /// Linear index of the first out-of-bounds element.
        cell: usize,
        /// Length of the output slice.
        out_len: usize,
    },
    /// Two rows of the launch's `RowMap` cover the same element, so two
    /// workers could hold `&mut` to it at once.
    RowAliasing {
        /// Offending kernel name.
        kernel: &'static str,
        /// Linear index of the first doubly-mapped element.
        cell: usize,
    },
    /// The kernel changed an element its `RowMap` does not cover — a
    /// write that escaped the row slice (e.g. through a raw pointer).
    OutOfMapWrite {
        /// Offending kernel name.
        kernel: &'static str,
        /// Linear index of the first out-of-map element that changed.
        cell: usize,
    },
    /// The launch targets a ghost-plane cell that a split-phase halo
    /// exchange is about to overwrite (`begin` called, `finish` not yet).
    InFlightGhostWrite {
        /// Offending kernel name.
        kernel: &'static str,
        /// Linear index (within the exchanged field) of the cell.
        cell: usize,
        /// Ghost-plane axis (0 = x, 1 = y, 2 = z).
        axis: usize,
        /// Ghost-plane side (0 = low, 1 = high).
        side: usize,
    },
    /// The kernel's output depends on a tracked-fresh element that was
    /// never written: a read of uninitialised memory.
    ReadBeforeInit {
        /// Offending kernel name.
        kernel: &'static str,
        /// Linear index of the first output element that diverged under
        /// the two shadow canaries.
        cell: usize,
    },
    /// `on_exchange_finish` arrived for a field with no matching
    /// `on_exchange_begin` (or a second `begin` for the same field).
    UnbalancedExchange {
        /// What went wrong.
        detail: String,
    },
}

impl Violation {
    /// The kernel this violation is attributed to (empty for exchange
    /// bookkeeping errors, which have no kernel).
    pub fn kernel(&self) -> &'static str {
        match self {
            Self::MapOutOfBounds { kernel, .. }
            | Self::RowAliasing { kernel, .. }
            | Self::OutOfMapWrite { kernel, .. }
            | Self::InFlightGhostWrite { kernel, .. }
            | Self::ReadBeforeInit { kernel, .. } => kernel,
            Self::UnbalancedExchange { .. } => "",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MapOutOfBounds {
                kernel,
                cell,
                out_len,
            } => write!(
                f,
                "kernel `{kernel}`: RowMap maps element {cell} but the output \
                 slice has only {out_len} elements"
            ),
            Self::RowAliasing { kernel, cell } => write!(
                f,
                "kernel `{kernel}`: RowMap maps element {cell} from two \
                 different rows (cross-row aliasing)"
            ),
            Self::OutOfMapWrite { kernel, cell } => write!(
                f,
                "kernel `{kernel}`: element {cell} changed during the launch \
                 but is not covered by the RowMap — a write escaped its row \
                 slice"
            ),
            Self::InFlightGhostWrite {
                kernel,
                cell,
                axis,
                side,
            } => write!(
                f,
                "kernel `{kernel}`: element {cell} lies on the (axis {axis}, \
                 side {side}) ghost plane of a field whose halo exchange is \
                 still in flight (begin() without finish())"
            ),
            Self::ReadBeforeInit { kernel, cell } => write!(
                f,
                "kernel `{kernel}`: output element {cell} depends on \
                 uninitialised input (two shadow canaries produced different \
                 results)"
            ),
            Self::UnbalancedExchange { detail } => {
                write!(f, "unbalanced halo exchange: {detail}")
            }
        }
    }
}

/// What the sanitizer does when it finds a violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Policy {
    /// Panic immediately with the violation message (the default — a CI
    /// run under `Checked` fails at the offending launch).
    #[default]
    Panic,
    /// Record the violation in the shared [`Report`] and keep going
    /// whenever it is safe to do so.
    Record,
}

/// Cloneable shared sink of recorded violations.
#[derive(Clone, Default, Debug)]
pub struct Report {
    inner: Arc<Mutex<Vec<Violation>>>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one violation.
    pub fn push(&self, v: Violation) {
        self.inner.lock().expect("report lock").push(v);
    }

    /// Snapshot and clear the recorded violations.
    pub fn take(&self) -> Vec<Violation> {
        std::mem::take(&mut *self.inner.lock().expect("report lock"))
    }

    /// Snapshot the recorded violations without clearing.
    pub fn snapshot(&self) -> Vec<Violation> {
        self.inner.lock().expect("report lock").clone()
    }

    /// Number of recorded violations.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("report lock").len()
    }

    /// `true` when no violation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_kernel_and_cell() {
        let v = Violation::OutOfMapWrite {
            kernel: "KernelBiCGS1",
            cell: 42,
        };
        let msg = v.to_string();
        assert!(msg.contains("KernelBiCGS1"));
        assert!(msg.contains("42"));
        assert_eq!(v.kernel(), "KernelBiCGS1");
    }

    #[test]
    fn report_takes_and_clears() {
        let r = Report::new();
        assert!(r.is_empty());
        r.push(Violation::RowAliasing {
            kernel: "k",
            cell: 1,
        });
        assert_eq!(r.len(), 1);
        let taken = r.take();
        assert_eq!(taken.len(), 1);
        assert!(r.is_empty());
        assert!(taken[0].to_string().contains("aliasing"));
    }
}
