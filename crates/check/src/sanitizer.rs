//! `Checked<D>` — the kernel sanitizer device wrapper.

use std::mem::size_of;
use std::sync::{Arc, Mutex};

use accel::{
    add_partials, Device, DeviceKind, ExchangeHazard, KernelInfo, Recorder, RowMap, Scalar,
};

use crate::report::{Policy, Report, Violation};

/// One opt-in "fresh buffer" whose reads are tracked until every element
/// has been written at least once.
struct FreshRegion {
    base: usize,
    elem_bytes: usize,
    /// `false` while the element has never been the target of a launch.
    initialized: Vec<bool>,
}

struct State {
    policy: Policy,
    report: Report,
    hazards: Mutex<Vec<ExchangeHazard>>,
    fresh: Mutex<Vec<FreshRegion>>,
}

/// A sanitizing [`Device`] wrapper: transparently delegates every launch
/// to the inner back-end while shadow-tracking what the launch was
/// *allowed* to do versus what it *did*.
///
/// Checks performed per launch:
///
/// * **Map audit** — the `RowMap` is walked exhaustively: every mapped
///   element must be in bounds and covered by exactly one row
///   ([`Violation::MapOutOfBounds`], [`Violation::RowAliasing`]).
/// * **Write-set audit** — the output slice is snapshotted before the
///   launch and diffed after it: any element that changed but is not
///   mapped was written through an escape hatch (a raw pointer, an
///   aliased capture) and is flagged ([`Violation::OutOfMapWrite`]).
/// * **Exchange hazard** — while a split-phase halo exchange is in
///   flight (between [`Device::on_exchange_begin`] and
///   [`Device::on_exchange_finish`], wired up by
///   `blockgrid::HaloExchange`), launching a kernel whose map covers an
///   in-flight interface ghost plane races with the unpack and is
///   flagged ([`Violation::InFlightGhostWrite`]).
/// * **Read-before-init** (opt-in via [`Checked::track_fresh`]) — the
///   kernel is first replayed on two shadow copies of the output whose
///   never-written elements hold different canary values; any divergence
///   in the written elements or the reduction partials proves the result
///   depends on uninitialised data ([`Violation::ReadBeforeInit`]).
///
/// The wrapper is a bitwise-identical passthrough: the real launch runs
/// on the inner device with the caller's closure, so results, reduction
/// order and recorded events are exactly those of the wrapped back-end.
#[derive(Clone)]
pub struct Checked<D: Device> {
    inner: D,
    state: Arc<State>,
}

impl<D: Device> Checked<D> {
    /// Wrap `inner` with the default [`Policy::Panic`].
    pub fn new(inner: D) -> Self {
        Self::with_policy(inner, Policy::Panic)
    }

    /// Wrap `inner` with an explicit violation policy.
    pub fn with_policy(inner: D, policy: Policy) -> Self {
        Self {
            inner,
            state: Arc::new(State {
                policy,
                report: Report::new(),
                hazards: Mutex::new(Vec::new()),
                fresh: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The wrapped back-end.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The shared violation report (only populated under
    /// [`Policy::Record`]).
    pub fn report(&self) -> Report {
        self.state.report.clone()
    }

    /// Register `buf` as freshly allocated: until every element has been
    /// the target of a launch, kernels whose output depends on its
    /// unwritten elements are flagged as reads of uninitialised memory.
    pub fn track_fresh<T: Scalar>(&self, buf: &[T]) {
        self.state
            .fresh
            .lock()
            .expect("fresh lock")
            .push(FreshRegion {
                base: buf.as_ptr() as usize,
                elem_bytes: size_of::<T>(),
                initialized: vec![false; buf.len()],
            });
    }

    /// Panic if any violation was recorded (or a halo exchange is still
    /// open). Call at the end of a [`Policy::Record`] run.
    pub fn assert_clean(&self) {
        let open = self.state.hazards.lock().expect("hazard lock").len();
        assert_eq!(open, 0, "{open} halo exchange(s) begun but never finished");
        let violations = self.state.report.snapshot();
        assert!(
            violations.is_empty(),
            "kernel sanitizer found {} violation(s):\n  {}",
            violations.len(),
            violations
                .iter()
                .map(Violation::to_string)
                .collect::<Vec<_>>()
                .join("\n  ")
        );
    }

    fn flag(&self, v: Violation) {
        match self.state.policy {
            Policy::Panic => panic!("kernel sanitizer: {v}"),
            Policy::Record => self.state.report.push(v),
        }
    }

    /// Walk `map` exhaustively, returning the per-element coverage bitmap.
    /// Flags out-of-bounds or doubly-mapped elements and returns `None`
    /// (the launch must be skipped: the back-end would reject the map).
    fn audit_map(&self, kernel: &'static str, map: &RowMap, out_len: usize) -> Option<Vec<bool>> {
        let mut mapped = vec![false; out_len];
        for r in 0..map.rows() {
            let (j, k) = map.row_jk(r);
            let off = map.row_offset(j, k);
            let end = off + map.len;
            if end > out_len {
                self.flag(Violation::MapOutOfBounds {
                    kernel,
                    cell: off.max(out_len),
                    out_len,
                });
                return None;
            }
            for (cell, slot) in mapped.iter_mut().enumerate().take(end).skip(off) {
                if *slot {
                    self.flag(Violation::RowAliasing { kernel, cell });
                    return None;
                }
                *slot = true;
            }
        }
        Some(mapped)
    }

    /// Flag mapped elements that lie on an in-flight interface ghost
    /// plane of any active exchange hazard.
    fn audit_hazards<T: Scalar>(&self, kernel: &'static str, out: &[T], mapped: &[bool]) {
        let hazards = self.state.hazards.lock().expect("hazard lock");
        if hazards.is_empty() {
            return;
        }
        let out_lo = out.as_ptr() as usize;
        let out_hi = out_lo + size_of_val(out);
        for h in hazards.iter() {
            let h_hi = h.base + h.len() * h.elem_bytes;
            if out_lo >= h_hi || h.base >= out_hi {
                continue;
            }
            for (cell, &m) in mapped.iter().enumerate() {
                if !m {
                    continue;
                }
                let addr = out_lo + cell * size_of::<T>();
                if addr < h.base || addr >= h_hi {
                    continue;
                }
                let lin = (addr - h.base) / h.elem_bytes;
                if let Some((axis, side)) = h.hit(lin) {
                    self.flag(Violation::InFlightGhostWrite {
                        kernel,
                        cell,
                        axis,
                        side,
                    });
                    return;
                }
            }
        }
    }

    /// Cells of `out` that lie in a tracked fresh region and have never
    /// been the target of a launch.
    fn uninit_cells<T: Scalar>(&self, out: &[T]) -> Vec<usize> {
        let fresh = self.state.fresh.lock().expect("fresh lock");
        let out_lo = out.as_ptr() as usize;
        let mut cells = Vec::new();
        for region in fresh.iter() {
            if region.elem_bytes != size_of::<T>() {
                continue;
            }
            let r_hi = region.base + region.initialized.len() * region.elem_bytes;
            for cell in 0..out.len() {
                let addr = out_lo + cell * size_of::<T>();
                if addr < region.base || addr >= r_hi {
                    continue;
                }
                if !region.initialized[(addr - region.base) / region.elem_bytes] {
                    cells.push(cell);
                }
            }
        }
        cells
    }

    /// Replay the kernel on two shadow copies of `out` whose tracked,
    /// never-initialised elements hold different canaries; a divergence
    /// in mapped elements or partials proves a read-before-init.
    fn audit_fresh_reads<T: Scalar, F, const NR: usize>(
        &self,
        kernel: &'static str,
        map: &RowMap,
        out: &[T],
        mapped: &[bool],
        f: &F,
    ) where
        F: Fn(usize, usize, &mut [T]) -> [T; NR] + Sync,
    {
        let uninit = self.uninit_cells(out);
        if uninit.is_empty() {
            return;
        }
        // Both canaries are exactly representable in f32 and f64, so the
        // shadow buffers are bit-identical to the real one everywhere else.
        let mut shadow_a = out.to_vec();
        let mut shadow_b = out.to_vec();
        for &cell in &uninit {
            shadow_a[cell] = T::from_f64(1.0e30);
            shadow_b[cell] = T::from_f64(-3.0e30);
        }
        let mut partials_a = [T::ZERO; NR];
        let mut partials_b = [T::ZERO; NR];
        for r in 0..map.rows() {
            let (j, k) = map.row_jk(r);
            let off = map.row_offset(j, k);
            partials_a = add_partials(partials_a, f(j, k, &mut shadow_a[off..off + map.len]));
            partials_b = add_partials(partials_b, f(j, k, &mut shadow_b[off..off + map.len]));
        }
        for (cell, &m) in mapped.iter().enumerate() {
            if m && bits(shadow_a[cell]) != bits(shadow_b[cell]) {
                self.flag(Violation::ReadBeforeInit { kernel, cell });
                return;
            }
        }
        for (a, b) in partials_a.iter().zip(&partials_b) {
            if bits(*a) != bits(*b) {
                self.flag(Violation::ReadBeforeInit { kernel, cell: 0 });
                return;
            }
        }
    }

    /// Two-buffer variant of [`Self::audit_fresh_reads`]: the fused
    /// kernel is replayed on shadow copies of *both* buffers, with
    /// canaries planted in the never-initialised cells of each.
    fn audit_fresh_reads2<T: Scalar, F, const NR: usize>(
        &self,
        kernel: &'static str,
        a: (&RowMap, &[T], &[bool]),
        b: (&RowMap, &[T], &[bool]),
        f: &F,
    ) where
        F: Fn(usize, usize, &mut [T], &mut [T]) -> [T; NR] + Sync,
    {
        let (map_a, out_a, mapped_a) = a;
        let (map_b, out_b, mapped_b) = b;
        let uninit_a = self.uninit_cells(out_a);
        let uninit_b = self.uninit_cells(out_b);
        if uninit_a.is_empty() && uninit_b.is_empty() {
            return;
        }
        let mut shadow_a1 = out_a.to_vec();
        let mut shadow_a2 = out_a.to_vec();
        let mut shadow_b1 = out_b.to_vec();
        let mut shadow_b2 = out_b.to_vec();
        for &cell in &uninit_a {
            shadow_a1[cell] = T::from_f64(1.0e30);
            shadow_a2[cell] = T::from_f64(-3.0e30);
        }
        for &cell in &uninit_b {
            shadow_b1[cell] = T::from_f64(1.0e30);
            shadow_b2[cell] = T::from_f64(-3.0e30);
        }
        let mut partials_1 = [T::ZERO; NR];
        let mut partials_2 = [T::ZERO; NR];
        for r in 0..map_a.rows() {
            let (j, k) = map_a.row_jk(r);
            let off_a = map_a.row_offset(j, k);
            let off_b = map_b.row_offset(j, k);
            partials_1 = add_partials(
                partials_1,
                f(
                    j,
                    k,
                    &mut shadow_a1[off_a..off_a + map_a.len],
                    &mut shadow_b1[off_b..off_b + map_b.len],
                ),
            );
            partials_2 = add_partials(
                partials_2,
                f(
                    j,
                    k,
                    &mut shadow_a2[off_a..off_a + map_a.len],
                    &mut shadow_b2[off_b..off_b + map_b.len],
                ),
            );
        }
        for (mapped, s1, s2) in [
            (mapped_a, &shadow_a1, &shadow_a2),
            (mapped_b, &shadow_b1, &shadow_b2),
        ] {
            for (cell, &m) in mapped.iter().enumerate() {
                if m && bits(s1[cell]) != bits(s2[cell]) {
                    self.flag(Violation::ReadBeforeInit { kernel, cell });
                    return;
                }
            }
        }
        for (p1, p2) in partials_1.iter().zip(&partials_2) {
            if bits(*p1) != bits(*p2) {
                self.flag(Violation::ReadBeforeInit { kernel, cell: 0 });
                return;
            }
        }
    }

    /// Mark every mapped element of `out` initialised in the tracked
    /// fresh regions.
    fn mark_initialized<T: Scalar>(&self, out: &[T], mapped: &[bool]) {
        let mut fresh = self.state.fresh.lock().expect("fresh lock");
        if fresh.is_empty() {
            return;
        }
        let out_lo = out.as_ptr() as usize;
        for region in fresh.iter_mut() {
            if region.elem_bytes != size_of::<T>() {
                continue;
            }
            let r_hi = region.base + region.initialized.len() * region.elem_bytes;
            for (cell, &m) in mapped.iter().enumerate() {
                if !m {
                    continue;
                }
                let addr = out_lo + cell * size_of::<T>();
                if addr >= region.base && addr < r_hi {
                    region.initialized[(addr - region.base) / region.elem_bytes] = true;
                }
            }
        }
        fresh.retain(|r| !r.initialized.iter().all(|&i| i));
    }
}

#[inline]
fn bits<T: Scalar>(v: T) -> u64 {
    v.to_f64().to_bits()
}

impl<D: Device> Device for Checked<D> {
    fn name(&self) -> String {
        format!("checked({})", self.inner.name())
    }

    fn kind(&self) -> DeviceKind {
        self.inner.kind()
    }

    fn recorder(&self) -> &Recorder {
        self.inner.recorder()
    }

    fn launch_rows_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        map: RowMap,
        out: &mut [T],
        f: F,
    ) -> [T; NR]
    where
        F: Fn(usize, usize, &mut [T]) -> [T; NR] + Sync,
    {
        let Some(mapped) = self.audit_map(info.name, &map, out.len()) else {
            // Invalid map under Policy::Record: the violation is recorded
            // and the launch is skipped (the back-end would panic on it).
            return [T::ZERO; NR];
        };
        self.audit_hazards(info.name, out, &mapped);
        self.audit_fresh_reads(info.name, &map, out, &mapped, &f);
        let before: Vec<u64> = out.iter().map(|&v| bits(v)).collect();
        // `&F: Fn + Sync` whenever `F` is, so delegating by reference keeps
        // the real launch bitwise identical to the unwrapped back-end.
        let result = self.inner.launch_rows_reduce(info, map, out, &f);
        for (cell, (&b, &a)) in before.iter().zip(out.iter()).enumerate() {
            if b != bits(a) && !mapped[cell] {
                self.flag(Violation::OutOfMapWrite {
                    kernel: info.name,
                    cell,
                });
                break;
            }
        }
        self.mark_initialized(out, &mapped);
        result
    }

    fn launch_rows2_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        map_a: RowMap,
        out_a: &mut [T],
        map_b: RowMap,
        out_b: &mut [T],
        f: F,
    ) -> [T; NR]
    where
        F: Fn(usize, usize, &mut [T], &mut [T]) -> [T; NR] + Sync,
    {
        // A fused two-buffer sweep is audited exactly once: both maps are
        // walked, both write-sets diffed, and the fresh-read replay runs
        // the fused closure on shadow copies of both buffers together.
        let mapped_a = self.audit_map(info.name, &map_a, out_a.len());
        let mapped_b = self.audit_map(info.name, &map_b, out_b.len());
        let (Some(mapped_a), Some(mapped_b)) = (mapped_a, mapped_b) else {
            return [T::ZERO; NR];
        };
        self.audit_hazards(info.name, out_a, &mapped_a);
        self.audit_hazards(info.name, out_b, &mapped_b);
        self.audit_fresh_reads2(
            info.name,
            (&map_a, out_a, &mapped_a),
            (&map_b, out_b, &mapped_b),
            &f,
        );
        let before_a: Vec<u64> = out_a.iter().map(|&v| bits(v)).collect();
        let before_b: Vec<u64> = out_b.iter().map(|&v| bits(v)).collect();
        let result = self
            .inner
            .launch_rows2_reduce(info, map_a, out_a, map_b, out_b, &f);
        for (mapped, before, after) in [
            (&mapped_a, &before_a, &*out_a),
            (&mapped_b, &before_b, &*out_b),
        ] {
            for (cell, (&b, &a)) in before.iter().zip(after.iter()).enumerate() {
                if b != bits(a) && !mapped[cell] {
                    self.flag(Violation::OutOfMapWrite {
                        kernel: info.name,
                        cell,
                    });
                    break;
                }
            }
        }
        self.mark_initialized(out_a, &mapped_a);
        self.mark_initialized(out_b, &mapped_b);
        result
    }

    fn launch_reduce<T: Scalar, F, const NR: usize>(
        &self,
        info: KernelInfo,
        ny: usize,
        nz: usize,
        f: F,
    ) -> [T; NR]
    where
        F: Fn(usize, usize) -> [T; NR] + Sync,
    {
        // Pure reductions have no output buffer to audit.
        self.inner.launch_reduce(info, ny, nz, f)
    }

    fn on_exchange_begin(&self, hazard: ExchangeHazard) {
        {
            let mut hazards = self.state.hazards.lock().expect("hazard lock");
            if hazards.iter().any(|h| h.base == hazard.base) {
                self.flag(Violation::UnbalancedExchange {
                    detail: format!(
                        "begin() for the field at {:#x} while a previous exchange \
                         of the same field is still in flight",
                        hazard.base
                    ),
                });
            }
            hazards.push(hazard);
        }
        self.inner.on_exchange_begin(hazard);
    }

    fn on_exchange_finish(&self, hazard: ExchangeHazard) {
        {
            let mut hazards = self.state.hazards.lock().expect("hazard lock");
            match hazards.iter().position(|h| h.base == hazard.base) {
                Some(i) => {
                    hazards.remove(i);
                }
                None => self.flag(Violation::UnbalancedExchange {
                    detail: format!(
                        "finish() for the field at {:#x} with no exchange in flight",
                        hazard.base
                    ),
                }),
            }
        }
        self.inner.on_exchange_finish(hazard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel::Serial;

    fn serial() -> Checked<Serial> {
        Checked::new(Serial::new(Recorder::disabled()))
    }

    #[test]
    fn passthrough_matches_inner_bitwise() {
        let info = KernelInfo::new("KernelAxpy", 16, 2);
        let mut plain = vec![0.5f64; 32];
        let mut wrapped = plain.clone();
        let dev = Serial::new(Recorder::disabled());
        let [a] = dev.launch_rows_reduce(info, RowMap::contiguous(32), &mut plain, |_, _, row| {
            let mut s = 0.0;
            for v in row.iter_mut() {
                *v = *v * 3.0 + 1.0;
                s += *v;
            }
            [s]
        });
        let [b] =
            serial().launch_rows_reduce(info, RowMap::contiguous(32), &mut wrapped, |_, _, row| {
                let mut s = 0.0;
                for v in row.iter_mut() {
                    *v = *v * 3.0 + 1.0;
                    s += *v;
                }
                [s]
            });
        assert_eq!(a.to_bits(), b.to_bits());
        let same = plain
            .iter()
            .zip(&wrapped)
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same);
    }

    #[test]
    #[should_panic(expected = "aliasing")]
    fn aliasing_map_is_flagged() {
        let mut out = vec![0.0f64; 100];
        let map = RowMap {
            base: 0,
            len: 5,
            ny: 2,
            nz: 1,
            sy: 3,
            sz: 100,
        };
        serial().launch_rows(
            KernelInfo::new("KernelBad", 8, 0),
            map,
            &mut out,
            |_, _, r| {
                r[0] = 1.0;
            },
        );
    }

    #[test]
    #[should_panic(expected = "maps element 8 but the output slice")]
    fn out_of_bounds_map_is_flagged() {
        let mut out = vec![0.0f64; 8];
        serial().launch_rows(
            KernelInfo::new("KernelBad", 8, 0),
            RowMap::contiguous(9),
            &mut out,
            |_, _, r| r[0] = 1.0,
        );
    }

    #[test]
    fn record_policy_collects_instead_of_panicking() {
        let dev = Checked::with_policy(Serial::new(Recorder::disabled()), Policy::Record);
        let mut out = vec![0.0f64; 8];
        dev.launch_rows(
            KernelInfo::new("KernelBad", 8, 0),
            RowMap::contiguous(9),
            &mut out,
            |_, _, r| r[0] = 1.0,
        );
        let vs = dev.report().take();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].kernel(), "KernelBad");
    }

    #[test]
    fn fresh_write_only_kernel_is_clean() {
        let dev = serial();
        let mut out = vec![0.0f64; 16];
        dev.track_fresh(&out);
        dev.launch_rows(
            KernelInfo::new("KernelFill", 8, 0),
            RowMap::contiguous(16),
            &mut out,
            |_, _, row| {
                for v in row.iter_mut() {
                    *v = 7.0;
                }
            },
        );
        assert!(out.iter().all(|&v| v == 7.0));
    }

    #[test]
    #[should_panic(expected = "uninitialised")]
    fn fresh_read_modify_write_is_flagged() {
        let dev = serial();
        let mut out = vec![0.0f64; 16];
        dev.track_fresh(&out);
        dev.launch_rows(
            KernelInfo::new("KernelAccumulate", 16, 1),
            RowMap::contiguous(16),
            &mut out,
            |_, _, row| {
                for v in row.iter_mut() {
                    *v += 1.0;
                }
            },
        );
    }

    #[test]
    fn initialised_fresh_buffer_stops_tracking() {
        let dev = serial();
        let mut out = vec![0.0f64; 8];
        dev.track_fresh(&out);
        let fill = |_: usize, _: usize, row: &mut [f64]| {
            for v in row.iter_mut() {
                *v = 1.0;
            }
        };
        dev.launch_rows(
            KernelInfo::new("KernelFill", 8, 0),
            RowMap::contiguous(8),
            &mut out,
            fill,
        );
        // Now fully initialised: accumulating is legal.
        dev.launch_rows(
            KernelInfo::new("KernelAccumulate", 16, 1),
            RowMap::contiguous(8),
            &mut out,
            |_, _, row| {
                for v in row.iter_mut() {
                    *v += 1.0;
                }
            },
        );
        assert!(out.iter().all(|&v| v == 2.0));
    }

    #[test]
    #[should_panic(expected = "no exchange in flight")]
    fn unbalanced_finish_is_flagged() {
        let dev = serial();
        dev.on_exchange_finish(ExchangeHazard {
            base: 0x1000,
            elem_bytes: 8,
            padded: [3, 3, 3],
            faces: 1,
        });
    }

    #[test]
    fn assert_clean_reports_open_exchange() {
        let dev = serial();
        dev.on_exchange_begin(ExchangeHazard {
            base: 0x1000,
            elem_bytes: 8,
            padded: [3, 3, 3],
            faces: 1,
        });
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| dev.assert_clean()))
            .expect_err("must flag the open exchange");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("never finished"), "{msg}");
    }
}
