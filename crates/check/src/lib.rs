//! # check — correctness analysis for the solver's kernels and comm
//!
//! A distributed stencil solver has three classic failure modes that
//! ordinary tests are bad at catching: a kernel writing memory it does
//! not own (races masked by a benign schedule), a message-protocol slip
//! (swapped tag, dropped wait) that hangs or silently corrupts, and
//! reads of never-initialised buffers. This crate attacks each with a
//! dedicated checker, all usable from the normal test suite:
//!
//! * [`Checked`] — a sanitizing [`accel::Device`] wrapper. It is a
//!   bitwise-identical passthrough to any back-end, but shadow-tracks
//!   every launch: the `RowMap` is audited exhaustively (bounds,
//!   cross-row aliasing), the output is snapshot-diffed to catch writes
//!   that escaped the row slice, launches into ghost planes borrowed by
//!   an in-flight halo exchange are flagged, and (opt-in) two-canary
//!   shadow replays detect outputs that depend on uninitialised data.
//! * [`VerifiedComm`] — a protocol-verifying [`comm::Communicator`]
//!   wrapper. Blocked receives poll, so the world diagnoses its own
//!   deadlocks with a wait-for graph (rank, tag, undelivered channels,
//!   recv cycles) instead of hanging; collectives are audited for
//!   cross-rank agreement; teardown reports unmatched sends and
//!   never-waited receive requests.
//! * [`run_ranks_checked`] / [`try_run_ranks_checked`] — the checked
//!   SPMD launcher wiring both together, with an opt-in watchdog that
//!   aborts a hung world with the wait-for graph dump.
//!
//! The static leg of the analysis lives in the `xtask` crate
//! (`cargo xtask lint`): unsafe-allowlist enforcement, `#[must_use]`
//! presence on request tokens, and `missing_docs` coverage.

#![warn(missing_docs)]

mod report;
mod runner;
mod sanitizer;
mod verifier;

pub use report::{Policy, Report, Violation};
pub use runner::{run_ranks_checked, try_run_ranks_checked, CheckConfig, CheckFailure};
pub use sanitizer::Checked;
pub use verifier::VerifiedComm;
