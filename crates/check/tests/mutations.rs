//! Seeded-mutation tests: each classic defect must be caught with an
//! actionable diagnostic (naming kernel, rank and tag), never a hang.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use accel::{Device, KernelInfo, Recorder, RowMap, Serial};
use blockgrid::{BlockGrid, Decomp, Field, GlobalGrid, HaloExchange};
use check::{try_run_ranks_checked, CheckConfig, Checked, VerifiedComm};
use comm::{CommStats, Communicator, ReduceOp, Tag};

/// Mutation 1: a kernel that escapes its row slice through a raw pointer
/// (the bug class `RowMap` validation cannot see). The sanitizer's
/// snapshot diff must name the kernel and the out-of-map cell.
#[test]
fn seeded_out_of_row_write_is_caught() {
    struct Esc(*mut f64);
    // SAFETY: deliberately unsound test fixture — the pointer is written
    // from inside a kernel that only owns a different row slice, exactly
    // the seeded mutant the sanitizer exists to catch. The Serial
    // back-end runs the closure on this thread, so the write itself is
    // not a data race.
    unsafe impl Send for Esc {}
    // SAFETY: see above; single-threaded use only.
    unsafe impl Sync for Esc {}
    impl Esc {
        // Accessor so the closure captures `&Esc` (Sync) rather than the
        // raw-pointer field itself.
        fn ptr(&self) -> *mut f64 {
            self.0
        }
    }

    let dev = Checked::new(Serial::new(Recorder::disabled()));
    let mut out = vec![0.0f64; 16];
    let esc = Esc(out.as_mut_ptr());
    // Rows cover [4, 8) and [10, 14); element 0 is unmapped.
    let map = RowMap {
        base: 4,
        len: 4,
        ny: 2,
        nz: 1,
        sy: 6,
        sz: 16,
    };
    let err = catch_unwind(AssertUnwindSafe(|| {
        dev.launch_rows(
            KernelInfo::new("KernelBiCGS1Mutant", 8, 0),
            map,
            &mut out,
            |j, _, row| {
                row[0] = 1.0;
                if j == 1 {
                    // SAFETY: intentionally violates the row-exclusive
                    // contract (writes unmapped element 0) — the mutant.
                    unsafe { *esc.ptr() = 99.0 };
                }
            },
        );
    }))
    .expect_err("the sanitizer must flag the escaped write");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("KernelBiCGS1Mutant"), "{msg}");
    assert!(msg.contains("element 0"), "{msg}");
    assert!(msg.contains("escaped its row slice"), "{msg}");
}

/// Forwarding communicator that swaps the two x-axis face tags on every
/// send — the classic copy-paste halo bug.
struct TagSwapper(VerifiedComm<f64>);

impl Communicator<f64> for TagSwapper {
    fn rank(&self) -> usize {
        self.0.rank()
    }
    fn size(&self) -> usize {
        self.0.size()
    }
    fn send(&self, dest: usize, tag: Tag, data: Vec<f64>) {
        let mutated = match tag {
            0 => 1,
            1 => 0,
            t => t,
        };
        self.0.send(dest, mutated, data);
    }
    fn recv(&self, src: usize, tag: Tag) -> Vec<f64> {
        self.0.recv(src, tag)
    }
    fn all_reduce(&self, vals: &mut [f64], op: ReduceOp) {
        self.0.all_reduce(vals, op);
    }
    fn barrier(&self) {
        self.0.barrier();
    }
    fn stats(&self) -> CommStats {
        self.0.stats()
    }
    fn recorder(&self) -> &Recorder {
        self.0.recorder()
    }
}

/// Mutation 2: a swapped halo tag deadlocks both ranks' receives. The
/// verifier must diagnose the cycle with ranks and tags instead of
/// hanging the test suite.
#[test]
fn seeded_swapped_halo_tag_is_diagnosed() {
    let decomp = Decomp::new([2, 1, 1]);
    let config = CheckConfig {
        deadlock_window: Duration::from_millis(100),
        ..Default::default()
    };
    let failure = try_run_ranks_checked::<f64, _, _>(2, config, move |comm| {
        let comm = TagSwapper(comm);
        let dev = Serial::new(Recorder::disabled());
        let global = GlobalGrid::dirichlet([6, 3, 3], [0.1; 3], [0.0; 3]);
        let grid = BlockGrid::new(global, decomp, comm.rank());
        let mut field = Field::zeros(&dev, &grid);
        let halo = HaloExchange::new(&grid);
        halo.exchange(&dev, &comm, &mut field);
    })
    .expect_err("the verifier must diagnose the swapped-tag deadlock");
    let text = failure.to_string();
    assert!(text.contains("deadlock"), "{text}");
    assert!(text.contains("blocked in recv"), "{text}");
    // Both swapped channels appear with rank + tag provenance.
    assert!(text.contains("tag=0") || text.contains("tag=1"), "{text}");
    assert!(text.contains("rank 0") && text.contains("rank 1"), "{text}");
}

/// Mutation 3: an `irecv` whose request is dropped without `wait`. The
/// teardown audit must name the rank, source and tag of the dropped
/// request and the matching unmatched send.
#[test]
fn seeded_dropped_wait_is_reported() {
    let failure = try_run_ranks_checked::<f64, _, _>(2, CheckConfig::default(), |comm| {
        if comm.rank() == 0 {
            let _dropped = comm.irecv(1, 7);
            // ...the mutant forgets comm.wait(_dropped)
        } else {
            comm.send(0, 7, vec![1.0, 2.0]);
        }
        comm.barrier();
    })
    .expect_err("the teardown audit must flag the dropped request");
    let text = failure.to_string();
    assert!(text.contains("irecv(src=1, tag=7)"), "{text}");
    assert!(text.contains("never completed"), "{text}");
    assert!(text.contains("unmatched send"), "{text}");
    assert!(
        text.contains("rank 1 sent 1 message(s) to rank 0"),
        "{text}"
    );
}

/// Mutually-blocked receives with no message in flight: the pure
/// deadlock, found by the polling detector without any watchdog.
#[test]
fn mutual_recv_deadlock_is_detected() {
    let config = CheckConfig {
        deadlock_window: Duration::from_millis(100),
        ..Default::default()
    };
    let failure = try_run_ranks_checked::<f64, _, _>(2, config, |comm| {
        let peer = 1 - comm.rank();
        let _ = comm.recv(peer, 9);
    })
    .expect_err("mutual recv must be declared a deadlock");
    let text = failure.to_string();
    assert!(text.contains("deadlock"), "{text}");
    assert!(text.contains("recv(src="), "{text}");
    assert!(text.contains("tag=9"), "{text}");
}

/// Mismatched collectives (different vector lengths for the same global
/// call) are refused before the engine can fold them.
#[test]
fn collective_length_mismatch_is_diagnosed() {
    let failure = try_run_ranks_checked::<f64, _, _>(2, CheckConfig::default(), |comm| {
        if comm.rank() == 0 {
            let mut v = [1.0];
            comm.all_reduce(&mut v, ReduceOp::Sum);
        } else {
            let mut v = [1.0, 2.0];
            comm.all_reduce(&mut v, ReduceOp::Sum);
        }
    })
    .expect_err("length mismatch must be diagnosed");
    let text = failure.to_string();
    assert!(text.contains("collective mismatch"), "{text}");
    assert!(text.contains("len=1") || text.contains("len=2"), "{text}");
}

/// A rank that skips a collective leaves the peer stuck inside the
/// engine where no receive polls — only the opt-in watchdog can abort.
#[test]
fn watchdog_aborts_a_hung_collective() {
    let config = CheckConfig {
        timeout: Some(Duration::from_millis(300)),
        ..Default::default()
    };
    let failure = try_run_ranks_checked::<f64, _, _>(2, config, |comm| {
        if comm.rank() == 1 {
            // LINT: collective-uniform(deliberately hung collective — the
            // watchdog abort is what this test exercises)
            comm.barrier(); // rank 0 never arrives
        }
    })
    .expect_err("the watchdog must abort the hung barrier");
    let text = failure.to_string();
    assert!(text.contains("watchdog"), "{text}");
    assert!(text.contains("blocked in barrier"), "{text}");
}
