//! The real solver under full checking: every launch sanitized, every
//! message verified — and zero false positives.

use accel::{Device, Recorder, Serial, Threads};
use blockgrid::Decomp;
use check::{try_run_ranks_checked, CheckConfig, Checked};
use comm::SelfComm;
use krylov::{SolveOutcome, SolveParams, SolverKind, SolverOptions};
use poisson::{paper_problem, PoissonSolver};

fn solve_params() -> SolveParams {
    SolveParams {
        tol: 1e-12,
        max_iters: 20_000,
        record_history: false,
        ..Default::default()
    }
}

fn solver_opts() -> SolverOptions {
    SolverOptions {
        eig_min_factor: 10.0,
        ..Default::default()
    }
}

fn solve_single<D: Device>(dev: D, nodes: usize) -> (SolveOutcome, Vec<f64>) {
    let mut solver: PoissonSolver<f64, _, _> = PoissonSolver::new(
        paper_problem(nodes),
        Decomp::single(),
        dev,
        SelfComm::default(),
    );
    let out = solver.solve(SolverKind::BiCgsGNoCommCi, &solver_opts(), &solve_params());
    let sol = solver.solution_local();
    (out, sol)
}

/// The sanitizer must not perturb the solve at all: same iteration
/// count, bitwise-identical solution.
#[test]
fn checked_solve_is_bitwise_identical_to_plain() {
    let (plain_out, plain_sol) = solve_single(Serial::new(Recorder::disabled()), 13);
    let (checked_out, checked_sol) =
        solve_single(Checked::new(Serial::new(Recorder::disabled())), 13);
    assert!(plain_out.converged && checked_out.converged);
    assert_eq!(plain_out.iterations, checked_out.iterations);
    assert_eq!(plain_sol.len(), checked_sol.len());
    for (a, b) in plain_sol.iter().zip(&checked_sol) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

/// Distributed solve with sanitized devices and verified communicators:
/// the overlap-windowed halo exchanges, boundary kernels and collectives
/// of the real solver must produce no diagnostics (zero false
/// positives) and still converge to the manufactured solution.
#[test]
fn distributed_solve_runs_clean_under_full_checking() {
    let decomp = Decomp::new([2, 2, 2]);
    let results = try_run_ranks_checked::<f64, _, _>(8, CheckConfig::default(), move |comm| {
        let dev = Checked::new(Serial::new(Recorder::disabled()));
        let mut solver: PoissonSolver<f64, _, _> =
            PoissonSolver::new(paper_problem(13), decomp, dev, comm);
        let out = solver.solve(SolverKind::BiCgsGNoCommCi, &solver_opts(), &solve_params());
        let (l2, _) = solver.error_vs_exact();
        (out.converged, out.iterations, l2)
    })
    .unwrap_or_else(|failure| panic!("false positives under checking:\n{failure}"));
    for (converged, _iters, l2) in &results {
        assert!(converged);
        assert!(*l2 < 1e-3, "relative L2 error {l2}");
    }
}

/// The batched multi-RHS path under full checking across 8 ranks: the
/// lane-strided fused kernels, per-face batched halo packing and the
/// chunked B-wide reductions must produce zero diagnostics, with a
/// communicating preconditioner in the loop.
#[test]
fn eight_rank_batched_solve_runs_clean_under_full_checking() {
    let decomp = Decomp::new([2, 2, 2]);
    let results = try_run_ranks_checked::<f64, _, _>(8, CheckConfig::default(), move |comm| {
        let dev = Checked::new(Serial::new(Recorder::disabled()));
        let mut solver: PoissonSolver<f64, _, _> =
            PoissonSolver::new(paper_problem(13), decomp, dev, comm);
        let n: usize = solver.grid().local_n.iter().product();
        let rhs: Vec<Vec<f64>> = (0..3)
            .map(|lane| {
                (0..n)
                    .map(|i| 1.0 + (((i + 7 * lane) as f64) * 0.29).sin())
                    .collect()
            })
            .collect();
        let rhs_refs: Vec<&[f64]> = rhs.iter().map(Vec::as_slice).collect();
        let lanes = solver.solve_batch(
            &rhs_refs,
            SolverKind::BiCgsGCi,
            &solver_opts(),
            &solve_params(),
            &[],
        );
        lanes
            .into_iter()
            .map(|lane| lane.expect("all lanes are valid").outcome.converged)
            .collect::<Vec<_>>()
    })
    .unwrap_or_else(|failure| panic!("false positives under checking:\n{failure}"));
    for lanes in &results {
        assert!(
            lanes.iter().all(|&converged| converged),
            "every batched lane must converge under checking: {lanes:?}"
        );
    }
}

/// The mixed-precision Chebyshev path under full checking across 8
/// ranks: the f32 state sweeps, the cast kernels at the precision
/// boundary and the half-width wire words of the f32 halo band must
/// produce zero diagnostics with the communicating `G(CI/f32)`
/// preconditioner in the loop.
#[test]
fn eight_rank_mixed_precision_solve_runs_clean_under_full_checking() {
    let decomp = Decomp::new([2, 2, 2]);
    let results = try_run_ranks_checked::<f64, _, _>(8, CheckConfig::default(), move |comm| {
        let dev = Checked::new(Serial::new(Recorder::disabled()));
        let mut solver: PoissonSolver<f64, _, _> =
            PoissonSolver::new(paper_problem(13), decomp, dev, comm);
        let opts = SolverOptions {
            mixed_precision: true,
            ..solver_opts()
        };
        let out = solver.solve(SolverKind::BiCgsGCi, &opts, &solve_params());
        let (l2, _) = solver.error_vs_exact();
        (out.converged, out.iterations, l2)
    })
    .unwrap_or_else(|failure| panic!("false positives under checking:\n{failure}"));
    for (converged, _iters, l2) in &results {
        assert!(converged);
        assert!(*l2 < 1e-3, "relative L2 error {l2}");
    }
}

/// Same checked world on the threaded back-end, with the plain solver's
/// preconditioned configuration — back-end independence of the checkers.
#[test]
fn threaded_checked_solve_matches_unchecked_iterations() {
    let decomp = Decomp::new([2, 1, 1]);
    let run = |checked: bool| {
        let d = decomp;
        try_run_ranks_checked::<f64, _, _>(2, CheckConfig::default(), move |comm| {
            let out = if checked {
                let dev = Checked::new(Threads::new(2, Recorder::disabled()));
                let mut solver: PoissonSolver<f64, _, _> =
                    PoissonSolver::new(paper_problem(11), d, dev, comm);
                solver.solve(SolverKind::BiCgsGNoCommCi, &solver_opts(), &solve_params())
            } else {
                let dev = Threads::new(2, Recorder::disabled());
                let mut solver: PoissonSolver<f64, _, _> =
                    PoissonSolver::new(paper_problem(11), d, dev, comm);
                solver.solve(SolverKind::BiCgsGNoCommCi, &solver_opts(), &solve_params())
            };
            (out.converged, out.iterations)
        })
        .expect("clean run")
    };
    let plain = run(false);
    let checked = run(true);
    assert_eq!(plain, checked);
}
