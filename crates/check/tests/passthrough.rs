//! Property tests: `Checked<D>` is a bitwise-identical passthrough on
//! every back-end, so the whole solve suite can run under it.

use accel::{Device, GpuSimParams, KernelInfo, Recorder, RowMap, Serial, SimGpu, Threads};
use check::Checked;
use proptest::prelude::*;

/// Deterministic pseudo-random fill (no rand dependency).
fn lcg_values(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
        .collect()
}

/// A representative fused kernel: stencil-flavoured row update plus a
/// two-way reduction, launched over the interior of a padded box.
fn run_fused<D: Device>(dev: &D, interior: accel::Extent3, seed: u64) -> (Vec<f64>, [f64; 2]) {
    let padded = (interior.nx + 2) * (interior.ny + 2) * (interior.nz + 2);
    let mut out = lcg_values(padded, seed);
    let other = lcg_values(padded, seed ^ 0xdead_beef);
    let map = RowMap::halo_interior(interior);
    let info = KernelInfo::new("KernelFusedProp", 32, 6);
    let partials = dev.launch_rows_reduce(info, map, &mut out, |j, k, row| {
        let mut dot = 0.0;
        let mut nrm = 0.0;
        let off = map.row_offset(j, k);
        for (i, v) in row.iter_mut().enumerate() {
            let o = other[off + i];
            *v = v.mul_add(1.5, o);
            dot += *v * o;
            nrm += *v * *v;
        }
        [dot, nrm]
    });
    (out, partials)
}

fn assert_bitwise_equal(plain: (Vec<f64>, [f64; 2]), checked: (Vec<f64>, [f64; 2])) {
    assert_eq!(plain.0.len(), checked.0.len());
    for (i, (a, b)) in plain.0.iter().zip(&checked.0).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "element {i} diverged");
    }
    for (a, b) in plain.1.iter().zip(&checked.1) {
        assert_eq!(a.to_bits(), b.to_bits(), "reduction partial diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn checked_serial_is_bitwise_identical(
        nx in 1usize..7, ny in 1usize..7, nz in 1usize..7, seed in 1u64..5000,
    ) {
        let e = accel::Extent3::new(nx, ny, nz);
        let plain = run_fused(&Serial::new(Recorder::disabled()), e, seed);
        let checked = run_fused(&Checked::new(Serial::new(Recorder::disabled())), e, seed);
        assert_bitwise_equal(plain, checked);
    }

    #[test]
    fn checked_threads_is_bitwise_identical(
        nx in 1usize..7, ny in 1usize..7, nz in 1usize..7, seed in 1u64..5000,
        workers in 1usize..5,
    ) {
        let e = accel::Extent3::new(nx, ny, nz);
        let plain = run_fused(&Threads::new(workers, Recorder::disabled()), e, seed);
        let checked =
            run_fused(&Checked::new(Threads::new(workers, Recorder::disabled())), e, seed);
        assert_bitwise_equal(plain, checked);
    }

    #[test]
    fn checked_simgpu_is_bitwise_identical(
        nx in 1usize..7, ny in 1usize..7, nz in 1usize..7, seed in 1u64..5000,
        block_rows in 1usize..9,
    ) {
        let e = accel::Extent3::new(nx, ny, nz);
        let params = GpuSimParams { name: "proptest", block_rows };
        let plain = run_fused(&SimGpu::new(params, Recorder::disabled()), e, seed);
        let checked =
            run_fused(&Checked::new(SimGpu::new(params, Recorder::disabled())), e, seed);
        assert_bitwise_equal(plain, checked);
    }
}

/// The recorded event stream must also be unchanged: the sanitizer's
/// shadow work never touches the recorder.
#[test]
fn checked_records_the_same_events() {
    let e = accel::Extent3::new(4, 3, 2);
    let plain_rec = Recorder::enabled();
    let checked_rec = Recorder::enabled();
    let _ = run_fused(
        &SimGpu::new(GpuSimParams::mi250x(), plain_rec.clone()),
        e,
        7,
    );
    let _ = run_fused(
        &Checked::new(SimGpu::new(GpuSimParams::mi250x(), checked_rec.clone())),
        e,
        7,
    );
    assert_eq!(plain_rec.drain(), checked_rec.drain());
}

/// Forwarded metadata: kind is the inner back-end's, the name marks the
/// wrapper so reports show the sanitizer was on.
#[test]
fn checked_forwards_kind_and_marks_name() {
    let dev = Checked::new(Threads::new(3, Recorder::disabled()));
    assert_eq!(dev.kind(), accel::DeviceKind::CpuThreads { threads: 3 });
    assert_eq!(dev.name(), format!("checked({})", dev.inner().name()));
}
