//! Steady-state allocation audit of the fused Bi-CGSTAB hot path.
//!
//! The fused schedule regroups the per-iteration work into five full-grid
//! sweeps, but it must do so with the same zero-allocation discipline as
//! the halo path: every vector lives in the preallocated [`Workspace`]
//! (including the `p_hat_prev` ping-pong buffer the deferred merged
//! x-update swaps through), the split-phase dot slots are reused, and the
//! communicator recycles its queues. After one warm-up solve, further
//! solves — fused kernels, overlapped halo and split-phase batched
//! reductions all on — may not touch the heap.
//!
//! This file holds a single test on purpose: a `#[global_allocator]` is
//! binary-wide, and a lone test keeps other harness threads from muddying
//! the audit. The counter is per-thread, so each rank audits only itself.
//!
//! [`Workspace`]: krylov::Workspace

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use accel::{Recorder, Serial};
use blockgrid::{BlockGrid, Decomp, Field, GlobalGrid};
use comm::{run_ranks, Communicator, ReduceOp, ReduceOrder, ThreadComm};
use krylov::{bicgstab_solve, RankCtx, Scope, SolveParams, SolverKind, SolverOptions, Workspace};

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// System allocator that bumps the calling thread's counter on every
/// allocation or reallocation (frees are not counted — returning memory
/// is fine; taking it is what the steady state forbids).
struct CountingAlloc;

// SAFETY: pure passthrough to `System`; the only extra work is a TLS
// counter bump, which never allocates and never panics (`try_with`).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // try_with: TLS may be gone during thread teardown; never panic
        // inside the allocator.
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        // SAFETY: `ptr`/`layout` come from this allocator (same `System`).
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` come from this allocator (same `System`).
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn my_allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

#[test]
fn fused_solve_is_allocation_free_after_warmup() {
    let decomp = Decomp::new([2, 2, 2]);
    let global = GlobalGrid::dirichlet([8, 8, 8], [0.1; 3], [0.0; 3]);
    let counts = run_ranks::<f64, _, _>(8, ReduceOrder::RankOrder, move |comm| {
        let grid = BlockGrid::new(global.clone(), decomp, comm.rank());
        let interior: Vec<f64> = (0..grid.local_n.iter().product())
            .map(|i| (i % 13) as f64 * 0.25 + 1.0)
            .collect();
        let dev = Serial::new(Recorder::disabled());
        let ctx: RankCtx<f64, _, ThreadComm<f64>> = RankCtx::new(dev, comm, grid);
        let b = Field::from_interior(&ctx.dev, &ctx.grid, &interior);
        let x0 = ctx.field();
        let mut x = ctx.field();
        let mut ws = Workspace::new(&ctx.dev, &ctx.grid);
        let opts = SolverOptions {
            eig_min_factor: 10.0,
            ..SolverOptions::default()
        };
        // The default production configuration: fused kernels, overlapped
        // halo exchange and split-phase batched reductions, Chebyshev
        // preconditioner. An unreachable tolerance pins the iteration
        // count so the audit covers full steady-state loop bodies.
        let mut prec = SolverKind::BiCgsGCi.build_preconditioner(&ctx, &opts);
        // The mixed-precision flavour shares the audit: its f32 state
        // fields, f32 halo pool and cast kernels must be just as
        // steady-state as the f64 path.
        let mixed_opts = SolverOptions {
            mixed_precision: true,
            ..opts
        };
        let mut mixed_prec = SolverKind::BiCgsGCi.build_preconditioner(&ctx, &mixed_opts);
        let params = SolveParams {
            tol: 1e-300,
            max_iters: 4,
            record_history: false,
            ..Default::default()
        };
        assert!(params.fuse_kernels, "fusion must be the default schedule");

        // Warm-up: one solve populates the halo buffer pool, the
        // communicator's per-(peer, tag) queues and any lazily-built
        // preconditioner state.
        bicgstab_solve(
            &ctx,
            Scope::Global,
            &b,
            &mut x,
            &mut *prec,
            &mut ws,
            &params,
        );
        x.copy_from(&x0);
        bicgstab_solve(
            &ctx,
            Scope::Global,
            &b,
            &mut x,
            &mut *mixed_prec,
            &mut ws,
            &params,
        );
        // Every rank warm before anyone starts counting (a cold
        // neighbour would still only bump its *own* counter, but the
        // barrier keeps the steady-state claim honest).
        ctx.comm.all_reduce(&mut [0.0f64], ReduceOp::Sum);

        x.copy_from(&x0);
        let before = my_allocs();
        bicgstab_solve(
            &ctx,
            Scope::Global,
            &b,
            &mut x,
            &mut *prec,
            &mut ws,
            &params,
        );
        x.copy_from(&x0);
        bicgstab_solve(
            &ctx,
            Scope::Global,
            &b,
            &mut x,
            &mut *mixed_prec,
            &mut ws,
            &params,
        );
        my_allocs() - before
    });
    for (rank, &n) in counts.iter().enumerate() {
        assert_eq!(
            n, 0,
            "rank {rank}: {n} heap allocations in the steady-state fused solve"
        );
    }
}
