//! Cooperative cancellation for in-flight solves.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cloneable cancellation flag observed by [`bicgstab_solve`].
///
/// The solver polls the token once per outer iteration, *collectively*:
/// every rank contributes its local view of the flag to a reduction, so
/// all ranks take the break on the same iteration even when the flip
/// races with the loop. A cancelled solve stops at an iteration
/// boundary with its iterate fully updated and reports
/// [`SolveOutcome::cancelled`](crate::SolveOutcome::cancelled).
///
/// Without a token installed ([`SolveParams::cancel`](crate::SolveParams::cancel)
/// is `None`) the solver ships no extra messages: the poll and its
/// reduction exist only when someone can actually cancel. Under the
/// overlapped reduction schedule even an installed token is free of
/// extra messages — the flag rides the per-iteration M1 batch as one
/// more scalar, preserving the 2-messages-per-iteration guarantee.
///
/// [`bicgstab_solve`]: crate::bicgstab_solve
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation; observed by every clone of this token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled());
        assert!(t.is_cancelled());
    }
}
