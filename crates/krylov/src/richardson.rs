//! Richardson (Neumann-series) polynomial preconditioner — the naive
//! baseline the Chebyshev iteration is optimal against.
//!
//! The Chebyshev iteration (Alg. 2/4) is the *optimal* fixed polynomial
//! approximation of `A⁻¹` given the spectral interval; the simplest
//! alternative is damped Richardson / a truncated Neumann series,
//!
//! ```text
//! z_{k+1} = z_k + τ (b − A z_k),   τ = 2 / (λ_min + λ_max)
//! ```
//!
//! with the classical optimal damping for an SPD-like spectrum. It shares
//! every structural property of the paper's CI preconditioners — fixed,
//! reduction-free, and communication-free in its restricted flavour — but
//! contracts only like `((κ−1)/(κ+1))^m` instead of Chebyshev's
//! `(\sqrt κ − 1)/(\sqrt κ + 1)` rate. The ablation bench and tests
//! demonstrate the gap, which is the quantitative justification for the
//! paper's choice of Chebyshev.

use accel::{Device, Scalar};
use blockgrid::Field;
use comm::Communicator;
use stencil::{apply_physical_bcs, SpectralBounds};

use crate::cheby::ChebyMode;
use crate::ctx::RankCtx;
use crate::kernels::INFO_CI2;
use crate::precond::{PrecTraits, Preconditioner};

/// Damped-Richardson polynomial preconditioner.
pub struct RichardsonPrec<T> {
    mode: ChebyMode,
    iterations: usize,
    tau: f64,
    z: Field<T>,
    scratch: Field<T>,
}

impl<T: Scalar> RichardsonPrec<T> {
    /// Configure `iterations` damped-Richardson sweeps with the optimal
    /// constant step for the given (rescaled) spectral bounds.
    pub fn new<D: Device, C: Communicator<T>>(
        ctx: &RankCtx<T, D, C>,
        mode: ChebyMode,
        bounds: SpectralBounds,
        iterations: usize,
    ) -> Self {
        assert!(iterations >= 1, "Richardson needs at least one sweep");
        assert!(
            bounds.min > 0.0 && bounds.max > bounds.min,
            "bad bounds {bounds:?}"
        );
        Self {
            mode,
            iterations,
            tau: 2.0 / (bounds.min + bounds.max),
            z: ctx.field(),
            scratch: ctx.field(),
        }
    }

    /// The damping factor τ.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Sweeps per application.
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

impl<T: Scalar, D: Device, C: Communicator<T>> Preconditioner<T, D, C> for RichardsonPrec<T> {
    fn apply(&mut self, ctx: &RankCtx<T, D, C>, rhs: &mut Field<T>, out: &mut Field<T>) -> usize {
        let tau = T::from_f64(self.tau);
        // z_1 = τ b (zero initial guess)
        crate::kernels::scale(
            &ctx.dev,
            crate::kernels::INFO_SCALE,
            &ctx.grid,
            &mut self.z,
            rhs,
            tau,
        );
        for _ in 1..self.iterations {
            // ghosts of the running iterate
            match self.mode {
                ChebyMode::Global => {
                    ctx.halo.exchange(&ctx.dev, &ctx.comm, &mut self.z);
                    apply_physical_bcs(&ctx.grid, &mut self.z, &ctx.recorder, false);
                }
                _ => apply_physical_bcs(&ctx.grid, &mut self.z, &ctx.recorder, true),
            }
            // scratch = z + τ b − τ A z  (one fused sweep)
            let (z_ref, scratch_mut) = (&self.z, &mut self.scratch);
            ctx.lap.apply_combine(
                &ctx.dev,
                INFO_CI2,
                z_ref,
                scratch_mut,
                -tau,
                &[(z_ref, T::ONE), (rhs, tau)],
            );
            self.z.swap(&mut self.scratch);
        }
        out.copy_from(&self.z);
        self.iterations
    }

    fn traits(&self) -> PrecTraits {
        PrecTraits {
            fixed: true,
            comm_free: self.mode.comm_free(),
            reduction_free: true,
        }
    }

    fn name(&self) -> &'static str {
        match self.mode {
            ChebyMode::Global => "G(Richardson)",
            ChebyMode::GlobalNoComm => "GNoComm(Richardson)",
            ChebyMode::BlockJacobi => "BJ(Richardson)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bicgstab::{bicgstab_solve, Scope, SolveParams};
    use crate::cheby::global_bounds;
    use crate::ctx::Workspace;
    use crate::precond::ChebyPrecond;
    use accel::{Recorder, Serial};
    use blockgrid::{BlockGrid, Decomp, GlobalGrid};
    use comm::SelfComm;

    fn ctx() -> RankCtx<f64, Serial, SelfComm<f64>> {
        let grid = BlockGrid::new(
            GlobalGrid::dirichlet([10, 10, 10], [0.2; 3], [0.0; 3]),
            Decomp::single(),
            0,
        );
        RankCtx::new(Serial::new(Recorder::disabled()), SelfComm::default(), grid)
    }

    fn rhs(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i as f64) * 0.41).cos()).collect()
    }

    fn outer_iterations_with(prec_kind: &str, sweeps: usize) -> usize {
        let ctx = ctx();
        let bounds = global_bounds(&ctx);
        let b = Field::from_interior(&ctx.dev, &ctx.grid, &rhs(1000));
        let mut x = ctx.field();
        let mut ws = Workspace::new(&ctx.dev, &ctx.grid);
        let params = SolveParams {
            tol: 1e-9,
            max_iters: 5_000,
            record_history: false,
            ..Default::default()
        };
        let out = match prec_kind {
            "richardson" => {
                let mut p = RichardsonPrec::new(&ctx, ChebyMode::GlobalNoComm, bounds, sweeps);
                bicgstab_solve(&ctx, Scope::Global, &b, &mut x, &mut p, &mut ws, &params)
            }
            _ => {
                let mut p = ChebyPrecond::new(&ctx, ChebyMode::GlobalNoComm, bounds, sweeps);
                bicgstab_solve(&ctx, Scope::Global, &b, &mut x, &mut p, &mut ws, &params)
            }
        };
        assert!(out.converged, "{prec_kind}: {out:?}");
        out.iterations
    }

    #[test]
    fn richardson_preconditioned_solver_converges() {
        let its = outer_iterations_with("richardson", 12);
        assert!(its > 0);
    }

    #[test]
    fn chebyshev_beats_richardson_at_equal_sweeps() {
        // the quantitative argument for the paper's choice of CI: at the
        // same per-application sweep budget, the optimal polynomial needs
        // fewer outer iterations
        let rich = outer_iterations_with("richardson", 12);
        let cheb = outer_iterations_with("chebyshev", 12);
        assert!(
            cheb < rich,
            "Chebyshev must beat Richardson at equal sweeps: {cheb} vs {rich}"
        );
    }

    #[test]
    fn optimal_tau_formula() {
        let ctx = ctx();
        let p = RichardsonPrec::new(
            &ctx,
            ChebyMode::GlobalNoComm,
            SpectralBounds { min: 1.0, max: 3.0 },
            4,
        );
        assert!((p.tau() - 0.5).abs() < 1e-15);
        assert_eq!(p.iterations(), 4);
    }

    #[test]
    fn traits_match_mode() {
        let ctx = ctx();
        let bounds = global_bounds(&ctx);
        let p = RichardsonPrec::<f64>::new(&ctx, ChebyMode::Global, bounds, 2);
        let t = Preconditioner::<f64, Serial, SelfComm<f64>>::traits(&p);
        assert!(t.fixed && !t.comm_free && t.reduction_free);
        let p = RichardsonPrec::<f64>::new(&ctx, ChebyMode::BlockJacobi, bounds, 2);
        let t = Preconditioner::<f64, Serial, SelfComm<f64>>::traits(&p);
        assert!(t.comm_free);
    }

    #[test]
    fn application_is_linear_and_fixed() {
        let ctx = ctx();
        let bounds = global_bounds(&ctx);
        let n = 1000;
        let u = rhs(n);
        let v: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.17).sin()).collect();
        let apply = |data: &[f64]| -> Vec<f64> {
            let mut p = RichardsonPrec::new(&ctx, ChebyMode::GlobalNoComm, bounds, 6);
            let mut b = Field::from_interior(&ctx.dev, &ctx.grid, data);
            let mut out = ctx.field();
            Preconditioner::<f64, Serial, SelfComm<f64>>::apply(&mut p, &ctx, &mut b, &mut out);
            out.interior_to_host(&ctx.grid)
        };
        let mu = apply(&u);
        let mv = apply(&v);
        let combo: Vec<f64> = u.iter().zip(&v).map(|(a, b)| 2.0 * a - 0.5 * b).collect();
        let mc = apply(&combo);
        for i in 0..n {
            let expect = 2.0 * mu[i] - 0.5 * mv[i];
            assert!(
                (mc[i] - expect).abs() < 1e-10 * expect.abs().max(1.0),
                "linearity at {i}"
            );
        }
    }
}
