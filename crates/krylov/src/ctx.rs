//! Per-rank solver context and field workspace.

use accel::{Device, Recorder, Scalar};
use blockgrid::{BlockGrid, Field, HaloExchange};
use comm::Communicator;
use stencil::Laplacian;

/// Everything one rank needs to run the solver: its device, its
/// communicator handle, its subdomain, the matrix-free operator and the
/// halo-exchange plan. One `RankCtx` is built per MPI-rank-equivalent
/// thread (the paper's per-process solver state).
pub struct RankCtx<T: Scalar, D: Device, C: Communicator<T>> {
    /// The accelerator this rank offloads to (one GPU / GCD per rank in
    /// the paper's runs).
    pub dev: D,
    /// This rank's communicator handle.
    pub comm: C,
    /// Subdomain geometry.
    pub grid: BlockGrid,
    /// Matrix-free operator on the subdomain.
    pub lap: Laplacian,
    /// Halo-exchange plan.
    pub halo: HaloExchange<T>,
    /// Event stream (shared with `dev`).
    pub recorder: Recorder,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Scalar, D: Device, C: Communicator<T>> RankCtx<T, D, C> {
    /// Assemble the context for one rank.
    pub fn new(dev: D, comm: C, grid: BlockGrid) -> Self {
        let lap = Laplacian::new(&grid);
        let halo = HaloExchange::new(&grid);
        let recorder = dev.recorder().clone();
        Self {
            dev,
            comm,
            grid,
            lap,
            halo,
            recorder,
            _marker: std::marker::PhantomData,
        }
    }

    /// Allocate a zeroed field on this rank's device.
    pub fn field(&self) -> Field<T> {
        Field::zeros(&self.dev, &self.grid)
    }
}

/// The Bi-CGSTAB vector set (Alg. 3), allocated once and reused across
/// solves — every vector lives in device memory for the whole solve,
/// matching the paper's offload-once design.
pub struct Workspace<T> {
    /// Residual `r`.
    pub r: Field<T>,
    /// Shadow residual `r̃` (chosen as `r_0`).
    pub r0t: Field<T>,
    /// Search direction `p`.
    pub p: Field<T>,
    /// Preconditioned direction `p̂`.
    pub p_hat: Field<T>,
    /// Preconditioned residual `r̂`.
    pub r_hat: Field<T>,
    /// `w = A p̂`.
    pub w: Field<T>,
    /// `t = A r̂`.
    pub t: Field<T>,
    /// Previous iteration's `p̂`, kept alive by the fused overlap
    /// schedule: its merged x-update (`x ← (x + α p̂) + ω r̂`) is deferred
    /// into the *next* iteration's M1 window, after the preconditioner
    /// has already refilled `p_hat` — so the two buffers ping-pong via
    /// `std::mem::swap` instead of copying.
    pub p_hat_prev: Field<T>,
    /// Per-row dot partials for the fused split-phase stencil sweeps
    /// (`Laplacian::apply_interior_dot` / `apply_shell_dot`): sized for
    /// the widest fused dot group (`slot_len(3)`, the three KernelBiCGS3F
    /// components), reused by the one-component KernelBiCGS1 fold.
    pub slots: Vec<T>,
}

impl<T: Scalar> Workspace<T> {
    /// Allocate the workspace on `dev` for `grid`.
    pub fn new<D: Device>(dev: &D, grid: &BlockGrid) -> Self {
        let lap = Laplacian::new(grid);
        Self {
            r: Field::zeros(dev, grid),
            r0t: Field::zeros(dev, grid),
            p: Field::zeros(dev, grid),
            p_hat: Field::zeros(dev, grid),
            r_hat: Field::zeros(dev, grid),
            w: Field::zeros(dev, grid),
            t: Field::zeros(dev, grid),
            p_hat_prev: Field::zeros(dev, grid),
            slots: vec![T::ZERO; lap.slot_len(3)],
        }
    }
}

/// Workspace of a batched multi-RHS solve: one full [`Workspace`] per
/// lane, so every per-lane helper (preconditioner application, boundary
/// conditions, halo packing) sees an ordinary [`Field`] while the
/// batched kernels stride all lanes inside one launch. Allocated once
/// and reused across batched solves, like the solo workspace.
pub struct BatchWorkspace<T> {
    /// Per-lane vector sets, indexed by lane.
    pub lanes: Vec<Workspace<T>>,
}

impl<T: Scalar> BatchWorkspace<T> {
    /// Allocate `batch` lanes of workspace on `dev` for `grid`.
    pub fn new<D: Device>(dev: &D, grid: &BlockGrid, batch: usize) -> Self {
        Self {
            lanes: (0..batch).map(|_| Workspace::new(dev, grid)).collect(),
        }
    }

    /// Number of lanes this workspace can carry.
    pub fn batch(&self) -> usize {
        self.lanes.len()
    }

    /// Whether the workspace has no lanes.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel::Serial;
    use blockgrid::{Decomp, GlobalGrid};
    use comm::SelfComm;

    #[test]
    fn context_assembles() {
        let grid = BlockGrid::new(
            GlobalGrid::dirichlet([4, 4, 4], [0.1; 3], [0.0; 3]),
            Decomp::single(),
            0,
        );
        let ctx: RankCtx<f64, _, _> =
            RankCtx::new(Serial::new(Recorder::disabled()), SelfComm::default(), grid);
        let f = ctx.field();
        assert_eq!(f.padded(), [6, 6, 6]);
        let ws = Workspace::<f64>::new(&ctx.dev, &ctx.grid);
        assert_eq!(ws.r.padded(), [6, 6, 6]);
    }
}
